#!/usr/bin/env python3
"""The serving layer in five acts: admit, execute, degrade, reject, report.

A two-tenant :class:`~repro.serve.QueryService` front-ends the paper's
engines with the machinery a real deployment needs:

1. **Certified admission** — before a query runs, its exact CLLP/LLP
   output bound is computed; a query whose bound exceeds the tenant's
   budget is rejected *with the LP certificate attached*, so the caller
   can see precisely why (Sec. 4's bounds, used as an admission oracle).
2. **Deadlines** — cooperative checkpoints inside every engine cancel
   over-deadline queries with a typed ``QueryTimeout``.
3. **Graceful degradation** — injected engine faults push execution down
   the fallback chain (ndarray blocks → encoded row loop → decoded
   reference); the answer stays bit-identical, the response records what
   was absorbed.
4. **Typed errors** — nothing escapes as a bare string; every failure
   carries machine-readable context.
5. **Metrics** — per-service counters and per-tenant dictionary sizes.

Run:  PYTHONPATH=src python examples/serve_quickstart.py
"""

from repro.errors import AdmissionRejected
from repro.serve import FaultInjector, QueryService
from repro.serve.workloads import demo_queries, demo_relations, demo_udfs

TRIANGLE = demo_queries()["triangle"]
EXPAND = demo_queries()["udf_expand"]


def main() -> None:
    faults = FaultInjector(seed=0)
    with QueryService(max_workers=2, faults=faults) as service:
        # Two tenants, disjoint value ranges, one shared codec per tenant.
        for i, name in enumerate(("acme", "globex")):
            service.create_tenant(name, budget_log2=20.0)
            service.attach_database(
                name, "graph", demo_relations(seed=i, value_base=i * 100_000)
            )
            service.attach_database(
                name,
                "calc",
                demo_relations(seed=i, value_base=i * 100_000)[:1],
                udfs=demo_udfs(),
            )

        # --- act 1/2: a clean certified run under a deadline ----------
        result = service.execute("acme", "graph", TRIANGLE, deadline_s=5.0)
        print(f"triangle({result.engine}): {result.row_count} rows, "
              f"certified bound 2^{result.bound_log2:.2f}, "
              f"backend {result.backend}")

        # --- act 3: an engine fault degrades, the answer does not -----
        faults.arm("engine", times=1)
        degraded = service.execute("acme", "graph", TRIANGLE)
        print(f"under fault: backend {degraded.backend}, "
              f"absorbed {[f['backend'] for f in degraded.faults_absorbed]}, "
              f"rows identical: {degraded.rows == result.rows}")

        # --- act 4: an over-budget query is rejected with proof -------
        service.create_tenant("freetier", budget_log2=2.0)
        service.attach_database(
            "freetier", "graph", demo_relations(seed=9, value_base=900_000)
        )
        try:
            service.execute("freetier", "graph", TRIANGLE)
        except AdmissionRejected as err:
            print(f"freetier rejected: bound 2^{err.bound_log2:.2f} > "
                  f"budget 2^{err.budget_log2:.2f}; dual weights "
                  f"{ {k: round(v, 2) for k, v in err.extra['weights'].items()} }")

        # --- act 5: UDF interning + the service's own accounting ------
        service.execute("globex", "calc", EXPAND, engine="generic")
        metrics = service.metrics()
        print(f"counters: submitted {metrics['submitted']}, "
              f"completed {metrics['completed']}, "
              f"degraded {metrics['degraded']}, "
              f"rejected {metrics['rejected_admission']}")
        for tenant, row in sorted(metrics["tenants"].items()):
            print(f"  {tenant}: {row['dictionary_values']} interned values "
                  f"across {row['databases']} databases")


if __name__ == "__main__":
    main()
