#!/usr/bin/env python3
"""Known maximum degrees (Sec. 1.2): tighter bounds and faster joins.

A social-network-style triangle count where each account follows at most
d others: the CLLP bound drops from N^{3/2} to N·d, and CSMA — the only
algorithm of the paper that accepts degree constraints natively — runs
within the smaller budget.

Run:  python examples/bounded_degrees.py
"""

import math
import random

from repro.core.csma import csma
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.relation import Relation
from repro.lattice.builders import lattice_from_query
from repro.lp.cllp import ConditionalLLP, DegreeConstraint
from repro.query.query import triangle_query


def follows_graph(n: int, d: int, seed: int = 0) -> set[tuple[int, int]]:
    """n follow-edges where every account follows at most d others."""
    rng = random.Random(seed)
    nodes = n // d
    return {
        (x, (x * 31 + 7 * k + rng.randrange(3)) % nodes)
        for x in range(nodes)
        for k in range(d)
    }


def main() -> None:
    n, d = 1200, 3
    query = triangle_query()
    follows = follows_graph(n, d)
    nodes = n // d
    rng = random.Random(1)
    mentions = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
    replies = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
    db = Database(
        [
            Relation("R", ("x", "y"), follows),
            Relation("S", ("y", "z"), mentions),
            Relation("T", ("z", "x"), replies),
        ]
    )
    lattice, inputs = lattice_from_query(query)
    logs = db.log_sizes()

    # Bound without vs. with the degree constraint.
    base = ConditionalLLP.from_cardinalities(lattice, inputs, logs)
    x = lattice.index(frozenset("x"))
    xy = lattice.index(frozenset("xy"))
    observed_d = db["R"].max_degree(("x",))
    constraint = DegreeConstraint(x, xy, math.log2(observed_d), guard="R")
    plain, _ = base.solve_primal()
    tight, _ = base.with_constraint(constraint).solve_primal()
    print(f"|R| = {len(db['R'])}, max out-degree(R) = {observed_d}")
    print(f"CLLP bound, cardinalities only: 2^{plain:.2f} = {2**plain:12.0f}")
    print(f"CLLP bound, with degree bound:  2^{tight:.2f} = {2**tight:12.0f}")
    print(f"(paper: min(N^1.5, N·d) = {min(len(db['R'])**1.5, len(db['S'])*observed_d):.0f})")

    # Run CSMA with the constraint; cross-check with generic join.
    result = csma(
        query, db, lattice, inputs, extra_degree_constraints=[constraint]
    )
    reference, _ = generic_join(query, db)
    assert set(result.relation.tuples) == set(
        reference.project(result.relation.schema).tuples
    )
    print(
        f"\nCSMA: |Q| = {len(result.relation)}, work = "
        f"{result.stats.tuples_touched}, branches = {result.stats.branches}, "
        f"restarts = {result.stats.restarts}"
    )
    print("proof sequence executed:")
    for rule in result.stats.rules:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
