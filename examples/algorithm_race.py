#!/usr/bin/env python3
"""Race all algorithms on all the paper's workloads.

For each workload (Fig. 1 grid & skew, Fig. 4 quasi-product, Fig. 9
quasi-product, M3 mod-N) runs every applicable algorithm, verifies all
outputs agree, and reports work counters — a one-screen summary of the
paper's algorithmic landscape.

Run:  python examples/algorithm_race.py
"""

from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.sma import SMAError, submodularity_algorithm
from repro.datagen.from_lattice import worst_case_database
from repro.datagen.worstcase import (
    fig4_instance,
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)
from repro.engine.binary_join import binary_join_plan
from repro.lattice.builders import fig9_lattice, lattice_from_query
from repro.lattice.chains import best_chain_bound


def fig9_workload(scale=3):
    lat0, inp0 = fig9_lattice()
    query, db, _ = worst_case_database(lat0, inp0, scale=scale)
    return query, db


WORKLOADS = {
    "fig1-grid (Ex. 5.5)": lambda: grid_instance_example_5_5(100),
    "fig1-skew (Ex. 5.8)": lambda: skew_instance_example_5_8(100),
    "fig4-quasiproduct (Ex. 5.20)": lambda: fig4_instance(125),
    "fig9-quasiproduct (Ex. 5.31)": lambda: fig9_workload(4),
    "m3-mod-n (Ex. 5.12)": lambda: m3_modular_instance(10),
}


def main() -> None:
    for name, maker in WORKLOADS.items():
        query, db = maker()
        lattice, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        print(f"=== {name}: sizes {db.sizes()}")
        reference, bj_stats = binary_join_plan(query, db)
        ref = set(reference.project(tuple(sorted(query.variables))).tuples)
        rows = [("binary-plan", len(ref), bj_stats.tuples_touched, "")]

        chain_value, chain, _ = best_chain_bound(lattice, inputs, logs)
        if chain is not None and chain_value != float("inf"):
            out, st = chain_algorithm(query, db, lattice, inputs, chain)
            ok = set(out.tuples) == ref
            rows.append(("chain-alg", len(out), st.tuples_touched,
                         "" if ok else "MISMATCH"))
        try:
            out, st = submodularity_algorithm(query, db, lattice, inputs)
            ok = set(out.tuples) == ref
            rows.append(("sma", len(out), st.tuples_touched,
                         "" if ok else "MISMATCH"))
        except SMAError as exc:
            rows.append(("sma", "-", "-", f"n/a: {exc}"))
        result = csma(query, db, lattice, inputs)
        ok = set(result.relation.tuples) == ref
        note = "" if ok else "MISMATCH"
        if result.stats.restarts:
            note += f" restarts={result.stats.restarts}"
        rows.append(("csma", len(result.relation),
                     result.stats.tuples_touched, note))

        for algo, size, work, note in rows:
            print(f"  {algo:>12}: |Q| = {size:>6}  work = {work:>9}  {note}")
        print()


if __name__ == "__main__":
    main()
