#!/usr/bin/env python3
"""Explore the paper's lattice taxonomy (Fig. 10) interactively.

For each named lattice: distributivity, modularity, M3-with-top,
normality, and the bound hierarchy at unit cardinalities — reproducing
every containment of Fig. 10.

Run:  python examples/lattice_explorer.py [lattice ...]
"""

import sys

from repro.core.bounds import coatomic_bound_log2
from repro.lattice.builders import (
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig7_lattice,
    fig8_lattice,
    fig9_lattice,
    m3_query_lattice,
    boolean_algebra,
)
from repro.lattice.chains import best_chain_bound
from repro.lattice.properties import (
    has_m3_with_top,
    is_distributive,
    is_modular,
    is_normal_lattice,
)
from repro.lp.llp import glvv_bound_log2


def catalog():
    b3 = boolean_algebra("xyz")
    return {
        "boolean3": (
            b3,
            {
                "R": b3.index(frozenset("xy")),
                "S": b3.index(frozenset("yz")),
                "T": b3.index(frozenset("xz")),
            },
        ),
        "m3": m3_query_lattice(),
        "fig1": fig1_lattice(),
        "fig4": fig4_lattice(),
        "fig5": fig5_lattice(),
        "fig7": fig7_lattice(),
        "fig8": fig8_lattice(),
        "fig9": fig9_lattice(),
    }


def hasse(lattice) -> str:
    """ASCII Hasse diagram by rank (longest chain from bottom)."""
    rank = [0] * lattice.n
    order = sorted(range(lattice.n), key=lambda i: len(lattice.downset(i)))
    for i in order:
        for j in lattice.upper_covers[i]:
            rank[j] = max(rank[j], rank[i] + 1)
    levels: dict[int, list[str]] = {}
    for i in range(lattice.n):
        label = lattice.label(i)
        text = (
            "".join(sorted(map(str, label))) or "∅"
            if isinstance(label, frozenset)
            else str(label)
        )
        levels.setdefault(rank[i], []).append(text)
    return "\n".join(
        "  " + "   ".join(sorted(levels[r]))
        for r in sorted(levels, reverse=True)
    )


def main() -> None:
    selected = sys.argv[1:] or None
    for name, (lattice, inputs) in catalog().items():
        if selected and name not in selected:
            continue
        logs = {k: 1.0 for k in inputs}
        glvv = glvv_bound_log2(lattice, inputs, logs)
        chain, _, _ = best_chain_bound(lattice, inputs, logs)
        coat = coatomic_bound_log2(lattice, inputs, logs)
        print(f"=== {name} ({lattice.n} elements) " + "=" * 30)
        print(hasse(lattice))
        print(f"  distributive : {is_distributive(lattice)}")
        print(f"  modular      : {is_modular(lattice)}")
        print(f"  M3 at top    : {has_m3_with_top(lattice)}")
        print(f"  normal (w.r.t. inputs): {is_normal_lattice(lattice, inputs)}")
        print(
            f"  bounds @ N: glvv N^{glvv:.3f}, best-chain N^{chain:.3f}, "
            f"co-atomic N^{coat:.3f}"
        )
        print()


if __name__ == "__main__":
    main()
