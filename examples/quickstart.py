#!/usr/bin/env python3
"""Quickstart: bounds and FD-aware evaluation in five minutes.

Builds the paper's running example — the UDF query (1) of Sec. 1.1 —

    Q(x,y,z,u) :- R(x,y), S(y,z), T(z,u), u = f(x,z), x = g(y,u)

computes its whole bound hierarchy, lets the planner pick an algorithm,
and checks the answer against a naive plan.

Run:  python examples/quickstart.py
"""

from repro.core.bounds import compute_bounds
from repro.core.planner import Planner
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.udf import UDF
from repro.query.parse import parse_query


def main() -> None:
    # 1. Declare the query.  FDs after ';', UDFs supply the unguarded ones.
    query = parse_query("Q :- R(x,y), S(y,z), T(z,u); xz -> u, yu -> x")
    print(f"query: {query}")

    # 2. Build a database: √N × √N grids plus the two UDFs (Ex. 5.5).
    side = 16  # N = 256 tuples per relation
    grid = [(i, j) for i in range(side) for j in range(side)]
    db = Database(
        [
            Relation("R", ("x", "y"), grid),
            Relation("S", ("y", "z"), grid),
            Relation("T", ("z", "u"), grid),
        ],
        udfs=[
            UDF("f", ("x", "z"), "u", lambda x, z: x),
            UDF("g", ("y", "u"), "x", lambda y, u: u),
        ],
    )
    n = len(db["R"])
    print(f"database: |R| = |S| = |T| = {n}")

    # 3. The bound hierarchy (all log2).
    report = compute_bounds(query, db.sizes())
    print("\nbound hierarchy (log2 of tuple counts):")
    for name, value in report.as_dict().items():
        print(f"  {name:>9}: {value:6.2f}  (= {2**value:12.0f} tuples)")
    print(f"  AGM treats the UDFs as invisible: N^2 = {n**2}")
    print(f"  GLVV exploits them:           N^1.5 = {n**1.5:.0f}")

    # 4. Let the planner choose and run.
    planner = Planner(query, db)
    out, choice = planner.run()
    print(f"\nplanner chose: {choice.algorithm}  ({choice.reason})")
    print(f"|Q| = {len(out)}")

    # 5. Cross-check against a traditional binary plan.
    reference, stats = binary_join_plan(query, db)
    assert set(out.project(reference.schema).tuples) == set(reference.tuples)
    print(
        f"binary plan agrees, but materialized a peak intermediate of "
        f"{stats.intermediate_peak} tuples"
    )


if __name__ == "__main__":
    main()
