#!/usr/bin/env python3
"""User-defined functions as FDs: the Sec. 1.1 motivation, measured.

On the skew instance of Ex. 5.8 (R = S = T = {(1,i)} ∪ {(i,1)}) every
FD-oblivious strategy — a traditional binary plan *and* a worst-case
optimal generic join — does Θ(N²) work, while the paper's Chain Algorithm
finishes in Õ(N^{3/2}) (here even ~N, since the output is linear).

Run:  python examples/udf_functions.py
"""

from repro.core.chain_algorithm import chain_algorithm
from repro.datagen.worstcase import skew_instance_example_5_8
from repro.engine.binary_join import binary_join_plan
from repro.engine.generic_join import generic_join
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound


def main() -> None:
    print(f"{'N':>6} {'|Q|':>6} {'chain-alg':>10} {'generic-join':>13} "
          f"{'binary-plan':>12}   (work = tuples touched)")
    for n in (64, 128, 256, 512):
        query, db = skew_instance_example_5_8(n)
        lattice, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        _, chain, _ = best_chain_bound(lattice, inputs, logs)

        out, ca = chain_algorithm(query, db, lattice, inputs, chain)
        _, gj = generic_join(
            query, db, order=("y", "z", "x", "u"), fd_aware=True
        )
        _, bj = binary_join_plan(query, db, order=["R", "S", "T"])
        print(
            f"{n:>6} {len(out):>6} {ca.tuples_touched:>10} "
            f"{gj.tuples_touched:>13} {bj.tuples_touched:>12}"
        )
    print(
        "\nDoubling N roughly doubles the Chain Algorithm's work but "
        "quadruples the baselines' — the Sec. 1.1 asymptotic separation."
    )


if __name__ == "__main__":
    main()
