#!/usr/bin/env python3
"""The information-theoretic heart of the GLVV bound, step by step (Sec. 2).

1. Reproduce the paper's five-outcome triangle distribution and its
   displayed marginals.
2. Build the output distribution of a real query, check the cardinality
   and fd constraints, and compare H(all vars) against the LLP optimum.
3. Show the polymatroid relaxation: the entropy profile satisfies the
   Shannon inequalities, so the LLP value upper-bounds log2 |Q|.

Run:  python examples/entropy_walkthrough.py
"""

import math

from repro.core.bounds import glvv_bound_log2
from repro.datagen.worstcase import grid_instance_example_5_5
from repro.engine.binary_join import binary_join_plan
from repro.lattice.entropy import Distribution, section2_example


def part1_paper_example() -> None:
    print("=" * 60)
    print("1. The Sec. 2 five-outcome distribution")
    d = section2_example()
    print(f"   H(xyz) = {d.entropy():.4f} = log2 5 = {math.log2(5):.4f}")
    for attrs, size in [("xy", 4), ("yz", 4), ("xz", 4)]:
        h = d.entropy(attrs)
        print(f"   H({attrs})  = {h:.4f} <= log2 |{attrs}-relation| = {math.log2(size):.4f}")
    print(f"   marginal P(x=a, y=3) = {d.marginal(('x','y'))[('a', 3)]} (paper: 2/5)")
    print(f"   Shannon inequalities hold: {d.is_polymatroid_profile()}")


def part2_real_query() -> None:
    print("=" * 60)
    print("2. The output distribution of query (1) on the grid instance")
    query, db = grid_instance_example_5_5(64)
    out, _ = binary_join_plan(query, db)
    variables = tuple(sorted(query.variables))
    dist = Distribution.uniform(
        variables, out.project(variables).tuples
    )
    print(f"   |Q| = {len(out)}, H(all) = {dist.entropy():.4f} = log2 |Q| = "
          f"{math.log2(len(out)):.4f}")
    for atom in query.atoms:
        h = dist.entropy(atom.attrs)
        n = math.log2(len(db[atom.name]))
        print(f"   H({''.join(atom.attrs)}) = {h:.4f} <= n_{atom.name} = {n:.4f}")
    for fd in query.fds:
        lhs = "".join(sorted(fd.lhs))
        rhs = "".join(sorted(fd.rhs))
        print(f"   H({rhs}|{lhs}) = {dist.conditional_entropy(fd.rhs, fd.lhs):.6f}"
              f"  (fd {lhs}→{rhs}: must be 0)")
        assert dist.satisfies_fd(fd.lhs, fd.rhs)
    glvv, _, _ = glvv_bound_log2(query, db.sizes())
    print(f"   GLVV (LLP over polymatroids) = {glvv:.4f} >= H(all) — "
          "the bound is tight here")


def main() -> None:
    part1_paper_example()
    part2_real_query()


if __name__ == "__main__":
    main()
