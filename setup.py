from setuptools import find_packages, setup

setup(
    name="repro-khamis-ns16",
    version="0.4.0",
    description=(
        "Reproduction of Khamis-Ngo-Suciu (PODS'16): output-size bounds "
        "and worst-case-optimal join algorithms over FD lattices"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            # Drive the demo multi-tenant service and print a JSON report
            # (latency percentiles, QPS, rejection/degradation rates).
            "repro-serve=repro.serve.cli:main",
        ],
    },
    install_requires=[
        "numpy",
    ],
    extras_require={
        # The LP layer runs on the built-in exact rational backend; scipy
        # (HiGHS) is an optional accelerator for large programs and the
        # cross-check target of REPRO_LP_BACKEND=both.  Tier-1 tests pass
        # without it (see tests/test_lp_exact.py::test_importability_split).
        "scipy": ["scipy>=1.9"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
