from setuptools import find_packages, setup

setup(
    name="repro-khamis-ns16",
    version="0.6.0",
    description=(
        "Reproduction of Khamis-Ngo-Suciu (PODS'16): output-size bounds "
        "and worst-case-optimal join algorithms over FD lattices"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            # Drive the demo multi-tenant service and print a JSON report
            # (latency percentiles, QPS, rejection/degradation rates).
            "repro-serve=repro.serve.cli:main",
            # The AST invariant checker: six codebase-contract rules,
            # the committed zero-findings baseline, and the knob-matrix
            # docs drift gate (see PERFORMANCE.md §8).
            "repro-lint=repro.analysis.cli:main",
        ],
    },
    install_requires=[
        "numpy",
    ],
    extras_require={
        # The LP layer runs on the built-in exact rational backend; scipy
        # (HiGHS) is an optional accelerator for large programs and the
        # cross-check target of REPRO_LP_BACKEND=both.  Tier-1 tests pass
        # without it (see tests/test_lp_exact.py::test_importability_split).
        "scipy": ["scipy>=1.9"],
        # The fused-pipeline hot primitives (dense gather+mask, sorted
        # key join, mask compaction) JIT-compile through numba when
        # REPRO_FUSE_NATIVE permits; without numba they run the
        # bit-identical numpy fallbacks.  Import-guarded exactly like
        # scipy — tier-1 passes without it (CI's no-scipy job also runs
        # REPRO_FUSE_NATIVE=on with numba absent to prove degradation).
        "native": ["numba>=0.57"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
