"""Information-theoretic side of the GLVV bound (Sec. 2).

The paper's starting point: view the query output as a uniform
distribution over its tuples; marginal entropies then satisfy the
cardinality constraints H(vars(R_j)) <= log2 |R_j| and the fd constraints
H(XY) = H(X), and log2 |Q| = H(all vars) <= GLVV.

This module computes exact marginal entropies of finite distributions,
checks Shannon inequalities, and packages the Sec. 2 worked example (the
five-outcome distribution for the triangle query) as executable artifacts.
Entropies are floats (they are genuinely irrational); the polymatroid
*checks* therefore use a configurable tolerance.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.lattice.lattice import Lattice


class Distribution:
    """A finite joint distribution over named variables."""

    def __init__(
        self,
        variables: Sequence[str],
        outcomes: Mapping[tuple, float] | Iterable[tuple],
    ):
        self.variables = tuple(variables)
        if isinstance(outcomes, Mapping):
            weights = dict(outcomes)
        else:
            counts = Counter(tuple(t) for t in outcomes)
            total = sum(counts.values())
            weights = {t: c / total for t, c in counts.items()}
        total = sum(weights.values())
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"probabilities sum to {total}, not 1")
        if any(p < 0 for p in weights.values()):
            raise ValueError("negative probability")
        self.weights: dict[tuple, float] = {
            t: p for t, p in weights.items() if p > 0
        }
        self._positions = {v: i for i, v in enumerate(self.variables)}

    @classmethod
    def uniform(
        cls, variables: Sequence[str], tuples: Iterable[tuple]
    ) -> "Distribution":
        """The uniform distribution over a tuple set — the query-output
        distribution of Sec. 2."""
        return cls(variables, list(tuples))

    # ------------------------------------------------------------------
    def marginal(self, attrs: Iterable[str]) -> dict[tuple, float]:
        positions = [self._positions[a] for a in attrs]
        out: dict[tuple, float] = {}
        for t, p in self.weights.items():
            key = tuple(t[i] for i in positions)
            out[key] = out.get(key, 0.0) + p
        return out

    def entropy(self, attrs: Iterable[str] | None = None) -> float:
        """H(X) in bits; H of all variables when attrs is None."""
        attrs = tuple(attrs) if attrs is not None else self.variables
        marginal = self.marginal(attrs)
        return -sum(p * math.log2(p) for p in marginal.values() if p > 0)

    def conditional_entropy(
        self, target: Iterable[str], given: Iterable[str]
    ) -> float:
        """H(Y | X) = H(XY) - H(X)."""
        target = tuple(target)
        given = tuple(given)
        joint = tuple(dict.fromkeys(given + target))
        return self.entropy(joint) - self.entropy(given)

    def mutual_information(
        self, a: Iterable[str], b: Iterable[str]
    ) -> float:
        """I(A; B) = H(A) + H(B) - H(AB)."""
        a, b = tuple(a), tuple(b)
        joint = tuple(dict.fromkeys(a + b))
        return self.entropy(a) + self.entropy(b) - self.entropy(joint)

    def satisfies_fd(
        self, lhs: Iterable[str], rhs: Iterable[str], tolerance: float = 1e-9
    ) -> bool:
        """The fd-constraint H(XY) = H(X) (Sec. 2)."""
        return abs(self.conditional_entropy(rhs, lhs)) <= tolerance

    # ------------------------------------------------------------------
    def entropy_profile(self) -> dict[frozenset, float]:
        """H(X) for every subset of variables."""
        out: dict[frozenset, float] = {}
        for r in range(len(self.variables) + 1):
            for combo in itertools.combinations(self.variables, r):
                out[frozenset(combo)] = self.entropy(combo)
        return out

    def is_polymatroid_profile(self, tolerance: float = 1e-9) -> bool:
        """Every entropic vector satisfies the Shannon inequalities."""
        profile = self.entropy_profile()
        subsets = list(profile)
        for x in subsets:
            for y in subsets:
                if (
                    profile[x | y] + profile[x & y]
                    > profile[x] + profile[y] + tolerance
                ):
                    return False
                if x <= y and profile[x] > profile[y] + tolerance:
                    return False
        return abs(profile[frozenset()]) <= tolerance

    def on_lattice(self, lattice: Lattice) -> list[float]:
        """Entropy values indexed by a frozenset-labelled lattice."""
        values = []
        for el in lattice.elements:
            if not isinstance(el, frozenset):
                raise TypeError("frozenset-labelled lattice required")
            values.append(self.entropy(sorted(el)))
        return values


def section2_example() -> Distribution:
    """The five-outcome triangle distribution displayed in Sec. 2.

        x y z       with P = 1/5 each; H(xyz) = log2 5, and the displayed
        a 3 r       marginals: H(xy) <= log2 4 etc.
        a 2 q
        b 2 q
        d 3 r
        a 3 q
    """
    outcomes = [
        ("a", 3, "r"),
        ("a", 2, "q"),
        ("b", 2, "q"),
        ("d", 3, "r"),
        ("a", 3, "q"),
    ]
    return Distribution.uniform(("x", "y", "z"), outcomes)


def output_distribution(
    tuples: Iterable[tuple], variables: Sequence[str]
) -> Distribution:
    """The Sec. 2 construction: uniform over a query output."""
    return Distribution.uniform(variables, tuples)


def entropy_upper_bounds_output(
    tuples: list[tuple],
    variables: Sequence[str],
    atom_attrs: Mapping[str, Iterable[str]],
    sizes: Mapping[str, int],
    tolerance: float = 1e-9,
) -> bool:
    """Check the two GLVV premises on a concrete output: for each atom,
    H(vars(R_j)) <= log2 N_j, and H(all) = log2 |Q|."""
    dist = Distribution.uniform(variables, tuples)
    if abs(dist.entropy() - math.log2(len(set(map(tuple, tuples))))) > 1e-6:
        return False
    for name, attrs in atom_attrs.items():
        if dist.entropy(tuple(attrs)) > math.log2(sizes[name]) + tolerance:
            return False
    return True
