"""Chains, chain hypergraphs, and chain selection (Sec. 5.1).

A chain 0̂ = C_0 ≺ C_1 ≺ ... ≺ C_k = 1̂ (not necessarily maximal) induces a
*chain hypergraph* (Def. 5.1) whose fractional edge covers give the chain
bound (Thm. 5.3).  "Goodness" (Eq. (11)) is the condition letting
submodularity telescope along the chain (Prop. 5.2); Corollaries 5.9/5.11
construct chains whose hypergraph has no isolated vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence

from repro.lattice.lattice import Lattice
from repro.query.hypergraph import Hypergraph


@dataclass(frozen=True)
class Chain:
    """An ascending chain of lattice elements from bottom to top."""

    lattice: Lattice
    elements: tuple[int, ...]

    def __post_init__(self):
        lat = self.lattice
        els = self.elements
        if not els or els[0] != lat.bottom or els[-1] != lat.top:
            raise ValueError("chain must run from 0̂ to 1̂")
        for a, b in zip(els, els[1:]):
            if not lat.lt(a, b):
                raise ValueError("chain elements must strictly increase")

    def __len__(self) -> int:
        return len(self.elements) - 1  # number of steps

    def labels(self) -> list:
        return [self.lattice.label(i) for i in self.elements]

    def covers(self, x: int, i: int) -> bool:
        """Does element x cover step i?  x ∧ C_i != x ∧ C_{i-1}."""
        lat = self.lattice
        return lat.meet(x, self.elements[i]) != lat.meet(x, self.elements[i - 1])

    def covered_steps(self, x: int) -> list[int]:
        """e(x) = {i : x covers step i} (Lemma 5.13)."""
        return [i for i in range(1, len(self.elements)) if self.covers(x, i)]

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        def show(el) -> str:
            if isinstance(el, frozenset):
                return "".join(sorted(map(str, el))) or "∅"
            return str(el)

        return " ≺ ".join(show(l) for l in self.labels())


def is_good_for(chain: Chain, x: int) -> bool:
    """Goodness for a single element (Eq. (11)):
    i ∈ e_x  ⇒  C_{i-1} ∨ (x ∧ C_i) = C_i."""
    lat = chain.lattice
    for i in range(1, len(chain.elements)):
        if chain.covers(x, i):
            lifted = lat.join(
                chain.elements[i - 1], lat.meet(x, chain.elements[i])
            )
            if lifted != chain.elements[i]:
                return False
    return True


def is_good_chain(chain: Chain, inputs: Iterable[int]) -> bool:
    """Good for all the given input elements (Prop. 5.2: maximal chains
    always are)."""
    return all(is_good_for(chain, r) for r in inputs)


def is_good_for_all(chain: Chain) -> bool:
    """Good for every lattice element (hypothesis of Thm. 5.14)."""
    return all(is_good_for(chain, x) for x in range(chain.lattice.n))


def chain_hypergraph(chain: Chain, inputs: Mapping[str, int]) -> Hypergraph:
    """H_C (Def. 5.1): vertices are the steps 1..k, edge e_j lists the steps
    R_j covers."""
    steps = list(range(1, len(chain.elements)))
    edges = {name: chain.covered_steps(r) for name, r in inputs.items()}
    return Hypergraph(steps, edges)


def chain_bound(
    chain: Chain,
    inputs: Mapping[str, int],
    log_sizes: Mapping[str, float],
) -> tuple[float, dict[str, Fraction]]:
    """The chain bound for one chain: min Σ w_j n_j over fractional edge
    covers of H_C (Thm. 5.3).  Returns (log2 bound, weights); (inf, {}) when
    H_C has an isolated vertex (footnote 7)."""
    graph = chain_hypergraph(chain, inputs)
    if graph.isolated_vertices():
        return float("inf"), {}
    objective, weights = graph.fractional_edge_cover_number(log_sizes)
    return float(objective), weights


# ----------------------------------------------------------------------
# Chain construction
# ----------------------------------------------------------------------

def shearer_chain(lattice: Lattice, inputs: Iterable[int]) -> Chain:
    """Corollary 5.9: greedily join join-irreducibles below the inputs,
    always picking one whose join with the prefix is minimal.  The result is
    good for the inputs and its hypergraph has no isolated vertex."""
    inputs = list(inputs)
    candidates = [
        z
        for z in lattice.join_irreducibles
        if any(lattice.leq(z, r) for r in inputs)
    ]
    if lattice.join_all(candidates) != lattice.top:
        raise ValueError(
            "join-irreducibles below the inputs do not reach 1̂ "
            "(inputs must join to the top)"
        )
    chain = [lattice.bottom]
    used: set[int] = set()
    current = lattice.bottom
    while current != lattice.top:
        # Candidates strictly increasing the prefix.
        options = [
            (z, lattice.join(current, z))
            for z in candidates
            if z not in used and lattice.join(current, z) != current
        ]
        # Keep those with minimal join (no other option's join strictly below).
        minimal = [
            (z, join)
            for z, join in options
            if not any(
                lattice.lt(other_join, join) for _, other_join in options
            )
        ]
        z, join = minimal[0]
        used.add(z)
        chain.append(join)
        current = join
    return Chain(lattice, tuple(chain))


def dual_shearer_chain(lattice: Lattice, inputs: Iterable[int]) -> Chain:
    """Corollary 5.11: the dual construction over meet-irreducibles, working
    down from 1̂ and meeting in a meet-irreducible with maximal result.

    The paper states (without proof) that a suitable meet-irreducible
    sequence yields no isolated vertex; the greedy choice alone does not
    always achieve that, so uncovered steps are contracted away afterwards
    (removing an interior chain element merges two steps and can only grow
    coverage).
    """
    inputs = list(inputs)
    chain_down = [lattice.top]
    current = lattice.top
    used: set[int] = set()
    while current != lattice.bottom:
        options = [
            (x, lattice.meet(current, x))
            for x in lattice.meet_irreducibles
            if x not in used and lattice.meet(current, x) != current
        ]
        if not options:
            # Fall back: step down through any lower cover.
            nxt = lattice.lower_covers[current][0]
            chain_down.append(nxt)
            current = nxt
            continue
        maximal = [
            (x, met)
            for x, met in options
            if not any(lattice.lt(met, other) for _, other in options)
        ]
        x, met = maximal[0]
        used.add(x)
        chain_down.append(met)
        current = met
    elements = list(reversed(chain_down))
    # Contract uncovered steps: if no input covers step i, drop C_{i-1}
    # (never the bottom) or C_i, merging it into the neighbouring step.
    changed = True
    while changed and len(elements) > 2:
        changed = False
        chain = Chain(lattice, tuple(elements))
        for i in range(1, len(elements)):
            if not any(chain.covers(r, i) for r in inputs):
                # Drop the step's upper endpoint (lower when it is the top).
                victim = i if i < len(elements) - 1 else i - 1
                del elements[victim]
                changed = True
                break
    return Chain(lattice, tuple(elements))


def all_chains(lattice: Lattice, limit: int = 100_000) -> Iterator[Chain]:
    """All chains from 0̂ to 1̂ (any strictly increasing path, not only
    maximal).  Exponential — only for the paper's small lattices."""
    count = 0
    stack: list[list[int]] = [[lattice.bottom]]
    while stack:
        prefix = stack.pop()
        last = prefix[-1]
        if last == lattice.top:
            yield Chain(lattice, tuple(prefix))
            count += 1
            if count >= limit:
                return
            continue
        for nxt in range(lattice.n):
            if lattice.lt(last, nxt):
                stack.append(prefix + [nxt])


def all_maximal_chains(lattice: Lattice, limit: int | None = None) -> Iterator[Chain]:
    for indices in lattice.maximal_chains(limit=limit):
        yield Chain(lattice, tuple(indices))


def best_chain_bound(
    lattice: Lattice,
    inputs: Mapping[str, int],
    log_sizes: Mapping[str, float],
    include_non_maximal: bool = True,
) -> tuple[float, Chain | None, dict[str, Fraction]]:
    """min over good chains of the chain bound.

    Searches all chains (maximal and, per Ex. 5.10, non-maximal) that are
    good for the inputs; the paper's lattices are small enough for
    exhaustive search.  Returns (log2 bound, best chain, cover weights).

    This is the bound hierarchy's hottest loop (one edge-cover LP per good
    chain, E16 sweeps it per instance): distinct chains routinely induce
    the *same* chain hypergraph, so the cover solve is memoized on the
    hypergraph's step/edge signature — and the LPs themselves are small
    enough that ``solve_lp`` routes them to the exact rational backend,
    never touching scipy.
    """
    best = (float("inf"), None, {})
    solved: dict[tuple, tuple[float, dict[str, Fraction]]] = {}
    source = all_chains(lattice) if include_non_maximal else all_maximal_chains(lattice)
    for chain in source:
        if not is_good_chain(chain, inputs.values()):
            continue
        signature = (
            len(chain),
            tuple(
                (name, tuple(chain.covered_steps(r)))
                for name, r in inputs.items()
            ),
        )
        cached = solved.get(signature)
        if cached is None:
            cached = solved[signature] = chain_bound(chain, inputs, log_sizes)
        value, weights = cached
        if value < best[0]:
            best = (value, chain, weights)
    return best


def condition_15_holds(chain: Chain) -> bool:
    """Theorem 5.14's tightness condition: the chain is good for every
    lattice element and e(X ∨ Y) ⊆ e(X) ∪ e(Y) for all X, Y."""
    if not is_good_for_all(chain):
        return False
    lat = chain.lattice
    step_sets = [set(chain.covered_steps(x)) for x in range(lat.n)]
    for x in range(lat.n):
        for y in range(x + 1, lat.n):
            if not step_sets[lat.join(x, y)] <= step_sets[x] | step_sets[y]:
                return False
    return True


def chain_tight_polymatroid(
    chain: Chain, h_star: "Sequence[Fraction]"
) -> list[Fraction]:
    """The modular polymatroid u of Thm. 5.14's proof:
    u(X) = Σ_{i ∈ e(X)} (h*(C_i) - h*(C_{i-1})).  When condition (15) holds,
    u is optimal and materializable by a product instance."""
    lat = chain.lattice
    deltas = {
        i: Fraction(h_star[chain.elements[i]]) - Fraction(h_star[chain.elements[i - 1]])
        for i in range(1, len(chain.elements))
    }
    return [
        sum((deltas[i] for i in chain.covered_steps(x)), start=Fraction(0))
        for x in range(lat.n)
    ]
