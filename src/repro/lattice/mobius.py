"""Möbius function and Möbius inversion on a finite lattice (Sec. 4, Eq. (10)).

For a lattice function ``h``, the *CMI* (conditional mutual information,
up to sign) is the Möbius inverse ``g`` with ``h(X) = Σ_{Y >= X} g(Y)``.
Normality of polymatroids (Lemma 4.2) is a sign condition on ``g``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.lattice.lattice import Lattice


def mobius_function(lattice: Lattice) -> dict[tuple[int, int], Fraction]:
    """The Möbius function μ(X, Y) for all pairs X <= Y.

    Defined by μ(X, X) = 1 and μ(X, Y) = -Σ_{X <= Z < Y} μ(X, Z).
    """
    mu: dict[tuple[int, int], Fraction] = {}
    for x in range(lattice.n):
        above = sorted(lattice.upset(x), key=lambda i: len(lattice.downset(i)))
        for y in above:
            if x == y:
                mu[(x, y)] = Fraction(1)
            else:
                mu[(x, y)] = -sum(
                    mu[(x, z)]
                    for z in above
                    if lattice.leq(z, y) and z != y and (x, z) in mu
                )
    return mu


def mobius_inverse_upper(
    lattice: Lattice, values: Sequence[Fraction]
) -> list[Fraction]:
    """Möbius inversion from above: the unique ``g`` with
    ``h(X) = Σ_{Y: X <= Y} g(Y)`` (Eq. (10)).

    Computed directly by descending from the top: for each X (processed in
    order of decreasing up-set size... i.e. from the top down),
    ``g(X) = h(X) - Σ_{Y > X} g(Y)``.
    """
    g: list[Fraction] = [Fraction(0)] * lattice.n
    # Process elements from the top down (fewest elements above first).
    order = sorted(range(lattice.n), key=lambda i: len(lattice.upset(i)))
    for x in order:
        above = [y for y in lattice.upset(x) if y != x]
        g[x] = Fraction(values[x]) - sum(g[y] for y in above)
    return g


def mobius_expand_upper(
    lattice: Lattice, g: Sequence[Fraction]
) -> list[Fraction]:
    """Inverse of :func:`mobius_inverse_upper`: h(X) = Σ_{Y >= X} g(Y)."""
    return [
        sum((Fraction(g[y]) for y in lattice.upset(x)), start=Fraction(0))
        for x in range(lattice.n)
    ]
