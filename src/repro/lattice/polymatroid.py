"""Polymatroids and normal polymatroids on a lattice (Secs. 3.3 and 4).

A :class:`LatticeFunction` wraps a lattice and one value per element.  It
implements every functional notion the paper needs:

* L-submodularity / L-monotonicity / polymatroid checks (LLP feasibility),
* Lovász monotonization (Prop. B.1),
* Möbius inverse ``g`` (the CMI of Sec. 4),
* normality / strict normality (Lemma 4.2) and the decomposition of a
  normal polymatroid into non-negative combinations of step functions,
* modularity check (Lemma 4.2's distributive case).

Values are kept as exact ``Fraction``s.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.lattice.lattice import Lattice
from repro.lattice.mobius import mobius_expand_upper, mobius_inverse_upper
from repro.util.rational import as_fraction


class LatticeFunction:
    """A function h : L -> Q, h(0̂) normalized to 0 by the paper's programs."""

    def __init__(self, lattice: Lattice, values: Sequence):
        if len(values) != lattice.n:
            raise ValueError("one value per lattice element required")
        self.lattice = lattice
        self.values: list[Fraction] = [as_fraction(v) for v in values]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, lattice: Lattice, mapping: Mapping) -> "LatticeFunction":
        """Build from a {label: value} mapping (missing labels default to 0)."""
        values = [as_fraction(mapping.get(el, 0)) for el in lattice.elements]
        return cls(lattice, values)

    @classmethod
    def zero(cls, lattice: Lattice) -> "LatticeFunction":
        return cls(lattice, [Fraction(0)] * lattice.n)

    def __call__(self, i: int) -> Fraction:
        return self.values[i]

    def at(self, label) -> Fraction:
        return self.values[self.lattice.index(label)]

    # ------------------------------------------------------------------
    # Shannon-type properties on the lattice
    # ------------------------------------------------------------------
    def is_nonnegative(self) -> bool:
        return all(v >= 0 for v in self.values)

    def is_zero_at_bottom(self) -> bool:
        return self.values[self.lattice.bottom] == 0

    def is_monotone(self) -> bool:
        lat = self.lattice
        return all(
            self.values[i] <= self.values[j]
            for i in range(lat.n)
            for j in lat.upset(i)
        )

    def is_submodular(self) -> bool:
        """h(X∧Y) + h(X∨Y) <= h(X) + h(Y) for all incomparable X, Y
        (first constraint block of the LLP (5))."""
        lat = self.lattice
        for i, j in lat.incomparable_pairs:
            lhs = self.values[lat.meet(i, j)] + self.values[lat.join(i, j)]
            if lhs > self.values[i] + self.values[j]:
                return False
        return True

    def is_modular(self) -> bool:
        """Equality version of submodularity (normal h on distributive L,
        Lemma 4.2)."""
        lat = self.lattice
        return all(
            self.values[lat.meet(i, j)] + self.values[lat.join(i, j)]
            == self.values[i] + self.values[j]
            for i, j in lat.incomparable_pairs
        )

    def is_polymatroid(self) -> bool:
        return (
            self.is_nonnegative()
            and self.is_zero_at_bottom()
            and self.is_monotone()
            and self.is_submodular()
        )

    def submodularity_violations(self) -> list[tuple[int, int, Fraction]]:
        """All violated incomparable pairs with the violation amount."""
        lat = self.lattice
        out = []
        for i, j in lat.incomparable_pairs:
            gap = (
                self.values[lat.meet(i, j)]
                + self.values[lat.join(i, j)]
                - self.values[i]
                - self.values[j]
            )
            if gap > 0:
                out.append((i, j, gap))
        return out

    # ------------------------------------------------------------------
    # Lovász monotonization (Prop. B.1 / Sec. 3.3)
    # ------------------------------------------------------------------
    def lovasz_monotonization(self) -> "LatticeFunction":
        """h̄(X) = min_{Y >= X} h(Y), h̄(0̂) = 0.

        If h is non-negative L-submodular, h̄ is an L-polymatroid with
        h̄(1̂) = h(1̂) and h̄ <= h.
        """
        lat = self.lattice
        values = []
        for i in range(lat.n):
            if i == lat.bottom:
                values.append(Fraction(0))
            else:
                values.append(min(self.values[y] for y in lat.upset(i)))
        return LatticeFunction(lat, values)

    # ------------------------------------------------------------------
    # Möbius / normality (Sec. 4)
    # ------------------------------------------------------------------
    def cmi(self) -> list[Fraction]:
        """The Möbius inverse g with h(X) = Σ_{Y >= X} g(Y) (Eq. (10)).

        For entropic h on a Boolean algebra, -g(X) is the multivariate
        conditional mutual information I(1̂ - X | X).
        """
        return mobius_inverse_upper(self.lattice, self.values)

    def is_normal(self) -> bool:
        """Normal submodular function (Lemma 4.2): g(Z) <= 0 for Z < 1̂ and
        g(1̂) = -Σ_{Z<1̂} g(Z), i.e. h(0̂) = 0."""
        g = self.cmi()
        lat = self.lattice
        if any(g[z] > 0 for z in range(lat.n) if z != lat.top):
            return False
        return self.values[lat.bottom] == 0

    def is_strictly_normal(self) -> bool:
        """Normal, and g vanishes strictly below 1̂ except on co-atoms."""
        if not self.is_normal():
            return False
        g = self.cmi()
        lat = self.lattice
        coatoms = set(lat.coatoms)
        return all(
            g[z] == 0
            for z in range(lat.n)
            if z != lat.top and z not in coatoms
        )

    def normal_decomposition(self) -> dict[int, Fraction]:
        """Write a normal h as Σ_Z a_Z · (step function at Z) with a_Z >= 0.

        Returns {Z: a_Z} with a_Z = -g(Z) for Z != 1̂ (Sec. 4, "Normal
        polymatroids are precisely non-negative linear combinations of step
        functions").  Raises if h is not normal.
        """
        if not self.is_normal():
            raise ValueError("function is not normal")
        g = self.cmi()
        lat = self.lattice
        return {
            z: -g[z] for z in range(lat.n) if z != lat.top and g[z] != 0
        }

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "LatticeFunction") -> "LatticeFunction":
        self._check_same_lattice(other)
        return LatticeFunction(
            self.lattice, [a + b for a, b in zip(self.values, other.values)]
        )

    def scale(self, factor) -> "LatticeFunction":
        factor = as_fraction(factor)
        return LatticeFunction(self.lattice, [factor * v for v in self.values])

    def restrict_leq(self, other: "LatticeFunction") -> bool:
        """Pointwise h <= other."""
        self._check_same_lattice(other)
        return all(a <= b for a, b in zip(self.values, other.values))

    def _check_same_lattice(self, other: "LatticeFunction") -> None:
        if other.lattice is not self.lattice:
            raise ValueError("functions live on different lattices")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LatticeFunction)
            and other.lattice is self.lattice
            and other.values == self.values
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        pairs = ", ".join(
            f"{el}={v}" for el, v in zip(self.lattice.elements, self.values)
        )
        return f"LatticeFunction({pairs})"


def step_function(lattice: Lattice, z: int) -> LatticeFunction:
    """The step function h_Z: h_Z(X) = 1 if X ≰ Z else 0 (Sec. 4).

    Every step function is a normal polymatroid; its Möbius inverse is
    g(1̂) = 1, g(Z) = -1, 0 elsewhere.
    """
    values = [
        Fraction(0) if lattice.leq(x, z) else Fraction(1) for x in range(lattice.n)
    ]
    return LatticeFunction(lattice, values)


def modular_from_vertex_weights(
    lattice: Lattice, weights: Mapping[int, Fraction]
) -> LatticeFunction:
    """For a Boolean-algebra-like FD lattice: h(X) = Σ_{join-irreducible z <= X} w_z.

    Implements Eq. (6): lifting a fractional vertex packing to an LLP
    solution.  ``weights`` maps join-irreducible element index -> weight.
    """
    values = []
    for x in range(lattice.n):
        total = sum(
            (as_fraction(weights.get(z, 0)) for z in lattice.join_irreducibles_below(x)),
            start=Fraction(0),
        )
        values.append(total)
    return LatticeFunction(lattice, values)


def entropy_of_instance(
    lattice: Lattice, tuples: Iterable[tuple], variables: Sequence[str]
) -> LatticeFunction:
    """h_D for a *uniform* database instance D over the lattice's variables.

    ``tuples`` is a relation over ``variables`` (the join-irreducibles'
    underlying variable names, in order); the entropy of element X is
    log2 of the number of distinct projections onto X's variables — exact
    for uniform distributions on the tuple set, which is the worst-case
    construction the paper uses (Sec. 3.2).

    Returned values are floats wrapped in Fractions (log2 counts are
    irrational in general); use :func:`counting_function` for exact counts.
    """
    import math

    counts = counting_function(lattice, tuples, variables)
    values = [Fraction(math.log2(c)) if c > 0 else Fraction(0) for c in counts]
    return LatticeFunction(lattice, values)


def counting_function(
    lattice: Lattice, tuples: Iterable[tuple], variables: Sequence[str]
) -> list[int]:
    """|Π_X(D)| for every lattice element X (labels must be frozensets)."""
    tuple_list = list(tuples)
    var_pos = {v: k for k, v in enumerate(variables)}
    counts = []
    for el in lattice.elements:
        if not isinstance(el, frozenset):
            raise TypeError("counting_function requires frozenset-labelled lattices")
        positions = sorted(var_pos[v] for v in el)
        projected = {tuple(t[p] for p in positions) for t in tuple_list}
        counts.append(len(projected))
    return counts
