"""ASCII rendering of lattices (Hasse diagrams) and lattice functions.

Used by the examples and by error messages; kept dependency-free.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.lattice.lattice import Lattice


def element_text(lattice: Lattice, i: int) -> str:
    label = lattice.label(i)
    if isinstance(label, frozenset):
        return "".join(sorted(map(str, label))) or "∅"
    return str(label)


def ranks(lattice: Lattice) -> list[int]:
    """Longest-chain-from-bottom rank of every element."""
    rank = [0] * lattice.n
    order = sorted(range(lattice.n), key=lambda i: len(lattice.downset(i)))
    for i in order:
        for j in lattice.upper_covers[i]:
            rank[j] = max(rank[j], rank[i] + 1)
    return rank


def hasse_ascii(
    lattice: Lattice,
    annotate: Callable[[int], str] | None = None,
) -> str:
    """Level-by-level rendering, top first.

    ``annotate(i)`` appends per-element text (e.g. polymatroid values).
    """
    rank = ranks(lattice)
    levels: dict[int, list[str]] = {}
    for i in range(lattice.n):
        text = element_text(lattice, i)
        if annotate is not None:
            text += f"={annotate(i)}"
        levels.setdefault(rank[i], []).append(text)
    lines = []
    for r in sorted(levels, reverse=True):
        lines.append("  " + "   ".join(sorted(levels[r])))
    return "\n".join(lines)


def function_table(
    lattice: Lattice, values: Sequence, title: str = "h"
) -> str:
    """Two-column table of a lattice function, bottom-up."""
    order = sorted(range(lattice.n), key=lambda i: len(lattice.downset(i)))
    width = max(len(element_text(lattice, i)) for i in order)
    lines = [f"{'element'.ljust(width)}  {title}"]
    for i in order:
        lines.append(f"{element_text(lattice, i).ljust(width)}  {values[i]}")
    return "\n".join(lines)


def cover_edges(lattice: Lattice) -> list[tuple[str, str]]:
    """The Hasse diagram as (lower, upper) label pairs."""
    return [
        (element_text(lattice, i), element_text(lattice, j))
        for i in range(lattice.n)
        for j in lattice.upper_covers[i]
    ]
