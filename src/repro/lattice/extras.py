"""Lattice constructions and comparisons used by the paper's proofs.

* :func:`order_ideal_lattice` — the distributive lattice of order ideals
  of a poset (Prop. 3.2: simple-FD lattices arise this way; Birkhoff).
* :func:`poset_of_simple_fds` — the DAG/poset construction inside the
  Prop. 3.2 proof.
* :func:`lattice_product` — direct products (closed under distributivity
  and normality).
* :func:`are_isomorphic` — backtracking isomorphism for the small lattices
  here, used to validate the hand-built figures against the generic
  constructions.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.fds.fd import FDSet
from repro.lattice.lattice import Lattice


def order_ideal_lattice(
    elements: Sequence[Hashable], leq_pairs: Iterable[tuple[Hashable, Hashable]]
) -> Lattice:
    """The lattice of order ideals (down-closed sets) of a finite poset,
    ordered by inclusion — always distributive (Birkhoff)."""
    elements = list(dict.fromkeys(elements))
    index = {e: i for i, e in enumerate(elements)}
    n = len(elements)
    leq = np.eye(n, dtype=bool)
    for a, b in leq_pairs:
        leq[index[a], index[b]] = True
    for k in range(n):
        leq |= np.outer(leq[:, k], leq[k, :])
    ideals: set[frozenset] = set()
    for subset_bits in range(1 << n):
        subset = frozenset(
            elements[i] for i in range(n) if subset_bits >> i & 1
        )
        if all(
            elements[j] in subset
            for i in range(n)
            if elements[i] in subset
            for j in range(n)
            if leq[j, i]
        ):
            ideals.add(subset)
    return Lattice.from_closed_sets(ideals)


def poset_of_simple_fds(fds: FDSet) -> tuple[list[frozenset], list[tuple]]:
    """Prop. 3.2's construction: collapse strongly connected components of
    the simple-fd digraph; return (SCCs, leq pairs with a <= b iff a is
    reachable FROM b, i.e. b determines a)."""
    if not fds.all_simple:
        raise ValueError("construction requires simple fds")
    variables = sorted(fds.variables)
    edges = {
        (next(iter(fd.lhs)), next(iter(fd.rhs))) for fd in fds
    }
    # Reachability closure.
    reach = {v: {v} for v in variables}
    changed = True
    while changed:
        changed = False
        for a, b in edges:
            new = reach[b] - reach[a]
            if new:
                reach[a] |= new
                changed = True
    # SCCs: mutual reachability.
    sccs: list[frozenset] = []
    seen: set[str] = set()
    for v in variables:
        if v in seen:
            continue
        scc = frozenset(
            w for w in variables if w in reach[v] and v in reach[w]
        )
        sccs.append(scc)
        seen |= scc
    leq_pairs = []
    for a in sccs:
        for b in sccs:
            if a != b and next(iter(a)) in reach[next(iter(b))]:
                # b determines a: a below b in the ideal order.
                leq_pairs.append((a, b))
    return sccs, leq_pairs


def simple_fd_lattice_via_ideals(fds: FDSet) -> Lattice:
    """The Prop. 3.2 route to the FD lattice for simple fds: the order
    ideal lattice of the collapsed determination poset.  Isomorphic to
    ``lattice_from_fds(fds)``."""
    sccs, leq_pairs = poset_of_simple_fds(fds)
    return order_ideal_lattice(sccs, leq_pairs)


def lattice_product(a: Lattice, b: Lattice) -> Lattice:
    """The direct product lattice with componentwise order."""
    elements = [
        (a.label(i), b.label(j)) for i in range(a.n) for j in range(b.n)
    ]
    n = len(elements)
    leq = np.zeros((n, n), dtype=bool)
    for p, (ai, bi) in enumerate(
        itertools.product(range(a.n), range(b.n))
    ):
        for q, (aj, bj) in enumerate(
            itertools.product(range(a.n), range(b.n))
        ):
            leq[p, q] = a.leq(ai, aj) and b.leq(bi, bj)
    return Lattice(elements, leq)


def _invariant(lattice: Lattice, i: int) -> tuple:
    return (
        len(lattice.downset(i)),
        len(lattice.upset(i)),
        len(lattice.upper_covers[i]),
        len(lattice.lower_covers[i]),
    )


def are_isomorphic(a: Lattice, b: Lattice) -> bool:
    """Backtracking lattice isomorphism (adequate for |L| <= ~20)."""
    if a.n != b.n:
        return False
    inv_a = [_invariant(a, i) for i in range(a.n)]
    inv_b = [_invariant(b, i) for i in range(b.n)]
    if sorted(inv_a) != sorted(inv_b):
        return False
    candidates = [
        [j for j in range(b.n) if inv_b[j] == inv_a[i]] for i in range(a.n)
    ]
    order = sorted(range(a.n), key=lambda i: len(candidates[i]))
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def backtrack(k: int) -> bool:
        if k == a.n:
            return True
        i = order[k]
        for j in candidates[i]:
            if j in used:
                continue
            ok = all(
                a.leq(i, i2) == b.leq(j, j2) and a.leq(i2, i) == b.leq(j2, j)
                for i2, j2 in mapping.items()
            )
            if not ok:
                continue
            mapping[i] = j
            used.add(j)
            if backtrack(k + 1):
                return True
            del mapping[i]
            used.discard(j)
        return False

    return backtrack(0)


def dual_lattice(lattice: Lattice) -> Lattice:
    """The order dual: leq_dual[i, j] = leq[j, i]."""
    leq_dual = np.asarray(
        [
            [lattice.leq(j, i) for j in range(lattice.n)]
            for i in range(lattice.n)
        ]
    )
    return Lattice([("d", e) for e in lattice.elements], leq_dual)


def self_dual(lattice: Lattice) -> bool:
    """Is L isomorphic to its order dual?  (M3, N5 and Booleans are.)"""
    return are_isomorphic(lattice, dual_lattice(lattice))
