"""Lattice substrate: finite lattices, polymatroids, embeddings, chains.

This package implements Sec. 3-4 of the paper: the lattice of FD-closed
attribute sets, polymatroids and normal polymatroids on lattices, lattice
embeddings / quasi-product instances, and chains with their hypergraphs.
"""

from repro.lattice.lattice import Lattice
from repro.lattice.builders import (
    lattice_from_fds,
    lattice_from_query,
    boolean_algebra,
    m3,
    n5,
    diamond,
    pentagon,
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig7_lattice,
    fig8_lattice,
    fig9_lattice,
    named_lattices,
)
from repro.lattice.polymatroid import LatticeFunction, step_function
from repro.lattice.properties import (
    is_distributive,
    is_modular,
    has_m3_with_top,
    coatomic_hypergraph,
    atomic_hypergraph,
    is_normal_lattice,
    output_inequality_holds,
)
from repro.lattice.embedding import (
    Embedding,
    canonical_embedding,
    quasi_product_instance,
    is_embedding,
)
from repro.lattice.entropy import Distribution, section2_example
from repro.lattice.extras import (
    are_isomorphic,
    dual_lattice,
    lattice_product,
    order_ideal_lattice,
    self_dual,
    simple_fd_lattice_via_ideals,
)
from repro.lattice.draw import hasse_ascii, function_table
from repro.lattice.chains import (
    Chain,
    chain_hypergraph,
    is_good_chain,
    shearer_chain,
    dual_shearer_chain,
    all_maximal_chains,
    best_chain_bound,
    condition_15_holds,
)

__all__ = [
    "Lattice",
    "lattice_from_fds",
    "lattice_from_query",
    "boolean_algebra",
    "m3",
    "n5",
    "diamond",
    "pentagon",
    "fig1_lattice",
    "fig4_lattice",
    "fig5_lattice",
    "fig7_lattice",
    "fig8_lattice",
    "fig9_lattice",
    "named_lattices",
    "LatticeFunction",
    "step_function",
    "is_distributive",
    "is_modular",
    "has_m3_with_top",
    "coatomic_hypergraph",
    "atomic_hypergraph",
    "is_normal_lattice",
    "output_inequality_holds",
    "Embedding",
    "canonical_embedding",
    "quasi_product_instance",
    "is_embedding",
    "Chain",
    "chain_hypergraph",
    "is_good_chain",
    "shearer_chain",
    "dual_shearer_chain",
    "all_maximal_chains",
    "best_chain_bound",
    "condition_15_holds",
    "Distribution",
    "section2_example",
    "are_isomorphic",
    "dual_lattice",
    "lattice_product",
    "order_ideal_lattice",
    "self_dual",
    "simple_fd_lattice_via_ideals",
    "hasse_ascii",
    "function_table",
]
