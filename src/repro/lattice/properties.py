"""Lattice properties: distributivity, modularity, normality (Secs. 3-4).

The normality test implements Theorem 4.9 item 3 literally: a lattice is
normal w.r.t. inputs R iff every fractional edge cover of the co-atomic
hypergraph (Def. 4.7) yields a valid output inequality (7) — and it
suffices to check the vertices of the cover polytope, which we enumerate
exactly.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Mapping

from repro.lattice.lattice import Lattice
from repro.query.hypergraph import Hypergraph


def is_distributive(lattice: Lattice) -> bool:
    """x ∧ (y ∨ z) == (x ∧ y) ∨ (x ∧ z) for all triples."""
    n = lattice.n
    for x, y, z in itertools.product(range(n), repeat=3):
        lhs = lattice.meet(x, lattice.join(y, z))
        rhs = lattice.join(lattice.meet(x, y), lattice.meet(x, z))
        if lhs != rhs:
            return False
    return True


def is_modular(lattice: Lattice) -> bool:
    """x <= z implies x ∨ (y ∧ z) == (x ∨ y) ∧ z."""
    n = lattice.n
    for x, y, z in itertools.product(range(n), repeat=3):
        if lattice.leq(x, z):
            lhs = lattice.join(x, lattice.meet(y, z))
            rhs = lattice.meet(lattice.join(x, y), z)
            if lhs != rhs:
                return False
    return True


def has_m3_with_top(lattice: Lattice) -> bool:
    """True when L contains an M3 sublattice whose top is max L.

    Prop. 4.10: such lattices are not normal w.r.t. the M3 midpoints (the
    paper conjectures this is exactly the non-normal class).
    """
    return any(
        top == lattice.top for (_, _, _, _, top) in lattice.sublattices_isomorphic_to_m3()
    )


def coatomic_hypergraph(
    lattice: Lattice, inputs: Mapping[str, int]
) -> Hypergraph:
    """H_co (Def. 4.7): nodes are co-atoms, edge e_j = {Z co-atom : R_j ≰ Z}."""
    coatoms = lattice.coatoms
    edges = {
        name: [z for z in coatoms if not lattice.leq(r, z)]
        for name, r in inputs.items()
    }
    return Hypergraph(coatoms, edges)


def atomic_hypergraph(lattice: Lattice, inputs: Mapping[str, int]) -> Hypergraph:
    """The atomic hypergraph: nodes are atoms, edge e_j = {a atom : a <= R_j}.

    In a Boolean algebra it is isomorphic to H_co; in general it carries no
    useful guarantees (Sec. 4.2) — included for the Fig. 2 reproduction.
    """
    atoms = lattice.atoms
    edges = {
        name: [a for a in atoms if lattice.leq(a, r)] for name, r in inputs.items()
    }
    return Hypergraph(atoms, edges)


def output_inequality_holds(
    lattice: Lattice,
    weights: Mapping[str, Fraction],
    inputs: Mapping[str, int],
    tolerance: float = 1e-7,
) -> bool:
    """Does Σ_j w_j h(R_j) >= h(1̂) hold for every non-negative submodular h?

    Lemma 3.9: equivalent over polymatroids and over non-negative submodular
    functions, and equivalent to dual-LLP feasibility.  We test the cone
    directly: maximize h(1̂) - Σ w_j h(R_j) over the submodular cone
    intersected with the box h <= 1; the inequality holds iff the optimum
    is 0 (the cone is scale-invariant, so a positive optimum in the box
    certifies failure).

    Solved on the exact rational backend with the *exact* weights — a
    float roundtrip of e.g. ``Fraction(1, 3)`` perturbs the cone optimum
    by ~1e-16, which a float tolerance must then paper over (and which a
    tolerance can conflate with a genuinely failing inequality).  The
    decision is exact; ``tolerance`` is kept for API compatibility but
    unused.
    """
    from repro.lp.exact import solve_exact_lp

    n = lattice.n
    zero = Fraction(0)
    costs = [zero] * n
    costs[lattice.top] -= 1  # minimize -(h(1̂) - Σ w_j h(R_j))
    for name, w in weights.items():
        costs[inputs[name]] += Fraction(w)
    a_ub: list[list[int]] = []
    b_ub: list[int] = []
    for i, j in lattice.incomparable_pairs:
        row = [0] * n
        row[lattice.meet(i, j)] += 1
        row[lattice.join(i, j)] += 1
        row[i] -= 1
        row[j] -= 1
        a_ub.append(row)
        b_ub.append(0)
    # Box to keep the cone LP bounded.
    for i in range(n):
        row = [0] * n
        row[i] = 1
        a_ub.append(row)
        b_ub.append(1)
    # Pin h(0̂) = 0.
    eq_row = [0] * n
    eq_row[lattice.bottom] = 1
    certificate = solve_exact_lp(costs, a_ub, b_ub, a_eq=[eq_row], b_eq=[0])
    return -certificate.objective <= 0


def is_normal_lattice(
    lattice: Lattice,
    inputs: Mapping[str, int] | None = None,
    max_dimension: int = 10,
) -> bool:
    """Is L normal w.r.t. the inputs R (Thm. 4.9)?

    With ``inputs=None``, tests normality w.r.t. *every* antichain of
    inputs whose join is 1̂ — the unconditional "normal lattice" notion.
    That brute force is exponential in |L|; it is intended for the small
    paper lattices only.
    """
    if inputs is not None:
        hco = coatomic_hypergraph(lattice, inputs)
        if hco.isolated_vertices():
            # A co-atom above every input: no finite cover; the only
            # inequalities are vacuous, so normality holds trivially.
            return True
        for cover in hco.edge_cover_vertices(max_dimension=max_dimension):
            if not output_inequality_holds(lattice, cover, inputs):
                return False
        return True
    # Unconditional: try all input sets (antichains not required; extra
    # sets only add inequalities that are implied).
    candidates = [i for i in range(lattice.n) if i != lattice.bottom]
    for size in range(1, min(len(candidates), 5) + 1):
        for combo in itertools.combinations(candidates, size):
            if lattice.join_all(combo) != lattice.top:
                continue
            named = {f"R{k}": el for k, el in enumerate(combo)}
            if not is_normal_lattice(lattice, named, max_dimension=max_dimension):
                return False
    return True
