"""Lattice embeddings and quasi-product instances (Secs. 3.4 and 4.1).

An embedding f : L -> L' preserves all joins and the top; pulling a product
instance back through an embedding into a Boolean algebra yields a
*quasi-product* instance (Def. 3.7).  Lemma 4.5: integral normal
polymatroids are exactly the entropy functions of quasi-product instances;
the construction goes through the *canonical embedding* (Def. 4.4), which
is also the paper's bridge to GLVV colorings (Sec. 4.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.lattice.lattice import Lattice
from repro.lattice.polymatroid import LatticeFunction


@dataclass
class Embedding:
    """A join-preserving map between two lattices, stored index-to-index."""

    source: Lattice
    target: Lattice
    mapping: tuple[int, ...]

    def __call__(self, i: int) -> int:
        return self.mapping[i]

    def pull_back(self, h_target: LatticeFunction) -> LatticeFunction:
        """h = h' ∘ f; submodular when h' is (Sec. 3.4), normal when h' is
        normal (Lemma 4.3)."""
        values = [h_target.values[self.mapping[i]] for i in range(self.source.n)]
        return LatticeFunction(self.source, values)


def is_embedding(source: Lattice, target: Lattice, mapping: Sequence[int]) -> bool:
    """Check f(∨X) = ∨f(X) for all X ⊆ L and f(1̂) = 1̂'.

    Join-preservation for all subsets follows from preservation on pairs
    plus f(0̂) = 0̂' (the empty join), so we check exactly that.
    """
    if len(mapping) != source.n:
        return False
    if mapping[source.top] != target.top:
        return False
    if mapping[source.bottom] != target.bottom:
        return False
    for i in range(source.n):
        for j in range(i + 1, source.n):
            if mapping[source.join(i, j)] != target.join(mapping[i], mapping[j]):
                return False
    return True


@dataclass
class CanonicalColoring:
    """The canonical embedding of an integral normal polymatroid (Def. 4.4).

    ``colors[i]`` is f(X_i) ⊆ C for lattice element i; a GLVV coloring in
    the sense of Sec. 4.3 assigns each variable x the color set of its
    join-irreducible x⁺.
    """

    lattice: Lattice
    colors: list[frozenset]
    all_colors: frozenset

    def color_count(self, i: int) -> int:
        return len(self.colors[i])


def canonical_embedding(h: LatticeFunction) -> CanonicalColoring:
    """Build the canonical color assignment for an integral normal h.

    For every Z != 1̂ with CMI g(Z) < 0 create |g(Z)| fresh colors C(Z);
    then f(X) = ⋃ {C(Z) : X ≰ Z}, so |f(X)| = h(X).
    """
    lattice = h.lattice
    decomposition = h.normal_decomposition()  # {Z: a_Z}, raises if not normal
    color_sets: dict[int, list[tuple[int, int]]] = {}
    for z, a_z in decomposition.items():
        if a_z != int(a_z):
            raise ValueError(
                "canonical embedding requires an integral polymatroid; "
                f"coefficient a_{lattice.label(z)!r} = {a_z}"
            )
        color_sets[z] = [(z, k) for k in range(int(a_z))]
    all_colors = frozenset(c for cs in color_sets.values() for c in cs)
    colors: list[frozenset] = []
    for x in range(lattice.n):
        fx = frozenset(
            c
            for z, cs in color_sets.items()
            for c in cs
            if not lattice.leq(x, z)
        )
        colors.append(fx)
    # Sanity: |f(X)| must equal h(X) for all X.
    for x in range(lattice.n):
        if len(colors[x]) != h.values[x]:
            raise AssertionError(
                f"canonical embedding inconsistent at {lattice.label(x)!r}: "
                f"{len(colors[x])} colors vs h = {h.values[x]}"
            )
    return CanonicalColoring(lattice, colors, all_colors)


def variable_join_irreducible(lattice: Lattice, variable: str) -> int:
    """x⁺ = the smallest closed set containing x (a join-irreducible, Sec. 3.1).

    Requires a frozenset-labelled (FD) lattice.
    """
    containing = [
        i
        for i, el in enumerate(lattice.elements)
        if isinstance(el, frozenset) and variable in el
    ]
    if not containing:
        raise KeyError(f"variable {variable!r} not in the lattice universe")
    return lattice.meet_all(containing)


def quasi_product_instance(
    h: LatticeFunction,
    variables: Sequence[str] | None = None,
    base: int = 2,
    var_to_ji: Mapping[str, int] | None = None,
) -> tuple[tuple[str, ...], list[tuple]]:
    """Materialize an integral normal polymatroid as a quasi-product instance.

    Returns ``(variables, tuples)`` with |Π_X(D)| = base^{h(X)} for every
    lattice element X (Lemma 4.5: pulling back the product instance
    [base]^C through the canonical embedding).  Each variable's value is the
    tuple of its colors' coordinates.

    For FD lattices (frozenset labels) variables default to the top label's
    members; for abstract lattices pass ``var_to_ji`` mapping variable name
    -> join-irreducible element index.

    The instance has base^{h(1̂)} tuples — callers control the blow-up via
    ``base``.
    """
    lattice = h.lattice
    coloring = canonical_embedding(h)
    if var_to_ji is not None:
        variables = tuple(var_to_ji) if variables is None else tuple(variables)
        var_colors = {
            v: sorted(coloring.colors[var_to_ji[v]]) for v in variables
        }
    else:
        if variables is None:
            top_label = lattice.label(lattice.top)
            if not isinstance(top_label, frozenset):
                raise ValueError(
                    "provide var_to_ji (or variable names) for abstract lattices"
                )
            variables = tuple(sorted(top_label))
        var_colors = {
            v: sorted(coloring.colors[variable_join_irreducible(lattice, v)])
            for v in variables
        }
    color_order = sorted(coloring.all_colors)
    tuples: list[tuple] = []
    for assignment in itertools.product(range(base), repeat=len(color_order)):
        value_of = dict(zip(color_order, assignment))
        tuples.append(
            tuple(
                tuple(value_of[c] for c in var_colors[v]) for v in variables
            )
        )
    # Deduplicate (distinct color assignments can collide on the projection
    # to the used colors when some color supports no variable).
    tuples = list(dict.fromkeys(tuples))
    return tuple(variables), tuples


def entropy_matches(
    h: LatticeFunction,
    variables: Sequence[str],
    tuples: list[tuple],
    base: int = 2,
) -> bool:
    """Verify |Π_X(D)| = base^{h(X)} for all X — the materialization check."""
    from repro.lattice.polymatroid import counting_function

    counts = counting_function(h.lattice, tuples, variables)
    for x in range(h.lattice.n):
        expected = Fraction(base) ** int(h.values[x])
        if h.values[x] != int(h.values[x]) or counts[x] != expected:
            return False
    return True
