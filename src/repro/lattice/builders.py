"""Lattice builders: FD lattices and the paper's named example lattices.

Abstract lattices (M3, N5 and the lattices of Figs. 4, 7, 8, 9) are built
from their Hasse diagrams; FD lattices are built from the closure system of
an :class:`~repro.fds.FDSet` (Def. 3.1).  Construction validates the lattice
axioms, so these builders double as executable checks that the figures in
the paper really are lattices.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.fds.fd import FD, FDSet, varset
from repro.lattice.lattice import Lattice


# Interned FD-lattices keyed by their closed-set family.  Lattices are
# immutable after construction, so benchmark sweeps and repeated planner
# calls that rebuild the same query lattice share one object — and with it
# the per-lattice LP memo (repro.lp.cllp.lattice_lp_cache) and its
# meet/join tables.
_FD_LATTICE_CACHE: dict[frozenset, Lattice] = {}


def lattice_from_fds(
    fds: FDSet, variables: Iterable[str] | str | None = None
) -> Lattice:
    """The lattice L_FD of closed sets ordered by inclusion (Def. 3.1)."""
    universe = varset(variables) if variables is not None else fds.variables
    closed = fds.closed_sets(universe)
    closed.add(fds.closure(universe))  # ensure the top is present
    key = frozenset(closed)
    cached = _FD_LATTICE_CACHE.get(key)
    if cached is None:
        cached = Lattice.from_closed_sets(closed)
        _FD_LATTICE_CACHE[key] = cached
    return cached


def lattice_from_query(query) -> tuple[Lattice, dict[str, int]]:
    """Lattice presentation (L, R) of a query (Sec. 3.1).

    Returns the lattice plus a map from atom name to the lattice element that
    is the *closure* of the atom's attributes (the paper assumes w.l.o.g.
    that inputs are closed sets, via the expansion procedure).
    """
    lattice = lattice_from_fds(query.fds, query.variables)
    inputs = {
        atom.name: lattice.index(query.fds.closure(atom.varset))
        for atom in query.atoms
    }
    return lattice, inputs


def boolean_algebra(variables: Iterable[str] | str) -> Lattice:
    """The Boolean algebra 2^X — the lattice of a query with no fds."""
    return lattice_from_fds(FDSet((), varset(variables)))


# ----------------------------------------------------------------------
# Named abstract lattices from the paper's figures
# ----------------------------------------------------------------------

def m3() -> Lattice:
    """M3, the diamond: one of the two canonical non-distributive lattices
    (right of Fig. 3).  Non-normal (Prop. 4.10)."""
    return Lattice.from_covers(
        {"0": ["x", "y", "z"], "x": ["1"], "y": ["1"], "z": ["1"]}
    )


def n5() -> Lattice:
    """N5, the pentagon: the other canonical non-distributive lattice.
    Interestingly, normal (Sec. 1.2)."""
    return Lattice.from_covers(
        {"0": ["a", "c"], "a": ["b"], "b": ["1"], "c": ["1"]}
    )


diamond = m3
pentagon = n5


def fig1_lattice() -> tuple[Lattice, dict[str, int]]:
    """The running example (Fig. 1): R(x,y), S(y,z), T(z,u), xz→u, yu→x.

    Returns (lattice, inputs) with inputs R ↦ xy, S ↦ yz, T ↦ zu.
    """
    fds = FDSet([FD("xz", "u"), FD("yu", "x")], "xyzu")
    lattice = lattice_from_fds(fds)
    inputs = {
        "R": lattice.index(frozenset("xy")),
        "S": lattice.index(frozenset("yz")),
        "T": lattice.index(frozenset("zu")),
    }
    return lattice, inputs


def fig4_lattice() -> tuple[Lattice, dict[str, int]]:
    """Fig. 4: the query where no chain bound is tight (Ex. 5.18/5.20).

    Inputs R=abc, S=ade, T=bdf, U=cef; SM bound N^{4/3} beats every chain
    bound N^{3/2}.
    """
    closed = [
        frozenset(),
        *[frozenset(c) for c in "abcdef"],
        frozenset("abc"),
        frozenset("ade"),
        frozenset("bdf"),
        frozenset("cef"),
        frozenset("abcdef"),
    ]
    lattice = Lattice.from_closed_sets(closed)
    inputs = {
        "R": lattice.index(frozenset("abc")),
        "S": lattice.index(frozenset("ade")),
        "T": lattice.index(frozenset("bdf")),
        "U": lattice.index(frozenset("cef")),
    }
    return lattice, inputs


def fig5_lattice() -> tuple[Lattice, dict[str, int]]:
    """Fig. 5: Q :- R(x), S(y), xy→z (UDF z = f(x,y)); Ex. 5.10."""
    fds = FDSet([FD("xy", "z")], "xyz")
    lattice = lattice_from_fds(fds)
    inputs = {
        "R": lattice.index(frozenset("x")),
        "S": lattice.index(frozenset("y")),
    }
    return lattice, inputs


def fig7_lattice() -> tuple[Lattice, dict[str, int]]:
    """Fig. 7: the lattice whose first SM-proof in Ex. 5.29 is not good.

    Structure recovered from the proof steps: X∧Y=B, X∨Y=A, A∧Z=C, A∨Z=1̂,
    B∧U=0̂, B∨U=D, C∧D=0̂, C∨D=1̂.
    """
    lattice = Lattice.from_covers(
        {
            "0": ["C", "B", "U"],
            "C": ["Z", "A"],
            "B": ["X", "Y", "D"],
            "U": ["D"],
            "X": ["A"],
            "Y": ["A"],
            "Z": ["1"],
            "A": ["1"],
            "D": ["1"],
        }
    )
    inputs = {name: lattice.index(name) for name in ("X", "Y", "Z", "U")}
    return lattice, inputs


def fig8_lattice() -> tuple[Lattice, dict[str, int]]:
    """Fig. 8: two stacked diamonds; the Ex. 5.30 SM-proof is bad because
    label 1 never reaches a copy of 1̂.

    Structure from the proof steps: X∧Y=A, X∨Y=C, Z∧W=B, Z∨W=D,
    A∨D=1̂, A∧D=0̂, B∨C=1̂, B∧C=0̂.
    """
    lattice = Lattice.from_covers(
        {
            "0": ["A", "B"],
            "A": ["X", "Y"],
            "B": ["Z", "W"],
            "X": ["C"],
            "Y": ["C"],
            "Z": ["D"],
            "W": ["D"],
            "C": ["1"],
            "D": ["1"],
        }
    )
    inputs = {name: lattice.index(name) for name in ("X", "Y", "Z", "W")}
    return lattice, inputs


def fig9_lattice() -> tuple[Lattice, dict[str, int]]:
    """Fig. 9: the lattice with **no** SM-proof of
    h(M)+h(N)+h(O) ≥ 2h(1̂) (Ex. 5.31); CSMA's motivating example.

    Structure recovered from inequalities (19)-(25): M∧Z=G, M∨Z=U,
    N∧Z=I, N∨Z=V, O∧Z=J, O∨Z=W, U∧V=P, W∧P=Z, G∧I=D, G∨I=Z, J∧D=0̂,
    J∨D=Z, plus the symmetric completions S=U∧W, T=V∧W, E=G∧J, F=I∧J.
    """
    lattice = Lattice.from_covers(
        {
            "0": ["D", "E", "F"],
            "D": ["G", "I"],
            "E": ["G", "J"],
            "F": ["I", "J"],
            "G": ["M", "Z"],
            "I": ["N", "Z"],
            "J": ["O", "Z"],
            "Z": ["P", "S", "T"],
            "M": ["U"],
            "N": ["V"],
            "O": ["W"],
            "P": ["U", "V"],
            "S": ["U", "W"],
            "T": ["V", "W"],
            "U": ["1"],
            "V": ["1"],
            "W": ["1"],
        }
    )
    inputs = {name: lattice.index(name) for name in ("M", "N", "O")}
    return lattice, inputs


def m3_query_lattice() -> tuple[Lattice, dict[str, int]]:
    """M3 as the lattice of Q :- R(x), S(y), T(z), xy→z, xz→y, yz→x
    (Sec. 3.1/3.2)."""
    lattice = m3()
    inputs = {"R": lattice.index("x"), "S": lattice.index("y"), "T": lattice.index("z")}
    return lattice, inputs


def named_lattices() -> dict[str, Callable[[], Lattice]]:
    """A catalog of the paper's lattices, used by the Fig. 10 taxonomy bench."""
    return {
        "boolean_2": lambda: boolean_algebra("xy"),
        "boolean_3": lambda: boolean_algebra("xyz"),
        "m3": m3,
        "n5": n5,
        "fig1": lambda: fig1_lattice()[0],
        "fig4": lambda: fig4_lattice()[0],
        "fig5": lambda: fig5_lattice()[0],
        "fig7": lambda: fig7_lattice()[0],
        "fig8": lambda: fig8_lattice()[0],
        "fig9": lambda: fig9_lattice()[0],
    }
