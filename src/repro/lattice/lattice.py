"""Finite lattices (Sec. 3.1).

A :class:`Lattice` is built from a partial order and validates that every
pair of elements has a unique meet and join.  Elements carry arbitrary
hashable labels (frozensets of variables for FD lattices, short strings for
the paper's abstract examples); all internal computation uses integer
indices.
"""

from __future__ import annotations

import itertools
from functools import cached_property
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np


class NotALatticeError(ValueError):
    """The given order is not a lattice (missing/ambiguous meet or join)."""


class Lattice:
    """An explicit finite lattice with precomputed meet/join tables."""

    def __init__(self, elements: Sequence[Hashable], leq: np.ndarray):
        self.elements: tuple[Hashable, ...] = tuple(elements)
        self._index: dict[Hashable, int] = {
            el: i for i, el in enumerate(self.elements)
        }
        if len(self._index) != len(self.elements):
            raise ValueError("duplicate element labels")
        self.n = len(self.elements)
        leq = np.asarray(leq, dtype=bool)
        if leq.shape != (self.n, self.n):
            raise ValueError("leq matrix shape mismatch")
        self._leq = leq
        self._validate_order()
        self._meet, self._join = self._build_tables()
        # ``leq[i, j]`` means i <= j: the bottom's row and the top's column
        # are all-true.
        self.bottom: int = int(np.argmax(leq.sum(axis=1)))
        self.top: int = int(np.argmax(leq.sum(axis=0)))
        if not leq[self.bottom].all() or not leq[:, self.top].all():
            raise NotALatticeError("no unique bottom/top element")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_closed_sets(cls, closed_sets: Iterable[frozenset]) -> "Lattice":
        """Lattice of closed sets ordered by inclusion (Def. 3.1)."""
        elements = sorted(set(closed_sets), key=lambda s: (len(s), sorted(s)))
        n = len(elements)
        leq = np.zeros((n, n), dtype=bool)
        for i, a in enumerate(elements):
            for j, b in enumerate(elements):
                leq[i, j] = a <= b
        return cls(elements, leq)

    @classmethod
    def from_covers(
        cls, covers: Mapping[Hashable, Iterable[Hashable]]
    ) -> "Lattice":
        """Build from a Hasse diagram: ``covers[x]`` lists elements covering x.

        Elements appearing only as values need no key.  The transitive
        reflexive closure of the cover relation must be a lattice order.
        """
        labels: list[Hashable] = []
        for low, highs in covers.items():
            if low not in labels:
                labels.append(low)
            for high in highs:
                if high not in labels:
                    labels.append(high)
        index = {el: i for i, el in enumerate(labels)}
        n = len(labels)
        adj = np.eye(n, dtype=bool)
        for low, highs in covers.items():
            for high in highs:
                adj[index[low], index[high]] = True
        # Warshall transitive closure.
        for k in range(n):
            adj |= np.outer(adj[:, k], adj[k, :])
        return cls(labels, adj)

    def _validate_order(self) -> None:
        leq = self._leq
        if not np.diag(leq).all():
            raise NotALatticeError("order is not reflexive")
        if ((leq & leq.T) & ~np.eye(self.n, dtype=bool)).any():
            raise NotALatticeError("order is not antisymmetric")
        closure = leq.copy()
        for k in range(self.n):
            closure |= np.outer(closure[:, k], closure[k, :])
        if (closure != leq).any():
            raise NotALatticeError("order is not transitive")

    def _build_tables(self) -> tuple[np.ndarray, np.ndarray]:
        leq = self._leq
        meet = np.full((self.n, self.n), -1, dtype=np.int32)
        join = np.full((self.n, self.n), -1, dtype=np.int32)
        for i in range(self.n):
            for j in range(i, self.n):
                lower = np.flatnonzero(leq[:, i] & leq[:, j])
                # The meet is the unique maximum of common lower bounds.
                maxima = [
                    int(z) for z in lower if all(leq[w, z] for w in lower)
                ]
                if len(maxima) != 1:
                    raise NotALatticeError(
                        f"elements {self.elements[i]!r}, {self.elements[j]!r} "
                        "have no unique meet"
                    )
                upper = np.flatnonzero(leq[i, :] & leq[j, :])
                minima = [
                    int(z) for z in upper if all(leq[z, w] for w in upper)
                ]
                if len(minima) != 1:
                    raise NotALatticeError(
                        f"elements {self.elements[i]!r}, {self.elements[j]!r} "
                        "have no unique join"
                    )
                meet[i, j] = meet[j, i] = maxima[0]
                join[i, j] = join[j, i] = minima[0]
        return meet, join

    # ------------------------------------------------------------------
    # Basic queries (integer-index API)
    # ------------------------------------------------------------------
    def index(self, element: Hashable) -> int:
        return self._index[element]

    def label(self, i: int) -> Hashable:
        return self.elements[i]

    def leq(self, i: int, j: int) -> bool:
        return bool(self._leq[i, j])

    def lt(self, i: int, j: int) -> bool:
        return i != j and bool(self._leq[i, j])

    def incomparable(self, i: int, j: int) -> bool:
        return not self._leq[i, j] and not self._leq[j, i]

    def meet(self, i: int, j: int) -> int:
        return int(self._meet[i, j])

    def join(self, i: int, j: int) -> int:
        return int(self._join[i, j])

    def meet_all(self, indices: Iterable[int]) -> int:
        result = self.top
        for i in indices:
            result = self.meet(result, i)
        return result

    def join_all(self, indices: Iterable[int]) -> int:
        result = self.bottom
        for i in indices:
            result = self.join(result, i)
        return result

    def downset(self, i: int) -> list[int]:
        """All j <= i."""
        return [int(j) for j in np.flatnonzero(self._leq[:, i])]

    def upset(self, i: int) -> list[int]:
        """All j >= i."""
        return [int(j) for j in np.flatnonzero(self._leq[i, :])]

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @cached_property
    def upper_covers(self) -> list[list[int]]:
        """upper_covers[i] = elements covering i (Hasse successors)."""
        result: list[list[int]] = []
        for i in range(self.n):
            strictly_above = [j for j in range(self.n) if self.lt(i, j)]
            covers = [
                j
                for j in strictly_above
                if not any(self.lt(i, k) and self.lt(k, j) for k in strictly_above)
            ]
            result.append(covers)
        return result

    @cached_property
    def lower_covers(self) -> list[list[int]]:
        result: list[list[int]] = [[] for _ in range(self.n)]
        for i, ups in enumerate(self.upper_covers):
            for j in ups:
                result[j].append(i)
        return result

    @cached_property
    def atoms(self) -> list[int]:
        """Elements covering the bottom."""
        return self.upper_covers[self.bottom]

    @cached_property
    def coatoms(self) -> list[int]:
        """Elements covered by the top."""
        return self.lower_covers[self.top]

    @cached_property
    def join_irreducibles(self) -> list[int]:
        """Elements with exactly one lower cover (and not the bottom).

        These correspond to the query's variables (Sec. 3.1)."""
        return [
            i
            for i in range(self.n)
            if i != self.bottom and len(self.lower_covers[i]) == 1
        ]

    @cached_property
    def meet_irreducibles(self) -> list[int]:
        return [
            i
            for i in range(self.n)
            if i != self.top and len(self.upper_covers[i]) == 1
        ]

    def join_irreducibles_below(self, i: int) -> list[int]:
        """Λ_X = {Z join-irreducible | Z <= X} (Sec. 3.1)."""
        return [z for z in self.join_irreducibles if self.leq(z, i)]

    @cached_property
    def incomparable_pairs(self) -> list[tuple[int, int]]:
        return [
            (i, j)
            for i in range(self.n)
            for j in range(i + 1, self.n)
            if self.incomparable(i, j)
        ]

    # ------------------------------------------------------------------
    # Chains and sublattices
    # ------------------------------------------------------------------
    def maximal_chains(self, limit: int | None = None) -> Iterator[list[int]]:
        """Yield maximal chains bottom -> top via DFS over upper covers."""
        count = 0
        stack: list[list[int]] = [[self.bottom]]
        while stack:
            chain = stack.pop()
            last = chain[-1]
            if last == self.top:
                yield chain
                count += 1
                if limit is not None and count >= limit:
                    return
                continue
            for nxt in self.upper_covers[last]:
                stack.append(chain + [nxt])

    def is_chain(self, indices: Sequence[int]) -> bool:
        return all(
            self.leq(indices[k], indices[k + 1]) for k in range(len(indices) - 1)
        )

    def sublattices_isomorphic_to_m3(self) -> Iterator[tuple[int, int, int, int, int]]:
        """Yield (bottom u, x, y, z, top t) sublattices isomorphic to M3:
        three pairwise-incomparable elements with all pairwise meets = u and
        joins = t (Prop. 4.10 uses these with t = 1̂)."""
        for x, y, z in itertools.combinations(range(self.n), 3):
            if not (
                self.incomparable(x, y)
                and self.incomparable(x, z)
                and self.incomparable(y, z)
            ):
                continue
            if not (
                self.meet(x, y) == self.meet(x, z) == self.meet(y, z)
            ):
                continue
            if not (
                self.join(x, y) == self.join(x, z) == self.join(y, z)
            ):
                continue
            yield (self.meet(x, y), x, y, z, self.join(x, y))

    def interval(self, lo: int, hi: int) -> list[int]:
        return [i for i in range(self.n) if self.leq(lo, i) and self.leq(i, hi)]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        def show(el: Hashable) -> str:
            if isinstance(el, frozenset):
                return "".join(sorted(map(str, el))) or "∅"
            return str(el)

        return f"Lattice({self.n} elements: {', '.join(show(e) for e in self.elements)})"
