"""Structured error taxonomy for the engine and the serving layer.

Every failure the kernel or the query service can surface is a
:class:`ReproError` carrying *machine-readable* context — tenant, engine,
backend, a retryable flag and free-form extras — so retry/degrade logic
dispatches on types and fields, never on exception strings.

The hierarchy:

* :class:`ExpansionError` — an fd could not be applied (no guard relation
  and no UDF); raised by plan compilation and the reference path.  The
  historical type (it predates the taxonomy) re-exported from
  ``repro.engine.database`` for compatibility.
* :class:`QueryTimeout` — a cooperative deadline expired mid-run
  (:mod:`repro.engine.cancellation`); the worker is released, nothing is
  orphaned.  Not retryable by default: retrying the same query against
  the same deadline would time out again.
* :class:`AdmissionRejected` — the certified CLLP/LLP output bound
  exceeds the tenant's budget.  Carries the bound, the budget and the
  exact optimality certificate of the bound solve, so a rejected client
  holds a *proof* the query was oversized, not a heuristic guess.
* :class:`ServiceOverloaded` — the bounded admission queue is full.
  Retryable: backoff and resubmit is the intended client reaction.
* :class:`EngineFault` — an unexpected engine-internal failure (including
  injected faults and allocation failures), classified and wrapped.
  Retryable: the service's degradation chain retries on a simpler
  backend, and a client may resubmit.

:func:`classify` is the single choke point turning arbitrary exceptions
into taxonomy members.
"""

from __future__ import annotations

from typing import Any


class ReproError(RuntimeError):
    """Base of the taxonomy: a message plus machine-readable context."""

    #: Default retry semantics for the class; instances may override.
    retryable: bool = False

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        engine: str | None = None,
        backend: str | None = None,
        retryable: bool | None = None,
        **extra: Any,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.engine = engine
        self.backend = backend
        if retryable is not None:
            self.retryable = retryable
        self.extra = extra

    def annotate(self, **fields: Any) -> "ReproError":
        """Fill context fields that are still unset (never overwrites);
        returns self so ``raise exc.annotate(tenant=...)`` reads naturally.

        The engine raises with the fields it knows (backend, engine); the
        service annotates tenant/engine on the way out.
        """
        for name in ("tenant", "engine", "backend"):
            value = fields.pop(name, None)
            if value is not None and getattr(self, name) is None:
                setattr(self, name, value)
        for key, value in fields.items():
            self.extra.setdefault(key, value)
        return self

    def context(self) -> dict[str, Any]:
        """The machine-readable context dict (what a service response or
        a structured log line would serialize)."""
        ctx: dict[str, Any] = {
            "type": type(self).__name__,
            "message": str(self),
            "tenant": self.tenant,
            "engine": self.engine,
            "backend": self.backend,
            "retryable": self.retryable,
        }
        ctx.update(self.extra)
        return ctx


class ExpansionError(ReproError):
    """An fd could not be applied: no guard relation and no UDF."""


class QueryTimeout(ReproError):
    """A cooperative per-query deadline expired mid-run."""

    retryable = False

    def __init__(self, message: str, *, deadline_s: float | None = None, **kw):
        super().__init__(message, **kw)
        self.deadline_s = deadline_s
        if deadline_s is not None:
            self.extra.setdefault("deadline_s", deadline_s)


class AdmissionRejected(ReproError):
    """The certified output bound exceeds the tenant's budget.

    ``bound_log2``/``budget_log2`` are in log2 output tuples;
    ``certificate`` is the exact optimality certificate of the bound
    solve when the exact LP backend participated (always, under the
    service's forced-exact admission solves), so the rejection carries
    its own proof.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        bound_log2: float | None = None,
        budget_log2: float | None = None,
        certificate=None,
        **kw,
    ):
        super().__init__(message, **kw)
        self.bound_log2 = bound_log2
        self.budget_log2 = budget_log2
        self.certificate = certificate
        if bound_log2 is not None:
            self.extra.setdefault("bound_log2", bound_log2)
        if budget_log2 is not None:
            self.extra.setdefault("budget_log2", budget_log2)
        self.extra.setdefault("certified", certificate is not None)


class ServiceOverloaded(ReproError):
    """The bounded admission queue is full; back off and resubmit."""

    retryable = True


class EngineFault(ReproError):
    """An unexpected engine-internal failure, classified and wrapped."""

    retryable = True

    def __init__(self, message: str, *, stage: str | None = None, **kw):
        super().__init__(message, **kw)
        self.stage = stage
        if stage is not None:
            self.extra.setdefault("stage", stage)


def classify(exc: BaseException, **context: Any) -> ReproError:
    """Turn an arbitrary exception into a taxonomy member.

    Taxonomy members pass through (annotated with ``context``); anything
    else — injected faults, allocation failures, genuine bugs — wraps
    into an :class:`EngineFault` whose ``__cause__`` keeps the original
    traceback.  ``MemoryError`` is tagged ``kind="allocation"`` so ops
    dashboards can split resource pressure from logic faults.
    """
    if isinstance(exc, ReproError):
        return exc.annotate(**context)
    kind = "allocation" if isinstance(exc, MemoryError) else "exception"
    fault = EngineFault(
        f"{type(exc).__name__}: {exc}", kind=kind, **context
    )
    fault.__cause__ = exc
    return fault
