"""Exact rational LP kernel: Fraction simplex with dual certificates.

Every bound in this reproduction — CLLP, LLP, fractional edge covers, the
chain bounds — is the value of a tiny LP whose data are exact rationals
(floats are binary rationals, and the polytopes have data-independent
rational vertices, footnote 10 of the paper).  This module solves those
programs *exactly* over :class:`fractions.Fraction`, with no dependency on
scipy or numpy, under the package-wide convention of
:mod:`repro.lp.solver`::

    minimize c @ x   s.t.   A_ub x <= b_ub,  A_eq x == b_eq,  x >= 0.

Two engines share one program representation:

* :func:`solve_exact_lp` — two-phase primal simplex (slack-basis start,
  Dantzig pivoting with a deterministic Bland fallback for guaranteed
  termination) followed by **canonical-vertex selection**: the returned
  primal is the lexicographically minimal point of the optimal face
  (minimize ``x_0``, then ``x_1``, … over the face — a vertex, and a
  function of the *program*, not of pivoting history), and the dual
  certificate is canonicalized the same way (read off the final basis
  when the vertex is non-degenerate — the dual is then unique — and
  otherwise selected as the lex-min vertex of the explicit dual
  program).  Degenerate programs therefore have *one* well-defined
  exact solution: any two solves of the same program, here or in any
  faithful reimplementation of the rule, return the same rational
  vertex.  The result is an :class:`ExactCertificate` holding the
  canonical primal vertex, the canonical dual vector, and the exact
  optimality proof (primal-feasible + dual-feasible + zero duality
  gap), re-verified in exact arithmetic before it is returned;
* :func:`enumerate_standard_vertices` / :func:`enumerate_vertices` —
  basis/vertex enumeration for the small covering polytopes (the
  normality test's ``edge_cover_vertices`` and the property tests'
  cross-check of the simplex).

Dual sign convention (matches ``solver.LPSolution``): ``y_ub[i]`` is the
*non-negative* weight of the i-th ``<=`` row (the negated scipy/HiGHS
marginal), ``y_eq[i]`` the negated marginal of the i-th ``==`` row, so

    c @ x*  ==  -(b_ub @ y_ub) - (b_eq @ y_eq)

at the optimum and ``-A_ub^T y_ub - A_eq^T y_eq <= c`` is dual
feasibility.  ``tests/test_lp_exact.py`` pins this convention against a
hand-solved program and differentially against scipy.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence


class LPError(RuntimeError):
    """Raised when an LP is infeasible/unbounded or the solver fails."""


class LPInfeasibleError(LPError):
    """The constraint system admits no feasible point."""


class LPUnboundedError(LPError):
    """The objective is unbounded below over the feasible region."""


Vector = tuple[Fraction, ...]
Matrix = tuple[Vector, ...]


def _vec(values: Iterable) -> Vector:
    return tuple(Fraction(v) for v in values)


def _mat(rows: Iterable[Sequence]) -> Matrix:
    return tuple(_vec(row) for row in rows)


def _dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    return sum((u * v for u, v in zip(a, b) if u and v), start=Fraction(0))


@dataclass(frozen=True)
class ExactLP:
    """One minimization program with exact rational data."""

    costs: Vector
    a_ub: Matrix
    b_ub: Vector
    a_eq: Matrix
    b_eq: Vector

    @classmethod
    def from_data(
        cls,
        costs: Sequence,
        a_ub: Iterable[Sequence] | None = None,
        b_ub: Sequence | None = None,
        a_eq: Iterable[Sequence] | None = None,
        b_eq: Sequence | None = None,
    ) -> "ExactLP":
        program = cls(
            costs=_vec(costs),
            a_ub=_mat(a_ub) if a_ub is not None else (),
            b_ub=_vec(b_ub) if b_ub is not None else (),
            a_eq=_mat(a_eq) if a_eq is not None else (),
            b_eq=_vec(b_eq) if b_eq is not None else (),
        )
        n = len(program.costs)
        for row in program.a_ub + program.a_eq:
            if len(row) != n:
                raise ValueError("constraint row width != number of variables")
        if len(program.a_ub) != len(program.b_ub):
            raise ValueError("A_ub / b_ub length mismatch")
        if len(program.a_eq) != len(program.b_eq):
            raise ValueError("A_eq / b_eq length mismatch")
        return program

    @property
    def n_vars(self) -> int:
        return len(self.costs)

    @property
    def n_rows(self) -> int:
        return len(self.a_ub) + len(self.a_eq)


@dataclass(frozen=True)
class ExactCertificate:
    """Primal vertex + dual vector + the exact optimality proof.

    ``verify()`` re-checks the three ingredients of LP optimality in exact
    arithmetic; a certificate that verifies *is* a proof that ``objective``
    is the optimum of ``program`` — no trust in the pivoting (or in any
    floating-point solver) is required.
    """

    program: ExactLP
    x: Vector
    y_ub: Vector
    y_eq: Vector
    objective: Fraction

    def primal_feasible(self) -> bool:
        prog = self.program
        if any(v < 0 for v in self.x):
            return False
        for row, bound in zip(prog.a_ub, prog.b_ub):
            if _dot(row, self.x) > bound:
                return False
        for row, bound in zip(prog.a_eq, prog.b_eq):
            if _dot(row, self.x) != bound:
                return False
        return True

    def dual_feasible(self) -> bool:
        prog = self.program
        if any(v < 0 for v in self.y_ub):
            return False
        for j in range(prog.n_vars):
            pulled = sum(
                (-row[j] * y for row, y in zip(prog.a_ub, self.y_ub) if row[j] and y),
                start=Fraction(0),
            )
            pulled += sum(
                (-row[j] * y for row, y in zip(prog.a_eq, self.y_eq) if row[j] and y),
                start=Fraction(0),
            )
            if pulled > prog.costs[j]:
                return False
        return True

    def dual_objective(self) -> Fraction:
        return -_dot(self.program.b_ub, self.y_ub) - _dot(
            self.program.b_eq, self.y_eq
        )

    def duality_gap(self) -> Fraction:
        return _dot(self.program.costs, self.x) - self.dual_objective()

    def verify(self) -> bool:
        return (
            self.primal_feasible()
            and self.dual_feasible()
            and _dot(self.program.costs, self.x) == self.objective
            and self.duality_gap() == 0
        )


# ----------------------------------------------------------------------
# Two-phase simplex over Fractions
# ----------------------------------------------------------------------

#: Degenerate (no-progress) pivots tolerated under Dantzig's rule before
#: switching to Bland's rule, which cannot cycle.
_DEGENERATE_PIVOT_SLACK = 64


class _Tableau:
    """Sparse-row simplex tableau for the standard form ``M z = b, z >= 0``.

    Columns: the n structural variables, one slack per ``<=`` row, then one
    artificial per row that needed one (rows are sign-normalized to
    ``b >= 0`` first).  The artificial *columns* are kept after phase 1 —
    barred from re-entering — because the dual vector is read off them:
    the artificial for row i is the i-th unit column, so ``c_B B^{-1} e_i``
    is one dot product against it.

    Rows are stored as ``{column: Fraction}`` dicts of their *nonzeros*
    (the right-hand sides live in the parallel ``rhs`` list), and every
    operation — pivoting, pricing, ratio tests, dual extraction — walks
    nonzeros only.  The lattice programs this solves are naturally sparse
    (a CLLP row touches two or three lattice elements out of dozens), so
    the dense formulation paid for a quadratic tableau of exact-Fraction
    zeros; the sparse one cuts the big-lattice no-scipy solves without
    moving a single pivot: entering/leaving choices iterate columns in the
    same order as the dense code, so the pivot trajectory — and therefore
    every certificate — is unchanged.
    """

    def __init__(self, program: ExactLP):
        n = program.n_vars
        ub_rows = [
            (row, rhs, "ub") for row, rhs in zip(program.a_ub, program.b_ub)
        ]
        eq_rows = [
            (row, rhs, "eq") for row, rhs in zip(program.a_eq, program.b_eq)
        ]
        all_rows = ub_rows + eq_rows
        m = len(all_rows)
        n_slack = len(ub_rows)
        self.n = n
        self.m = m
        self.flip: list[int] = []
        # Column layout: x | slacks | artificials (allocated lazily).
        width = n + n_slack
        rows: list[dict[int, Fraction]] = []
        rhs_col: list[Fraction] = []
        basis: list[int] = []
        art_cols: list[int | None] = []
        needs_art: list[int] = []
        for i, (coeffs, rhs, kind) in enumerate(all_rows):
            sigma = -1 if rhs < 0 else 1
            self.flip.append(sigma)
            row = {j: sigma * c for j, c in enumerate(coeffs) if c}
            if kind == "ub":
                row[n + i] = Fraction(sigma)
            rows.append(row)
            rhs_col.append(sigma * rhs)
            if kind == "ub" and sigma == 1:
                basis.append(n + i)  # slack basis, no artificial needed
                art_cols.append(None)
            else:
                basis.append(-1)  # placeholder, artificial assigned below
                art_cols.append(-1)
                needs_art.append(i)
        for k, i in enumerate(needs_art):
            col = width + k
            art_cols[i] = col
            basis[i] = col
            rows[i][col] = Fraction(1)
        self.rows = rows
        self.rhs = rhs_col
        self.basis = basis
        self.art_cols = art_cols
        self.n_real = width  # structural + slack columns
        self.n_cols = width + len(needs_art)
        self.alive = [True] * m  # redundant rows get retired after phase 1

    # -- pivoting ------------------------------------------------------
    def pivot(self, row: int, col: int) -> None:
        rows = self.rows
        rhs = self.rhs
        pivot_row = rows[row]
        inv = 1 / pivot_row[col]
        if inv != 1:
            rows[row] = pivot_row = {j: v * inv for j, v in pivot_row.items()}
            rhs[row] *= inv
        pivot_rhs = rhs[row]
        pivot_items = list(pivot_row.items())
        for i, other in enumerate(rows):
            if i == row or not self.alive[i]:
                continue
            factor = other.get(col)
            if factor:
                merged = dict(other)
                for j, p in pivot_items:
                    v = merged.get(j)
                    v = -factor * p if v is None else v - factor * p
                    if v:
                        merged[j] = v
                    else:
                        merged.pop(j, None)
                rows[i] = merged
                rhs[i] -= factor * pivot_rhs
        self.basis[row] = col

    def _reduced_costs(self, costs: list[Fraction], allowed: range | list[int]):
        """Yield (column, reduced cost) over non-basic allowed columns.

        One sparse pass accumulates ``c_B B^{-1} A`` over the basic rows'
        nonzeros; yielding then walks ``allowed`` in order, so entering
        choices (Dantzig ties, Bland's first-negative) match the dense
        formulation pivot for pivot.
        """
        pulled: dict[int, Fraction] = {}
        for i in range(self.m):
            if not self.alive[i]:
                continue
            cb = costs[self.basis[i]]
            if cb:
                for j, v in self.rows[i].items():
                    acc = pulled.get(j)
                    pulled[j] = cb * v if acc is None else acc + cb * v
        in_basis = set(self.basis[i] for i in range(self.m) if self.alive[i])
        zero = Fraction(0)
        for j in allowed:
            if j in in_basis:
                continue
            yield j, costs[j] - pulled.get(j, zero)

    def _ratio_leave(self, col: int) -> int | None:
        best_ratio: Fraction | None = None
        leave = None
        for i in range(self.m):
            if not self.alive[i]:
                continue
            a = self.rows[i].get(col)
            if a is not None and a > 0:
                ratio = self.rhs[i] / a
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and self.basis[i] < self.basis[leave])
                ):
                    best_ratio = ratio
                    leave = i
        return leave

    def run(self, costs: list[Fraction], allowed) -> Fraction:
        """Minimize ``costs`` over the current basis; returns the optimum.

        Dantzig's rule (most negative reduced cost, lowest column on ties)
        until the degenerate-pivot budget is spent, then Bland's rule
        (first negative column, guaranteed finite).
        """
        last_objective: Fraction | None = None
        stalled = 0
        bland = False
        while True:
            entering = None
            if bland:
                for j, r in self._reduced_costs(costs, allowed):
                    if r < 0:
                        entering = j
                        break
            else:
                best = Fraction(0)
                for j, r in self._reduced_costs(costs, allowed):
                    if r < best:
                        best = r
                        entering = j
            if entering is None:
                return self.objective(costs)
            leave = self._ratio_leave(entering)
            if leave is None:
                raise LPUnboundedError("LP failed: objective unbounded below")
            self.pivot(leave, entering)
            if not bland:
                objective = self.objective(costs)
                if last_objective is not None and objective == last_objective:
                    stalled += 1
                    if stalled > _DEGENERATE_PIVOT_SLACK:
                        bland = True
                else:
                    stalled = 0
                last_objective = objective

    def objective(self, costs: list[Fraction]) -> Fraction:
        return sum(
            (
                costs[self.basis[i]] * self.rhs[i]
                for i in range(self.m)
                if self.alive[i] and costs[self.basis[i]]
            ),
            start=Fraction(0),
        )

    # -- canonical-vertex selection -----------------------------------
    def optimal_face(self, costs: list[Fraction], allowed) -> list[int]:
        """Columns spanning the optimal face of ``costs`` at this basis.

        The face is the set of feasible points supported on the basic
        columns plus the allowed non-basic columns with zero reduced
        cost; any pivot confined to these columns stays optimal.
        """
        keep = {self.basis[i] for i in range(self.m) if self.alive[i]}
        for j, r in self._reduced_costs(costs, allowed):
            if r == 0:
                keep.add(j)
        return sorted(keep)

    def canonicalize(self, costs: list[Fraction]) -> None:
        """Pivot to the lexicographically minimal vertex of the optimal face.

        Must be called at a ``costs``-optimal basis.  Minimizes ``x_0``
        over the face, then ``x_1`` over the shrunken face, and so on —
        the classic lexicographic refinement, which lands on a vertex
        that depends only on the *program* (the face is determined by
        the program, and each stage's minimum is unique given the
        earlier pins), never on pivoting history.  Two shortcuts keep
        this cheap: a structural column that is *non-basic* on the
        current face already sits at its face-minimum of zero, so
        pinning it is just barring the column (no simplex run); and the
        sweep stops as soon as every face column is basic (the face has
        collapsed to a single vertex).  Only basic structural columns —
        at most ``m`` of them — pay a (unit-cost, hence never
        unbounded) simplex run.
        """
        allowed = self.optimal_face(costs, range(self.n_real))
        for k in range(self.n):
            in_basis = {self.basis[i] for i in range(self.m) if self.alive[i]}
            if all(j in in_basis for j in allowed):
                break  # no non-basic face direction left: a single vertex
            if k not in allowed:
                continue  # x_k == 0 everywhere on the face already
            if k not in in_basis:
                allowed.remove(k)  # pin x_k at its face-minimum, zero
                continue
            unit = [Fraction(0)] * self.n_cols
            unit[k] = Fraction(1)
            self.run(unit, allowed)
            allowed = self.optimal_face(unit, allowed)

    def vertex_is_nondegenerate(self) -> bool:
        """True when every basic variable is strictly positive and no row
        was retired as redundant — the final basis is then the *unique*
        basis of its vertex and the dual vector read off it is the unique
        dual optimum (no canonicalization needed)."""
        return all(self.alive) and all(v > 0 for v in self.rhs)

    # -- phase transitions --------------------------------------------
    def drive_out_artificials(self) -> None:
        """Pivot basic artificials out; retire rows that prove redundant."""
        for i in range(self.m):
            if not self.alive[i] or self.basis[i] < self.n_real:
                continue
            # Lowest real column with a nonzero — the same column the
            # dense left-to-right scan picked.
            pivot_col = min(
                (j for j in self.rows[i] if j < self.n_real), default=None
            )
            if pivot_col is None:
                # Row is 0 = 0 over the real columns: redundant.
                self.alive[i] = False
            else:
                self.pivot(i, pivot_col)

    def solution(self) -> list[Fraction]:
        x = [Fraction(0)] * self.n
        for i in range(self.m):
            if self.alive[i] and self.basis[i] < self.n:
                x[self.basis[i]] = self.rhs[i]
        return x

    def duals(self, costs: list[Fraction]) -> list[Fraction]:
        """``y = c_B B^{-1}`` per original row (0 for retired rows),
        expressed against the *pre-flip* row orientation."""
        cb = [
            (costs[self.basis[i]], self.rows[i])
            for i in range(self.m)
            if self.alive[i] and costs[self.basis[i]]
        ]
        zero = Fraction(0)
        y: list[Fraction] = []
        for i in range(self.m):
            col = self.art_cols[i]
            if not self.alive[i]:
                y.append(zero)
            else:
                if col is None:
                    # Slack-basis row: B^{-1} e_i is the slack column (the
                    # slack's coefficient was +1, the row was never
                    # flipped).
                    col = self.n + i
                y.append(
                    sum(
                        (c * row[col] for c, row in cb if row.get(col)),
                        start=zero,
                    )
                )
            y[-1] *= self.flip[i]
        return y


def _optimal_tableau(program: ExactLP) -> tuple[_Tableau, list[Fraction]]:
    """Phase 1 + phase 2 + canonicalization; returns (tableau, phase-2 costs).

    The tableau sits at the lexicographically minimal vertex of the
    optimal face when this returns.
    """
    tableau = _Tableau(program)
    # Phase 1: minimize the artificials (skipped when the slack basis is
    # already feasible, i.e. every artificial starts at rhs 0).
    if tableau.n_cols > tableau.n_real:
        phase1 = [Fraction(0)] * tableau.n_real + [Fraction(1)] * (
            tableau.n_cols - tableau.n_real
        )
        if tableau.objective(phase1) != 0:
            if tableau.run(phase1, range(tableau.n_cols)) != 0:
                raise LPInfeasibleError("LP failed: constraints infeasible")
        tableau.drive_out_artificials()
    # Phase 2: the real objective over structural + slack columns.
    phase2 = list(program.costs) + [Fraction(0)] * (tableau.n_cols - program.n_vars)
    tableau.run(phase2, range(tableau.n_real))
    tableau.canonicalize(phase2)
    return tableau, phase2


def _canonical_dual(program: ExactLP) -> tuple[Vector, Vector]:
    """Lex-min optimal dual vector of ``program``, in package convention.

    Builds the explicit dual as a primal program over non-negative
    variables ``u`` (the ``<=``-row weights), ``p`` and ``q`` (the
    ``==``-row weights split as ``y_eq = p - q``)::

        minimize  b_ub @ u + b_eq @ p - b_eq @ q
        s.t.      -A_ub^T u - A_eq^T (p - q) <= c,   u, p, q >= 0

    whose optimum is ``-z*`` by strong duality (feasible and bounded
    whenever the primal has an optimum, so neither phase can fail), and
    solves it with the same canonical lex-min rule.  Only needed when
    the primal vertex is degenerate — a non-degenerate optimal basis
    has a unique dual, which :meth:`_Tableau.duals` already reads off.
    """
    m_ub = len(program.a_ub)
    m_eq = len(program.a_eq)
    costs = list(program.b_ub) + list(program.b_eq) + [-v for v in program.b_eq]
    a_ub = []
    for j in range(program.n_vars):
        row = [-rw[j] for rw in program.a_ub]
        row += [-rw[j] for rw in program.a_eq]
        row += [rw[j] for rw in program.a_eq]
        a_ub.append(row)
    dual_program = ExactLP.from_data(costs, a_ub, program.costs)
    tableau, _ = _optimal_tableau(dual_program)
    w = tableau.solution()
    y_ub = tuple(w[:m_ub])
    y_eq = tuple(w[m_ub + i] - w[m_ub + m_eq + i] for i in range(m_eq))
    return y_ub, y_eq


def solve_exact_lp(
    costs: Sequence,
    a_ub: Iterable[Sequence] | None = None,
    b_ub: Sequence | None = None,
    a_eq: Iterable[Sequence] | None = None,
    b_eq: Sequence | None = None,
) -> ExactCertificate:
    """Minimize ``costs @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``,
    ``x >= 0`` — exactly, returning the *canonical* solution.

    Both the primal vertex and the dual vector are the lex-min points of
    their optimal faces (see the module docstring), so any two solves of
    the same program return identical certificates.

    Returns an :class:`ExactCertificate` whose ``verify()`` already passed;
    raises :class:`LPInfeasibleError` / :class:`LPUnboundedError` otherwise.
    """
    program = ExactLP.from_data(costs, a_ub, b_ub, a_eq, b_eq)
    n = program.n_vars
    if program.n_rows == 0:
        if any(c < 0 for c in program.costs):
            raise LPUnboundedError("LP failed: objective unbounded below")
        # The origin is the lex-min point of the optimal face {x >= 0,
        # x_j > 0 only where c_j == 0}: canonical by construction.
        zero = tuple([Fraction(0)] * n)
        return ExactCertificate(program, zero, (), (), Fraction(0))

    tableau, phase2 = _optimal_tableau(program)
    x = tableau.solution()
    if tableau.vertex_is_nondegenerate():
        # Unique dual: read it off the final basis.
        y = tableau.duals(phase2)
        n_ub = len(program.a_ub)
        # Package convention: negate the raw marginals (module docstring).
        y_ub = tuple(-v for v in y[:n_ub])
        y_eq = tuple(-v for v in y[n_ub:])
    else:
        # Degenerate vertex: the dual face may have several vertices, so
        # pick its lex-min via the explicit dual program.
        y_ub, y_eq = _canonical_dual(program)
    certificate = ExactCertificate(
        program=program,
        x=tuple(x),
        y_ub=y_ub,
        y_eq=y_eq,
        objective=_dot(program.costs, x),
    )
    if not certificate.verify():  # pragma: no cover - internal invariant
        raise LPError("exact simplex produced an unverifiable certificate")
    return certificate


# ----------------------------------------------------------------------
# Basis / vertex enumeration
# ----------------------------------------------------------------------

def enumerate_vertices(
    a_ub: Iterable[Sequence],
    b_ub: Sequence,
    nonnegative: bool = True,
    max_dimension: int = 12,
) -> list[Vector]:
    """All vertices of ``{x | A x <= b (, x >= 0)}``, exactly.

    Depth-first over tight-constraint subsets with *incremental* Gaussian
    elimination: a partial subset whose rows are already dependent is
    pruned with its entire subtree, which beats the flat
    ``itertools.combinations`` scan of :mod:`repro.util.rational` on the
    covering polytopes (many parallel box rows).  Intended for the same
    small polytopes; raises ``ValueError`` beyond ``max_dimension``.
    """
    rows = [_vec(r) for r in a_ub]
    rhs = [Fraction(b) for b in b_ub]
    if not rows:
        return []
    n = len(rows[0])
    if n > max_dimension:
        raise ValueError(
            f"vertex enumeration limited to dimension {max_dimension}, got {n}"
        )
    constraints: list[tuple[Vector, Fraction]] = list(zip(rows, rhs))
    if nonnegative:
        for i in range(n):
            row = [Fraction(0)] * n
            row[i] = Fraction(-1)
            constraints.append((tuple(row), Fraction(0)))
    total = len(constraints)

    vertices: list[Vector] = []
    seen: set[Vector] = set()

    def feasible(point: Sequence[Fraction]) -> bool:
        return all(_dot(row, point) <= bound for row, bound in constraints)

    # Each stack frame carries the reduced echelon system of the chosen
    # tight rows: (next constraint index, [(pivot col, row, rhs), ...]).
    def extend(start: int, system: list[tuple[int, Vector, Fraction]]) -> None:
        if len(system) == n:
            x = [Fraction(0)] * n
            for col, _, value in system:
                x[col] = value
            key = tuple(x)
            if key not in seen and feasible(x):
                seen.add(key)
                vertices.append(key)
            return
        need = n - len(system)
        for idx in range(start, total - need + 1):
            row, bound = constraints[idx]
            # Reduce the new row against the current echelon system.
            work = list(row)
            value = bound
            for col, prow, pval in system:
                factor = work[col]
                if factor:
                    work = [w - factor * p for w, p in zip(work, prow)]
                    value -= factor * pval
            pivot = next((j for j, w in enumerate(work) if w), None)
            if pivot is None:
                continue  # dependent on the chosen rows: prune subtree
            inv = 1 / work[pivot]
            work = [w * inv for w in work]
            value *= inv
            # Back-substitute into the existing rows to keep them reduced.
            reduced = []
            for col, prow, pval in system:
                factor = prow[pivot]
                if factor:
                    prow = tuple(p - factor * w for p, w in zip(prow, work))
                    pval -= factor * value
                reduced.append((col, prow, pval))
            reduced.append((pivot, tuple(work), value))
            extend(idx + 1, reduced)

    extend(0, [])
    return vertices


def cross_check_vertices(
    a_ub: Iterable[Sequence],
    b_ub: Sequence,
    nonnegative: bool = True,
    max_dimension: int = 12,
) -> list[Vector]:
    """The flat reference enumerator (kept as the executable spec).

    Delegates to :func:`repro.util.rational.enumerate_polytope_vertices`;
    ``tests/test_lp_exact.py`` asserts its vertex set equals
    :func:`enumerate_vertices` on every generated polytope.
    """
    from repro.util.rational import enumerate_polytope_vertices

    return [
        tuple(v)
        for v in enumerate_polytope_vertices(
            a_ub, b_ub, nonnegative=nonnegative, max_dimension=max_dimension
        )
    ]


def minimize_by_enumeration(
    costs: Sequence,
    a_ub: Iterable[Sequence],
    b_ub: Sequence,
    max_dimension: int = 12,
) -> tuple[Fraction, Vector]:
    """Optimal (value, vertex) by brute vertex enumeration.

    Only valid when the optimum is attained at a vertex of the
    ``x >= 0``-intersected polyhedron *and* the feasible region has at
    least one vertex — true for all the covering programs here (their
    recession cones satisfy ``c @ d >= 0``).  Used as an independent
    cross-check of the simplex in the property tests.
    """
    cost_vec = _vec(costs)
    points = enumerate_vertices(a_ub, b_ub, max_dimension=max_dimension)
    if not points:
        raise LPInfeasibleError("no vertex: infeasible (or vertex-free) region")
    best = min(points, key=lambda p: (_dot(cost_vec, p), p))
    return _dot(cost_vec, best), best
