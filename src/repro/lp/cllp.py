"""The Conditional LLP (CLLP, Sec. 5.3.1) and its dual (Eq. (26)).

CLLP replaces LLP's cardinality constraints by *log-degree constraints*
``h(Y) - h(X) <= n_{Y|X}`` for pairs X ≺ Y in a pair set P.  Cardinality
constraints are the special case X = 0̂; FDs are degree bounds of 0; and
arbitrary known maximum degrees (Sec. 1.2) are first-class citizens
(Prop. 5.32).  The dual's (c, s, m) drives CSMA's proof-sequence
construction (Lemma 5.33 / Thm. 5.34).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping

from repro.lattice.lattice import Lattice
from repro.lattice.polymatroid import LatticeFunction
from repro.lp.solver import solve_lp


@dataclass(frozen=True)
class DegreeConstraint:
    """h(Y) - h(X) <= bound, for lattice elements X < Y (indices).

    ``guard`` optionally names the relation guarding the constraint in the
    sense of invariant (Inv1) of Sec. 5.3.3.
    """

    x: int
    y: int
    bound: float
    guard: str | None = None

    @property
    def pair(self) -> tuple[int, int]:
        return (self.x, self.y)


@dataclass
class DualCLLP:
    """A feasible dual solution (c, s, m) of Eq. (26)."""

    lattice: Lattice
    c: dict[tuple[int, int], Fraction]  # (X, Y) in P -> c_{Y|X}
    s: dict[tuple[int, int], Fraction]  # incomparable (A, B) -> s_{A,B}
    m: dict[tuple[int, int], Fraction]  # cover pair (X, Y), X ≺ Y -> m_{X,Y}

    def netflow(self, z: int) -> Fraction:
        """netflow(Z) as defined above Eq. (26)."""
        lat = self.lattice
        total = Fraction(0)
        for (x, y), value in self.c.items():
            if y == z:
                total += value
            if x == z:
                total -= value
        for (a, b), value in self.s.items():
            if lat.meet(a, b) == z:
                total += value
            if lat.join(a, b) == z:
                total += value
            if a == z or b == z:
                total -= value
        for (x, y), value in self.m.items():
            if y == z:
                total -= value
            if x == z:
                total += value
        return total

    def is_feasible(self) -> bool:
        lat = self.lattice
        if any(v < 0 for v in self.c.values()):
            return False
        if any(v < 0 for v in self.s.values()):
            return False
        if any(v < 0 for v in self.m.values()):
            return False
        for z in range(lat.n):
            if z == lat.bottom:
                continue
            required = Fraction(1) if z == lat.top else Fraction(0)
            if self.netflow(z) < required:
                return False
        return True

    def objective(self, bounds: Mapping[tuple[int, int], float]) -> Fraction:
        return sum(
            (value * Fraction(bounds[pair]).limit_denominator(10**9)
             for pair, value in self.c.items()),
            start=Fraction(0),
        )


@dataclass
class CLLPSolution:
    objective: float
    h: LatticeFunction
    dual: DualCLLP


class ConditionalLLP:
    """CLLP over a lattice with a set of degree constraints."""

    def __init__(self, lattice: Lattice, constraints: Iterable[DegreeConstraint]):
        self.lattice = lattice
        self.constraints: list[DegreeConstraint] = list(constraints)
        for dc in self.constraints:
            if not lattice.lt(dc.x, dc.y):
                raise ValueError(
                    f"degree constraint requires X < Y, got "
                    f"{lattice.label(dc.x)!r}, {lattice.label(dc.y)!r}"
                )

    @classmethod
    def from_cardinalities(
        cls,
        lattice: Lattice,
        inputs: Mapping[str, int],
        log_sizes: Mapping[str, float],
    ) -> "ConditionalLLP":
        """LLP as a CLLP: P = {(0̂, R_j)} (Prop. 5.32)."""
        constraints = [
            DegreeConstraint(lattice.bottom, r, float(log_sizes[name]), guard=name)
            for name, r in inputs.items()
        ]
        return cls(lattice, constraints)

    def with_constraint(self, constraint: DegreeConstraint) -> "ConditionalLLP":
        return ConditionalLLP(self.lattice, self.constraints + [constraint])

    # ------------------------------------------------------------------
    @property
    def pairs(self) -> list[tuple[int, int]]:
        return [dc.pair for dc in self.constraints]

    def bounds_by_pair(self) -> dict[tuple[int, int], float]:
        """Tightest bound per pair (several constraints may share a pair)."""
        out: dict[tuple[int, int], float] = {}
        for dc in self.constraints:
            if dc.pair not in out or dc.bound < out[dc.pair]:
                out[dc.pair] = dc.bound
        return out

    def _cover_pairs(self) -> list[tuple[int, int]]:
        lat = self.lattice
        return [
            (x, y) for x in range(lat.n) for y in lat.upper_covers[x]
        ]

    def solve_primal(self) -> tuple[float, LatticeFunction]:
        lat = self.lattice
        costs = [0.0] * lat.n
        costs[lat.top] = -1.0
        a_ub: list[list[float]] = []
        b_ub: list[float] = []
        bounds = self.bounds_by_pair()
        for (x, y), bound in bounds.items():
            row = [0.0] * lat.n
            row[y] += 1.0
            row[x] -= 1.0
            a_ub.append(row)
            b_ub.append(bound)
        for i, j in lat.incomparable_pairs:
            row = [0.0] * lat.n
            row[lat.meet(i, j)] += 1.0
            row[lat.join(i, j)] += 1.0
            row[i] -= 1.0
            row[j] -= 1.0
            a_ub.append(row)
            b_ub.append(0.0)
        for x, y in self._cover_pairs():
            row = [0.0] * lat.n
            row[x] += 1.0
            row[y] -= 1.0
            a_ub.append(row)
            b_ub.append(0.0)
        eq_row = [0.0] * lat.n
        eq_row[lat.bottom] = 1.0
        solution = solve_lp(costs, a_ub, b_ub, a_eq=[eq_row], b_eq=[0.0])
        return -solution.objective, LatticeFunction(lat, solution.x_rational)

    def solve_dual(self) -> DualCLLP:
        """Explicit dual (Eq. (26)): min Σ n_{Y|X} c_{Y|X} s.t. netflows."""
        lat = self.lattice
        bounds = self.bounds_by_pair()
        degree_pairs = list(bounds)
        incomparable = lat.incomparable_pairs
        cover_pairs = self._cover_pairs()
        n_c, n_s, n_m = len(degree_pairs), len(incomparable), len(cover_pairs)
        costs = (
            [bounds[p] for p in degree_pairs] + [0.0] * n_s + [0.0] * n_m
        )
        a_ub: list[list[float]] = []
        b_ub: list[float] = []
        for z in range(lat.n):
            if z == lat.bottom:
                continue
            row = [0.0] * (n_c + n_s + n_m)
            for k, (x, y) in enumerate(degree_pairs):
                if y == z:
                    row[k] += 1.0
                if x == z:
                    row[k] -= 1.0
            for k, (a, b) in enumerate(incomparable):
                if lat.meet(a, b) == z:
                    row[n_c + k] += 1.0
                if lat.join(a, b) == z:
                    row[n_c + k] += 1.0
                if a == z or b == z:
                    row[n_c + k] -= 1.0
            for k, (x, y) in enumerate(cover_pairs):
                if y == z:
                    row[n_c + n_s + k] -= 1.0
                if x == z:
                    row[n_c + n_s + k] += 1.0
            target = 1.0 if z == lat.top else 0.0
            a_ub.append([-v for v in row])
            b_ub.append(-target)
        solution = solve_lp(costs, a_ub, b_ub)
        c = {
            degree_pairs[k]: solution.x_rational[k]
            for k in range(n_c)
            if solution.x_rational[k] != 0
        }
        s = {
            incomparable[k]: solution.x_rational[n_c + k]
            for k in range(n_s)
            if solution.x_rational[n_c + k] != 0
        }
        m = {
            cover_pairs[k]: solution.x_rational[n_c + n_s + k]
            for k in range(n_m)
            if solution.x_rational[n_c + n_s + k] != 0
        }
        dual = DualCLLP(lat, c, s, m)
        if not dual.is_feasible():
            raise RuntimeError("CLLP dual certificate failed exact verification")
        return dual

    def solve(self) -> CLLPSolution:
        objective, h_raw = self.solve_primal()
        dual = self.solve_dual()
        return CLLPSolution(objective=objective, h=h_raw, dual=dual)
