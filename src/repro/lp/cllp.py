"""The Conditional LLP (CLLP, Sec. 5.3.1) and its dual (Eq. (26)).

CLLP replaces LLP's cardinality constraints by *log-degree constraints*
``h(Y) - h(X) <= n_{Y|X}`` for pairs X ≺ Y in a pair set P.  Cardinality
constraints are the special case X = 0̂; FDs are degree bounds of 0; and
arbitrary known maximum degrees (Sec. 1.2) are first-class citizens
(Prop. 5.32).  The dual's (c, s, m) drives CSMA's proof-sequence
construction (Lemma 5.33 / Thm. 5.34).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping

import numpy as np

from repro.lattice.lattice import Lattice
from repro.lattice.polymatroid import LatticeFunction
from repro.lp.exact import ExactCertificate
from repro.lp.solver import solve_lp


def lattice_lp_cache(lattice: Lattice) -> dict:
    """Per-lattice memo for LP solutions and constraint-matrix skeletons.

    Attached to the lattice instance (lattices are immutable after
    construction), so CSMA restarts, per-branch re-solves and the planner's
    repeated bound queries all share one cache with the lattice's lifetime.
    """
    cache = lattice.__dict__.get("_lp_memo")
    if cache is None:
        cache = {}
        lattice._lp_memo = cache
    return cache


def _solution_cache_key(*parts) -> tuple:
    """Memo key for a cached LP *solution* (not a matrix skeleton).

    Canonical-vertex selection made LP solutions a function of the
    program alone: every backend policy returns the same canonical exact
    rational vertex with a verified certificate (the ``scipy``/``both``
    policies only add a per-solve cross-check), so the key carries no
    backend component — an in-process ``REPRO_LP_BACKEND`` switch, as
    the differential tests perform, hits the same memo entry instead of
    solving the program once per policy.
    """
    return parts


@dataclass(frozen=True)
class DegreeConstraint:
    """h(Y) - h(X) <= bound, for lattice elements X < Y (indices).

    ``guard`` optionally names the relation guarding the constraint in the
    sense of invariant (Inv1) of Sec. 5.3.3.
    """

    x: int
    y: int
    bound: float
    guard: str | None = None

    @property
    def pair(self) -> tuple[int, int]:
        return (self.x, self.y)


@dataclass
class DualCLLP:
    """A feasible dual solution (c, s, m) of Eq. (26)."""

    lattice: Lattice
    c: dict[tuple[int, int], Fraction]  # (X, Y) in P -> c_{Y|X}
    s: dict[tuple[int, int], Fraction]  # incomparable (A, B) -> s_{A,B}
    m: dict[tuple[int, int], Fraction]  # cover pair (X, Y), X ≺ Y -> m_{X,Y}

    def netflow(self, z: int) -> Fraction:
        """netflow(Z) as defined above Eq. (26)."""
        lat = self.lattice
        total = Fraction(0)
        for (x, y), value in self.c.items():
            if y == z:
                total += value
            if x == z:
                total -= value
        for (a, b), value in self.s.items():
            if lat.meet(a, b) == z:
                total += value
            if lat.join(a, b) == z:
                total += value
            if a == z or b == z:
                total -= value
        for (x, y), value in self.m.items():
            if y == z:
                total -= value
            if x == z:
                total += value
        return total

    def is_feasible(self) -> bool:
        lat = self.lattice
        if any(v < 0 for v in self.c.values()):
            return False
        if any(v < 0 for v in self.s.values()):
            return False
        if any(v < 0 for v in self.m.values()):
            return False
        for z in range(lat.n):
            if z == lat.bottom:
                continue
            required = Fraction(1) if z == lat.top else Fraction(0)
            if self.netflow(z) < required:
                return False
        return True

    def objective(self, bounds: Mapping[tuple[int, int], float]) -> Fraction:
        return sum(
            (value * Fraction(bounds[pair]).limit_denominator(10**9)
             for pair, value in self.c.items()),
            start=Fraction(0),
        )


@dataclass
class CLLPSolution:
    objective: float
    h: LatticeFunction
    dual: DualCLLP
    #: Exact optimality certificate of the primal solve, present whenever
    #: the exact backend participated (REPRO_LP_BACKEND=exact/both, or a
    #: program under the auto cutoff).
    certificate: ExactCertificate | None = None


class ConditionalLLP:
    """CLLP over a lattice with a set of degree constraints."""

    def __init__(self, lattice: Lattice, constraints: Iterable[DegreeConstraint]):
        self.lattice = lattice
        self.constraints: list[DegreeConstraint] = list(constraints)
        for dc in self.constraints:
            if not lattice.lt(dc.x, dc.y):
                raise ValueError(
                    f"degree constraint requires X < Y, got "
                    f"{lattice.label(dc.x)!r}, {lattice.label(dc.y)!r}"
                )

    @classmethod
    def from_cardinalities(
        cls,
        lattice: Lattice,
        inputs: Mapping[str, int],
        log_sizes: Mapping[str, float],
    ) -> "ConditionalLLP":
        """LLP as a CLLP: P = {(0̂, R_j)} (Prop. 5.32)."""
        constraints = [
            DegreeConstraint(lattice.bottom, r, float(log_sizes[name]), guard=name)
            for name, r in inputs.items()
        ]
        return cls(lattice, constraints)

    def with_constraint(self, constraint: DegreeConstraint) -> "ConditionalLLP":
        return ConditionalLLP(self.lattice, self.constraints + [constraint])

    # ------------------------------------------------------------------
    @property
    def pairs(self) -> list[tuple[int, int]]:
        return [dc.pair for dc in self.constraints]

    def bounds_by_pair(self) -> dict[tuple[int, int], float]:
        """Tightest bound per pair (several constraints may share a pair)."""
        out: dict[tuple[int, int], float] = {}
        for dc in self.constraints:
            if dc.pair not in out or dc.bound < out[dc.pair]:
                out[dc.pair] = dc.bound
        return out

    def _cover_pairs(self) -> list[tuple[int, int]]:
        lat = self.lattice
        return [
            (x, y) for x in range(lat.n) for y in lat.upper_covers[x]
        ]

    def _primal_skeleton(self, degree_pairs: tuple[tuple[int, int], ...]):
        """Constraint matrix for the primal, cached per (lattice, pairs).

        Only the first ``len(degree_pairs)`` entries of ``b_ub`` depend on
        the constraint bounds; re-solves that merely tighten bounds (CSMA
        restarts) reuse the matrix and swap the ``b`` vector.
        """
        lat = self.lattice
        cache = lattice_lp_cache(lat)
        key = ("cllp-primal-skel", degree_pairs)
        skeleton = cache.get(key)
        if skeleton is None:
            a_ub: list[list[float]] = []
            for x, y in degree_pairs:
                row = [0.0] * lat.n
                row[y] += 1.0
                row[x] -= 1.0
                a_ub.append(row)
            for i, j in lat.incomparable_pairs:
                row = [0.0] * lat.n
                row[lat.meet(i, j)] += 1.0
                row[lat.join(i, j)] += 1.0
                row[i] -= 1.0
                row[j] -= 1.0
                a_ub.append(row)
            for x, y in self._cover_pairs():
                row = [0.0] * lat.n
                row[x] += 1.0
                row[y] -= 1.0
                a_ub.append(row)
            costs = [0.0] * lat.n
            costs[lat.top] = -1.0
            eq_row = [0.0] * lat.n
            eq_row[lat.bottom] = 1.0
            skeleton = (
                np.ascontiguousarray(a_ub, dtype=float),
                np.zeros(len(a_ub)),
                np.ascontiguousarray(costs, dtype=float),
                np.ascontiguousarray([eq_row], dtype=float),
            )
            cache[key] = skeleton
        return skeleton

    def _solve_primal_lp(self):
        """The raw primal LPSolution (carries the exact certificate when
        the exact backend participated)."""
        bounds = self.bounds_by_pair()
        degree_pairs = tuple(bounds)
        a_ub, b_template, costs, a_eq = self._primal_skeleton(degree_pairs)
        b_ub = b_template.copy()
        b_ub[: len(degree_pairs)] = [bounds[p] for p in degree_pairs]
        return solve_lp(costs, a_ub, b_ub, a_eq=a_eq, b_eq=[0.0])

    def solve_primal(self) -> tuple[float, LatticeFunction]:
        solution = self._solve_primal_lp()
        return -solution.objective, LatticeFunction(
            self.lattice, solution.x_rational
        )

    def _dual_skeleton(self, degree_pairs: tuple[tuple[int, int], ...]):
        """Dual constraint matrix, cached per (lattice, pairs) — only the
        cost vector depends on the bounds."""
        lat = self.lattice
        cache = lattice_lp_cache(lat)
        key = ("cllp-dual-skel", degree_pairs)
        skeleton = cache.get(key)
        if skeleton is None:
            incomparable = lat.incomparable_pairs
            cover_pairs = self._cover_pairs()
            n_c, n_s, n_m = (
                len(degree_pairs), len(incomparable), len(cover_pairs)
            )
            a_ub: list[list[float]] = []
            b_ub: list[float] = []
            for z in range(lat.n):
                if z == lat.bottom:
                    continue
                row = [0.0] * (n_c + n_s + n_m)
                for k, (x, y) in enumerate(degree_pairs):
                    if y == z:
                        row[k] += 1.0
                    if x == z:
                        row[k] -= 1.0
                for k, (a, b) in enumerate(incomparable):
                    if lat.meet(a, b) == z:
                        row[n_c + k] += 1.0
                    if lat.join(a, b) == z:
                        row[n_c + k] += 1.0
                    if a == z or b == z:
                        row[n_c + k] -= 1.0
                for k, (x, y) in enumerate(cover_pairs):
                    if y == z:
                        row[n_c + n_s + k] -= 1.0
                    if x == z:
                        row[n_c + n_s + k] += 1.0
                target = 1.0 if z == lat.top else 0.0
                a_ub.append([-v for v in row])
                b_ub.append(-target)
            skeleton = (
                np.ascontiguousarray(a_ub, dtype=float),
                np.ascontiguousarray(b_ub, dtype=float),
                incomparable,
                cover_pairs,
            )
            cache[key] = skeleton
        return skeleton

    def solve_dual(self) -> DualCLLP:
        """Explicit dual (Eq. (26)): min Σ n_{Y|X} c_{Y|X} s.t. netflows."""
        lat = self.lattice
        bounds = self.bounds_by_pair()
        degree_pairs = list(bounds)
        a_ub, b_ub, incomparable, cover_pairs = self._dual_skeleton(
            tuple(degree_pairs)
        )
        n_c, n_s, n_m = len(degree_pairs), len(incomparable), len(cover_pairs)
        costs = (
            [bounds[p] for p in degree_pairs] + [0.0] * n_s + [0.0] * n_m
        )
        solution = solve_lp(costs, a_ub, b_ub)
        c = {
            degree_pairs[k]: solution.x_rational[k]
            for k in range(n_c)
            if solution.x_rational[k] != 0
        }
        s = {
            incomparable[k]: solution.x_rational[n_c + k]
            for k in range(n_s)
            if solution.x_rational[n_c + k] != 0
        }
        m = {
            cover_pairs[k]: solution.x_rational[n_c + n_s + k]
            for k in range(n_m)
            if solution.x_rational[n_c + n_s + k] != 0
        }
        dual = DualCLLP(lat, c, s, m)
        if not dual.is_feasible():
            raise RuntimeError("CLLP dual certificate failed exact verification")
        return dual

    def solve(self) -> CLLPSolution:
        """Solve primal + dual, memoized on the canonical constraint
        multiset.

        CSMA restarts, per-branch re-solves and the planner's repeated
        bound queries frequently rebuild :class:`ConditionalLLP` objects
        with identical effective constraints; keying on the canonicalized
        (pair → tightest bound) map makes those hit the cache instead of
        rebuilding and re-solving the scipy LP.  Solutions are treated as
        immutable by all consumers.
        """
        cache = lattice_lp_cache(self.lattice)
        key = _solution_cache_key(
            "cllp-solve", tuple(sorted(self.bounds_by_pair().items()))
        )
        cached = cache.get(key)
        if cached is None:
            primal = self._solve_primal_lp()
            dual = self.solve_dual()
            cached = CLLPSolution(
                objective=-primal.objective,
                h=LatticeFunction(self.lattice, primal.x_rational),
                dual=dual,
                certificate=primal.certificate,
            )
            cache[key] = cached
        return cached
