"""Backend-dispatching LP front door: exact rational kernel + optional scipy.

All programs in this package are minimizations of ``c @ x`` subject to
``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq`` and ``x >= 0``.  ``solve_lp``
routes each program to one of two backends:

* **exact** (:mod:`repro.lp.exact`) — Fraction simplex returning a primal
  vertex, a dual vector and an :class:`~repro.lp.exact.ExactCertificate`
  verified in exact arithmetic.  The default for small programs (the chain
  bounds' fractional edge covers, vertex packings, …), so the chain
  algorithm's hot loop never touches scipy.
* **scipy** (HiGHS) — floating point with rational post-processing, used
  above the size cutoff when scipy is importable.  scipy is an *optional*
  dependency: without it every program solves exactly.

``REPRO_LP_BACKEND`` selects the policy:

* ``auto`` (default) — exact when ``n_vars <= EXACT_MAX_VARS`` and
  ``rows <= EXACT_MAX_ROWS`` (env ``REPRO_LP_EXACT_MAX_VARS`` /
  ``REPRO_LP_EXACT_MAX_ROWS``) or when scipy is missing; scipy otherwise.
* ``exact`` / ``scipy`` — force one backend for every program.
* ``both`` — solve with *both* backends and raise
  :class:`LPBackendMismatchError` unless the objectives agree; the
  returned solution keeps the scipy-shaped primal (bit-compatible with a
  plain scipy run) and carries the exact certificate.  CI runs the E16
  smoke in this mode.

Whatever the backend, the wrapper adds deterministic handling of empty
constraint blocks, dual values with consistent signs (a binding ``<=`` row
has a non-negative ``duals_ub`` weight — pinned by
``tests/test_lp_exact.py``), a rational solution vector, and a bounded
memo of solved programs keyed on the exact problem bytes *and* the
resolved backend — LP solving is a pure function, and the same LLP/CLLP
instances recur across benchmark sweeps, planner calls and CSMA restarts.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.lp.exact import (
    ExactCertificate,
    LPError,
    solve_exact_lp,
)
from repro.util.rational import rationalize

try:  # scipy is an optional extra (setup.py [scipy]); the exact backend
    from scipy.optimize import linprog as _linprog  # covers its absence.

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised by the no-scipy CI job
    _linprog = None
    HAVE_SCIPY = False


class LPBackendMismatchError(LPError):
    """``REPRO_LP_BACKEND=both`` found the two backends disagreeing."""


#: Size cutoff for the auto policy: programs at most this large solve on
#: the exact backend.  Tuned so every fractional edge cover / vertex
#: packing the chain search emits stays exact while the big lattice LPs
#: (whose optimal-vertex choice the CSMA/SMA trajectories were recorded
#: on) keep their scipy-selected vertices.
EXACT_MAX_VARS = int(os.environ.get("REPRO_LP_EXACT_MAX_VARS", "8"))
EXACT_MAX_ROWS = int(os.environ.get("REPRO_LP_EXACT_MAX_ROWS", "24"))

#: Absolute/relative tolerance for the ``both`` agreement assertion.
BOTH_OBJECTIVE_TOL = 1e-7

_BACKENDS = ("auto", "exact", "scipy", "both")

#: Per-context policy override.  The serving layer's admission control
#: forces the exact backend for its certified bound without mutating the
#: process environment other worker threads read concurrently.  Every
#: memo key derived from :func:`lp_backend` (here and in
#: :mod:`repro.lp.llp`) sees the override, so cached solutions never leak
#: across policies.
_BACKEND_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_lp_backend_override", default=None
)


def lp_backend() -> str:
    """The backend policy in force: the contextual override when one is
    installed, the env knob ``REPRO_LP_BACKEND`` otherwise."""
    value = _BACKEND_OVERRIDE.get()
    if value is None:
        value = os.environ.get("REPRO_LP_BACKEND", "auto").strip().lower() or "auto"
    if value not in _BACKENDS:
        raise ValueError(
            f"REPRO_LP_BACKEND must be one of {_BACKENDS}, got {value!r}"
        )
    return value


@contextmanager
def forced_lp_backend(policy: str):
    """Force ``policy`` (``auto``/``exact``/``scipy``/``both``) for the
    dynamic extent of the block, in this thread/context only."""
    if policy not in _BACKENDS:
        raise ValueError(
            f"backend policy must be one of {_BACKENDS}, got {policy!r}"
        )
    token = _BACKEND_OVERRIDE.set(policy)
    try:
        yield
    finally:
        _BACKEND_OVERRIDE.reset(token)


def _resolve_backend(n_vars: int, n_rows: int) -> str:
    """Collapse the policy to the backend(s) this program actually uses."""
    policy = lp_backend()
    if policy == "auto":
        if not HAVE_SCIPY:
            return "exact"
        if n_vars <= EXACT_MAX_VARS and n_rows <= EXACT_MAX_ROWS:
            return "exact"
        return "scipy"
    if policy in ("scipy", "both") and not HAVE_SCIPY:
        raise LPError(
            f"REPRO_LP_BACKEND={policy} requires scipy, which is not "
            "installed (install the [scipy] extra)"
        )
    return policy


#: Solved-program memo (problem bytes + backend → LPSolution).  LP solving
#: is pure, so returning the cached (immutable-by-convention) solution is
#: safe; the size cap bounds memory on long sweeps with many distinct
#: instances.
_SOLVE_CACHE: "OrderedDict[tuple, LPSolution]" = OrderedDict()
_SOLVE_CACHE_MAX = 512


@dataclass
class LPSolution:
    """Solution of a minimization LP.

    ``certificate`` is present whenever the exact backend participated in
    the solve: it carries the exact primal/dual pair and the verified
    optimality proof.  ``backend`` records which backend produced ``x``.
    """

    objective: float
    x: np.ndarray
    duals_ub: np.ndarray
    duals_eq: np.ndarray
    x_rational: list[Fraction]
    certificate: ExactCertificate | None = None
    backend: str = "scipy"

    @property
    def objective_rational(self) -> Fraction:
        if self.certificate is not None:
            return self.certificate.objective
        return rationalize(self.objective)


def _solve_scipy(costs: np.ndarray, kwargs: dict, max_denominator: int):
    result = _linprog(
        costs, bounds=[(0, None)] * costs.shape[0], method="highs", **kwargs
    )
    if not result.success:
        raise LPError(f"LP failed: {result.message}")
    duals_ub = np.zeros(0)
    duals_eq = np.zeros(0)
    if "A_ub" in kwargs and result.ineqlin is not None:
        # scipy returns non-positive marginals for <= rows of a minimization;
        # negate so a binding constraint has a non-negative dual weight.
        duals_ub = -np.asarray(result.ineqlin.marginals, dtype=float)
    if "A_eq" in kwargs and result.eqlin is not None:
        duals_eq = -np.asarray(result.eqlin.marginals, dtype=float)
    x_rational = [rationalize(v, max_denominator) for v in result.x]
    return LPSolution(
        objective=float(result.fun),
        x=np.asarray(result.x, dtype=float),
        duals_ub=duals_ub,
        duals_eq=duals_eq,
        x_rational=x_rational,
        backend="scipy",
    )


def _solve_exact(costs: np.ndarray, kwargs: dict) -> LPSolution:
    certificate = solve_exact_lp(
        costs.tolist(),
        a_ub=kwargs["A_ub"].tolist() if "A_ub" in kwargs else None,
        b_ub=kwargs["b_ub"].tolist() if "b_ub" in kwargs else None,
        a_eq=kwargs["A_eq"].tolist() if "A_eq" in kwargs else None,
        b_eq=kwargs["b_eq"].tolist() if "b_eq" in kwargs else None,
    )
    return LPSolution(
        objective=float(certificate.objective),
        x=np.array([float(v) for v in certificate.x], dtype=float),
        duals_ub=np.array([float(v) for v in certificate.y_ub], dtype=float),
        duals_eq=np.array([float(v) for v in certificate.y_eq], dtype=float),
        x_rational=list(certificate.x),
        certificate=certificate,
        backend="exact",
    )


def solve_lp(
    costs: Sequence[float],
    a_ub: Sequence[Sequence[float]] | None = None,
    b_ub: Sequence[float] | None = None,
    a_eq: Sequence[Sequence[float]] | None = None,
    b_eq: Sequence[float] | None = None,
    max_denominator: int = 10_000,
) -> LPSolution:
    """Minimize ``costs @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``, ``x >= 0``."""
    costs = np.ascontiguousarray(costs, dtype=float)
    n = costs.shape[0]
    kwargs = {}
    if a_ub is not None and len(a_ub) > 0:
        kwargs["A_ub"] = np.ascontiguousarray(a_ub, dtype=float)
        kwargs["b_ub"] = np.ascontiguousarray(b_ub, dtype=float)
    if a_eq is not None and len(a_eq) > 0:
        kwargs["A_eq"] = np.ascontiguousarray(a_eq, dtype=float)
        kwargs["b_eq"] = np.ascontiguousarray(b_eq, dtype=float)
    n_rows = (0 if "A_ub" not in kwargs else kwargs["A_ub"].shape[0]) + (
        0 if "A_eq" not in kwargs else kwargs["A_eq"].shape[0]
    )
    backend = _resolve_backend(n, n_rows)
    cache_key = (
        costs.tobytes(),
        kwargs["A_ub"].tobytes() if "A_ub" in kwargs else None,
        kwargs["b_ub"].tobytes() if "b_ub" in kwargs else None,
        kwargs["A_eq"].tobytes() if "A_eq" in kwargs else None,
        kwargs["b_eq"].tobytes() if "b_eq" in kwargs else None,
        kwargs["A_ub"].shape if "A_ub" in kwargs else None,
        max_denominator,
        backend,
    )
    cached = _SOLVE_CACHE.get(cache_key)
    if cached is not None:
        _SOLVE_CACHE.move_to_end(cache_key)
        return cached

    if backend == "exact":
        solution = _solve_exact(costs, kwargs)
    elif backend == "scipy":
        solution = _solve_scipy(costs, kwargs, max_denominator)
    else:  # both: scipy-shaped solution, exact certificate, agreement check
        exact = _solve_exact(costs, kwargs)
        solution = _solve_scipy(costs, kwargs, max_denominator)
        gap = abs(float(exact.certificate.objective) - solution.objective)
        scale = max(1.0, abs(solution.objective))
        if gap > BOTH_OBJECTIVE_TOL * scale:
            raise LPBackendMismatchError(
                f"exact/scipy objectives disagree: "
                f"{float(exact.certificate.objective)!r} (exact, verified) "
                f"vs {solution.objective!r} (scipy), gap {gap:g}"
            )
        solution.certificate = exact.certificate
        solution.backend = "both"

    _SOLVE_CACHE[cache_key] = solution
    if len(_SOLVE_CACHE) > _SOLVE_CACHE_MAX:
        _SOLVE_CACHE.popitem(last=False)
    return solution
