"""Thin wrapper over scipy's HiGHS LP solver with rational post-processing.

All programs in this package are minimizations of ``c @ x`` subject to
``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq`` and ``x >= 0``.  The wrapper adds:

* deterministic handling of empty constraint blocks,
* dual values (constraint marginals) surfaced with consistent signs,
* rationalization of the solution vector (the polytopes here have
  data-independent rational vertices, footnote 10 of the paper),
* a bounded memo of solved programs keyed on the exact problem bytes —
  LP solving is a pure function, and the same LLP/CLLP instances recur
  across benchmark sweeps, planner calls and CSMA restarts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.util.rational import rationalize


class LPError(RuntimeError):
    """Raised when an LP is infeasible/unbounded or the solver fails."""


#: Solved-program memo (problem bytes → LPSolution).  LP solving is pure,
#: so returning the cached (immutable-by-convention) solution is safe; the
#: size cap bounds memory on long sweeps with many distinct instances.
_SOLVE_CACHE: "OrderedDict[tuple, LPSolution]" = OrderedDict()
_SOLVE_CACHE_MAX = 512


@dataclass
class LPSolution:
    """Solution of a minimization LP."""

    objective: float
    x: np.ndarray
    duals_ub: np.ndarray
    duals_eq: np.ndarray
    x_rational: list[Fraction]

    @property
    def objective_rational(self) -> Fraction:
        return rationalize(self.objective)


def solve_lp(
    costs: Sequence[float],
    a_ub: Sequence[Sequence[float]] | None = None,
    b_ub: Sequence[float] | None = None,
    a_eq: Sequence[Sequence[float]] | None = None,
    b_eq: Sequence[float] | None = None,
    max_denominator: int = 10_000,
) -> LPSolution:
    """Minimize ``costs @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``, ``x >= 0``."""
    costs = np.ascontiguousarray(costs, dtype=float)
    n = costs.shape[0]
    kwargs = {}
    if a_ub is not None and len(a_ub) > 0:
        kwargs["A_ub"] = np.ascontiguousarray(a_ub, dtype=float)
        kwargs["b_ub"] = np.ascontiguousarray(b_ub, dtype=float)
    if a_eq is not None and len(a_eq) > 0:
        kwargs["A_eq"] = np.ascontiguousarray(a_eq, dtype=float)
        kwargs["b_eq"] = np.ascontiguousarray(b_eq, dtype=float)
    cache_key = (
        costs.tobytes(),
        kwargs["A_ub"].tobytes() if "A_ub" in kwargs else None,
        kwargs["b_ub"].tobytes() if "b_ub" in kwargs else None,
        kwargs["A_eq"].tobytes() if "A_eq" in kwargs else None,
        kwargs["b_eq"].tobytes() if "b_eq" in kwargs else None,
        kwargs["A_ub"].shape if "A_ub" in kwargs else None,
        max_denominator,
    )
    cached = _SOLVE_CACHE.get(cache_key)
    if cached is not None:
        _SOLVE_CACHE.move_to_end(cache_key)
        return cached
    result = linprog(costs, bounds=[(0, None)] * n, method="highs", **kwargs)
    if not result.success:
        raise LPError(f"LP failed: {result.message}")
    duals_ub = np.zeros(0)
    duals_eq = np.zeros(0)
    if "A_ub" in kwargs and result.ineqlin is not None:
        # scipy returns non-positive marginals for <= rows of a minimization;
        # negate so a binding constraint has a non-negative dual weight.
        duals_ub = -np.asarray(result.ineqlin.marginals, dtype=float)
    if "A_eq" in kwargs and result.eqlin is not None:
        duals_eq = -np.asarray(result.eqlin.marginals, dtype=float)
    x_rational = [rationalize(v, max_denominator) for v in result.x]
    solution = LPSolution(
        objective=float(result.fun),
        x=np.asarray(result.x, dtype=float),
        duals_ub=duals_ub,
        duals_eq=duals_eq,
        x_rational=x_rational,
    )
    _SOLVE_CACHE[cache_key] = solution
    if len(_SOLVE_CACHE) > _SOLVE_CACHE_MAX:
        _SOLVE_CACHE.popitem(last=False)
    return solution
