"""Backend-dispatching LP front door: exact canonical kernel + scipy cross-check.

All programs in this package are minimizations of ``c @ x`` subject to
``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq`` and ``x >= 0``.  Every solve is
**authoritatively exact**: :mod:`repro.lp.exact`'s Fraction simplex with
canonical lex-min vertex selection returns the one well-defined rational
vertex of each program (primal and dual), together with an
:class:`~repro.lp.exact.ExactCertificate` verified in exact arithmetic.
Because the vertex is a function of the program — not of pivoting history
or of which solver ran — solutions are backend-independent and the
CSMA/SMA/chain trajectories no longer depend on the LP policy.

``REPRO_LP_BACKEND`` selects the *policy*:

* ``auto`` / ``exact`` (default) — solve exactly; scipy is never touched.
  There is no size cutoff any more: the sparse Fraction simplex handles
  the big lattice LLP/CLLP programs, and the old
  ``REPRO_LP_EXACT_MAX_VARS`` / ``REPRO_LP_EXACT_MAX_ROWS`` knobs are
  gone.
* ``scipy`` / ``both`` — **cross-check mode**: the exact canonical
  solution is still what callers get, but every solve additionally runs
  scipy (HiGHS) and raises :class:`LPBackendMismatchError` unless (a)
  the float objective agrees with the certified exact optimum within
  ``BOTH_OBJECTIVE_TOL`` and (b) scipy's full primal vector lies on the
  certified optimal face within ``BOTH_VERTEX_TOL`` (feasible and
  optimal, every residual checked against the certified program) —
  per-solve vertex-level agreement, not just objectives.  CI runs the
  E16 smoke in this mode; it requires scipy (an optional extra —
  without it the two cross-check policies raise ``LPError`` while
  ``auto``/``exact`` keep working).

Whatever the policy, the wrapper adds deterministic handling of empty
constraint blocks, dual values with consistent signs (a binding ``<=`` row
has a non-negative ``duals_ub`` weight — pinned by
``tests/test_lp_exact.py``), a rational solution vector, and a bounded
memo of solved programs keyed on the exact problem bytes *and* the
backend the policy resolved to (``exact`` vs cross-check) — LP solving is
a pure function, and the same LLP/CLLP instances recur across benchmark
sweeps, planner calls and CSMA restarts.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro import config
from repro.lp.exact import (
    ExactCertificate,
    LPError,
    solve_exact_lp,
)
from repro.util.rational import rationalize

try:  # scipy is an optional extra (setup.py [scipy]); the exact backend
    from scipy.optimize import linprog as _linprog  # covers its absence.

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised by the no-scipy CI job
    _linprog = None
    HAVE_SCIPY = False


class LPBackendMismatchError(LPError):
    """The scipy cross-check disagreed with the certified exact solve."""


#: Absolute/relative tolerance for the cross-check objective assertion.
BOTH_OBJECTIVE_TOL = 1e-7

#: Per-constraint residual tolerance for the cross-check *vertex*
#: assertion: scipy's primal vector must be feasible and optimal for the
#: certified program within this (relative) slack.
BOTH_VERTEX_TOL = 1e-6

_BACKENDS = ("auto", "exact", "scipy", "both")

#: Per-context policy override.  The serving layer's admission control
#: forces the exact backend for its certified bound without mutating the
#: process environment other worker threads read concurrently.
_BACKEND_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_lp_backend_override", default=None
)


def lp_backend() -> str:
    """The backend policy in force: the contextual override when one is
    installed, the env knob ``REPRO_LP_BACKEND`` otherwise.  Unknown
    policies raise :class:`~repro.config.ConfigError` (a ``ValueError``)
    whether they arrive via the env or the override."""
    value = _BACKEND_OVERRIDE.get()
    if value is None:
        return config.get("REPRO_LP_BACKEND")
    if value not in _BACKENDS:
        raise config.ConfigError(
            f"REPRO_LP_BACKEND must be one of {_BACKENDS}, got {value!r}"
        )
    return value


@contextmanager
def forced_lp_backend(policy: str):
    """Force ``policy`` (``auto``/``exact``/``scipy``/``both``) for the
    dynamic extent of the block, in this thread/context only."""
    if policy not in _BACKENDS:
        raise ValueError(
            f"backend policy must be one of {_BACKENDS}, got {policy!r}"
        )
    token = _BACKEND_OVERRIDE.set(policy)
    try:
        yield
    finally:
        _BACKEND_OVERRIDE.reset(token)


def resolved_lp_backend() -> str:
    """Collapse the policy to what a solve actually does: ``"exact"``
    (``auto``/``exact`` — canonical exact solve only) or ``"cross"``
    (``scipy``/``both`` — canonical exact solve plus a per-solve scipy
    agreement assertion).  Memo keys use this, so policies that behave
    identically share cached solutions."""
    policy = lp_backend()
    if policy in ("auto", "exact"):
        return "exact"
    if not HAVE_SCIPY:
        raise LPError(
            f"REPRO_LP_BACKEND={policy} requires scipy, which is not "
            "installed (install the [scipy] extra)"
        )
    return "cross"


#: Solved-program memo (problem bytes + resolved backend → LPSolution).
#: LP solving is pure, so returning the cached (immutable-by-convention)
#: solution is safe; the size cap bounds memory on long sweeps with many
#: distinct instances.
_SOLVE_CACHE: "OrderedDict[tuple, LPSolution]" = OrderedDict()
_SOLVE_CACHE_MAX = 512


@dataclass
class LPSolution:
    """Solution of a minimization LP.

    ``x``/``x_rational`` is always the canonical exact vertex and
    ``certificate`` always carries the verified optimality proof.
    ``backend`` records the policy family that produced the solution:
    ``"exact"`` for a pure exact solve, ``"both"`` when the scipy
    cross-check also ran (the ``scipy`` and ``both`` policies are
    aliases for cross-check mode).
    """

    objective: float
    x: np.ndarray
    duals_ub: np.ndarray
    duals_eq: np.ndarray
    x_rational: list[Fraction]
    certificate: ExactCertificate | None = None
    backend: str = "exact"

    @property
    def objective_rational(self) -> Fraction:
        if self.certificate is not None:
            return self.certificate.objective
        return rationalize(self.objective)


def _solve_scipy(costs: np.ndarray, kwargs: dict, max_denominator: int):
    result = _linprog(
        costs, bounds=[(0, None)] * costs.shape[0], method="highs", **kwargs
    )
    if not result.success:
        raise LPError(f"LP failed: {result.message}")
    duals_ub = np.zeros(0)
    duals_eq = np.zeros(0)
    if "A_ub" in kwargs and result.ineqlin is not None:
        # scipy returns non-positive marginals for <= rows of a minimization;
        # negate so a binding constraint has a non-negative dual weight.
        duals_ub = -np.asarray(result.ineqlin.marginals, dtype=float)
    if "A_eq" in kwargs and result.eqlin is not None:
        duals_eq = -np.asarray(result.eqlin.marginals, dtype=float)
    x_rational = [rationalize(v, max_denominator) for v in result.x]
    return LPSolution(
        objective=float(result.fun),
        x=np.asarray(result.x, dtype=float),
        duals_ub=duals_ub,
        duals_eq=duals_eq,
        x_rational=x_rational,
        backend="scipy",
    )


def _solve_exact(costs: np.ndarray, kwargs: dict) -> LPSolution:
    certificate = solve_exact_lp(
        costs.tolist(),
        a_ub=kwargs["A_ub"].tolist() if "A_ub" in kwargs else None,
        b_ub=kwargs["b_ub"].tolist() if "b_ub" in kwargs else None,
        a_eq=kwargs["A_eq"].tolist() if "A_eq" in kwargs else None,
        b_eq=kwargs["b_eq"].tolist() if "b_eq" in kwargs else None,
    )
    return LPSolution(
        objective=float(certificate.objective),
        x=np.array([float(v) for v in certificate.x], dtype=float),
        duals_ub=np.array([float(v) for v in certificate.y_ub], dtype=float),
        duals_eq=np.array([float(v) for v in certificate.y_eq], dtype=float),
        x_rational=list(certificate.x),
        certificate=certificate,
        backend="exact",
    )


def _assert_scipy_agrees(
    exact: LPSolution,
    scipy_solution: LPSolution,
    costs: np.ndarray,
    kwargs: dict,
) -> None:
    """The cross-check contract: scipy must confirm the certified solve,
    per-solve and vertex-level, not just by objective.

    * The float objective agrees with the certified exact optimum within
      ``BOTH_OBJECTIVE_TOL``.
    * scipy's full primal *vector* lies on the certified optimal face
      within ``BOTH_VERTEX_TOL``: non-negative, every ``<=`` and ``==``
      row satisfied, and its cost equal to the certified optimum — all
      residuals measured against the certified program.  (Coordinate
      equality with the canonical vertex would be unsound: on a
      degenerate face HiGHS may legitimately return a *different*
      optimal vertex; what it may not do is return an infeasible or
      sub-optimal point.)
    """
    certificate = exact.certificate
    gap = abs(float(certificate.objective) - scipy_solution.objective)
    scale = max(1.0, abs(scipy_solution.objective))
    if gap > BOTH_OBJECTIVE_TOL * scale:
        raise LPBackendMismatchError(
            f"exact/scipy objectives disagree: "
            f"{float(certificate.objective)!r} (exact, verified) "
            f"vs {scipy_solution.objective!r} (scipy), gap {gap:g}"
        )
    x = scipy_solution.x
    residual = -float(x.min(initial=0.0))
    if "A_ub" in kwargs:
        slack = kwargs["A_ub"] @ x - kwargs["b_ub"]
        residual = max(residual, float(slack.max(initial=0.0)))
    if "A_eq" in kwargs:
        residual = max(
            residual, float(np.abs(kwargs["A_eq"] @ x - kwargs["b_eq"]).max())
        )
    residual = max(
        residual, abs(float(costs @ x) - float(certificate.objective)) / scale
    )
    row_scale = max(1.0, float(np.abs(x).max(initial=0.0)))
    if residual > BOTH_VERTEX_TOL * row_scale:
        raise LPBackendMismatchError(
            "scipy's vertex is not on the certified optimal face: residual "
            f"{residual:g} at {x!r}, certified optimum "
            f"{certificate.objective!r} at {list(certificate.x)!r}"
        )


def solve_lp(
    costs: Sequence[float],
    a_ub: Sequence[Sequence[float]] | None = None,
    b_ub: Sequence[float] | None = None,
    a_eq: Sequence[Sequence[float]] | None = None,
    b_eq: Sequence[float] | None = None,
    max_denominator: int = 10_000,
) -> LPSolution:
    """Minimize ``costs @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``, ``x >= 0``."""
    costs = np.ascontiguousarray(costs, dtype=float)
    kwargs = {}
    if a_ub is not None and len(a_ub) > 0:
        kwargs["A_ub"] = np.ascontiguousarray(a_ub, dtype=float)
        kwargs["b_ub"] = np.ascontiguousarray(b_ub, dtype=float)
    if a_eq is not None and len(a_eq) > 0:
        kwargs["A_eq"] = np.ascontiguousarray(a_eq, dtype=float)
        kwargs["b_eq"] = np.ascontiguousarray(b_eq, dtype=float)
    backend = resolved_lp_backend()
    cache_key = (
        costs.tobytes(),
        kwargs["A_ub"].tobytes() if "A_ub" in kwargs else None,
        kwargs["b_ub"].tobytes() if "b_ub" in kwargs else None,
        kwargs["A_eq"].tobytes() if "A_eq" in kwargs else None,
        kwargs["b_eq"].tobytes() if "b_eq" in kwargs else None,
        kwargs["A_ub"].shape if "A_ub" in kwargs else None,
        max_denominator,
        backend,
    )
    cached = _SOLVE_CACHE.get(cache_key)
    if cached is not None:
        _SOLVE_CACHE.move_to_end(cache_key)
        return cached

    solution = _solve_exact(costs, kwargs)
    if backend == "cross":
        _assert_scipy_agrees(
            solution, _solve_scipy(costs, kwargs, max_denominator), costs, kwargs
        )
        solution.backend = "both"

    _SOLVE_CACHE[cache_key] = solution
    if len(_SOLVE_CACHE) > _SOLVE_CACHE_MAX:
        _SOLVE_CACHE.popitem(last=False)
    return solution
