"""Linear-programming substrate: LP solver wrapper, LLP (Sec. 3.3), CLLP (Sec. 5.3.1)."""

from repro.lp.solver import LPSolution, solve_lp
from repro.lp.llp import LatticeLinearProgram, LLPSolution, OutputInequality
from repro.lp.cllp import ConditionalLLP, CLLPSolution, DegreeConstraint

__all__ = [
    "LPSolution",
    "solve_lp",
    "LatticeLinearProgram",
    "LLPSolution",
    "OutputInequality",
    "ConditionalLLP",
    "CLLPSolution",
    "DegreeConstraint",
]
