"""Linear-programming substrate: exact rational kernel + optional scipy
backend behind one front door (``solve_lp``), LLP (Sec. 3.3), CLLP
(Sec. 5.3.1)."""

from repro.lp.exact import (
    ExactCertificate,
    ExactLP,
    LPError,
    LPInfeasibleError,
    LPUnboundedError,
    enumerate_vertices,
    minimize_by_enumeration,
    solve_exact_lp,
)
from repro.lp.solver import (
    HAVE_SCIPY,
    LPBackendMismatchError,
    LPSolution,
    lp_backend,
    solve_lp,
)
from repro.lp.llp import LatticeLinearProgram, LLPSolution, OutputInequality
from repro.lp.cllp import ConditionalLLP, CLLPSolution, DegreeConstraint

__all__ = [
    "ExactCertificate",
    "ExactLP",
    "LPError",
    "LPInfeasibleError",
    "LPUnboundedError",
    "LPBackendMismatchError",
    "LPSolution",
    "HAVE_SCIPY",
    "lp_backend",
    "solve_lp",
    "solve_exact_lp",
    "enumerate_vertices",
    "minimize_by_enumeration",
    "LatticeLinearProgram",
    "LLPSolution",
    "OutputInequality",
    "ConditionalLLP",
    "CLLPSolution",
    "DegreeConstraint",
]
