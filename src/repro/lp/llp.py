"""The Lattice Linear Program (LLP, Eq. (5)) and its dual (Eq. (8)).

``max h(1̂)`` over non-negative L-submodular h with cardinality constraints
``h(R_j) <= n_j``.  Proposition 3.4: the optimum equals the GLVV bound
``log2 GLVV(Q, FD, (N_j))``.  The dual's (w, s) is a *certificate*: an
output inequality Σ w_j h(R_j) >= h(1̂) together with the submodularity
steps proving it (Lemma 3.9); certificates are rationalized and re-verified
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from repro.lattice.lattice import Lattice
from repro.lattice.polymatroid import LatticeFunction
from repro.lp.cllp import _solution_cache_key, lattice_lp_cache
from repro.lp.exact import ExactCertificate
from repro.lp.solver import solve_lp
from repro.util.rational import rationalize


@dataclass
class OutputInequality:
    """Σ_j w_j h(R_j) >= h(1̂), with the submodularity multipliers s proving it.

    ``weights`` maps input name -> w_j; ``steps`` maps incomparable index
    pairs (i, j) -> s_{i,j} (Lemma 3.9 item iii).
    """

    lattice: Lattice
    inputs: dict[str, int]
    weights: dict[str, Fraction]
    steps: dict[tuple[int, int], Fraction] = field(default_factory=dict)

    def bound(self, log_sizes: Mapping[str, float]) -> float:
        """The induced output-size bound Σ w_j n_j (in log2)."""
        return sum(float(w) * float(log_sizes[name]) for name, w in self.weights.items())

    def verify_on(self, h: LatticeFunction) -> bool:
        """Check the inequality on one concrete (sub)modular function."""
        lhs = sum(
            (w * h.values[self.inputs[name]] for name, w in self.weights.items()),
            start=Fraction(0),
        )
        return lhs >= h.values[self.lattice.top]

    def verify_certificate(self) -> bool:
        """Exactly check c^T <= s^T M (Lemma 3.9 iii): for every element Z,
        the multipliers' net contribution at Z dominates c_Z
        (c_1̂ = 1, c_{R_j} = -w_j, else 0)."""
        lat = self.lattice
        net = [Fraction(0)] * lat.n
        for (i, j), s in self.steps.items():
            if s < 0:
                return False
            net[lat.meet(i, j)] += s
            net[lat.join(i, j)] += s
            net[i] -= s
            net[j] -= s
        target = [Fraction(0)] * lat.n
        target[lat.top] += Fraction(1)
        for name, w in self.weights.items():
            if w < 0:
                return False
            target[self.inputs[name]] -= w
        # Need target <= net on every coordinate except 0̂ (h(0̂) = 0).
        return all(
            target[z] <= net[z] for z in range(lat.n) if z != lat.bottom
        )


@dataclass
class LLPSolution:
    """Primal/dual optimal pair for one LLP instance."""

    objective: float
    h: LatticeFunction            # optimal polymatroid (Lovász-monotonized)
    h_raw: LatticeFunction        # raw optimal submodular function
    inequality: OutputInequality  # dual certificate (w*, s*)
    #: Exact optimality certificate of the primal solve, when the exact
    #: backend participated.
    certificate: ExactCertificate | None = None

    @property
    def glvv_log2(self) -> float:
        """log2 of the GLVV bound (Prop. 3.4)."""
        return self.objective


class LatticeLinearProgram:
    """LLP for a query in lattice presentation (L, R) with log-cardinalities."""

    def __init__(
        self,
        lattice: Lattice,
        inputs: Mapping[str, int],
        log_sizes: Mapping[str, float],
    ):
        self.lattice = lattice
        self.inputs = dict(inputs)
        self.log_sizes = {name: float(v) for name, v in log_sizes.items()}
        missing = set(self.inputs) - set(self.log_sizes)
        if missing:
            raise ValueError(f"no cardinality for inputs: {missing}")
        if lattice.join_all(self.inputs.values()) != lattice.top:
            raise ValueError("inputs must join to 1̂ (Sec. 3.1)")
        # Canonical instance key for the per-lattice LP memo: the planner
        # and the benchmark sweeps re-solve identical LLPs many times.
        self._memo_key = tuple(
            sorted(
                (name, element, self.log_sizes[name])
                for name, element in self.inputs.items()
            )
        )

    # ------------------------------------------------------------------
    def _submodularity_rows(self) -> tuple[list[list[float]], list[float]]:
        lat = self.lattice
        a_ub: list[list[float]] = []
        for i, j in lat.incomparable_pairs:
            row = [0.0] * lat.n
            row[lat.meet(i, j)] += 1.0
            row[lat.join(i, j)] += 1.0
            row[i] -= 1.0
            row[j] -= 1.0
            a_ub.append(row)
        return a_ub, [0.0] * len(a_ub)

    def solve_primal(self) -> tuple[float, LatticeFunction]:
        """max h(1̂): returns (optimum, raw optimal submodular function).

        Memoized per lattice on the canonical (name, element, log-size)
        multiset — the planner's repeated bound queries hit the cache.
        """
        objective, h_raw, _ = self._solve_primal_full()
        return objective, h_raw

    def _solve_primal_full(self) -> tuple[float, LatticeFunction, "ExactCertificate | None"]:
        cache = lattice_lp_cache(self.lattice)
        key = _solution_cache_key("llp-primal", self._memo_key)
        cached = cache.get(key)
        if cached is not None:
            return cached
        lat = self.lattice
        costs = [0.0] * lat.n
        costs[lat.top] = -1.0  # maximize h(1̂)
        a_ub, b_ub = self._submodularity_rows()
        for name, r in self.inputs.items():
            row = [0.0] * lat.n
            row[r] = 1.0
            a_ub.append(row)
            b_ub.append(self.log_sizes[name])
        eq_row = [0.0] * lat.n
        eq_row[lat.bottom] = 1.0
        solution = solve_lp(costs, a_ub, b_ub, a_eq=[eq_row], b_eq=[0.0])
        h_raw = LatticeFunction(lat, solution.x_rational)
        result = (-solution.objective, h_raw, solution.certificate)
        cache[key] = result
        return result

    def solve_dual(self) -> OutputInequality:
        """min Σ w_j n_j over dual-feasible (w, s) (Eq. (8) generalized to a
        netflow constraint at every element, cf. Eq. (26) without m)."""
        lat = self.lattice
        pairs = lat.incomparable_pairs
        names = list(self.inputs)
        n_s = len(pairs)
        n_w = len(names)
        costs = [0.0] * n_s + [self.log_sizes[name] for name in names]
        # One >= constraint per element Z != 0̂:  net(Z) >= c_Z.
        a_ub: list[list[float]] = []
        b_ub: list[float] = []
        for z in range(lat.n):
            if z == lat.bottom:
                continue
            row = [0.0] * (n_s + n_w)
            for k, (i, j) in enumerate(pairs):
                if lat.meet(i, j) == z:
                    row[k] += 1.0
                if lat.join(i, j) == z:
                    row[k] += 1.0
                if i == z or j == z:
                    row[k] -= 1.0
            for k, name in enumerate(names):
                if self.inputs[name] == z:
                    row[n_s + k] += 1.0
            target = 1.0 if z == lat.top else 0.0
            # net(Z) >= target   <=>   -net(Z) <= -target
            a_ub.append([-v for v in row])
            b_ub.append(-target)
        solution = solve_lp(costs, a_ub, b_ub)
        steps = {
            pairs[k]: solution.x_rational[k]
            for k in range(n_s)
            if solution.x_rational[k] != 0
        }
        weights = {
            name: solution.x_rational[n_s + k] for k, name in enumerate(names)
        }
        inequality = OutputInequality(lat, self.inputs, weights, steps)
        if not inequality.verify_certificate():
            # Retry rationalization with exact float fractions as fallback.
            steps = {
                pairs[k]: Fraction(float(solution.x[k])).limit_denominator(10**6)
                for k in range(n_s)
                if abs(solution.x[k]) > 1e-9
            }
            weights = {
                name: Fraction(float(solution.x[n_s + k])).limit_denominator(10**6)
                for k, name in enumerate(names)
            }
            inequality = OutputInequality(lat, self.inputs, weights, steps)
            if not inequality.verify_certificate():
                raise RuntimeError("dual certificate failed exact verification")
        return inequality

    def solve(self) -> LLPSolution:
        """Primal + verified dual certificate, memoized per lattice.

        Consumers treat :class:`LLPSolution` as immutable, so the cached
        object is shared across the planner, SMA setup and the generators.
        """
        cache = lattice_lp_cache(self.lattice)
        key = _solution_cache_key("llp-solve", self._memo_key)
        cached = cache.get(key)
        if cached is None:
            objective, h_raw, certificate = self._solve_primal_full()
            inequality = self.solve_dual()
            h = h_raw.lovasz_monotonization()
            cached = LLPSolution(
                objective=objective,
                h=h,
                h_raw=h_raw,
                inequality=inequality,
                certificate=certificate,
            )
            cache[key] = cached
        return cached


def glvv_bound_log2(
    lattice: Lattice,
    inputs: Mapping[str, int],
    log_sizes: Mapping[str, float],
) -> float:
    """Convenience: the GLVV bound (Prop. 3.4) in log2."""
    program = LatticeLinearProgram(lattice, inputs, log_sizes)
    objective, _ = program.solve_primal()
    return objective
