"""Instance generators: product, quasi-product, adversarial, and
large-frontier workloads."""

from repro.datagen.product import product_database, random_database
from repro.datagen.worstcase import (
    skew_instance_example_5_8,
    grid_instance_example_5_5,
    m3_modular_instance,
    fig4_instance,
    fig9_instance,
    colored_degree_triangle,
)
from repro.datagen.large import (
    composite,
    large_chain_workload,
    large_csma_workload,
    large_cyclic_key_workload,
    large_generic_workload,
    large_lftj_workload,
)

__all__ = [
    "product_database",
    "random_database",
    "skew_instance_example_5_8",
    "grid_instance_example_5_5",
    "m3_modular_instance",
    "fig4_instance",
    "fig9_instance",
    "colored_degree_triangle",
    "composite",
    "large_chain_workload",
    "large_csma_workload",
    "large_cyclic_key_workload",
    "large_generic_workload",
    "large_lftj_workload",
]
