"""Instance generators: product, quasi-product, and adversarial workloads."""

from repro.datagen.product import product_database, random_database
from repro.datagen.worstcase import (
    skew_instance_example_5_8,
    grid_instance_example_5_5,
    m3_modular_instance,
    fig4_instance,
    fig9_instance,
    colored_degree_triangle,
)

__all__ = [
    "product_database",
    "random_database",
    "skew_instance_example_5_8",
    "grid_instance_example_5_5",
    "m3_modular_instance",
    "fig4_instance",
    "fig9_instance",
    "colored_degree_triangle",
]
