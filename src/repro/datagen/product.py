"""Product and random database instances (Thm. 2.1's worst case)."""

from __future__ import annotations

import itertools
import random
from typing import Mapping

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.query.query import Query


def product_database(
    query: Query, domain_sizes: Mapping[str, int]
) -> Database:
    """The product instance: R_j = Π_{x ∈ vars(R_j)} [D_x] (Sec. 2).

    On such an instance the query output is the full cross product
    Π_x [D_x] — the AGM lower-bound construction.
    """
    relations = []
    for atom in query.atoms:
        domains = [range(domain_sizes[v]) for v in atom.attrs]
        relations.append(
            Relation(atom.name, atom.attrs, itertools.product(*domains))
        )
    return Database(relations, fds=query.fds)


def random_database(
    query: Query,
    size: int,
    domain: int | None = None,
    seed: int = 0,
) -> Database:
    """Uniform random instance with ``size`` tuples per relation.

    Only meaningful for queries without fds (enforcing fds on random data
    needs the quasi-product construction of
    :func:`repro.lattice.embedding.quasi_product_instance`).
    """
    rng = random.Random(seed)
    domain = domain if domain is not None else max(4, int(size**0.5) * 2)
    relations = []
    for atom in query.atoms:
        tuples = {
            tuple(rng.randrange(domain) for _ in atom.attrs)
            for _ in range(size)
        }
        relations.append(Relation(atom.name, atom.attrs, tuples))
    return Database(relations, fds=query.fds)
