"""Large-frontier workload generators (the E17 scaling suite).

E16 proves the paper's *shapes* on small instances; these generators
produce the ≥1M-row frontiers that the dictionary-encoded data plane is
for.  Attribute values are **composite keys** — 3-tuples of ints, the
shape of real join keys (multi-part ids, coordinate pairs, feature
hashes).  Python tuples do not cache their hash, so on the decoded plane
every guard probe, index lookup and trie seek re-hashes the composite;
the encoded plane probes with small ints (or flat dense tables) instead.
That is exactly the gap BENCH_PR4's E17 section tracks.

Four workloads, one per engine family the suite must cover:

* :func:`large_chain_workload` — a cyclic simple-key query (one relation
  is a functional guard) for the Chain Algorithm; the climb pushes the
  whole per-step frontier through compiled guard plans.
* :func:`large_generic_workload` — the same family for the FD-aware
  generic join: determined variables bind through batched plan execution,
  the rest through index probes on composite keys.
* :func:`large_lftj_workload` — a dense triangle for LeapFrog TrieJoin:
  wide trie levels make the seek path (bisect over sort keys) the cost
  center.
* :func:`large_csma_workload` — the degree-bounded triangle of query (2):
  CSMA with a witnessed ``DegreeConstraint`` runs CD bucketing plus pure
  join/filter passes — no UDFs anywhere on the hot path.

Every generator is deterministic for a given size (seeded RNG), so
``tuples_touched`` is reproducible and gateable across engine
generations.
"""

from __future__ import annotations

import random

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.query.query import Atom, Query


def composite(i: int) -> tuple:
    """A nested composite key (two 4-part groups): distinct per ``i``.

    Python tuples do not cache their hash, so every probe on the decoded
    plane re-hashes all eight components; dictionary-encoded, the same
    key is one small int.
    """
    return (
        (i, i ^ 0x5DEECE66D, (i * 2654435761) & 0x3FFFFFFF, i % 7919),
        (i * 31 & 0xFFFF, i * 17 & 0xFFF, (i >> 3) & 0xFFFF, i & 63),
    )


def large_cyclic_key_workload(
    n: int, n_atoms: int = 3, seed: int = 0, encode: bool | None = None
) -> tuple[Query, Database]:
    """A cyclic query with one functional (simple-key) relation, scaled.

    ``R_k(v_k, v_{k+1})`` for k in a cycle; ``R_0`` is functional
    (``v_0 → v_1``, the fd's guard), the others are random graphs with
    ``n`` edges over a ``Θ(n)`` domain of composite keys.  The shape is
    the differential corpus' simple-key family
    (``tests/differential.py``), sized so engine frontiers reach millions
    of rows.
    """
    if not 2 <= n_atoms <= 4:
        raise ValueError(
            f"n_atoms must be between 2 and 4 (single-char variables), "
            f"got {n_atoms}"
        )
    rng = random.Random(seed + 7)
    variables = list("wxyz")[:n_atoms]
    atoms = [
        Atom(f"R{k}", (variables[k], variables[(k + 1) % n_atoms]))
        for k in range(n_atoms)
    ]
    fds = FDSet([FD(variables[0], variables[1])], variables)
    query = Query(atoms, fds)
    domain = max(4, n // 2)
    relations = []
    for k, atom in enumerate(atoms):
        if k == 0:
            tuples = {
                (composite(v), composite((v * 3 + 1) % domain))
                for v in range(domain)
            }
        else:
            tuples = {
                (
                    composite(rng.randrange(domain)),
                    composite(rng.randrange(domain)),
                )
                for _ in range(n)
            }
        relations.append(Relation(atom.name, atom.attrs, tuples))
    return query, Database(relations, fds=fds, encode=encode)


def large_chain_workload(
    n: int, seed: int = 0, encode: bool | None = None
) -> tuple[Query, Database]:
    """Guarded query (1) on the Ex. 5.8 skew pattern, composite values.

    Same query and chain as the E16 skew workload, but the two fds
    (``xz→u``, ``yu→x``) are witnessed by *stored guard relations* ``FU``
    and ``GX`` (realizing ``u = x`` on the skew support) instead of UDFs —
    so the Chain Algorithm's candidate expansion and footnote-8
    verification run pure guard-lookup batches, the operation the encoded
    plane accelerates.  Guards hold ~n rows; candidates outside their
    support dangle and are dropped, like any selective join.
    """
    from repro.query.query import paper_example_query

    query = paper_example_query()
    half = max(2, n // 2)
    one = composite(1)
    pairs = {(one, composite(i)) for i in range(1, half + 1)} | {
        (composite(i), one) for i in range(1, half + 1)
    }
    # u = x on the skew support: hub rows (x = 1) and spoke rows (z = 1).
    fu = {(one, composite(b), one) for b in range(1, half + 1)} | {
        (composite(a), one, composite(a)) for a in range(1, half + 1)
    }
    # x = u on the same support, keyed by (y, u).
    gx = {(one, composite(a), composite(a)) for a in range(1, half + 1)} | {
        (composite(b), one, one) for b in range(1, half + 1)
    }
    db = Database(
        [
            Relation("R", ("x", "y"), pairs),
            Relation("S", ("y", "z"), pairs),
            Relation("T", ("z", "u"), pairs),
            Relation("FU", ("x", "z", "u"), fu),
            Relation("GX", ("y", "u", "x"), gx),
        ],
        fds=query.fds,
        encode=encode,
    )
    return query, db


def large_generic_workload(
    n: int, seed: int = 1, encode: bool | None = None
) -> tuple[Query, Database]:
    """The cyclic-key family (4 atoms), for the FD-aware generic join."""
    return large_cyclic_key_workload(n, n_atoms=4, seed=seed, encode=encode)


def large_lftj_workload(
    n: int, seed: int = 2, encode: bool | None = None
) -> tuple[Query, Database]:
    """A dense triangle for LFTJ: composite-key vertices, wide trie levels.

    Edges are uniform over a ``Θ(n/120)`` vertex domain — a dense graph
    whose triangle count (the LFTJ match frontier) reaches the millions —
    so the leapfrog seek path dominates.  On the decoded plane each seek
    materializes a level's heterogeneous sort keys; on the encoded plane
    levels are int lists bisected directly.
    """
    rng = random.Random(seed + 13)
    atoms = [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    query = Query(atoms)
    domain = max(4, n // 120)

    def edge():
        return (
            composite(rng.randrange(domain)),
            composite(rng.randrange(domain)),
        )

    relations = [
        Relation(atom.name, atom.attrs, {edge() for _ in range(n)})
        for atom in atoms
    ]
    return query, Database(relations, encode=encode)


def large_csma_workload(
    n: int, d1: int = 8, seed: int = 3, encode: bool | None = None
) -> tuple[Query, Database]:
    """The degree-bounded triangle (query (2) / E2) sized for CSMA.

    ``R``'s out-degrees are capped at ``d1`` (every ``x`` has exactly
    ``d1`` successors); ``S`` and ``T`` are uniform random graphs with
    ``n`` edges.  Run CSMA with the witnessed degree constraint
    ``n_{xy|x} <= d1`` (``DegreeConstraint(x, xy, log2 d1, guard="R")``)
    — the CLLP drops the budget from N^{3/2} to N·d1, and the execution
    is CD bucketing plus pure join/filter passes over composite keys, the
    CSMA profile the encoded plane accelerates.  No fds, no UDFs.
    """
    rng = random.Random(seed + 29)
    atoms = [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    query = Query(atoms)
    nodes = max(2, n // d1)
    r = {
        (composite(x), composite((x * 13 + 5 * k) % nodes))
        for x in range(nodes)
        for k in range(d1)
    }
    s = {
        (composite(rng.randrange(nodes)), composite(rng.randrange(nodes)))
        for _ in range(n)
    }
    t = {
        (composite(rng.randrange(nodes)), composite(rng.randrange(nodes)))
        for _ in range(n)
    }
    db = Database(
        [
            Relation("R", ("x", "y"), r),
            Relation("S", ("y", "z"), s),
            Relation("T", ("z", "x"), t),
        ],
        encode=encode,
    )
    return query, db
