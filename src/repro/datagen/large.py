"""Large-frontier workload generators (the E17 scaling suite).

E16 proves the paper's *shapes* on small instances; these generators
produce the ≥1M-row frontiers that the dictionary-encoded data plane is
for.  Attribute values are **composite keys** — 3-tuples of ints, the
shape of real join keys (multi-part ids, coordinate pairs, feature
hashes).  Python tuples do not cache their hash, so on the decoded plane
every guard probe, index lookup and trie seek re-hashes the composite;
the encoded plane probes with small ints (or flat dense tables) instead.
That is exactly the gap BENCH_PR4's E17 section tracks.

Four workloads, one per engine family the suite must cover:

* :func:`large_chain_workload` — a cyclic simple-key query (one relation
  is a functional guard) for the Chain Algorithm; the climb pushes the
  whole per-step frontier through compiled guard plans.
* :func:`large_generic_workload` — the same family for the FD-aware
  generic join: determined variables bind through batched plan execution,
  the rest through index probes on composite keys.
* :func:`large_lftj_workload` — a dense triangle for LeapFrog TrieJoin:
  wide trie levels make the seek path (bisect over sort keys) the cost
  center.
* :func:`large_csma_workload` — the degree-bounded triangle of query (2):
  CSMA with a witnessed ``DegreeConstraint`` runs CD bucketing plus pure
  join/filter passes — no UDFs anywhere on the hot path.

Every generator is deterministic for a given size (seeded RNG), so
``tuples_touched`` is reproducible and gateable across engine
generations.
"""

from __future__ import annotations

import random
import string

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.query.query import Atom, Query


def composite(i: int) -> tuple:
    """A nested composite key (two 4-part groups): distinct per ``i``.

    Python tuples do not cache their hash, so every probe on the decoded
    plane re-hashes all eight components; dictionary-encoded, the same
    key is one small int.
    """
    return (
        (i, i ^ 0x5DEECE66D, (i * 2654435761) & 0x3FFFFFFF, i % 7919),
        (i * 31 & 0xFFFF, i * 17 & 0xFFF, (i >> 3) & 0xFFFF, i & 63),
    )


def large_cyclic_key_workload(
    n: int, n_atoms: int = 3, seed: int = 0, encode: bool | None = None
) -> tuple[Query, Database]:
    """A cyclic query with one functional (simple-key) relation, scaled.

    ``R_k(v_k, v_{k+1})`` for k in a cycle; ``R_0`` is functional
    (``v_0 → v_1``, the fd's guard), the others are random graphs with
    ``n`` edges over a ``Θ(n)`` domain of composite keys.  The shape is
    the differential corpus' simple-key family
    (``tests/differential.py``), sized so engine frontiers reach millions
    of rows.
    """
    if not 2 <= n_atoms <= 4:
        raise ValueError(
            f"n_atoms must be between 2 and 4 (single-char variables), "
            f"got {n_atoms}"
        )
    rng = random.Random(seed + 7)
    variables = list("wxyz")[:n_atoms]
    atoms = [
        Atom(f"R{k}", (variables[k], variables[(k + 1) % n_atoms]))
        for k in range(n_atoms)
    ]
    fds = FDSet([FD(variables[0], variables[1])], variables)
    query = Query(atoms, fds)
    domain = max(4, n // 2)
    relations = []
    for k, atom in enumerate(atoms):
        if k == 0:
            tuples = {
                (composite(v), composite((v * 3 + 1) % domain))
                for v in range(domain)
            }
        else:
            tuples = {
                (
                    composite(rng.randrange(domain)),
                    composite(rng.randrange(domain)),
                )
                for _ in range(n)
            }
        relations.append(Relation(atom.name, atom.attrs, tuples))
    return query, Database(relations, fds=fds, encode=encode)


def large_chain_workload(
    n: int, seed: int = 0, encode: bool | None = None
) -> tuple[Query, Database]:
    """Guarded query (1) on the Ex. 5.8 skew pattern, composite values.

    Same query and chain as the E16 skew workload, but the two fds
    (``xz→u``, ``yu→x``) are witnessed by *stored guard relations* ``FU``
    and ``GX`` (realizing ``u = x`` on the skew support) instead of UDFs —
    so the Chain Algorithm's candidate expansion and footnote-8
    verification run pure guard-lookup batches, the operation the encoded
    plane accelerates.  Guards hold ~n rows; candidates outside their
    support dangle and are dropped, like any selective join.
    """
    from repro.query.query import paper_example_query

    query = paper_example_query()
    half = max(2, n // 2)
    one = composite(1)
    pairs = {(one, composite(i)) for i in range(1, half + 1)} | {
        (composite(i), one) for i in range(1, half + 1)
    }
    # u = x on the skew support: hub rows (x = 1) and spoke rows (z = 1).
    fu = {(one, composite(b), one) for b in range(1, half + 1)} | {
        (composite(a), one, composite(a)) for a in range(1, half + 1)
    }
    # x = u on the same support, keyed by (y, u).
    gx = {(one, composite(a), composite(a)) for a in range(1, half + 1)} | {
        (composite(b), one, one) for b in range(1, half + 1)
    }
    db = Database(
        [
            Relation("R", ("x", "y"), pairs),
            Relation("S", ("y", "z"), pairs),
            Relation("T", ("z", "u"), pairs),
            Relation("FU", ("x", "z", "u"), fu),
            Relation("GX", ("y", "u", "x"), gx),
        ],
        fds=query.fds,
        encode=encode,
    )
    return query, db


def large_generic_workload(
    n: int, seed: int = 1, encode: bool | None = None
) -> tuple[Query, Database]:
    """The cyclic-key family (4 atoms), for the FD-aware generic join."""
    return large_cyclic_key_workload(n, n_atoms=4, seed=seed, encode=encode)


def large_lftj_workload(
    n: int, seed: int = 2, encode: bool | None = None
) -> tuple[Query, Database]:
    """A dense triangle for LFTJ: composite-key vertices, wide trie levels.

    Edges are uniform over a ``Θ(n/120)`` vertex domain — a dense graph
    whose triangle count (the LFTJ match frontier) reaches the millions —
    so the leapfrog seek path dominates.  On the decoded plane each seek
    materializes a level's heterogeneous sort keys; on the encoded plane
    levels are int lists bisected directly.
    """
    rng = random.Random(seed + 13)
    atoms = [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    query = Query(atoms)
    domain = max(4, n // 120)

    def edge():
        return (
            composite(rng.randrange(domain)),
            composite(rng.randrange(domain)),
        )

    relations = [
        Relation(atom.name, atom.attrs, {edge() for _ in range(n)})
        for atom in atoms
    ]
    return query, Database(relations, encode=encode)


def large_fdchain_workload(
    n: int, k: int = 8, seed: int = 4, encode: bool | None = None
) -> tuple[Query, Database]:
    """A ``k``-step guarded fd chain over an ``n``-row frontier — the
    expansion procedure (Sec. 2) at scale, the array-of-int64 frontier's
    home workload.

    ``R(w, x)`` seeds ``n`` rows (four hub ``w`` values, ``x`` uniform
    over a ``Θ(n)`` composite domain); guard relations ``G_j`` realize
    the fd chain ``x → a → b → …`` as stored permutation tables; a
    selective terminal atom ``U(last, w)`` (``n/100`` pairs) keeps the
    output small, so the run *is* the frontier: after two cheap choose
    depths, every depth is FD-determined and the whole ``Θ(n)``-row
    frontier flows through one ``GUARD_DENSE`` plan step per level —
    ``np.take`` per level on the encoded plane versus ``n`` composite-key
    dict probes (plus one re-built row tuple per level) on the decoded
    plane, then a final membership verification against ``U``.  Use
    ``order = ("w", "x", "a", "b", …)`` so the chain binds in fd order.
    """
    if not 1 <= k <= 20:
        raise ValueError(f"k must be in [1, 20], got {k}")
    rng = random.Random(seed + 17)
    chain_attrs = list(string.ascii_lowercase[:k])
    last = chain_attrs[-1]
    atoms = [Atom("R", ("w", "x")), Atom("U", (last, "w"))]
    fds = [FD("x", chain_attrs[0])]
    for prev, nxt in zip(chain_attrs, chain_attrs[1:]):
        fds.append(FD(prev, nxt))
    variables = ["w", "x"] + chain_attrs
    query = Query(atoms, FDSet(fds, variables))
    domain = max(4, n // 2)
    dom = [composite(i) for i in range(domain)]
    hubs = [composite(domain + i) for i in range(4)]
    relations = [
        Relation(
            "R",
            ("w", "x"),
            {(hubs[i % 4], dom[rng.randrange(domain)]) for i in range(n)},
        )
    ]
    prev = "x"
    for j, attr in enumerate(chain_attrs):
        shift = 2 * j + 1
        relations.append(
            Relation(
                f"G{j}",
                (prev, attr),
                [(dom[v], dom[(v * 3 + shift) % domain]) for v in range(domain)],
            )
        )
        prev = attr
    relations.append(
        Relation(
            "U",
            (last, "w"),
            {
                (dom[rng.randrange(domain)], hubs[rng.randrange(4)])
                for _ in range(max(2, n // 100))
            },
        )
    )
    return query, Database(relations, fds=query.fds, encode=encode)


def fdchain_order(k: int = 8) -> tuple[str, ...]:
    """The fd-respecting variable order for :func:`large_fdchain_workload`."""
    return ("w", "x", *string.ascii_lowercase[:k])


def large_sma_workload(
    n: int, density: int = 25, seed: int = 5, encode: bool | None = None
) -> tuple[Query, Database]:
    """A dense composite-key triangle sized for SMA's SM-joins.

    Edges are uniform over a ``Θ(n / density)`` vertex domain (average
    degree ≈ ``density``), so the SM proof's joins materialize
    ``Θ(n · density)``-row T(·) tables before the light/heavy splits and
    the final filter cut them down.  Every split key, join probe and
    filter membership hashes a composite on the decoded plane and a small
    int (or an int64 block row) on the encoded plane — the SM-join is the
    hash-bound profile the encoded plane accelerates, complementary to
    E16's (UDF-bound) fig4 SMA shape.  No fds, no UDFs.
    """
    rng = random.Random(seed + 41)
    atoms = [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    query = Query(atoms)
    domain = max(4, n // density)

    def edge():
        return (
            composite(rng.randrange(domain)),
            composite(rng.randrange(domain)),
        )

    relations = [
        Relation(atom.name, atom.attrs, {edge() for _ in range(n)})
        for atom in atoms
    ]
    return query, Database(relations, encode=encode)


def large_csma_workload(
    n: int, d1: int = 8, seed: int = 3, encode: bool | None = None
) -> tuple[Query, Database]:
    """The degree-bounded triangle (query (2) / E2) sized for CSMA.

    ``R``'s out-degrees are capped at ``d1`` (every ``x`` has exactly
    ``d1`` successors); ``S`` and ``T`` are uniform random graphs with
    ``n`` edges.  Run CSMA with the witnessed degree constraint
    ``n_{xy|x} <= d1`` (``DegreeConstraint(x, xy, log2 d1, guard="R")``)
    — the CLLP drops the budget from N^{3/2} to N·d1, and the execution
    is CD bucketing plus pure join/filter passes over composite keys, the
    CSMA profile the encoded plane accelerates.  No fds, no UDFs.
    """
    rng = random.Random(seed + 29)
    atoms = [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    query = Query(atoms)
    nodes = max(2, n // d1)
    r = {
        (composite(x), composite((x * 13 + 5 * k) % nodes))
        for x in range(nodes)
        for k in range(d1)
    }
    s = {
        (composite(rng.randrange(nodes)), composite(rng.randrange(nodes)))
        for _ in range(n)
    }
    t = {
        (composite(rng.randrange(nodes)), composite(rng.randrange(nodes)))
        for _ in range(n)
    }
    db = Database(
        [
            Relation("R", ("x", "y"), r),
            Relation("S", ("y", "z"), s),
            Relation("T", ("z", "x"), t),
        ],
        encode=encode,
    )
    return query, db
