"""Adversarial instances from the paper's examples.

Each generator returns a ready :class:`~repro.engine.database.Database`
(and where relevant the query) reproducing a specific lower-bound or
separation construction:

* ``skew_instance_example_5_8`` — R = S = T = {(1,i)} ∪ {(i,1)}: all
  FD-oblivious WCOJ algorithms take Ω(N²) on query (1), the Chain
  Algorithm O(N^{3/2}).
* ``grid_instance_example_5_5`` — R = S = T = [√N]²: the chain bound
  N^{3/2} is attained (output = N^{3/2}).
* ``m3_modular_instance`` — D = {(i,j,k) : i+j+k ≡ 0 mod N}: materializes
  the non-normal M3 polymatroid (Sec. 3.2); output N², no quasi-product
  instance can achieve it.
* ``fig4_instance`` / ``fig9_instance`` — quasi-product worst cases from
  the optimal normal polymatroids of those lattices.
* ``colored_degree_triangle`` — query (2): the triangle with bounded
  degrees via colors.
"""

from __future__ import annotations

import itertools
import math

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF
from repro.query.query import Atom, Query, paper_example_query


def skew_instance_example_5_8(n: int) -> tuple[Query, Database]:
    """R = S = T = {(1, i)} ∪ {(i, 1)}, i ∈ [N/2], with the UDFs
    u = f(x,z) = x and x = g(y,u) = u (Ex. 5.5/5.8).

    |Q| = Θ(N) but every FD-oblivious WCOJ order materializes Θ(N²)
    partial bindings.
    """
    query = paper_example_query()
    half = max(1, n // 2)
    pairs = {(1, i) for i in range(1, half + 1)} | {
        (i, 1) for i in range(1, half + 1)
    }
    db = Database(
        [
            Relation("R", ("x", "y"), pairs),
            Relation("S", ("y", "z"), pairs),
            Relation("T", ("z", "u"), pairs),
        ],
        udfs=[
            UDF("f", ("x", "z"), "u", lambda x, z: x),
            UDF("g", ("y", "u"), "x", lambda y, u: u),
        ],
    )
    return query, db


def grid_instance_example_5_5(n: int) -> tuple[Query, Database]:
    """R = S = T = [√N] × [√N] with the same UDFs; |Q| = N^{3/2}
    (the chain-bound-tight instance of Ex. 5.5)."""
    query = paper_example_query()
    side = max(1, int(round(math.sqrt(n))))
    grid = list(itertools.product(range(side), range(side)))
    db = Database(
        [
            Relation("R", ("x", "y"), grid),
            Relation("S", ("y", "z"), grid),
            Relation("T", ("z", "u"), grid),
        ],
        udfs=[
            UDF("f", ("x", "z"), "u", lambda x, z: x),
            UDF("g", ("y", "u"), "x", lambda y, u: u),
        ],
    )
    return query, db


def m3_query() -> Query:
    """Q :- R(x), S(y), T(z) with xy→z, xz→y, yz→x (lattice M3)."""
    atoms = [Atom("R", ("x",)), Atom("S", ("y",)), Atom("T", ("z",))]
    fds = FDSet([FD("xy", "z"), FD("xz", "y"), FD("yz", "x")], "xyz")
    return Query(atoms, fds)


def m3_modular_instance(n: int) -> tuple[Query, Database]:
    """The mod-N instance D = {(i,j,k) : i+j+k ≡ 0 (mod N)} for the M3
    query (Sec. 3.2).  The three unguarded fds are realized by UDFs
    z = (-x-y) mod N etc.; the output has N² tuples, achieving the chain
    bound of Ex. 5.12 — and beating every quasi-product instance."""
    query = m3_query()

    def third(a: object, b: object) -> int:
        return (-int(a) - int(b)) % n

    db = Database(
        [
            Relation("R", ("x",), ((i,) for i in range(n))),
            Relation("S", ("y",), ((i,) for i in range(n))),
            Relation("T", ("z",), ((i,) for i in range(n))),
        ],
        udfs=[
            UDF("fz", ("x", "y"), "z", third),
            UDF("fy", ("x", "z"), "y", third),
            UDF("fx", ("y", "z"), "x", third),
        ],
    )
    return query, db


def fig4_query() -> Query:
    """The Fig. 4 query: R(a,b,c), S(a,d,e), T(b,d,f), U(c,e,f) with the
    fds that close the Fig. 4 lattice (every pair of variables inside an
    atom determines nothing extra; the lattice needs each atom's variable
    set closed and each single variable closed, which holds with no fds).

    Without fds the Fig. 4 lattice is *not* the Boolean algebra — the
    lattice arises because only the sets shown exist as closures of the
    inputs' subsets.  To realize exactly that lattice we add, for every
    pair of variables from different atoms, an fd making their closure
    jump to the top, e.g. a,f → everything (those pairs' joins are 1̂ in
    Fig. 4).
    """
    atoms = [
        Atom("R", ("a", "b", "c")),
        Atom("S", ("a", "d", "e")),
        Atom("T", ("b", "d", "f")),
        Atom("U", ("c", "e", "f")),
    ]
    all_vars = "abcdef"
    pair_to_atom = {}
    for atom in atoms:
        for pair in itertools.combinations(sorted(atom.attrs), 2):
            pair_to_atom[pair] = atom.name
    fds = []
    for pair in itertools.combinations(all_vars, 2):
        if pair in pair_to_atom:
            # Two variables in a common atom: their join is that atom's
            # variable set.
            target = next(a for a in atoms if a.name == pair_to_atom[pair])
            fds.append(FD(frozenset(pair), target.varset))
        else:
            fds.append(FD(frozenset(pair), frozenset(all_vars)))
    return Query(atoms, FDSet(fds, all_vars))


def fig4_instance(n: int) -> tuple[Query, Database]:
    """A quasi-product instance for Fig. 4 realizing the SM bound N^{4/3}:
    variables get coordinate pairs from a [m]³ cube (m = N^{1/3}) so that
    each relation has m³ = N tuples and the output has m⁴ = N^{4/3}."""
    query = fig4_query()
    m = max(1, int(round(n ** (1.0 / 3.0))))
    # Coordinates p,q,r,s: a=(p,q), b=(p,r), c=(q,r) style... The optimal
    # normal polymatroid of Fig. 4 has h(v) = 2/3 for atoms, h = 1 on the
    # inputs, h(1̂) = 4/3: realized with 4 coordinates of size m = N^{1/3},
    # each variable seeing 2 of them:
    #   a=(p,q) b=(p,r) c=(q,r) d=(p,s) e=(q,s) f=(r,s)
    # R(a,b,c) is determined by (p,q,r): m³ = N tuples; the output ranges
    # over (p,q,r,s): m⁴ = N^{4/3}.
    tuples_r = []
    tuples_s = []
    tuples_t = []
    tuples_u = []
    rng = range(m)
    for p, q, r in itertools.product(rng, rng, rng):
        tuples_r.append(((p, q), (p, r), (q, r)))
    for p, q, s in itertools.product(rng, rng, rng):
        tuples_s.append(((p, q), (p, s), (q, s)))
    for p, r, s in itertools.product(rng, rng, rng):
        tuples_t.append(((p, r), (p, s), (r, s)))
    for q, r, s in itertools.product(rng, rng, rng):
        tuples_u.append(((q, r), (q, s), (r, s)))
    db = Database(
        [
            Relation("R", ("a", "b", "c"), tuples_r),
            Relation("S", ("a", "d", "e"), tuples_s),
            Relation("T", ("b", "d", "f"), tuples_t),
            Relation("U", ("c", "e", "f"), tuples_u),
        ],
        fds=query.fds,
        udfs=_coordinate_udfs(),
    )
    return query, db


def _coordinate_udfs() -> list[UDF]:
    """UDFs realizing the Fig. 4 fds on coordinate-pair values.

    Variables carry coordinate pairs: a=(p,q), b=(p,r), c=(q,r),
    d=(p,s), e=(q,s), f=(r,s).  Any two variables of an atom determine the
    third; any cross-atom pair determines everything.
    """

    def make(out_coords: tuple[int, int], in1: str, c1: tuple[int, int],
             in2: str, c2: tuple[int, int]):
        # Coordinate ids: 0=p 1=q 2=r 3=s.  Build the output variable's
        # value from whichever inputs carry its two coordinates.
        def fn(v1, v2):
            have = {c1[0]: v1[0], c1[1]: v1[1], c2[0]: v2[0], c2[1]: v2[1]}
            return (have[out_coords[0]], have[out_coords[1]])

        return fn

    coords = {
        "a": (0, 1), "b": (0, 2), "c": (1, 2),
        "d": (0, 3), "e": (1, 3), "f": (2, 3),
    }
    udfs = []
    for v1, v2 in itertools.combinations(coords, 2):
        known = set(coords[v1]) | set(coords[v2])
        for out, oc in coords.items():
            if out in (v1, v2):
                continue
            if set(oc) <= known:
                udfs.append(
                    UDF(
                        f"{out}_from_{v1}{v2}",
                        (v1, v2),
                        out,
                        make(oc, v1, coords[v1], v2, coords[v2]),
                    )
                )
    return udfs


def fig9_query() -> Query:
    """A concrete query whose FD lattice embeds the Fig. 9 structure.

    We realize the three inputs T(M), T(N), T(O) as ternary relations over
    coordinate variables: the lattice elements of Fig. 9 are generated by
    coordinates p, q, r, s (as in the running CSMA example): M=(p,q),
    N=(p,r), O=(q,r) extended with a shared "spine" coordinate... For the
    executable benchmark we use the direct formulation below: variables
    g, i, j (join-irreducibles below Z) plus m, n, o; fds g,i→j-style
    relations make Z = {g,i,j} the common join.  M = {g, m}, N = {i, n},
    O = {j, o}; any two of g,i,j determine the third (Z's diamond), and
    (m, Z) determines everything M-side, etc.
    """
    atoms = [
        Atom("M", ("g", "m")),
        Atom("N", ("i", "n")),
        Atom("O", ("j", "o")),
    ]
    fds = FDSet(
        [
            FD("gi", "j"), FD("gj", "i"), FD("ij", "g"),
        ],
        "gimnjo",
    )
    return Query(atoms, fds)


def fig9_instance(n: int) -> tuple[Query, Database]:
    """Worst-case-flavoured instance for the Fig.9-style query: the
    g/i/j triangle is the mod-m M3 instance (m = √N) and m, n, o fan out
    √N values each, giving |M|=|N|=|O| = N and output ≈ N^{3/2}."""
    query = fig9_query()
    m = max(1, int(round(math.sqrt(n))))

    def third(a: object, b: object) -> int:
        return (-int(a) - int(b)) % m

    tuples_m = [(g, x) for g in range(m) for x in range(m)]
    tuples_n = [(i, x) for i in range(m) for x in range(m)]
    tuples_o = [(j, x) for j in range(m) for x in range(m)]
    db = Database(
        [
            Relation("M", ("g", "m"), tuples_m),
            Relation("N", ("i", "n"), tuples_n),
            Relation("O", ("j", "o"), tuples_o),
        ],
        udfs=[
            UDF("fj", ("g", "i"), "j", third),
            UDF("fi", ("g", "j"), "i", third),
            UDF("fg", ("i", "j"), "g", third),
        ],
    )
    return query, db


def colored_degree_triangle(
    n: int, d1: int, d2: int, seed: int = 0
) -> tuple[Query, Database]:
    """Query (2): the triangle where R's out-degrees are bounded by d1 and
    in-degrees by d2, modelled with color relations C1, C2 (Sec. 1.2).

    R(x, c1, c2, y): each x has at most d1 successors (one per color c1),
    each y at most d2 predecessors (one per color c2).
    """
    import random

    rng = random.Random(seed)
    atoms = [
        Atom("R", ("x", "c1", "c2", "y")),
        Atom("S", ("y", "z")),
        Atom("T", ("z", "x")),
        Atom("C1", ("c1",)),
        Atom("C2", ("c2",)),
    ]
    fds = FDSet(
        [FD("xc1", "y"), FD("yc2", "x"), FD("xy", frozenset({"c1", "c2"}))],
        {"x", "y", "z", "c1", "c2"},
    )
    query = Query(atoms, fds)
    nodes = max(2, n // max(1, d1))
    r_tuples: set[tuple] = set()
    out_count: dict[int, int] = {}
    in_count: dict[int, int] = {}
    attempts = 0
    while len(r_tuples) < n and attempts < 20 * n:
        attempts += 1
        x = rng.randrange(nodes)
        y = rng.randrange(nodes)
        if out_count.get(x, 0) >= d1 or in_count.get(y, 0) >= d2:
            continue
        c1 = out_count.get(x, 0)
        c2 = in_count.get(y, 0)
        if (x, c1, c2, y) in r_tuples:
            continue
        r_tuples.add((x, c1, c2, y))
        out_count[x] = c1 + 1
        in_count[y] = c2 + 1
    edges = {
        (rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)
    }
    t_edges = {
        (rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)
    }
    db = Database(
        [
            Relation("R", ("x", "c1", "c2", "y"), r_tuples),
            Relation("S", ("y", "z"), edges),
            Relation("T", ("z", "x"), t_edges),
            Relation("C1", ("c1",), ((c,) for c in range(d1))),
            Relation("C2", ("c2",), ((c,) for c in range(d2))),
        ],
        fds=query.fds,
    )
    return query, db
