"""The Sec. 3.1 correspondence, executably: lattice → query → database.

* :func:`query_from_lattice` builds the conjunctive query whose lattice
  presentation is (L, R): variables are L's join-irreducibles, relation
  R_j has attributes Λ_{R_j}, and FD = {X → Λ_{∨X} : X ⊆ vars}.
* :func:`database_from_world` turns a single "world" relation D over all
  variables (a database instance *for the lattice*, Sec. 3.2) into a
  runnable :class:`~repro.engine.database.Database`: inputs are the
  projections Π_{Λ_{R_j}}(D) and every unguarded fd gets a lookup-table
  UDF built from D (values outside D's support map to a ⊥ sentinel that
  the final filters eliminate).
* :func:`worst_case_database` materializes the LLP-optimal polymatroid as
  a quasi-product world when it is normal (Lemma 4.5) — the generic
  worst-case generator used by the figure benchmarks.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Mapping, Sequence

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF
from repro.lattice.embedding import quasi_product_instance
from repro.lattice.lattice import Lattice
from repro.lattice.polymatroid import LatticeFunction
from repro.query.query import Atom, Query

BOTTOM = "⊥"  # sentinel for UDF lookups outside the world's support


def join_irreducible_names(lattice: Lattice) -> dict[str, int]:
    """Stable variable names for the join-irreducibles.

    String labels are lowercased ('M' → 'm'); frozenset labels use their
    sorted concatenation.  Raises on collisions.
    """
    names: dict[str, int] = {}
    for ji in lattice.join_irreducibles:
        label = lattice.label(ji)
        if isinstance(label, frozenset):
            name = "".join(sorted(map(str, label)))
        else:
            name = str(label).lower()
        if name in names:
            raise ValueError(f"join-irreducible name collision: {name!r}")
        names[name] = ji
    return names


def query_from_lattice(
    lattice: Lattice, inputs: Mapping[str, int]
) -> tuple[Query, dict[str, int]]:
    """The query of a lattice presentation (L, R) (Sec. 3.1).

    Returns (query, var_to_ji).  FDs are X → Λ_{∨X} for every subset X of
    variables with a non-trivial closure jump (all subsets, not only
    pairs: pairwise fds do not always reconstruct the lattice).
    """
    var_to_ji = join_irreducible_names(lattice)
    ji_to_var = {ji: name for name, ji in var_to_ji.items()}

    def lambda_of(element: int) -> frozenset[str]:
        return frozenset(
            ji_to_var[z] for z in lattice.join_irreducibles_below(element)
        )

    atoms = [
        Atom(name, sorted(lambda_of(element)))
        for name, element in inputs.items()
    ]
    variables = sorted(var_to_ji)
    # Compact generating set for the closure system {Λ_Z : Z ∈ L}:
    # for every Z and join-irreducible x ≰ Z,  Λ_Z ∪ {x} → Λ_{Z ∨ x}.
    # Absorbing the members of any set X one at a time shows the closure of
    # X under these fds is exactly Λ_{∨X}, and each Λ_Z is closed, so the
    # induced lattice is L (Sec. 3.1) without enumerating all 2^k subsets.
    seen: set[tuple[frozenset, frozenset]] = set()
    fds: list[FD] = []
    for z in range(lattice.n):
        lam_z = lambda_of(z)
        for name, ji in var_to_ji.items():
            if lattice.leq(ji, z):
                continue
            lhs = lam_z | {name}
            rhs = lambda_of(lattice.join(z, ji))
            if rhs <= lhs:
                continue
            key = (frozenset(lhs), frozenset(rhs))
            if key in seen:
                continue
            seen.add(key)
            fds.append(FD(lhs, rhs))
    query = Query(atoms, FDSet(fds, variables))
    return query, var_to_ji


def database_from_world(
    query: Query,
    world_variables: Sequence[str],
    world_tuples: Sequence[tuple],
) -> Database:
    """Make a runnable Database from a world relation over all variables.

    Input relations are projections of the world; each fd in a minimal
    cover of the query's fds becomes a lookup-table UDF derived from the
    world (Sec. 3.2: unguarded fds are accessible as UDFs during
    evaluation).
    """
    world = Relation("__world__", world_variables, world_tuples)
    relations = [
        world.project(atom.attrs, name=atom.name) for atom in query.atoms
    ]
    from repro.engine.expansion_plan import tuple_getter

    udfs: list[UDF] = []
    for fd in query.fds:
        lhs = tuple(sorted(fd.lhs))
        for target in sorted(fd.rhs - fd.lhs):
            if any(u.output == target and tuple(u.inputs) == lhs for u in udfs):
                continue
            lhs_key = tuple_getter(world.positions(lhs))
            target_pos = world.positions((target,))[0]
            table: dict[tuple, object] = {
                lhs_key(t): t[target_pos] for t in world.tuples
            }
            udfs.append(
                UDF(
                    f"{target}_of_{''.join(lhs)}",
                    lhs,
                    target,
                    _make_lookup(table),
                )
            )
    return Database(relations, fds=query.fds, udfs=udfs)


def _make_lookup(table: dict[tuple, object]):
    def fn(*args: object) -> object:
        return table.get(tuple(args), BOTTOM)

    return fn


def worst_case_database(
    lattice: Lattice,
    inputs: Mapping[str, int],
    scale: int = 2,
) -> tuple[Query, Database, LatticeFunction]:
    """Generic worst-case generator for a lattice presentation.

    Solves the LLP with unit log-cardinalities, scales the optimal
    polymatroid to integrality, checks normality, and materializes it as a
    quasi-product world with per-color domain ``scale`` (Lemma 4.5).  Each
    input then has ~scale^{h*(R_j)·denom} tuples.  Raises ``ValueError``
    when the optimal polymatroid is not normal (e.g. M3 — use the mod-N
    instance instead).
    """
    from repro.lp.llp import LatticeLinearProgram

    query, var_to_ji = query_from_lattice(lattice, inputs)
    log_sizes = {name: 1.0 for name in inputs}
    program = LatticeLinearProgram(lattice, inputs, log_sizes)
    solution = program.solve()
    h = solution.h
    denominators = [Fraction(v).denominator for v in h.values]
    lcm = 1
    for d in denominators:
        lcm = lcm * d // _gcd(lcm, d)
    h_int = h.scale(lcm)
    if not h_int.is_normal():
        raise ValueError(
            "optimal polymatroid is not normal; no quasi-product worst case "
            "exists (Thm. 4.9) — supply a bespoke instance"
        )
    variables, tuples = quasi_product_instance(
        h_int, base=scale, var_to_ji=var_to_ji
    )
    db = database_from_world(query, variables, tuples)
    return query, db, h_int


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
