"""Shared low-level utilities: exact rational linear algebra and helpers."""

from repro.util.rational import (
    as_fraction,
    rationalize,
    solve_exact,
    rank_exact,
    enumerate_polytope_vertices,
    is_feasible_point,
)

__all__ = [
    "as_fraction",
    "rationalize",
    "solve_exact",
    "rank_exact",
    "enumerate_polytope_vertices",
    "is_feasible_point",
]
