"""Exact linear algebra over :class:`fractions.Fraction`.

The lattice linear programs in this package are tiny (their size depends on
the query, not the data), so we can afford exact rational arithmetic for the
parts that matter: dual certificates of output inequalities and vertex
enumeration of fractional edge cover polytopes.  Floating point (scipy/HiGHS)
is used only to *locate* optima quickly; everything returned to callers is
re-verified exactly with the routines in this module.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Sequence

Matrix = list[list[Fraction]]
Vector = list[Fraction]


def as_fraction(value) -> Fraction:
    """Convert ``value`` (int, float, str, Fraction) to an exact Fraction.

    Floats are converted exactly (no snapping); use :func:`rationalize` to
    snap solver output to small denominators.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        return Fraction(value)
    return Fraction(value)


def rationalize(value: float, max_denominator: int = 10_000) -> Fraction:
    """Snap a floating-point solver value to a nearby small rational.

    LP optima of the paper's programs have data-independent rational vertices
    (footnote 10 of the paper), with denominators bounded by the lattice
    size, so ``max_denominator=10_000`` is far more than enough in practice.
    """
    return Fraction(value).limit_denominator(max_denominator)


def _to_matrix(rows: Iterable[Sequence]) -> Matrix:
    return [[as_fraction(x) for x in row] for row in rows]


def solve_exact(a: Iterable[Sequence], b: Sequence) -> Vector | None:
    """Solve the square (or overdetermined-consistent) system ``a x = b``.

    Returns the unique solution as Fractions, or ``None`` when the system is
    singular/inconsistent or underdetermined.
    """
    mat = _to_matrix(a)
    rhs = [as_fraction(x) for x in b]
    if not mat:
        return None
    n_rows = len(mat)
    n_cols = len(mat[0])
    # Augment.
    aug = [row[:] + [rhs[i]] for i, row in enumerate(mat)]
    pivot_cols: list[int] = []
    row = 0
    for col in range(n_cols):
        pivot = next((r for r in range(row, n_rows) if aug[r][col] != 0), None)
        if pivot is None:
            continue
        aug[row], aug[pivot] = aug[pivot], aug[row]
        inv = 1 / aug[row][col]
        aug[row] = [x * inv for x in aug[row]]
        for r in range(n_rows):
            if r != row and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [x - factor * y for x, y in zip(aug[r], aug[row])]
        pivot_cols.append(col)
        row += 1
        if row == n_rows:
            break
    # Inconsistent?
    for r in range(row, n_rows):
        if aug[r][n_cols] != 0:
            return None
    if len(pivot_cols) < n_cols:
        return None  # underdetermined
    solution: Vector = [Fraction(0)] * n_cols
    for r, col in enumerate(pivot_cols):
        solution[col] = aug[r][n_cols]
    return solution


def rank_exact(a: Iterable[Sequence]) -> int:
    """Exact rank of a rational matrix."""
    mat = _to_matrix(a)
    if not mat:
        return 0
    n_rows, n_cols = len(mat), len(mat[0])
    rank = 0
    for col in range(n_cols):
        pivot = next((r for r in range(rank, n_rows) if mat[r][col] != 0), None)
        if pivot is None:
            continue
        mat[rank], mat[pivot] = mat[pivot], mat[rank]
        inv = 1 / mat[rank][col]
        mat[rank] = [x * inv for x in mat[rank]]
        for r in range(n_rows):
            if r != rank and mat[r][col] != 0:
                factor = mat[r][col]
                mat[r] = [x - factor * y for x, y in zip(mat[r], mat[rank])]
        rank += 1
        if rank == n_rows:
            break
    return rank


def is_feasible_point(
    point: Sequence,
    a_ub: Iterable[Sequence],
    b_ub: Sequence,
    nonnegative: bool = True,
) -> bool:
    """Exactly check ``A x <= b`` (and ``x >= 0`` when requested)."""
    x = [as_fraction(v) for v in point]
    if nonnegative and any(v < 0 for v in x):
        return False
    for row, bound in zip(_to_matrix(a_ub), b_ub):
        if sum(c * v for c, v in zip(row, x)) > as_fraction(bound):
            return False
    return True


def enumerate_polytope_vertices(
    a_ub: Iterable[Sequence],
    b_ub: Sequence,
    nonnegative: bool = True,
    max_dimension: int = 12,
) -> list[Vector]:
    """Enumerate all vertices of ``{x | A x <= b (, x >= 0)}`` exactly.

    Brute-force over choices of ``n`` tight constraints; intended for the
    small covering polytopes arising from query hypergraphs (a handful of
    edges/vertices).  Raises ``ValueError`` beyond ``max_dimension``.
    """
    rows = _to_matrix(a_ub)
    rhs = [as_fraction(x) for x in b_ub]
    if not rows:
        return []
    n = len(rows[0])
    if n > max_dimension:
        raise ValueError(
            f"vertex enumeration limited to dimension {max_dimension}, got {n}"
        )
    constraints: list[tuple[Vector, Fraction]] = list(zip(rows, rhs))
    if nonnegative:
        for i in range(n):
            row = [Fraction(0)] * n
            row[i] = Fraction(-1)
            constraints.append((row, Fraction(0)))
    vertices: list[Vector] = []
    seen: set[tuple[Fraction, ...]] = set()
    for subset in itertools.combinations(range(len(constraints)), n):
        sub_a = [constraints[i][0] for i in subset]
        sub_b = [constraints[i][1] for i in subset]
        candidate = solve_exact(sub_a, sub_b)
        if candidate is None:
            continue
        key = tuple(candidate)
        if key in seen:
            continue
        if all(
            sum(c * v for c, v in zip(row, candidate)) <= bound
            for row, bound in constraints
        ):
            seen.add(key)
            vertices.append(candidate)
    return vertices
