"""Compiled positional expansion plans — the engine's execution kernel.

The paper charges the expansion procedure (Sec. 2) Õ(N), but a naive
implementation pays a large *constant* factor per tuple: rebuilding
attr→value dicts, re-deriving ``applicable_fds``, and linearly scanning the
stored relations for a guard on every single tuple.  None of that work is
data-dependent — for a fixed (source schema, target varset) pair the
sequence of FD applications, the guard relations, and the attribute
positions are all determined symbolically.

This module compiles that sequence **once** into an :class:`ExpansionPlan`:
a flat list of positional steps executed directly on raw tuples.

* a *guard step* is ``(key positions, functional lookup)`` where the lookup
  maps a key tuple to the new attribute values (precomputed from the guard
  relation, with the fd's "all images agree" consistency verified at build
  time — Sec. 2's guard invariant);
* a *UDF step* is ``(callable, input positions)`` for unguarded fds.

Plans are cached on the :class:`~repro.engine.database.Database` (compiled
at most once per source schema / target pair) and shared by every
algorithm in ``repro.core``.  Work counters are incremented exactly as in
the reference path (``repro.engine.reference``): one touch per guarded fd
application (hit or miss) and one per UDF evaluation — the *measured work
shapes are bit-identical*, only the constant factor drops.
"""

from __future__ import annotations

import os
from operator import itemgetter
from typing import Callable, Sequence

try:  # numpy accelerates the columnwise guard path; never required.
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

GUARD = 0
UDF = 1


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


#: Frontier size at which ``execute_batch`` switches from the generated
#: row-loop to the columnwise backend.  Measured crossover (see
#: PERFORMANCE.md): below ~32k rows the two are within noise of each other
#: and the row-loop avoids the transposition; at ~100k+ the columnwise
#: functional-map application pulls ahead (~1.1-1.2x on guard chains).
COLUMN_MIN_ROWS = _env_int("REPRO_BATCH_COLUMN_MIN", 32768)
#: Alive-row count at which a single-attribute integer guard step
#: deduplicates lookups through numpy (``np.unique`` + gather).  Dict
#: probes on small int keys are cheaper than the sort, so this is an
#: opt-in for workloads with fat keys / expensive hashes; lower it via the
#: environment to engage.
NUMPY_MIN_ROWS = _env_int("REPRO_BATCH_NUMPY_MIN", 1 << 20)
#: The unique-key path engages only when keys repeat at least this often on
#: average — otherwise the O(m log m) sort buys nothing over m dict probes.
_DEDUP_PAYOFF = 4


def tuple_getter(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """``t -> tuple(t[p] for p in positions)`` compiled to C speed.

    ``operator.itemgetter`` already returns a tuple for two or more
    positions; the 0/1-arity cases are wrapped to keep the contract.
    """
    positions = tuple(positions)
    if not positions:
        return lambda t: ()
    if len(positions) == 1:
        p = positions[0]
        return lambda t: (t[p],)
    return itemgetter(*positions)


def fused_udf(fn: Callable, positions: Sequence[int]) -> Callable[[tuple], object]:
    """``t -> fn(t[p0], t[p1], ...)`` with the common arities unrolled."""
    positions = tuple(positions)
    if not positions:
        return lambda t: fn()
    if len(positions) == 1:
        (p,) = positions
        return lambda t: fn(t[p])
    if len(positions) == 2:
        p0, p1 = positions
        return lambda t: fn(t[p0], t[p1])
    get = itemgetter(*positions)
    return lambda t: fn(*get(t))

#: Sentinel stored in a functional guard lookup when a key maps to several
#: distinct images, i.e. the guard relation violates its fd.  Tuples hitting
#: such a key are treated as dangling (the expansion returns ``None``)
#: instead of silently inheriting the first image.
INCONSISTENT = object()


class ExpansionPlan:
    """A compiled expansion ``source schema → closure/target`` (Sec. 2).

    ``steps`` is a tuple of ``(tag, positions, payload)`` triples:

    * ``(GUARD, key_positions, lookup)`` — probe the functional lookup with
      the positionally-extracted key; append the image values.
    * ``(UDF, input_positions, fn)`` — append ``fn(*inputs)``.

    ``out_schema`` is the source schema followed by the appended attributes
    in application order.  ``execute`` is *generated code*: the step list
    is flattened into one Python function at construction, so per-tuple
    execution pays a single call frame plus the UDF calls themselves.

    ``execute_batch`` runs the plan over a whole frontier at once: small
    batches go through a generated loop (the row-loop fallback, one call
    frame per *batch*), large ones through the columnwise backend
    (:meth:`_execute_columns`) where each guard step applies its functional
    map down a key column and each UDF maps down its argument columns.
    Both return a list aligned with the input (``None`` marks dangling
    rows) and charge the counter the exact per-tuple total: one touch per
    step a tuple reaches, nothing past the step where it dangles.
    """

    __slots__ = (
        "source_schema", "out_schema", "steps", "_positions", "execute",
        "_execute_batch_rows",
    )

    def __init__(
        self,
        source_schema: tuple[str, ...],
        out_schema: tuple[str, ...],
        steps: tuple[tuple, ...],
    ):
        self.source_schema = source_schema
        self.out_schema = out_schema
        self.steps = steps
        self._positions = {a: i for i, a in enumerate(out_schema)}
        self.execute = self._compile()
        self._execute_batch_rows = self._compile_batch()

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Positions of ``attrs`` in :attr:`out_schema`."""
        return tuple(self._positions[a] for a in attrs)

    def _compile(self):
        """Generate ``execute(t, counter=None) -> tuple | None``.

        Returns the extended tuple, or ``None`` when a guard lookup misses
        (dangling tuple) or hits an fd-inconsistent key.  Counter semantics
        match the naive per-tuple expansion exactly: one touch per guarded
        fd application (hit or miss) and one per UDF evaluation, charged
        before the step runs so a dangling tuple stops the count exactly
        where the naive loop would.
        """
        namespace: dict[str, object] = {"INCONSISTENT": INCONSISTENT}
        lines = ["def execute(t, counter=None):"]
        for i, (tag, positions, payload) in enumerate(self.steps):
            lines.append("    if counter is not None: counter.add()")
            cells = ", ".join(f"t[{p}]" for p in positions)
            if tag == GUARD:
                namespace[f"lookup{i}"] = payload
                key = f"({cells},)" if len(positions) == 1 else f"({cells})"
                lines.append(f"    v = lookup{i}.get({key})")
                lines.append("    if v is None or v is INCONSISTENT: return None")
                lines.append("    t = t + v")
            else:
                namespace[f"fn{i}"] = payload
                lines.append(f"    t = t + (fn{i}({cells}),)")
        lines.append("    return t")
        exec("\n".join(lines), namespace)
        return namespace["execute"]

    def _compile_batch(self):
        """Generate the row-loop batch executor (the pure-python fallback).

        Same per-row semantics as :meth:`execute`, but the whole frontier
        runs inside one generated function and the counter is charged once
        with the accumulated total, so a batch costs one call frame plus
        the step work itself.
        """
        namespace: dict[str, object] = {"INCONSISTENT": INCONSISTENT}
        lines = [
            "def execute_batch(ts, counter=None):",
            "    out = []",
            "    append = out.append",
            "    touched = 0",
            "    for t in ts:",
        ]
        for i, (tag, positions, payload) in enumerate(self.steps):
            lines.append("        touched += 1")
            cells = ", ".join(f"t[{p}]" for p in positions)
            if tag == GUARD:
                namespace[f"lookup{i}"] = payload
                key = f"({cells},)" if len(positions) == 1 else f"({cells})"
                lines.append(f"        v = lookup{i}.get({key})")
                lines.append("        if v is None or v is INCONSISTENT:")
                lines.append("            append(None)")
                lines.append("            continue")
                lines.append("        t = t + v")
            else:
                namespace[f"fn{i}"] = payload
                lines.append(f"        t = t + (fn{i}({cells}),)")
        lines.append("        append(t)")
        lines.append("    if counter is not None and touched:")
        lines.append("        counter.add(touched)")
        lines.append("    return out")
        exec("\n".join(lines), namespace)
        return namespace["execute_batch"]

    def execute_batch(self, tuples, counter=None) -> list:
        """Run the plan over a frontier; aligned output, ``None`` = dangling.

        Dispatches on frontier size: small frontiers use the generated
        row-loop, large ones the columnwise backend over a transposed
        column-store.  Counter totals are bit-identical either way.
        """
        if not isinstance(tuples, (list, tuple)):
            tuples = list(tuples)
        n = len(tuples)
        if n == 0:
            return []
        if n < COLUMN_MIN_ROWS or not self.steps:
            return self._execute_batch_rows(tuples, counter)
        # Column extraction via itemgetter maps: C-level per column, and
        # much cheaper than a zip(*rows) star-unpack on large frontiers.
        cols = [
            list(map(itemgetter(j), tuples))
            for j in range(len(self.source_schema))
        ]
        return self._execute_columns(cols, n, counter)

    def execute_batch_columns(self, columns, n: int, counter=None) -> list:
        """Batch entry point for callers that already hold a column-store
        (:meth:`repro.engine.relation.Relation.columns`)."""
        if n == 0:
            return []
        if n < COLUMN_MIN_ROWS or not self.steps:
            rows = list(zip(*columns)) if columns else [()] * n
            return self._execute_batch_rows(rows, counter)
        return self._execute_columns(list(columns), n, counter)

    def _execute_columns(self, cols: list, n: int, counter=None) -> list:
        """Columnwise plan execution over ``cols`` (one sequence per source
        attribute, ``n`` rows).

        Guard steps apply their functional map down the key column with
        ``map(lookup.get, zip(...))`` (C-level iteration); misses compress
        the store so dead rows never reach a UDF.  Large integer-keyed
        steps deduplicate probes through numpy (one dict probe per distinct
        key).  Work accounting: each step charges the rows alive when it
        runs — summed over rows, exactly the per-tuple prefix counts.
        """
        touched = 0
        alive: list[int] | None = None  # None = all n input rows alive
        m = n
        for tag, positions, payload in self.steps:
            if m == 0:
                break
            touched += m
            if tag == GUARD:
                images = self._guard_images(cols, positions, payload, m)
                miss = False
                for v in images:
                    if v is None or v is INCONSISTENT:
                        miss = True
                        break
                if miss:
                    keep = [
                        j
                        for j, v in enumerate(images)
                        if v is not None and v is not INCONSISTENT
                    ]
                    alive = keep if alive is None else [alive[j] for j in keep]
                    cols = [[c[j] for j in keep] for c in cols]
                    images = [images[j] for j in keep]
                    m = len(keep)
                    if m == 0:
                        break
                for j in range(len(images[0])):
                    cols.append(list(map(itemgetter(j), images)))
            else:
                if positions:
                    cols.append(list(map(payload, *(cols[p] for p in positions))))
                else:
                    cols.append([payload() for _ in range(m)])
        if counter is not None and touched:
            counter.add(touched)
        out: list = [None] * n
        if m:
            rows = zip(*cols) if cols else iter([()] * m)
            if alive is None:
                return list(rows)
            for i, row in zip(alive, rows):
                out[i] = row
        return out

    @staticmethod
    def _guard_images(cols, positions, lookup, m: int) -> list:
        """The guard's functional map applied down the key column(s)."""
        if len(positions) == 1:
            col = cols[positions[0]]
            if (
                _np is not None
                and m >= NUMPY_MIN_ROWS
                and all(type(v) is int for v in col)
            ):
                try:
                    arr = _np.fromiter(col, dtype=_np.int64, count=m)
                except OverflowError:
                    arr = None
                if arr is not None:
                    uniq, inverse = _np.unique(arr, return_inverse=True)
                    if len(uniq) * _DEDUP_PAYOFF <= m:
                        gathered = _np.empty(len(uniq), dtype=object)
                        gathered[:] = [lookup.get((int(v),)) for v in uniq]
                        return list(gathered[inverse])
            return list(map(lookup.get, zip(col)))
        return list(map(lookup.get, zip(*(cols[p] for p in positions))))


class RelationExpansionPlan:
    """A compiled whole-relation expansion ``R → R⁺`` (Sec. 2).

    Same step vocabulary as :class:`ExpansionPlan`, but guard steps carry a
    *multi-image* lookup (key → tuple of distinct images) replicating the
    set semantics of joining with ``Π_{X∪Y}(guard)``: dangling tuples are
    dropped and an fd-violating guard key contributes one output row per
    distinct image, exactly as the reference join does.
    """

    __slots__ = ("source_schema", "out_schema", "steps", "_compiled")

    def __init__(
        self,
        source_schema: tuple[str, ...],
        out_schema: tuple[str, ...],
        steps: tuple[tuple, ...],
    ):
        self.source_schema = source_schema
        self.out_schema = out_schema
        self.steps = steps
        self._compiled = tuple(
            (tag, tuple_getter(positions) if tag == GUARD
             else fused_udf(payload, positions), payload)
            for tag, positions, payload in steps
        )

    def execute_all(self, tuples, counter=None) -> list[tuple]:
        """Run the plan over a tuple collection, step by step.

        Counter semantics match the reference ``natural_join`` chain: one
        touch per emitted row on guard steps, one per tuple on UDF steps.
        """
        current = tuples
        for tag, extract, payload in self._compiled:
            out = []
            if tag == GUARD:
                for t in current:
                    images = payload.get(extract(t))
                    if images is None:
                        continue
                    for img in images:
                        out.append(t + img)
                if counter is not None:
                    counter.add(len(out))
            else:
                if counter is not None:
                    counter.add(len(current))
                for t in current:
                    out.append(t + (extract(t),))
            current = out
        return list(current) if current is tuples else current


def build_guard_lookup(
    guard, key_attrs: tuple[str, ...], value_attrs: tuple[str, ...]
) -> dict:
    """Functional lookup ``key → image`` from a guard relation.

    Verifies the fd on the guard once at build time: keys whose buckets
    disagree on the image map to :data:`INCONSISTENT` (the per-tuple
    expansion then treats them as dangling).  O(|guard|) once, O(1) per
    probed tuple thereafter.
    """
    index = guard.index_on(key_attrs)
    value_positions = guard.positions(value_attrs)
    lookup: dict[tuple, object] = {}
    for key, bucket in index.items():
        first = bucket[0]
        vals = tuple(first[p] for p in value_positions)
        for m in bucket[1:]:
            if tuple(m[p] for p in value_positions) != vals:
                vals = INCONSISTENT
                break
        lookup[key] = vals
    return lookup


def build_multi_guard_lookup(
    guard, key_attrs: tuple[str, ...], value_attrs: tuple[str, ...]
) -> dict:
    """Multi-image lookup ``key → tuple of distinct images``.

    Mirrors joining with the deduplicated projection ``Π_{key∪value}``:
    per key, one image per *distinct* value combination.
    """
    index = guard.index_on(key_attrs)
    value_positions = guard.positions(value_attrs)
    lookup: dict[tuple, tuple] = {}
    for key, bucket in index.items():
        lookup[key] = tuple(
            dict.fromkeys(tuple(m[p] for p in value_positions) for m in bucket)
        )
    return lookup
