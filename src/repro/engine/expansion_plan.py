"""Compiled positional expansion plans — the engine's execution kernel.

The paper charges the expansion procedure (Sec. 2) Õ(N), but a naive
implementation pays a large *constant* factor per tuple: rebuilding
attr→value dicts, re-deriving ``applicable_fds``, and linearly scanning the
stored relations for a guard on every single tuple.  None of that work is
data-dependent — for a fixed (source schema, target varset) pair the
sequence of FD applications, the guard relations, and the attribute
positions are all determined symbolically.

This module compiles that sequence **once** into an :class:`ExpansionPlan`:
a flat list of positional steps executed directly on raw tuples.

* a *guard step* is ``(key positions, functional lookup)`` where the lookup
  maps a key tuple to the new attribute values (precomputed from the guard
  relation, with the fd's "all images agree" consistency verified at build
  time — Sec. 2's guard invariant);
* a *dense guard step* (dictionary-encoded plans only) replaces the hash
  probe with a flat ``list`` index: the key is a single attribute whose
  code domain is dense, so ``table[code]`` *is* the functional lookup;
* a *UDF step* is ``(callable, input positions)`` for unguarded fds (on
  the encoded plane the callable decodes its arguments lazily, applies the
  opaque predicate, and interns the result — see
  ``Database._encoded_udf_fn``).

Plans are cached on the :class:`~repro.engine.database.Database` (compiled
at most once per source schema / target / plane), and shared by every
algorithm in ``repro.core``.  Work counters are incremented exactly as in
the reference path (``repro.engine.reference``): one touch per guarded fd
application (hit or miss) and one per UDF evaluation — the *measured work
shapes are bit-identical*, only the constant factor drops.

Batch execution has three backends, auto-selected per frontier size: the
generated row-loop, the columnwise functional-map backend, and (encoded
plans only) the array-of-int64 frontier backend of
:mod:`repro.engine.frontier` (``execute_batch_ndarray``: int64 blocks +
dangling masks, ``np.take``-style dense gathers, sort/searchsorted key
joins, UDFs on masked-in rows only).  All three charge identical counts.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Sequence

try:  # numpy accelerates the columnwise guard path; never required.
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro import config
from repro.engine import frontier as _frontier
from repro.engine import fused as _fused
from repro.engine import shard as _shard
from repro.engine.cancellation import checkpoint

GUARD = 0
UDF = 1
GUARD_DENSE = 2


#: Frontier size at which ``execute_batch`` switches from the generated
#: row-loop to the columnwise backend.  Measured crossover (see
#: PERFORMANCE.md): below ~32k rows the two are within noise of each other
#: and the row-loop avoids the transposition; at ~100k+ the columnwise
#: functional-map application pulls ahead (~1.1-1.2x on guard chains).
COLUMN_MIN_ROWS = config.get("REPRO_BATCH_COLUMN_MIN")
#: Alive-row count at which a single-attribute integer guard step
#: deduplicates lookups through numpy (``np.unique`` + gather) on the
#: *raw* plane.  Dict probes on small int keys are cheaper than the sort,
#: so this is an opt-in for workloads with fat keys / expensive hashes.
NUMPY_MIN_ROWS = config.get("REPRO_BATCH_NUMPY_MIN")
#: The same threshold for dictionary-encoded plans, where keys are ints by
#: construction (no per-cell gate) — the unique-key path engages by
#: default on large encoded frontiers.
NUMPY_MIN_ROWS_ENCODED = config.get("REPRO_BATCH_NUMPY_MIN_ENCODED")
#: The unique-key path engages only when keys repeat at least this often on
#: average — otherwise the O(m log m) sort buys nothing over m dict probes.
_DEDUP_PAYOFF = 4


def tuple_getter(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """``t -> tuple(t[p] for p in positions)`` compiled to C speed.

    ``operator.itemgetter`` already returns a tuple for two or more
    positions; the 0/1-arity cases are wrapped to keep the contract.
    """
    positions = tuple(positions)
    if not positions:
        return lambda t: ()
    if len(positions) == 1:
        p = positions[0]
        return lambda t: (t[p],)
    return itemgetter(*positions)


def fused_udf(fn: Callable, positions: Sequence[int]) -> Callable[[tuple], object]:
    """``t -> fn(t[p0], t[p1], ...)`` with the common arities unrolled."""
    positions = tuple(positions)
    if not positions:
        return lambda t: fn()
    if len(positions) == 1:
        (p,) = positions
        return lambda t: fn(t[p])
    if len(positions) == 2:
        p0, p1 = positions
        return lambda t: fn(t[p0], t[p1])
    get = itemgetter(*positions)
    return lambda t: fn(*get(t))

#: Sentinel stored in a functional guard lookup when a key maps to several
#: distinct images, i.e. the guard relation violates its fd.  Tuples hitting
#: such a key are treated as dangling (the expansion returns ``None``)
#: instead of silently inheriting the first image.
INCONSISTENT = object()


def densify_lookup(lookup: dict, domain_size: int, slack: int = 8) -> list | None:
    """A flat decode table for a single-int-key functional lookup.

    Returns ``table`` with ``table[code] = image`` (``None`` for keys not
    in the guard) when the attribute's code domain is dense enough that
    the table stays within ``slack``× the number of keys (never below a
    small floor, so tiny guards always densify); ``None`` when the domain
    is too sparse for a table to pay off.
    """
    if domain_size > max(1024, slack * len(lookup)):
        return None
    table: list = [None] * domain_size
    for (code,), image in lookup.items():
        table[code] = image
    return table


class ExpansionPlan:
    """A compiled expansion ``source schema → closure/target`` (Sec. 2).

    ``steps`` is a tuple of ``(tag, positions, payload)`` triples:

    * ``(GUARD, key_positions, lookup)`` — probe the functional lookup with
      the positionally-extracted key; append the image values.
    * ``(GUARD_DENSE, (position,), table)`` — encoded plans only: index a
      flat list with the single key code (out-of-range codes — values
      interned after the plan compiled — are misses, like any unseen key).
    * ``(UDF, input_positions, fn)`` — append ``fn(*inputs)``.

    ``out_schema`` is the source schema followed by the appended attributes
    in application order.  ``encoded`` marks plans compiled for the
    dictionary-encoded plane: inputs are code tuples, and every column is
    statically known to be ints (the numpy guard gate never scans).

    ``execute`` is *generated code*: the step list is flattened into one
    Python function at construction, so per-tuple execution pays a single
    call frame plus the UDF calls themselves.

    ``execute_batch`` runs the plan over a whole frontier at once: small
    batches go through a generated loop (the row-loop fallback, one call
    frame per *batch*), large ones through the columnwise backend
    (:meth:`_execute_columns`) where each guard step applies its functional
    map down a key column and each UDF maps down its argument columns.
    Both return a list aligned with the input (``None`` marks dangling
    rows) and charge the counter the exact per-tuple total: one touch per
    step a tuple reaches, nothing past the step where it dangles.
    """

    __slots__ = (
        "source_schema", "out_schema", "steps", "encoded", "_positions",
        "execute", "_execute_batch_rows", "_nd_specs", "_fused_pipelines",
    )

    def __init__(
        self,
        source_schema: tuple[str, ...],
        out_schema: tuple[str, ...],
        steps: tuple[tuple, ...],
        encoded: bool = False,
    ):
        self.source_schema = source_schema
        self.out_schema = out_schema
        self.steps = steps
        self.encoded = encoded
        self._positions = {a: i for i, a in enumerate(out_schema)}
        self.execute = self._compile()
        self._execute_batch_rows = self._compile_batch()
        self._nd_specs = None  # ndarray step specs, compiled on first use
        # Generated fused pipelines, keyed by fused.pipeline_key();
        # compiled lazily from (and invalidated with) _nd_specs.
        self._fused_pipelines: dict = {}

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Positions of ``attrs`` in :attr:`out_schema`."""
        return tuple(self._positions[a] for a in attrs)

    def _compile(self):
        """Generate ``execute(t, counter=None) -> tuple | None``.

        Returns the extended tuple, or ``None`` when a guard lookup misses
        (dangling tuple) or hits an fd-inconsistent key.  Counter semantics
        match the naive per-tuple expansion exactly: one touch per guarded
        fd application (hit or miss) and one per UDF evaluation, charged
        before the step runs so a dangling tuple stops the count exactly
        where the naive loop would.
        """
        namespace: dict[str, object] = {"INCONSISTENT": INCONSISTENT}
        lines = ["def execute(t, counter=None):"]
        for i, (tag, positions, payload) in enumerate(self.steps):
            lines.append("    if counter is not None: counter.add()")
            cells = ", ".join(f"t[{p}]" for p in positions)
            if tag == GUARD:
                namespace[f"lookup{i}"] = payload
                key = f"({cells},)" if len(positions) == 1 else f"({cells})"
                lines.append(f"    v = lookup{i}.get({key})")
                lines.append("    if v is None or v is INCONSISTENT: return None")
                lines.append("    t = t + v")
            elif tag == GUARD_DENSE:
                namespace[f"table{i}"] = payload
                lines.append(f"    c = t[{positions[0]}]")
                lines.append(
                    f"    v = table{i}[c] if c < {len(payload)} else None"
                )
                lines.append("    if v is None or v is INCONSISTENT: return None")
                lines.append("    t = t + v")
            else:
                namespace[f"fn{i}"] = payload
                lines.append(f"    t = t + (fn{i}({cells}),)")
        lines.append("    return t")
        exec("\n".join(lines), namespace)
        return namespace["execute"]

    def _compile_batch(self):
        """Generate the row-loop batch executor (the pure-python fallback).

        Same per-row semantics as :meth:`execute`, but the whole frontier
        runs inside one generated function and the counter is charged once
        with the accumulated total, so a batch costs one call frame plus
        the step work itself.
        """
        namespace: dict[str, object] = {"INCONSISTENT": INCONSISTENT}
        lines = [
            "def execute_batch(ts, counter=None):",
            "    out = []",
            "    append = out.append",
            "    touched = 0",
            "    for t in ts:",
        ]
        for i, (tag, positions, payload) in enumerate(self.steps):
            lines.append("        touched += 1")
            cells = ", ".join(f"t[{p}]" for p in positions)
            if tag == GUARD:
                namespace[f"lookup{i}"] = payload
                key = f"({cells},)" if len(positions) == 1 else f"({cells})"
                lines.append(f"        v = lookup{i}.get({key})")
            elif tag == GUARD_DENSE:
                namespace[f"table{i}"] = payload
                lines.append(f"        c = t[{positions[0]}]")
                lines.append(
                    f"        v = table{i}[c] if c < {len(payload)} else None"
                )
            else:
                namespace[f"fn{i}"] = payload
                lines.append(f"        t = t + (fn{i}({cells}),)")
                continue
            lines.append("        if v is None or v is INCONSISTENT:")
            lines.append("            append(None)")
            lines.append("            continue")
            lines.append("        t = t + v")
        lines.append("        append(t)")
        lines.append("    if counter is not None and touched:")
        lines.append("        counter.add(touched)")
        lines.append("    return out")
        exec("\n".join(lines), namespace)
        return namespace["execute_batch"]

    def execute_batch(self, tuples, counter=None) -> list:
        """Run the plan over a frontier; aligned output, ``None`` = dangling.

        Dispatches on frontier size: small frontiers use the generated
        row-loop, large ones the columnwise backend over a transposed
        column-store.  Counter totals are bit-identical either way.
        """
        if not isinstance(tuples, (list, tuple)):
            tuples = list(tuples)
        if not self.steps:
            # Nothing to apply: the aligned output IS the input (a plan
            # over an already-closed schema).  One C-level copy, no
            # generated loop, no counter charges — as the step-less
            # row-loop would (zero touches).
            return list(tuples)
        n = len(tuples)
        if n == 0:
            return []
        checkpoint()  # frontier-block granularity deadline/fault check-in
        if self.encoded and _frontier.ndarray_roundtrip_engaged(n):
            block = _frontier.rows_to_block(tuples, len(self.source_schema))
            if block is not None:
                out, mask = self.execute_batch_ndarray(block, counter)
                return _frontier.block_to_rows(out, mask)
        if n < COLUMN_MIN_ROWS:
            return self._execute_batch_rows(tuples, counter)
        # Column extraction via itemgetter maps: C-level per column, and
        # much cheaper than a zip(*rows) star-unpack on large frontiers.
        cols = [
            list(map(itemgetter(j), tuples))
            for j in range(len(self.source_schema))
        ]
        return self._execute_columns(cols, n, counter)

    def execute_batch_columns(
        self, columns, n: int, counter=None, all_int=None
    ) -> list:
        """Batch entry point for callers that already hold a column-store
        (:meth:`repro.engine.relation.Relation.columns`).

        ``all_int`` is the caller's memoized per-column verdict
        (:meth:`repro.engine.relation.Relation.columns_all_int`) so the
        numpy guard gate never re-scans a cached column.
        """
        if n == 0:
            return []
        checkpoint()  # frontier-block granularity deadline/fault check-in
        if (
            self.encoded
            and self.steps
            and _frontier.ndarray_roundtrip_engaged(n)
        ):
            block = _frontier.columns_to_block(columns, n)
            if block is not None:
                out, mask = self.execute_batch_ndarray(block, counter)
                return _frontier.block_to_rows(out, mask)
        if n < COLUMN_MIN_ROWS or not self.steps:
            rows = list(zip(*columns)) if columns else [()] * n
            return self._execute_batch_rows(rows, counter)
        return self._execute_columns(list(columns), n, counter, all_int)

    # ------------------------------------------------------------------
    # The ndarray frontier backend (dictionary-encoded plans only)
    # ------------------------------------------------------------------
    def _ndarray_specs(self) -> tuple:
        """Per-step numpy payloads, compiled once per plan on first use.

        Guard payloads are snapshots of the same compile-time tables the
        scalar/row-loop backends consult, re-shaped for vectorized
        probing; fd-inconsistent entries are dropped (a missing key and
        an :data:`INCONSISTENT` key both dangle, so the semantics are
        unchanged).  Lazy compilation is safe because guard lookups and
        dense tables are immutable after the plan compiles — only the
        *dictionaries* grow mid-run, and every probe below treats an
        out-of-range code as a miss.
        """
        specs = self._nd_specs
        if specs is not None:
            return specs
        built: list[tuple] = []
        for tag, positions, payload in self.steps:
            if tag == UDF:
                built.append(("udf", tuple(positions), payload, 1))
            elif tag == GUARD_DENSE:
                table = payload
                size = len(table)
                # One Python pass to collect the valid entries, then
                # C-level array construction and a boolean scatter — the
                # per-entry numpy row assignment was the compile
                # bottleneck on ~10⁶-key dense guards.
                entries = [
                    entry
                    for entry in table
                    if entry is not None and entry is not INCONSISTENT
                ]
                width = len(entries[0]) if entries else 0
                valid = _np.fromiter(
                    (
                        entry is not None and entry is not INCONSISTENT
                        for entry in table
                    ),
                    dtype=bool,
                    count=size,
                )
                images = _np.zeros((size, width), dtype=_np.int64)
                if entries and width == 1:
                    # ~3x faster than np.array on millions of 1-tuples.
                    images[valid, 0] = _np.fromiter(
                        (entry[0] for entry in entries),
                        dtype=_np.int64,
                        count=len(entries),
                    )
                elif entries and width:
                    images[valid] = _np.array(entries, dtype=_np.int64)
                built.append(("dense", positions[0], size, valid, images, width))
            else:
                items = [
                    (key, image)
                    for key, image in payload.items()
                    if image is not INCONSISTENT
                ]
                width = len(items[0][1]) if items else 0
                if items:
                    keys = _np.array([key for key, _ in items], dtype=_np.int64)
                    images = _np.array(
                        [image for _, image in items], dtype=_np.int64
                    ).reshape(len(items), width)
                    struct, order = _frontier.sorted_key_block(keys)
                    images = images[order]
                else:
                    struct = ("empty", None, None)
                    images = _np.zeros((0, width), dtype=_np.int64)
                built.append(
                    ("sparse", tuple(positions), struct, images, width)
                )
        self._nd_specs = specs = tuple(built)
        return specs

    def shard_positions(self) -> tuple[int, ...]:
        """Source-block columns the shard backend hash-partitions on: the
        first guard step's key columns (so co-keyed rows probe the same
        guard from one shard), falling back to every source column when
        no guard keys purely into the source block."""
        width = len(self.source_schema)
        for tag, positions, _ in self.steps:
            if tag != UDF and positions and all(p < width for p in positions):
                return tuple(positions)
        return tuple(range(width))

    def execute_batch_ndarray(self, block, counter=None, step_alive=None):
        """Run the plan over an ``(n, len(source_schema))`` int64 frontier
        block (encoded plans only); see
        :meth:`execute_batch_ndarray_local` for the kernel contract.

        This is the shard seam: when the sharded backend is engaged
        (``REPRO_SHARD``), the block is hash-partitioned and executed
        across the worker pool with a deterministic merge — the returned
        ``(out, mask)`` and the counter charge are bit-identical to the
        local kernel for any worker count.  Every block caller (the
        chain/CSMA/SMA/generic seams, ``Database.expand_rows`` and the
        roundtrip entry points) inherits sharding through this one
        dispatch.  ``step_alive`` (an optional list) receives the
        alive-row count of every plan step, shard-merged by exact sums.
        """
        if self.steps and _shard.shard_engaged(block.shape[0]):
            return _shard.run_plan_sharded(self, block, counter, step_alive)
        return self.execute_batch_ndarray_local(block, counter, step_alive)

    def _fused_pipeline(self):
        """The generated fused pipeline for the current configuration
        (compiled once per plan, cached alongside ``_nd_specs``)."""
        key = _fused.pipeline_key()
        fn = self._fused_pipelines.get(key)
        if fn is None:
            fn = self._fused_pipelines[key] = _fused.compile_pipeline(self)
        return fn

    def execute_batch_ndarray_local(self, block, counter=None, step_alive=None):
        """Run the plan over an ``(n, len(source_schema))`` int64 frontier
        block (encoded plans only), unsharded.

        Returns ``(out, mask)``: ``out`` is the ``(n, len(out_schema))``
        int64 result block, ``mask`` the alive-row flags (``None`` = no
        row dangled).  Dead rows keep garbage in their appended cells and
        must never be read — though every written cell is *per-row
        deterministic* (dead rows gather slot-0/clipped images like any
        other), which is what lets the shard backend scatter-merge
        per-shard outputs bit-identically.  Dense guard steps gather
        through their flat table (out-of-range codes — values interned
        after the plan compiled — are misses); sparse guard steps run
        sort/searchsorted key joins on the lexicographic void view; UDF
        steps decode and evaluate only the masked-in rows.  Counter
        totals are bit-identical to the row-loop backend: each step
        charges exactly the rows alive when it runs.  ``step_alive``
        (optional list) receives each step's alive-row count (0 for
        steps short-circuited by a dead frontier).

        Under ``REPRO_FUSE`` (``auto``/``on``, the default) the whole
        spec list runs as one generated pipeline with consecutive dense
        gathers composed into fused tables — same outputs, same counter
        totals, same per-step counts, fewer passes (``REPRO_FUSE=off``
        keeps this per-step loop).
        """
        if self.steps and _fused.fuse_engaged():
            return self._fused_pipeline()(block, counter, step_alive)
        np = _np
        n = block.shape[0]
        # zeros, not empty: appended cells of rows that dangle mid-plan
        # are never *read as results*, but later guard steps do probe
        # them vectorized — heap garbage there (e.g. a huge negative in
        # a skipped UDF output cell) would fancy-index a table out of
        # bounds.  Code 0 always probes safely.
        out = np.zeros((n, len(self.out_schema)), dtype=np.int64)
        ncols = block.shape[1]
        if ncols:
            out[:, :ncols] = block
        mask = None
        m = n
        touched = 0
        cursor = ncols
        specs = self._ndarray_specs()
        profiled = _fused.PROFILE_STEPS
        for i, spec in enumerate(specs):
            if m == 0:
                if step_alive is not None:
                    step_alive.extend((0,) * (len(specs) - i))
                break
            checkpoint()  # per plan step over the whole block
            if profiled:
                t0 = _fused.perf_counter()
                rows0 = m
            touched += m
            if step_alive is not None:
                step_alive.append(m)
            kind = spec[0]
            if kind == "udf":
                _, positions, fn, width = spec
                if mask is None:
                    if positions:
                        out[:, cursor] = np.fromiter(
                            map(fn, *(out[:, p].tolist() for p in positions)),
                            np.int64,
                            count=n,
                        )
                    else:
                        out[:, cursor] = np.fromiter(
                            (fn() for _ in range(n)), np.int64, count=n
                        )
                else:
                    alive = np.flatnonzero(mask)
                    if positions:
                        out[alive, cursor] = np.fromiter(
                            map(
                                fn,
                                *(out[alive, p].tolist() for p in positions),
                            ),
                            np.int64,
                            count=m,
                        )
                    else:
                        out[alive, cursor] = np.fromiter(
                            (fn() for _ in range(m)), np.int64, count=m
                        )
                cursor += 1
                if profiled:
                    _fused.profile_record(
                        "udf", rows0, _fused.perf_counter() - t0
                    )
                continue
            if kind == "dense":
                _, pos, size, valid, images, width = spec
                codes = out[:, pos]
                if size:
                    inrange = codes < size
                    slot = np.where(inrange, codes, 0)
                    hit = inrange & valid[slot]
                    if width:
                        out[:, cursor:cursor + width] = images[slot]
                else:
                    hit = np.zeros(n, dtype=bool)
            else:
                _, positions, struct, images, width = spec
                hit, slot = _frontier.key_hits(struct, out, positions)
                if width and images.shape[0]:
                    out[:, cursor:cursor + width] = images[slot]
            cursor += width
            mask = hit if mask is None else mask & hit
            m = int(np.count_nonzero(mask))
            if profiled:
                _fused.profile_record(
                    spec[0], rows0, _fused.perf_counter() - t0
                )
        if counter is not None and touched:
            counter.add(touched)
        return out, mask

    def _execute_columns(
        self, cols: list, n: int, counter=None, all_int=None
    ) -> list:
        """Columnwise plan execution over ``cols`` (one sequence per source
        attribute, ``n`` rows).

        Guard steps apply their functional map down the key column with
        ``map(lookup.get, zip(...))`` (C-level iteration); dense guard
        steps index their flat table directly; misses compress the store
        so dead rows never reach a UDF.  Large integer-keyed steps
        deduplicate probes through numpy (one dict probe per distinct
        key); the per-column "all ints" verdict is memoized in
        ``int_known`` (statically ``True`` on encoded plans) rather than
        re-scanned per call.  Work accounting: each step charges the rows
        alive when it runs — summed over rows, exactly the per-tuple
        prefix counts.
        """
        # Per-column int verdict: True/False known, None = not yet checked.
        if self.encoded:
            int_known: list = [True] * len(cols)
        elif all_int is not None:
            int_known = list(all_int[: len(cols)])
        else:
            int_known = [None] * len(cols)

        def col_is_int(j: int) -> bool:
            verdict = int_known[j]
            if verdict is None:
                verdict = int_known[j] = all(
                    type(v) is int for v in cols[j]
                )
            return verdict

        touched = 0
        alive: list[int] | None = None  # None = all n input rows alive
        m = n
        for tag, positions, payload in self.steps:
            if m == 0:
                break
            checkpoint()  # per plan step over the whole column store
            touched += m
            if tag != UDF:
                images = self._guard_images(
                    cols, positions, payload, m, tag, col_is_int
                )
                miss = False
                for v in images:
                    if v is None or v is INCONSISTENT:
                        miss = True
                        break
                if miss:
                    keep = [
                        j
                        for j, v in enumerate(images)
                        if v is not None and v is not INCONSISTENT
                    ]
                    alive = keep if alive is None else [alive[j] for j in keep]
                    cols = [[c[j] for j in keep] for c in cols]
                    images = [images[j] for j in keep]
                    m = len(keep)
                    if m == 0:
                        break
                for j in range(len(images[0])):
                    cols.append(list(map(itemgetter(j), images)))
                    # Guard images on the encoded plane are code tuples;
                    # raw-plane image columns are checked lazily if a
                    # later step keys on them.
                    int_known.append(True if self.encoded else None)
            else:
                if positions:
                    cols.append(list(map(payload, *(cols[p] for p in positions))))
                else:
                    cols.append([payload() for _ in range(m)])
                int_known.append(True if self.encoded else None)
        if counter is not None and touched:
            counter.add(touched)
        out: list = [None] * n
        if m:
            rows = zip(*cols) if cols else iter([()] * m)
            if alive is None:
                return list(rows)
            for i, row in zip(alive, rows):
                out[i] = row
        return out

    def _guard_images(
        self, cols, positions, payload, m: int, tag, col_is_int
    ) -> list:
        """The guard's functional map applied down the key column(s)."""
        if tag == GUARD_DENSE:
            table = payload
            size = len(table)
            col = cols[positions[0]]
            return [table[c] if c < size else None for c in col]
        lookup = payload
        if len(positions) == 1:
            col = cols[positions[0]]
            threshold = (
                NUMPY_MIN_ROWS_ENCODED if self.encoded else NUMPY_MIN_ROWS
            )
            if (
                _np is not None
                and m >= threshold
                and col_is_int(positions[0])
            ):
                try:
                    arr = _np.fromiter(col, dtype=_np.int64, count=m)
                except OverflowError:
                    arr = None
                if arr is not None:
                    uniq, inverse = _np.unique(arr, return_inverse=True)
                    if len(uniq) * _DEDUP_PAYOFF <= m:
                        gathered = _np.empty(len(uniq), dtype=object)
                        gathered[:] = [lookup.get((int(v),)) for v in uniq]
                        return list(gathered[inverse])
            return list(map(lookup.get, zip(col)))
        return list(map(lookup.get, zip(*(cols[p] for p in positions))))


class RelationExpansionPlan:
    """A compiled whole-relation expansion ``R → R⁺`` (Sec. 2).

    Same step vocabulary as :class:`ExpansionPlan` (minus the dense-table
    specialization), but guard steps carry a *multi-image* lookup (key →
    tuple of distinct images) replicating the set semantics of joining
    with ``Π_{X∪Y}(guard)``: dangling tuples are dropped and an
    fd-violating guard key contributes one output row per distinct image,
    exactly as the reference join does.
    """

    __slots__ = ("source_schema", "out_schema", "steps", "encoded", "_compiled")

    def __init__(
        self,
        source_schema: tuple[str, ...],
        out_schema: tuple[str, ...],
        steps: tuple[tuple, ...],
        encoded: bool = False,
    ):
        self.source_schema = source_schema
        self.out_schema = out_schema
        self.steps = steps
        self.encoded = encoded
        self._compiled = tuple(
            (tag, tuple_getter(positions) if tag == GUARD
             else fused_udf(payload, positions), payload)
            for tag, positions, payload in steps
        )

    def execute_all(self, tuples, counter=None) -> list[tuple]:
        """Run the plan over a tuple collection, step by step.

        Counter semantics match the reference ``natural_join`` chain: one
        touch per emitted row on guard steps, one per tuple on UDF steps.
        """
        current = tuples
        for tag, extract, payload in self._compiled:
            checkpoint()  # per plan step over the whole relation
            out = []
            if tag == GUARD:
                for t in current:
                    images = payload.get(extract(t))
                    if images is None:
                        continue
                    for img in images:
                        out.append(t + img)
                if counter is not None:
                    counter.add(len(out))
            else:
                if counter is not None:
                    counter.add(len(current))
                for t in current:
                    out.append(t + (extract(t),))
            current = out
        return list(current) if current is tuples else current


def build_guard_lookup(
    guard, key_attrs: tuple[str, ...], value_attrs: tuple[str, ...]
) -> dict:
    """Functional lookup ``key → image`` from a guard relation.

    Verifies the fd on the guard once at build time: keys whose buckets
    disagree on the image map to :data:`INCONSISTENT` (the per-tuple
    expansion then treats them as dangling).  O(|guard|) once, O(1) per
    probed tuple thereafter.

    When the guard already holds its columnar view (encoded twins always
    do), the lookup builds in one C pass — ``dict(zip(keys, images))`` —
    and the build is done if every key was unique (a unique-keyed guard
    is trivially consistent).  Duplicate keys fall back to the
    bucket-checking build.
    """
    columns = guard.cached_columns()
    if columns is not None and guard.tuples:
        key_positions = guard.positions(key_attrs)
        value_positions = guard.positions(value_attrs)
        lookup = dict(
            zip(
                zip(*(columns[p] for p in key_positions)),
                zip(*(columns[p] for p in value_positions)),
            )
        )
        if len(lookup) == len(guard.tuples):
            return lookup
    index = guard.index_on(key_attrs)
    value_positions = guard.positions(value_attrs)
    lookup: dict[tuple, object] = {}
    for key, bucket in index.items():
        first = bucket[0]
        vals = tuple(first[p] for p in value_positions)
        for m in bucket[1:]:
            if tuple(m[p] for p in value_positions) != vals:
                vals = INCONSISTENT
                break
        lookup[key] = vals
    return lookup


def build_multi_guard_lookup(
    guard, key_attrs: tuple[str, ...], value_attrs: tuple[str, ...]
) -> dict:
    """Multi-image lookup ``key → tuple of distinct images``.

    Mirrors joining with the deduplicated projection ``Π_{key∪value}``:
    per key, one image per *distinct* value combination.
    """
    index = guard.index_on(key_attrs)
    value_positions = guard.positions(value_attrs)
    lookup: dict[tuple, tuple] = {}
    for key, bucket in index.items():
        lookup[key] = tuple(
            dict.fromkeys(tuple(m[p] for p in value_positions) for m in bucket)
        )
    return lookup
