"""Compiled positional expansion plans — the engine's execution kernel.

The paper charges the expansion procedure (Sec. 2) Õ(N), but a naive
implementation pays a large *constant* factor per tuple: rebuilding
attr→value dicts, re-deriving ``applicable_fds``, and linearly scanning the
stored relations for a guard on every single tuple.  None of that work is
data-dependent — for a fixed (source schema, target varset) pair the
sequence of FD applications, the guard relations, and the attribute
positions are all determined symbolically.

This module compiles that sequence **once** into an :class:`ExpansionPlan`:
a flat list of positional steps executed directly on raw tuples.

* a *guard step* is ``(key positions, functional lookup)`` where the lookup
  maps a key tuple to the new attribute values (precomputed from the guard
  relation, with the fd's "all images agree" consistency verified at build
  time — Sec. 2's guard invariant);
* a *UDF step* is ``(callable, input positions)`` for unguarded fds.

Plans are cached on the :class:`~repro.engine.database.Database` (compiled
at most once per source schema / target pair) and shared by every
algorithm in ``repro.core``.  Work counters are incremented exactly as in
the reference path (``repro.engine.reference``): one touch per guarded fd
application (hit or miss) and one per UDF evaluation — the *measured work
shapes are bit-identical*, only the constant factor drops.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Sequence

GUARD = 0
UDF = 1


def tuple_getter(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """``t -> tuple(t[p] for p in positions)`` compiled to C speed.

    ``operator.itemgetter`` already returns a tuple for two or more
    positions; the 0/1-arity cases are wrapped to keep the contract.
    """
    positions = tuple(positions)
    if not positions:
        return lambda t: ()
    if len(positions) == 1:
        p = positions[0]
        return lambda t: (t[p],)
    return itemgetter(*positions)


def fused_udf(fn: Callable, positions: Sequence[int]) -> Callable[[tuple], object]:
    """``t -> fn(t[p0], t[p1], ...)`` with the common arities unrolled."""
    positions = tuple(positions)
    if not positions:
        return lambda t: fn()
    if len(positions) == 1:
        (p,) = positions
        return lambda t: fn(t[p])
    if len(positions) == 2:
        p0, p1 = positions
        return lambda t: fn(t[p0], t[p1])
    get = itemgetter(*positions)
    return lambda t: fn(*get(t))

#: Sentinel stored in a functional guard lookup when a key maps to several
#: distinct images, i.e. the guard relation violates its fd.  Tuples hitting
#: such a key are treated as dangling (the expansion returns ``None``)
#: instead of silently inheriting the first image.
INCONSISTENT = object()


class ExpansionPlan:
    """A compiled expansion ``source schema → closure/target`` (Sec. 2).

    ``steps`` is a tuple of ``(tag, positions, payload)`` triples:

    * ``(GUARD, key_positions, lookup)`` — probe the functional lookup with
      the positionally-extracted key; append the image values.
    * ``(UDF, input_positions, fn)`` — append ``fn(*inputs)``.

    ``out_schema`` is the source schema followed by the appended attributes
    in application order.  ``execute`` is *generated code*: the step list
    is flattened into one Python function at construction, so per-tuple
    execution pays a single call frame plus the UDF calls themselves.
    """

    __slots__ = ("source_schema", "out_schema", "steps", "_positions", "execute")

    def __init__(
        self,
        source_schema: tuple[str, ...],
        out_schema: tuple[str, ...],
        steps: tuple[tuple, ...],
    ):
        self.source_schema = source_schema
        self.out_schema = out_schema
        self.steps = steps
        self._positions = {a: i for i, a in enumerate(out_schema)}
        self.execute = self._compile()

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Positions of ``attrs`` in :attr:`out_schema`."""
        return tuple(self._positions[a] for a in attrs)

    def _compile(self):
        """Generate ``execute(t, counter=None) -> tuple | None``.

        Returns the extended tuple, or ``None`` when a guard lookup misses
        (dangling tuple) or hits an fd-inconsistent key.  Counter semantics
        match the naive per-tuple expansion exactly: one touch per guarded
        fd application (hit or miss) and one per UDF evaluation, charged
        before the step runs so a dangling tuple stops the count exactly
        where the naive loop would.
        """
        namespace: dict[str, object] = {"INCONSISTENT": INCONSISTENT}
        lines = ["def execute(t, counter=None):"]
        for i, (tag, positions, payload) in enumerate(self.steps):
            lines.append("    if counter is not None: counter.add()")
            cells = ", ".join(f"t[{p}]" for p in positions)
            if tag == GUARD:
                namespace[f"lookup{i}"] = payload
                key = f"({cells},)" if len(positions) == 1 else f"({cells})"
                lines.append(f"    v = lookup{i}.get({key})")
                lines.append("    if v is None or v is INCONSISTENT: return None")
                lines.append("    t = t + v")
            else:
                namespace[f"fn{i}"] = payload
                lines.append(f"    t = t + (fn{i}({cells}),)")
        lines.append("    return t")
        exec("\n".join(lines), namespace)
        return namespace["execute"]


class RelationExpansionPlan:
    """A compiled whole-relation expansion ``R → R⁺`` (Sec. 2).

    Same step vocabulary as :class:`ExpansionPlan`, but guard steps carry a
    *multi-image* lookup (key → tuple of distinct images) replicating the
    set semantics of joining with ``Π_{X∪Y}(guard)``: dangling tuples are
    dropped and an fd-violating guard key contributes one output row per
    distinct image, exactly as the reference join does.
    """

    __slots__ = ("source_schema", "out_schema", "steps", "_compiled")

    def __init__(
        self,
        source_schema: tuple[str, ...],
        out_schema: tuple[str, ...],
        steps: tuple[tuple, ...],
    ):
        self.source_schema = source_schema
        self.out_schema = out_schema
        self.steps = steps
        self._compiled = tuple(
            (tag, tuple_getter(positions) if tag == GUARD
             else fused_udf(payload, positions), payload)
            for tag, positions, payload in steps
        )

    def execute_all(self, tuples, counter=None) -> list[tuple]:
        """Run the plan over a tuple collection, step by step.

        Counter semantics match the reference ``natural_join`` chain: one
        touch per emitted row on guard steps, one per tuple on UDF steps.
        """
        current = tuples
        for tag, extract, payload in self._compiled:
            out = []
            if tag == GUARD:
                for t in current:
                    images = payload.get(extract(t))
                    if images is None:
                        continue
                    for img in images:
                        out.append(t + img)
                if counter is not None:
                    counter.add(len(out))
            else:
                if counter is not None:
                    counter.add(len(current))
                for t in current:
                    out.append(t + (extract(t),))
            current = out
        return list(current) if current is tuples else current


def build_guard_lookup(
    guard, key_attrs: tuple[str, ...], value_attrs: tuple[str, ...]
) -> dict:
    """Functional lookup ``key → image`` from a guard relation.

    Verifies the fd on the guard once at build time: keys whose buckets
    disagree on the image map to :data:`INCONSISTENT` (the per-tuple
    expansion then treats them as dangling).  O(|guard|) once, O(1) per
    probed tuple thereafter.
    """
    index = guard.index_on(key_attrs)
    value_positions = guard.positions(value_attrs)
    lookup: dict[tuple, object] = {}
    for key, bucket in index.items():
        first = bucket[0]
        vals = tuple(first[p] for p in value_positions)
        for m in bucket[1:]:
            if tuple(m[p] for p in value_positions) != vals:
                vals = INCONSISTENT
                break
        lookup[key] = vals
    return lookup


def build_multi_guard_lookup(
    guard, key_attrs: tuple[str, ...], value_attrs: tuple[str, ...]
) -> dict:
    """Multi-image lookup ``key → tuple of distinct images``.

    Mirrors joining with the deduplicated projection ``Π_{key∪value}``:
    per key, one image per *distinct* value combination.
    """
    index = guard.index_on(key_attrs)
    value_positions = guard.positions(value_attrs)
    lookup: dict[tuple, tuple] = {}
    for key, bucket in index.items():
        lookup[key] = tuple(
            dict.fromkeys(tuple(m[p] for p in value_positions) for m in bucket)
        )
    return lookup
