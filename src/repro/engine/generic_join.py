"""Generic worst-case-optimal join (NPRR / Generic-Join / LFTJ family).

This is the FD-*oblivious* baseline: it runs in time Õ(N + AGM(Q)) but
cannot exploit functional dependencies analytically (Sec. 1.2).  With
``fd_aware=True`` it adds LFTJ's practical FD handling (footnote 1 of the
paper): a variable functionally determined by the bound prefix is computed
via the expansion procedure instead of enumerated — this prunes per-branch
work but provably does not change the Ω(N²) worst case of Ex. 5.8.

Prefix bindings are raw tuples over ``order[:depth]``; the per-depth
candidate indexes, verification keys, FD closures and expansion plans are
all derived once per depth, so the recursion touches no dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.database import Database
from repro.engine.expansion_plan import tuple_getter
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.query.query import Query


@dataclass
class GenericJoinStats:
    """Work accounting for one generic-join run."""

    tuples_touched: int = 0
    intermediate_peak: int = 0
    per_depth: list[int] = field(default_factory=list)


def generic_join(
    query: Query,
    db: Database,
    order: Sequence[str] | None = None,
    fd_aware: bool = False,
    counter: WorkCounter | None = None,
) -> tuple[Relation, GenericJoinStats]:
    """Evaluate ``query`` on ``db`` by variable elimination.

    ``order`` is the global variable order (defaults to the query's variable
    order).  For each prefix binding, the candidate set for the next
    variable is the intersection of the matching values across all atoms
    containing it, iterated from the smallest candidate list — the classic
    worst-case-optimality argument.  UDF-defined predicates participate
    only through ``fd_aware`` (an oblivious engine cannot see them as
    relations it can scan).
    """
    order = tuple(order) if order is not None else query.variables
    if set(order) != set(query.variables):
        raise ValueError("order must be a permutation of the query variables")
    stats = GenericJoinStats(per_depth=[0] * len(order))
    relations = {atom.name: db[atom.name] for atom in query.atoms}
    results: list[tuple] = []

    # Per-depth compiled access paths.  ``choose``: (index, key positions in
    # the prefix, candidate-value position) per atom containing the
    # variable, keyed on the attrs bound *before* it.  ``verify``: the same
    # per atom but with the variable itself bound.
    choose_paths: list[list[tuple]] = []
    verify_paths: list[list[tuple]] = []
    determined: list[bool] = []
    plans: list = []
    for depth, var in enumerate(order):
        bound = order[:depth]
        bound_set = frozenset(bound)
        extended = bound + (var,)
        choose_atoms: list[tuple] = []
        verify_atoms: list[tuple] = []
        for atom in query.atoms:
            if var not in atom.varset:
                continue
            rel = relations[atom.name]
            battrs = tuple(
                a for a in rel.schema if a in bound_set and a in atom.varset
            )
            choose_atoms.append(
                (
                    rel.index_on(battrs),
                    tuple_getter(bound.index(a) for a in battrs),
                    rel.positions((var,))[0],
                )
            )
            vattrs = tuple(
                a
                for a in rel.schema
                if (a in bound_set or a == var) and a in atom.varset
            )
            verify_atoms.append(
                (
                    rel.index_on(vattrs),
                    tuple_getter(extended.index(a) for a in vattrs),
                )
            )
        choose_paths.append(choose_atoms)
        verify_paths.append(verify_atoms)
        determined.append(
            fd_aware and var in db.fds.closure(bound_set)
        )
        plans.append(None)  # expansion plans compile lazily per depth

    consistent = db.udf_filter(order)
    n_vars = len(order)

    def verify_binding(candidate: tuple, depth: int) -> bool:
        """Check the new value against every atom fully bound so far."""
        for index, key in verify_paths[depth]:
            if key(candidate) not in index:
                return False
        return True

    def extend(depth: int, prefix: tuple) -> None:
        if depth == n_vars:
            if consistent is None or consistent(prefix):
                results.append(prefix)
            return
        var = order[depth]
        if determined[depth]:
            plan = plans[depth]
            if plan is None:
                plan = db.expansion_plan(
                    order[:depth], frozenset(order[:depth]) | {var}
                )
                plans[depth] = plan
            extended = plan.execute(prefix, counter)
            stats.per_depth[depth] += 1
            stats.tuples_touched += 1
            if counter is not None:
                counter.add()
            if extended is None:
                return
            # The plan appends exactly {var}: extended IS prefix + (value,).
            if verify_binding(extended, depth):
                extend(depth + 1, extended)
            return
        # Choose the atom with the fewest matching extensions.
        best = None
        best_count = None
        for path in choose_paths[depth]:
            index, key, _ = path
            count = len(index.get(key(prefix), ()))
            if best_count is None or count < best_count:
                best, best_count = path, count
        if best is None:
            # Variable in no atom: it must be FD-determined; oblivious
            # engines cannot handle it.
            raise ValueError(
                f"variable {var!r} appears in no atom; "
                "use fd_aware=True or the core algorithms"
            )
        index, key, var_position = best
        matches = index.get(key(prefix), ())
        if not matches:
            return
        stats.tuples_touched += len(matches)
        stats.per_depth[depth] += len(matches)
        if counter is not None:
            counter.add(len(matches))
        seen: set = set()
        for t in matches:
            value = t[var_position]
            if value in seen:
                continue
            seen.add(value)
            candidate = prefix + (value,)
            if verify_binding(candidate, depth):
                extend(depth + 1, candidate)

    extend(0, ())
    out = Relation("Q", order, results)
    stats.intermediate_peak = len(out)
    return out, stats
