"""Generic worst-case-optimal join (NPRR / Generic-Join / LFTJ family).

This is the FD-*oblivious* baseline: it runs in time Õ(N + AGM(Q)) but
cannot exploit functional dependencies analytically (Sec. 1.2).  With
``fd_aware=True`` it adds LFTJ's practical FD handling (footnote 1 of the
paper): a variable functionally determined by the bound prefix is computed
via the expansion procedure instead of enumerated — this prunes per-branch
work but provably does not change the Ω(N²) worst case of Ex. 5.8.

Prefix bindings are raw tuples over ``order[:depth]``, evaluated
level-wise: the whole depth-d frontier extends to depth d+1 in one pass,
so FD-determined variables bind through a single batched plan execution.
Candidate indexes, verification keys, FD closures and expansion plans are
derived once per depth, and the hash indexes themselves are built on
first probe — a frontier that dies early never pays for the depths below
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine import frontier as frontier_blocks
from repro.engine import fused as fused_pipelines
from repro.engine import shard as frontier_shard
from repro.engine.cancellation import checkpoint
from repro.engine.database import Database
from repro.engine.expansion_plan import tuple_getter
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.query.query import Query


@dataclass
class GenericJoinStats:
    """Work accounting for one generic-join run."""

    tuples_touched: int = 0
    intermediate_peak: int = 0
    per_depth: list[int] = field(default_factory=list)


def generic_join(
    query: Query,
    db: Database,
    order: Sequence[str] | None = None,
    fd_aware: bool = False,
    counter: WorkCounter | None = None,
) -> tuple[Relation, GenericJoinStats]:
    """Evaluate ``query`` on ``db`` by variable elimination.

    ``order`` is the global variable order (defaults to the query's variable
    order).  For each prefix binding, the candidate set for the next
    variable is the intersection of the matching values across all atoms
    containing it, iterated from the smallest candidate list — the classic
    worst-case-optimality argument.  UDF-defined predicates participate
    only through ``fd_aware`` (an oblivious engine cannot see them as
    relations it can scan).
    """
    order = tuple(order) if order is not None else query.variables
    if set(order) != set(query.variables):
        raise ValueError("order must be a permutation of the query variables")
    stats = GenericJoinStats(per_depth=[0] * len(order))
    encoded = db.encoded
    # Prefixes, candidate probes and verification all run on the active
    # plane (encoded twins when the database carries a codec).
    relations = {atom.name: db.runtime(atom.name) for atom in query.atoms}

    # Per-depth compiled access paths.  ``choose``: key positions in the
    # prefix + candidate-value position per atom containing the variable,
    # keyed on the attrs bound *before* it.  ``verify``: the same per atom
    # but with the variable itself bound.  The hash indexes themselves
    # (slot 4 / 3) are deferred to the first probe at their depth, so a
    # query whose frontier dies at depth d builds nothing below d.
    choose_paths: list[list[list]] = []
    verify_paths: list[list[list]] = []
    determined: list[bool] = []
    plans: list = []
    for depth, var in enumerate(order):
        bound = order[:depth]
        bound_set = frozenset(bound)
        extended_attrs = bound + (var,)
        choose_atoms: list[list] = []
        verify_atoms: list[list] = []
        for atom in query.atoms:
            if var not in atom.varset:
                continue
            rel = relations[atom.name]
            battrs = tuple(
                a for a in rel.schema if a in bound_set and a in atom.varset
            )
            choose_atoms.append(
                [
                    rel,
                    battrs,
                    tuple_getter(bound.index(a) for a in battrs),
                    rel.positions((var,))[0],
                    None,  # index, built on first probe
                ]
            )
            vattrs = tuple(
                a
                for a in rel.schema
                if (a in bound_set or a == var) and a in atom.varset
            )
            # Verification is membership-only: probe the relation's
            # C-built key set (bare values for single-attribute keys — no
            # 1-tuple allocation per probe), deferred to first use.
            verify_atoms.append(
                [
                    rel,
                    vattrs,
                    (
                        extended_attrs.index(vattrs[0])
                        if len(vattrs) == 1
                        else tuple_getter(
                            extended_attrs.index(a) for a in vattrs
                        )
                    ),
                    len(vattrs) == 1,
                    None,  # key set, built on first probe
                    tuple(extended_attrs.index(a) for a in vattrs),
                    None,  # sorted key block, built on first block probe
                ]
            )
        choose_paths.append(choose_atoms)
        verify_paths.append(verify_atoms)
        determined.append(
            fd_aware and var in db.fds.closure(bound_set)
        )
        plans.append(None)  # expansion plans compile lazily per depth
    # Length of the consecutive determined-depth run starting at each
    # depth: converting a tuple frontier to an int64 block pays off only
    # when the block survives ≥ 2 plan steps (a single determined depth
    # sandwiched between choose depths would convert and immediately
    # re-tuple, costing more than the vectorized step saves).
    det_run = [0] * (len(order) + 1)
    for depth in range(len(order) - 1, -1, -1):
        det_run[depth] = det_run[depth + 1] + 1 if determined[depth] else 0

    consistent = db.udf_filter(order, encoded=encoded)

    def verify_binding(candidate: tuple, depth: int) -> bool:
        """Check the new value against every atom fully bound so far."""
        for path in verify_paths[depth]:
            keys = path[4]
            if keys is None:
                keys = path[4] = path[0].key_set(path[1])
            if path[3]:
                if candidate[path[2]] not in keys:
                    return False
            elif path[2](candidate) not in keys:
                return False
        return True

    # Level-wise evaluation: the prefix frontier for depth d+1 is computed
    # from the whole depth-d frontier, so FD-determined variables bind by
    # one batched plan execution instead of one call per prefix.  Child
    # order within a prefix matches the recursive formulation, so results
    # (and all counted work) are identical to the depth-first original.
    # On the encoded plane a large frontier travels as an int64 block
    # (``is_block``) across consecutive determined depths: the plan runs
    # on the block backend and verification probes sorted key blocks —
    # rows re-tuple only at a data-dependent choose depth or the terminal.
    frontier: list[tuple] = [()]
    is_block = False
    skip_until = 0  # depths already executed by a fused segment plan
    for depth, var in enumerate(order):
        if depth < skip_until:
            continue
        checkpoint()  # frontier-block granularity deadline/fault check-in
        n = frontier.shape[0] if is_block else len(frontier)
        if not n:
            break
        if determined[depth]:
            plan = plans[depth]
            if plan is None:
                plan = plans[depth] = db.expansion_plan(
                    order[:depth],
                    frozenset(order[:depth]) | {var},
                    encoded=encoded,
                )
            stats.per_depth[depth] += n
            stats.tuples_touched += n
            if counter is not None:
                counter.add(n)
            if (
                not is_block
                and encoded
                and (det_run[depth] >= 2 or frontier_blocks.ndarray_forced_on())
                and frontier_blocks.ndarray_engaged(n)
            ):
                block = frontier_blocks.rows_to_block(frontier, depth)
                if block is not None:
                    frontier, is_block = block, True
            if is_block:
                # Fused segment: extend the whole determined run through
                # ONE concatenated plan (one pipeline call, dense chains
                # composed to a single gather) instead of one plan per
                # depth.  Only the segment's last depth may carry
                # verification (intermediate verify would interleave
                # filtering with plan steps), and the segment is the
                # concatenation of the per-depth single-step plans, so
                # per-depth stats/counter charges stay bit-identical —
                # ``step_alive[j]`` is exactly the frontier size the
                # per-depth path would have seen at ``depth + j``.
                seg = 1
                if fused_pipelines.fuse_engaged():
                    while (
                        seg < det_run[depth]
                        and not verify_paths[depth + seg - 1]
                    ):
                        seg += 1
                seg_plan = (
                    db.run_plan(
                        order[:depth],
                        order[depth:depth + seg],
                        encoded=encoded,
                    )
                    if seg >= 2
                    else None
                )
                if seg_plan is not None:
                    step_alive: list[int] = []
                    extended, keep = seg_plan.execute_batch_ndarray(
                        frontier, counter, step_alive
                    )
                    for j in range(1, seg):
                        alive = step_alive[j]
                        stats.per_depth[depth + j] += alive
                        stats.tuples_touched += alive
                        if counter is not None and alive:
                            counter.add(alive)
                    for path in verify_paths[depth + seg - 1]:
                        keys = path[6]
                        if keys is None:
                            keys = path[6] = path[0].key_block(path[1])
                        hit = frontier_shard.block_isin(
                            extended, path[5], keys
                        )
                        keep = hit if keep is None else keep & hit
                    frontier = extended if keep is None else extended[keep]
                    skip_until = depth + seg
                    continue
                extended, keep = plan.execute_batch_ndarray(frontier, counter)
                for path in verify_paths[depth]:
                    keys = path[6]
                    if keys is None:
                        keys = path[6] = path[0].key_block(path[1])
                    hit = frontier_shard.block_isin(extended, path[5], keys)
                    keep = hit if keep is None else keep & hit
                frontier = extended if keep is None else extended[keep]
                continue
            # The plan appends exactly {var}: extended IS prefix + (value,).
            frontier = [
                extended
                for extended in plan.execute_batch(frontier, counter)
                if extended is not None and verify_binding(extended, depth)
            ]
            continue
        if is_block:
            frontier = [tuple(row) for row in frontier.tolist()]
            is_block = False
        paths = choose_paths[depth]
        if not paths:
            # Variable in no atom: it must be FD-determined; oblivious
            # engines cannot handle it.
            raise ValueError(
                f"variable {var!r} appears in no atom; "
                "use fd_aware=True or the core algorithms"
            )
        next_frontier: list[tuple] = []
        append = next_frontier.append
        # Per-depth counter charges accumulate locally and post once —
        # the total is bit-identical to the per-prefix ``add`` calls.
        touched = 0
        for prefix_i, prefix in enumerate(frontier):
            if not prefix_i & 2047:  # re-check every 2048 prefixes
                checkpoint()
            # Choose the atom with the fewest matching extensions.
            best = None
            best_count = None
            for path in paths:
                index = path[4]
                if index is None:
                    index = path[4] = path[0].index_on(path[1])
                count = len(index.get(path[2](prefix), ()))
                if best_count is None or count < best_count:
                    best, best_count = path, count
            matches = best[4].get(best[2](prefix), ())
            if not matches:
                continue
            touched += len(matches)
            var_position = best[3]
            seen: set = set()
            for t in matches:
                value = t[var_position]
                if value in seen:
                    continue
                seen.add(value)
                candidate = prefix + (value,)
                if verify_binding(candidate, depth):
                    append(candidate)
        stats.tuples_touched += touched
        stats.per_depth[depth] += touched
        if counter is not None and touched:
            counter.add(touched)
        frontier = next_frontier

    if is_block:
        # Terminal re-tupling happens through the decode boundary below:
        # the block rows feed the consistency filter / decoder as lists.
        frontier = frontier.tolist()
    if consistent is None:
        results = frontier
    else:
        results = [t for t in frontier if consistent(t)]
    if encoded:
        results = db.decode_tuples(order, results)
    out = Relation("Q", order, results)
    stats.intermediate_peak = len(out)
    return out, stats
