"""Generic worst-case-optimal join (NPRR / Generic-Join / LFTJ family).

This is the FD-*oblivious* baseline: it runs in time Õ(N + AGM(Q)) but
cannot exploit functional dependencies analytically (Sec. 1.2).  With
``fd_aware=True`` it adds LFTJ's practical FD handling (footnote 1 of the
paper): a variable functionally determined by the bound prefix is computed
via the expansion procedure instead of enumerated — this prunes per-branch
work but provably does not change the Ω(N²) worst case of Ex. 5.8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.database import Database
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.query.query import Query


@dataclass
class GenericJoinStats:
    """Work accounting for one generic-join run."""

    tuples_touched: int = 0
    intermediate_peak: int = 0
    per_depth: list[int] = field(default_factory=list)


def generic_join(
    query: Query,
    db: Database,
    order: Sequence[str] | None = None,
    fd_aware: bool = False,
    counter: WorkCounter | None = None,
) -> tuple[Relation, GenericJoinStats]:
    """Evaluate ``query`` on ``db`` by variable elimination.

    ``order`` is the global variable order (defaults to the query's variable
    order).  For each prefix binding, the candidate set for the next
    variable is the intersection of the matching values across all atoms
    containing it, iterated from the smallest candidate list — the classic
    worst-case-optimality argument.  UDF-defined predicates participate
    only through ``fd_aware`` (an oblivious engine cannot see them as
    relations it can scan).
    """
    order = tuple(order) if order is not None else query.variables
    if set(order) != set(query.variables):
        raise ValueError("order must be a permutation of the query variables")
    stats = GenericJoinStats(per_depth=[0] * len(order))
    relations = {atom.name: db[atom.name] for atom in query.atoms}
    atoms_with = {
        var: [atom for atom in query.atoms if var in atom.varset]
        for var in order
    }
    results: list[tuple] = []

    def verify_binding(binding: dict[str, object], var: str) -> bool:
        """Check the new value against every atom fully bound so far."""
        for atom in atoms_with[var]:
            rel = relations[atom.name]
            partial = {a: binding[a] for a in atom.attrs if a in binding}
            if rel.degree(partial) == 0:
                return False
        return True

    def extend(depth: int, binding: dict[str, object]) -> None:
        if depth == len(order):
            if db.udf_consistent(binding):
                results.append(tuple(binding[v] for v in order))
            return
        var = order[depth]
        if fd_aware:
            determined = var in db.fds.closure(frozenset(binding))
            if determined:
                extended = db.expand_tuple(
                    dict(binding),
                    target=frozenset(binding) | {var},
                    counter=counter,
                )
                stats.per_depth[depth] += 1
                stats.tuples_touched += 1
                if counter is not None:
                    counter.add()
                if extended is None:
                    return
                value = extended[var]
                candidate = dict(binding)
                candidate[var] = value
                if verify_binding(candidate, var):
                    extend(depth + 1, candidate)
                return
        # Choose the atom with the fewest matching extensions.
        best_atom = None
        best_count = None
        for atom in atoms_with[var]:
            rel = relations[atom.name]
            partial = {a: binding[a] for a in atom.attrs if a in binding}
            count = rel.degree(partial)
            if best_count is None or count < best_count:
                best_atom, best_count = atom, count
        if best_atom is None:
            # Variable in no atom: it must be FD-determined; oblivious
            # engines cannot handle it.
            raise ValueError(
                f"variable {var!r} appears in no atom; "
                "use fd_aware=True or the core algorithms"
            )
        rel = relations[best_atom.name]
        partial = {a: binding[a] for a in best_atom.attrs if a in binding}
        pos = rel.positions((var,))[0]
        seen: set = set()
        for t in rel.matching(partial):
            stats.tuples_touched += 1
            stats.per_depth[depth] += 1
            if counter is not None:
                counter.add()
            value = t[pos]
            if value in seen:
                continue
            seen.add(value)
            candidate = dict(binding)
            candidate[var] = value
            if verify_binding(candidate, var):
                extend(depth + 1, candidate)

    extend(0, {})
    out = Relation("Q", order, results)
    stats.intermediate_peak = len(out)
    return out, stats
