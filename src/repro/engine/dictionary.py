"""Dictionary encoding for the columnar data plane.

Every attribute value that flows through the execution kernel is interned
into a dense non-negative integer *code*, one :class:`Dictionary` per
attribute domain.  The paper's algorithms never interpret values — they
hash them (guard probes, index lookups), compare them for equality (joins,
verification) and order them (trie levels) — so executing on codes is an
*isomorphic* run: result sets map bijectively and every ``tuples_touched``
count is bit-identical, while the hot inner operation ("probe a functional
guard map with a key built from attribute values") degrades from hashing
arbitrary Python objects to hashing small ints — or, when the key is a
single attribute over a dense domain, to a flat ``list`` index.

A :class:`Codec` is the per-:class:`~repro.engine.database.Database`
registry of dictionaries.  It piggybacks on the schema-interning idea of
:mod:`repro.engine.relation`: attributes are identified by name, so two
relations sharing an attribute automatically share its dictionary — which
is exactly what joins require (codes compare equal iff the values do).

Contracts the rest of the engine relies on:

* **Codes are stable.** ``encode`` only appends; adding relations to a
  database (or interning UDF outputs mid-run) never renumbers existing
  codes, so cached encoded twins, plans and guard tables stay valid.
* **Encoding is injective per attribute.** ``decode(encode(v)) == v`` for
  every interned value.
* **Cross-type ``==``-equal values pin to the first-seen representative.**
  ``True``/``1``/``1.0`` hash and compare equal, so they share one code
  and decode to whichever value was interned first (relation ``add``
  order, column by column, then mid-run UDF interning order).  This is the
  *documented* semantics, not an accident: the raw plane's own dict/set
  machinery already collapses ``==``-equal duplicates to the first
  insertion within any one relation or result set, so no engine contract
  ever distinguishes members of an ``==``-class — a terminal output may
  surface ``1`` where the decoded plane surfaced ``1.0``, and the two
  results are equal under ``==`` (which is how every differential assert
  and every downstream join compares them).  The corollary contract for
  UDFs: an opaque predicate receives the representative, so it must be
  well-defined on ``==``-equivalence classes (return ``==``-equal outputs
  for ``==``-equal inputs) — ``w + x`` qualifies, ``type(w) is int`` does
  not.  ``tests/test_encoding.py`` pins both halves on a mixed-type
  differential instance.
* **The decode boundary is explicit.** Only
  ``Database.final_filter(..., encoded=True)`` and the engines' terminal
  ``Relation("Q", ...)`` constructions decode; everything in between runs
  on codes.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.engine.relation import Relation


class Dictionary:
    """An append-only value ↔ dense-code interning table for one domain.

    ``values`` is the decode table (``values[code]`` is the interned
    value); consumers may capture the list object itself — it grows in
    place and codes never move.

    Interning is thread-safe: a codec shared by several tenant databases
    may be probed from many worker threads at once.  The hit path stays
    lock-free (a dict read under the GIL), only a *miss* takes the
    per-dictionary lock to re-check and append — so two threads racing
    on the same fresh value agree on one code, and codes stay dense.
    The decode table is appended *before* the code is published, so a
    lock-free reader that sees a code can always decode it.
    """

    __slots__ = ("values", "_codes", "_lock")

    #: ``repro-lint``'s lock-discipline contract: interning mutates these
    #: under ``self._lock`` (the lock-free hit path only *reads*).
    _locked_fields = ("values", "_codes")

    def __init__(self) -> None:
        self.values: list = []
        self._codes: dict = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.values)

    def encode(self, value) -> int:
        """The code of ``value``, interning it on first sight."""
        codes = self._codes
        try:
            return codes[value]
        except KeyError:
            with self._lock:
                code = codes.get(value)
                if code is None:
                    code = len(self.values)
                    self.values.append(value)
                    codes[value] = code
                return code

    def code_of(self, value) -> int | None:
        """The code of ``value`` without interning (``None`` when unseen)."""
        return self._codes.get(value)

    def decode(self, code: int):
        return self.values[code]

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Dictionary({len(self.values)} values)"


class Codec:
    """Per-database registry of attribute dictionaries.

    Encoded twins of relations are cached on the relation object itself
    (keyed by codec identity), so a relation shared between databases, or
    re-added after a plan invalidation, is encoded exactly once per codec.
    """

    __slots__ = ("dictionaries",)

    def __init__(self) -> None:
        self.dictionaries: dict[str, Dictionary] = {}

    def dictionary(self, attr: str) -> Dictionary:
        d = self.dictionaries.get(attr)
        if d is None:
            d = self.dictionaries[attr] = Dictionary()
        return d

    def total_values(self) -> int:
        """Total interned values across every attribute dictionary — the
        long-uptime memory proxy the serving layer caps (cold entries are
        evicted wholesale by rebuilding the codec from the live stored
        relations; codes are append-only, so per-entry eviction would
        break the stability contract)."""
        return sum(len(d) for d in self.dictionaries.values())

    # -- rows ----------------------------------------------------------
    def encode_row(self, schema: Sequence[str], row: Sequence) -> tuple:
        return tuple(
            self.dictionary(a).encode(v) for a, v in zip(schema, row)
        )

    def decode_row(self, schema: Sequence[str], row: Sequence) -> tuple:
        dicts = self.dictionaries
        return tuple(dicts[a].values[c] for a, c in zip(schema, row))

    def encode_tuples(
        self, schema: Sequence[str], rows: Iterable[Sequence]
    ) -> list[tuple]:
        encoders = [self.dictionary(a).encode for a in schema]
        return [
            tuple(e(v) for e, v in zip(encoders, row)) for row in rows
        ]

    def decode_tuples(
        self, schema: Sequence[str], rows: Iterable[Sequence]
    ) -> list[tuple]:
        tables = [self.dictionary(a).values for a in schema]
        # Unrolled small widths: result decoding is on the hot boundary
        # for large outputs, and the generic per-cell genexpr costs ~3x.
        if len(tables) == 2:
            t0, t1 = tables
            return [(t0[a], t1[b]) for a, b in rows]
        if len(tables) == 3:
            t0, t1, t2 = tables
            return [(t0[a], t1[b], t2[c]) for a, b, c in rows]
        if len(tables) == 4:
            t0, t1, t2, t3 = tables
            return [(t0[a], t1[b], t2[c], t3[d]) for a, b, c, d in rows]
        return [
            tuple(tbl[c] for tbl, c in zip(tables, row)) for row in rows
        ]

    # -- relations -----------------------------------------------------
    def encode_relation(self, relation: Relation) -> Relation:
        """The encoded twin of ``relation`` (cached on the relation).

        The twin stores encoded tuples *and* its encoded columns (the
        column-store view is a by-product of the column-wise encode, so
        :meth:`Relation.columns` on the twin is free), with the all-int
        column verdict pre-seeded — the numpy guard gate never has to
        scan an encoded column.
        """
        cached = relation.encoded_twin(self)
        if cached is not None:
            return cached
        schema = relation.schema
        if schema:
            encoded_columns = tuple(
                tuple(map(self.dictionary(a).encode, column))
                for a, column in zip(schema, relation.columns())
            )
            rows = list(zip(*encoded_columns)) if relation.tuples else []
        else:
            encoded_columns = ()
            rows = list(relation.tuples)
        # Encoding is injective per attribute, hence injective on tuples:
        # the twin inherits distinctness.
        twin = Relation(relation.name, schema, rows, distinct=True)
        twin.seed_columns(encoded_columns, all_int=True)
        relation.cache_encoded_twin(self, twin)
        return twin

    def decode_relation(self, relation: Relation, name: str | None = None) -> Relation:
        return Relation(
            name or relation.name,
            relation.schema,
            self.decode_tuples(relation.schema, relation.tuples),
            distinct=True,
        )
