"""Traditional pairwise join plans — the pre-WCOJ baseline (Sec. 1).

A left-deep plan materializes every intermediate result, which is exactly
what makes it Ω(N²) on the paper's intro example: the intermediate
R(x,y) ⋈ S(y,z) ⋈ T(z,u) has N² tuples before the UDF predicates apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.database import Database
from repro.engine.ops import WorkCounter, natural_join
from repro.engine.relation import Relation
from repro.query.query import Query


@dataclass
class BinaryJoinStats:
    tuples_touched: int = 0
    intermediate_sizes: list[int] = field(default_factory=list)

    @property
    def intermediate_peak(self) -> int:
        return max(self.intermediate_sizes, default=0)


def binary_join_plan(
    query: Query,
    db: Database,
    order: Sequence[str] | None = None,
    apply_fd_filters: bool = True,
) -> tuple[Relation, BinaryJoinStats]:
    """Left-deep hash-join plan over the query atoms.

    ``order`` is the atom order (defaults to ascending size, a common
    greedy heuristic).  After the joins, FD/UDF predicates are applied as a
    final selection when ``apply_fd_filters`` is set — mirroring a classical
    engine that evaluates interpreted predicates last, and variables
    determined only by UDFs are filled by expansion at the end.
    """
    stats = BinaryJoinStats()
    counter = WorkCounter()
    encoded = db.encoded
    atom_names = (
        list(order)
        if order is not None
        else sorted(
            (atom.name for atom in query.atoms), key=lambda n: len(db[n])
        )
    )
    # The whole plan runs on the active plane (encoded twins when the
    # database carries a codec); only the terminal relation decodes.
    current = db.runtime(atom_names[0])
    stats.intermediate_sizes.append(len(current))
    for name in atom_names[1:]:
        current = natural_join(current, db.runtime(name), counter=counter)
        stats.intermediate_sizes.append(len(current))
    if apply_fd_filters and set(current.schema) != set(query.variables):
        # Fill UDF-determined variables and drop inconsistent tuples: the
        # whole intermediate goes through the compiled expansion plan in
        # one batch, fed straight from the relation's columnar view.
        filled = []
        target = frozenset(query.variables)
        if len(current):
            plan = db.expansion_plan(current.schema, target, encoded=encoded)
            from repro.engine.expansion_plan import tuple_getter

            out_key = tuple_getter(plan.positions(query.variables))
            consistent = db.udf_filter(plan.out_schema, encoded=encoded)
            counter.add(len(current))
            filled = [
                out_key(expanded)
                for expanded in plan.execute_batch_columns(
                    current.columns(),
                    len(current),
                    counter,
                    all_int=current.columns_all_int(),
                )
                if expanded is not None
                and (consistent is None or consistent(expanded))
            ]
        if encoded:
            filled = db.decode_tuples(query.variables, filled)
        current = Relation("Q", query.variables, filled)
    elif apply_fd_filters:
        # Check every fd that has a UDF witness (predicates u = f(x, z)).
        consistent = db.udf_filter(current.schema, encoded=encoded)
        counter.add(len(current))
        if consistent is None:
            kept = list(current.tuples)
        else:
            kept = [t for t in current.tuples if consistent(t)]
        if encoded:
            kept = db.decode_tuples(current.schema, kept)
        current = Relation(
            "Q", current.schema, kept, distinct=True
        ).project(query.variables, name="Q")
    elif encoded:
        current = db.codec.decode_relation(current, name=current.name)
    stats.tuples_touched = counter.tuples_touched
    return current, stats
