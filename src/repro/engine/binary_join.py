"""Traditional pairwise join plans — the pre-WCOJ baseline (Sec. 1).

A left-deep plan materializes every intermediate result, which is exactly
what makes it Ω(N²) on the paper's intro example: the intermediate
R(x,y) ⋈ S(y,z) ⋈ T(z,u) has N² tuples before the UDF predicates apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.database import Database
from repro.engine.ops import WorkCounter, natural_join
from repro.engine.relation import Relation
from repro.query.query import Query


@dataclass
class BinaryJoinStats:
    tuples_touched: int = 0
    intermediate_sizes: list[int] = field(default_factory=list)

    @property
    def intermediate_peak(self) -> int:
        return max(self.intermediate_sizes, default=0)


def binary_join_plan(
    query: Query,
    db: Database,
    order: Sequence[str] | None = None,
    apply_fd_filters: bool = True,
) -> tuple[Relation, BinaryJoinStats]:
    """Left-deep hash-join plan over the query atoms.

    ``order`` is the atom order (defaults to ascending size, a common
    greedy heuristic).  After the joins, FD/UDF predicates are applied as a
    final selection when ``apply_fd_filters`` is set — mirroring a classical
    engine that evaluates interpreted predicates last, and variables
    determined only by UDFs are filled by expansion at the end.
    """
    stats = BinaryJoinStats()
    counter = WorkCounter()
    atom_names = (
        list(order)
        if order is not None
        else sorted(
            (atom.name for atom in query.atoms), key=lambda n: len(db[n])
        )
    )
    current = db[atom_names[0]]
    stats.intermediate_sizes.append(len(current))
    for name in atom_names[1:]:
        current = natural_join(current, db[name], counter=counter)
        stats.intermediate_sizes.append(len(current))
    if apply_fd_filters and set(current.schema) != set(query.variables):
        # Fill UDF-determined variables and drop inconsistent tuples.
        filled = []
        target = frozenset(query.variables)
        for row in current.as_dicts():
            counter.add()
            expanded = db.expand_tuple(row, target=target, counter=counter)
            if expanded is not None and db.udf_consistent(expanded):
                filled.append(tuple(expanded[v] for v in query.variables))
        current = Relation("Q", query.variables, filled)
    elif apply_fd_filters:
        # Check every fd that has a UDF witness (predicates u = f(x, z)).
        def consistent(row: dict[str, object]) -> bool:
            counter.add()
            for udf in db.udfs:
                if set(udf.inputs) <= row.keys() and udf.output in row:
                    if db.udfs.apply(udf, row) != row[udf.output]:
                        return False
            return True

        current = current.restrict(consistent, name="Q")
        current = current.project(query.variables, name="Q")
    stats.tuples_touched = counter.tuples_touched
    return current, stats
