"""Database statistics: observed degrees → CLLP constraints.

The paper's CLLP accepts *prescribed* degree bounds (Sec. 1.2 assumes the
system "knows an upper bound on the frequencies").  In practice those
bounds can be *measured*: for every input relation and every pair of
lattice elements (X, Y) it guards, the observed max degree is an honest
``n_{Y|X}`` witness.  :func:`derive_degree_constraints` harvests them all,
so CSMA can exploit data skew with no user annotations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.engine.database import Database
from repro.lattice.lattice import Lattice
from repro.lp.cllp import ConditionalLLP, DegreeConstraint


@dataclass
class DegreeProfile:
    """Observed degree statistics of one relation grouped by a key set."""

    relation: str
    group: tuple[str, ...]
    max_degree: int
    distinct_groups: int

    @property
    def log_degree(self) -> float:
        return math.log2(self.max_degree) if self.max_degree > 0 else 0.0


def degree_profiles(db: Database, relation_name: str) -> list[DegreeProfile]:
    """All group-by degree profiles of one relation (every proper,
    non-empty attribute subset)."""
    import itertools

    rel = db[relation_name]
    profiles = []
    attrs = rel.schema
    for r in range(1, len(attrs)):
        for group in itertools.combinations(attrs, r):
            index = rel.index_on(group)
            max_deg = max((len(v) for v in index.values()), default=0)
            profiles.append(
                DegreeProfile(relation_name, group, max_deg, len(index))
            )
    return profiles


def derive_degree_constraints(
    db: Database,
    lattice: Lattice,
    inputs: Mapping[str, int],
    min_gain_bits: float = 0.5,
) -> list[DegreeConstraint]:
    """Measured CLLP constraints for every (X, Y) pair guarded by an input.

    For each input R_j (closed element Y with attributes A) and each
    lattice element X < Y whose attributes are within A, the observed max
    degree of A-tuples per X-value bounds h(Y|X).  Constraints that save
    less than ``min_gain_bits`` against the trivial bound
    n_{Y|X} <= n_Y are dropped to keep the LP small.
    """
    constraints: list[DegreeConstraint] = []
    for name, y in inputs.items():
        rel = db[name]
        label_y = lattice.label(y)
        if not isinstance(label_y, frozenset):
            raise TypeError("FD (frozenset-labelled) lattice required")
        n_y = math.log2(len(rel)) if len(rel) else 0.0
        for x in range(lattice.n):
            if x == lattice.bottom or not lattice.lt(x, y):
                continue
            label_x = lattice.label(x)
            if not label_x <= rel.varset:
                continue
            group = tuple(sorted(label_x))
            max_deg = rel.max_degree(group)
            log_deg = math.log2(max_deg) if max_deg > 0 else 0.0
            if log_deg <= n_y - min_gain_bits:
                constraints.append(
                    DegreeConstraint(x, y, log_deg, guard=name)
                )
    return constraints


def data_aware_bound_log2(
    db: Database,
    lattice: Lattice,
    inputs: Mapping[str, int],
) -> tuple[float, float]:
    """(cardinality-only CLLP bound, degree-aware CLLP bound) in log2.

    The gap quantifies how much of the instance's skew the Sec. 5.3
    framework can exploit beyond plain GLVV.
    """
    logs = {name: db.log_sizes()[name] for name in inputs}
    base = ConditionalLLP.from_cardinalities(lattice, inputs, logs)
    plain, _ = base.solve_primal()
    extra = derive_degree_constraints(db, lattice, inputs)
    enriched = ConditionalLLP(lattice, base.constraints + extra)
    aware, _ = enriched.solve_primal()
    return plain, aware
