"""Cooperative per-query deadlines and checkpoint hooks.

The engines are pure Python loops: a runaway query cannot be preempted,
but it *can* be asked to check in at frontier-block granularity.  This
module is that check-in point.  A context (one per worker thread running
a query) carries a tuple of zero-argument hooks; :func:`checkpoint` runs
them and is called from the batch entry points of
``expansion_plan.py``, the key-join seams of ``frontier.py``, the
per-depth loop of ``generic_join.py`` and the per-node descent of
``leapfrog.py``.  A hook signals by *raising* — typically
:class:`~repro.errors.QueryTimeout` from a :class:`Deadline`, or an
injected fault from ``repro.serve.faults`` — so a timed-out query
unwinds and releases its worker instead of orphaning it.

With no hooks installed (every direct engine call outside the service)
:func:`checkpoint` is one ``ContextVar.get`` returning an empty tuple —
cheap enough for the per-node call sites, and it never touches the work
counters: cancellation changes *when* a run stops, never what it counts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable

from repro.errors import QueryTimeout

_HOOKS: ContextVar[tuple[Callable[[], None], ...]] = ContextVar(
    "repro_checkpoint_hooks", default=()
)


class Deadline:
    """A wall-clock budget for one query.

    ``check()`` raises :class:`QueryTimeout` once ``seconds`` have
    elapsed since construction; install it with :func:`checkpoint_scope`
    so every engine checkpoint enforces it.
    """

    __slots__ = ("seconds", "expires_at")

    def __init__(self, seconds: float):
        self.seconds = float(seconds)
        self.expires_at = time.monotonic() + self.seconds

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        if time.monotonic() >= self.expires_at:
            raise QueryTimeout(
                f"query exceeded its {self.seconds:g}s deadline",
                deadline_s=self.seconds,
            )


@contextmanager
def checkpoint_scope(*hooks: Callable[[], None]):
    """Install ``hooks`` (appended to any already active) for the dynamic
    extent of the block.  Hooks run in installation order at every
    :func:`checkpoint`."""
    token = _HOOKS.set(_HOOKS.get() + tuple(h for h in hooks if h is not None))
    try:
        yield
    finally:
        _HOOKS.reset(token)


def checkpoint() -> None:
    """Run the active hooks (no-op without any).  Called by the engines
    at frontier-block/per-node granularity."""
    for hook in _HOOKS.get():
        hook()


def active() -> bool:
    """Are any hooks installed?  (Lets very hot loops skip even the
    per-iteration function call when nothing can fire.)"""
    return bool(_HOOKS.get())
