"""Naive reference implementations of the expansion procedure (Sec. 2).

These are the row-dict, guard-scanning formulations that the compiled
positional kernel (:mod:`repro.engine.expansion_plan`) replaced on the hot
path.  They are retained verbatim (modulo the guard-consistency check,
which both paths now enforce) as the *executable specification*: the
differential property tests in ``tests/test_kernel_equivalence.py`` assert
that kernel and reference produce identical output relations **and**
identical ``tuples_touched`` on randomized instances.

The reference runs on **decoded values only** — it probes the raw stored
relations (``db.relations``), never the dictionary-encoded twins.  That is
deliberate: the encoded kernel is differentially tested *against this
module* (``tests/differential.py::assert_batch_backend_equivalence`` and
the decoded-plane engine variants), so the spec must stay independent of
the encoding it validates.  Encoding is a per-attribute bijection, so
every count below is provably identical across planes: a guard probe hits
iff the code probe hits, and emitted-row multisets map one-to-one.

Counter accounting contract (shared by both paths):

* guarded fd application on one tuple — 1 touch, hit or miss;
* UDF evaluation on one tuple — 1 touch;
* whole-relation guarded fd application — 1 touch per emitted row
  (dangling rows touch nothing, fd-violating guard keys emit one row per
  distinct image);
* whole-relation UDF application — 1 touch per input row.
"""

from __future__ import annotations

from typing import Mapping

from repro.engine.database import Database, ExpansionError
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.fds.fd import VarSet, varset


def reference_natural_join(
    left: Relation,
    right: Relation,
    name: str | None = None,
    counter: WorkCounter | None = None,
) -> Relation:
    """Index-nested-loops hash join, always building on the right side."""
    shared = tuple(a for a in left.schema if a in right.varset)
    right_extra = tuple(a for a in right.schema if a not in left.varset)
    out_schema = left.schema + right_extra
    index = right.index_on(shared)
    extra_positions = right.positions(right_extra)
    shared_positions = left.positions(shared)
    out = []
    for t in left.tuples:
        key = tuple(t[p] for p in shared_positions)
        for match in index.get(key, ()):
            out.append(t + tuple(match[p] for p in extra_positions))
            if counter is not None:
                counter.add()
    return Relation(name or f"({left.name}⋈{right.name})", out_schema, out)


def reference_expand_relation(
    db: Database,
    relation: Relation,
    counter: WorkCounter | None = None,
) -> Relation:
    """R⁺ by repeated joins with guard projections / per-tuple UDFs."""
    current = relation
    target = db.fds.closure(current.varset)
    while current.varset != target:
        progressed = False
        for fd in db.applicable_fds(current.varset):
            new_attrs = fd.rhs - current.varset
            if not new_attrs:
                continue
            current = _apply_fd(db, current, fd, counter)
            progressed = True
            break
        if not progressed:
            raise ExpansionError(
                f"cannot expand {current.schema} towards {sorted(target)}: "
                "missing guard/UDF"
            )
    return current


def _apply_fd(
    db: Database, relation: Relation, fd, counter: WorkCounter | None
) -> Relation:
    guard = db.guard_relation(fd)
    if guard is not None:
        attrs = tuple(sorted(fd.lhs | fd.rhs))
        lookup = guard.project(attrs, name=f"Π({guard.name})")
        return reference_natural_join(
            relation, lookup, name=relation.name, counter=counter
        )
    # Unguarded: fill each rhs attribute via a UDF.
    current = relation
    for target_attr in sorted(fd.rhs - relation.varset):
        udf = db.udfs.resolve(current.varset, target_attr)
        if udf is None:
            raise ExpansionError(
                f"no guard relation and no UDF for fd {fd!r} "
                f"(attribute {target_attr!r})"
            )
        positions = current.positions(udf.inputs)
        new_tuples = []
        for t in current.tuples:
            if counter is not None:
                counter.add()
            new_tuples.append(t + (udf(*(t[p] for p in positions)),))
        current = Relation(
            current.name, current.schema + (target_attr,), new_tuples
        )
    return current


def reference_expand_tuple(
    db: Database,
    binding: Mapping[str, object],
    target: VarSet | None = None,
    counter: WorkCounter | None = None,
) -> dict[str, object] | None:
    """Per-tuple expansion with attr->value dicts and live guard lookups.

    Pure (copies the binding), and checks that every guard match agrees on
    the filled attributes — the two satellite fixes, mirrored here so the
    reference stays the kernel's specification.
    """
    binding = dict(binding)
    bound = varset(binding)
    goal = target if target is not None else db.fds.closure(bound)
    while bound != goal:
        progressed = False
        for fd in db.applicable_fds(bound):
            missing = (fd.rhs - bound) & goal
            if not missing:
                continue
            guard = db.guard_relation(fd)
            if guard is not None:
                key_binding = {a: binding[a] for a in fd.lhs}
                matches = guard.matching(key_binding)
                if counter is not None:
                    counter.add()
                if not matches:
                    return None
                reference = matches[0]
                for attr in missing:
                    pos = guard.positions((attr,))[0]
                    value = reference[pos]
                    # All matches must agree (the guard satisfies the fd).
                    if any(m[pos] != value for m in matches):
                        return None
                    binding[attr] = value
            else:
                for attr in sorted(missing):
                    udf = db.udfs.resolve(bound, attr)
                    if udf is None:
                        raise ExpansionError(
                            f"no guard and no UDF for {fd!r} -> {attr!r}"
                        )
                    if counter is not None:
                        counter.add()
                    binding[attr] = db.udfs.apply(udf, binding)
            bound = varset(binding)
            progressed = True
            break
        if not progressed:
            raise ExpansionError(
                f"cannot expand tuple over {sorted(bound)} to {sorted(goal)}"
            )
    return binding


def reference_udf_consistent(db: Database, row: Mapping[str, object]) -> bool:
    """Row-dict UDF-consistency check (the pre-kernel formulation)."""
    for udf in db.udfs:
        if udf.output in row and all(a in row for a in udf.inputs):
            if db.udfs.apply(udf, row) != row[udf.output]:
                return False
    return True
