"""Sharded parallel execution of frontier blocks.

The block backend (``ExpansionPlan.execute_batch_ndarray`` and the
``key_join``/``block_isin`` kernels in :mod:`repro.engine.frontier`) is
per-row deterministic, which makes an ``(n, w)`` int64 frontier block
trivially partitionable: split the rows, run each shard through the same
kernel, scatter the outputs back to the original row indices, and sum
the per-shard ``tuples_touched``.  The paper's degree-aware work measure
is a per-row sum (each row charges one touch per step it is alive for),
so the sharded total is *bit-identical* to the unsharded one for any
shard count — that is the deterministic-merge contract the differential
suite pins.

Knobs (mirroring the ``REPRO_BATCH_NDARRAY`` pattern):

* ``REPRO_SHARD`` — ``auto`` (engage above the row threshold when more
  than one worker is configured), ``on`` (shard every block; also forces
  the block backend on, since shards only exist on blocks), ``off``.
* ``REPRO_SHARD_WORKERS`` — worker count (default ``os.cpu_count()``).
* ``REPRO_SHARD_MIN`` — ``auto``-mode row threshold (default 65536).
* ``REPRO_SHARD_BACKEND`` — ``thread`` (default; numpy kernels release
  the GIL) or ``process`` (multiprocessing + shared-memory input blocks,
  for scaling past the GIL / RAM; guard-only plans, see below).

Thread workers run inside a :func:`contextvars.copy_context` snapshot of
the submitting context, so the serving layer's cooperative-cancellation
hooks (:mod:`repro.engine.cancellation`), fault-injection hooks, and
per-query mode overrides all propagate into every shard: a
``QueryTimeout`` raised at a shard's checkpoint surfaces after *all*
shards have been joined (no leaked workers), deterministically as the
lowest-shard-index error.

Process workers cannot share the submitting context; they observe
cancellation only at dispatch boundaries (the parent checkpoints before
submitting and after joining).  The process path ships a sanitized plan
spec (UDF steps never qualify: their callables close over the codec) and
caches the rebuilt plan per worker, with the input block passed through
:class:`multiprocessing.shared_memory.SharedMemory` so a shard never
copies the frontier through a pipe.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar, copy_context

from repro import config
from repro.engine import frontier
from repro.engine import fused
from repro.engine.cancellation import checkpoint

try:  # pragma: no cover - the image bakes numpy in
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


_ON = config.ON_VALUES
_OFF = config.OFF_VALUES

#: ``auto`` (threshold + >1 worker), ``on`` (every block), ``off``.
#: Mutable module state so the differential harness can force all modes.
SHARD_MODE = config.get("REPRO_SHARD")

#: Worker count.  Mutable module state (the shard-count sweep sets it);
#: the pool grows to the largest count ever requested.
SHARD_WORKERS = config.get("REPRO_SHARD_WORKERS")

#: ``auto``-mode row threshold: below it the submit/join overhead beats
#: any parallel win (a shard must amortize a pool handoff, ~100µs).
SHARD_MIN_ROWS = config.get("REPRO_SHARD_MIN")

#: ``thread`` or ``process`` (see the module docstring).
SHARD_BACKEND = config.get("REPRO_SHARD_BACKEND")

#: Per-context overrides: the serving layer's degradation chain disables
#: sharding for one query's fallback stage without touching the global
#: knobs other worker threads are using.
_MODE_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_shard_mode_override", default=None
)
_WORKERS_OVERRIDE: ContextVar[int | None] = ContextVar(
    "repro_shard_workers_override", default=None
)

#: Set inside a shard task: kernels re-entered from a worker never
#: re-shard (one level of parallelism; nested sharding would deadlock a
#: saturated pool).
_IN_SHARD: ContextVar[bool] = ContextVar("repro_in_shard", default=False)

#: Optional per-query hook run at every shard-task start (the chaos
#: suite's shard-killing fault site plugs in here).
_WORKER_HOOK: ContextVar[object] = ContextVar(
    "repro_shard_worker_hook", default=None
)


def active_mode() -> str:
    override = _MODE_OVERRIDE.get()
    return SHARD_MODE if override is None else override


def active_workers() -> int:
    override = _WORKERS_OVERRIDE.get()
    return SHARD_WORKERS if override is None else override


@contextmanager
def mode_override(mode: str | None, workers: int | None = None):
    """Force the shard mode (and optionally the worker count) for the
    dynamic extent of the block, in this thread/context only.  ``None``
    leaves the corresponding knob untouched."""
    mode_token = _MODE_OVERRIDE.set(mode) if mode is not None else None
    workers_token = (
        _WORKERS_OVERRIDE.set(workers) if workers is not None else None
    )
    try:
        yield
    finally:
        if workers_token is not None:
            _WORKERS_OVERRIDE.reset(workers_token)
        if mode_token is not None:
            _MODE_OVERRIDE.reset(mode_token)


@contextmanager
def worker_hook_scope(hook):
    """Install ``hook`` to run at the start of every shard task submitted
    from this context (propagated into workers with the rest of the
    context).  ``None`` is a no-op scope."""
    token = _WORKER_HOOK.set(hook)
    try:
        yield
    finally:
        _WORKER_HOOK.reset(token)


def shard_forced_on() -> bool:
    """Is sharding *forced* (``REPRO_SHARD=on``)?  Consulted by
    :func:`repro.engine.frontier.ndarray_forced_on` so forcing shards
    forces blocks everywhere they can run."""
    return np is not None and active_mode() in _ON


def shard_engaged(n: int) -> bool:
    """Should a block kernel over ``n`` rows dispatch through the shard
    backend under the current mode?  Never inside a shard task."""
    if np is None or n < 2 or _IN_SHARD.get():
        return False
    mode = active_mode()
    if mode in _OFF:
        return False
    if mode in _ON:
        return True
    return n >= SHARD_MIN_ROWS and active_workers() > 1


def shard_available() -> bool:
    """Can the current configuration shard at all?  (The serving layer's
    degradation chain only advertises an ``encoded-sharded`` stage when
    this holds.)"""
    if np is None:
        return False
    if active_mode() in _OFF:
        return False
    return active_workers() > 1 or active_mode() in _ON


# ----------------------------------------------------------------------
# The worker pool (threads; grow-only, lazily created)
# ----------------------------------------------------------------------

_POOL: ThreadPoolExecutor | None = None
_POOL_SIZE = 0
_POOL_LOCK = threading.Lock()
_ACTIVE = 0
_ACTIVE_LOCK = threading.Lock()


def _pool(size: int) -> ThreadPoolExecutor:
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is None or _POOL_SIZE < size:
            old = _POOL
            _POOL = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-shard"
            )
            _POOL_SIZE = size
            if old is not None:
                old.shutdown(wait=False)
        return _POOL


def active_tasks() -> int:
    """Shard tasks currently submitted-but-unfinished (the chaos suite's
    no-leak assertion: zero once a query has returned or raised)."""
    return _ACTIVE


def _run_task(fn, *args):
    """The in-worker wrapper: mark the context as in-shard, run the
    per-query worker hook (fault injection), check in with the
    cancellation checkpoint, then run the kernel."""
    global _ACTIVE
    token = _IN_SHARD.set(True)
    try:
        hook = _WORKER_HOOK.get()
        if hook is not None:
            hook()
        checkpoint()
        return fn(*args)
    finally:
        _IN_SHARD.reset(token)
        with _ACTIVE_LOCK:
            _ACTIVE -= 1


def _map_shards(fn, arg_lists):
    """Run ``fn(*args)`` for each entry across the pool and return the
    results in submission (shard-index) order.

    Every future is joined before this returns — a failing shard never
    leaks workers — and when shards fail the *lowest-shard-index*
    exception is raised, so errors are deterministic regardless of
    completion order.  Each task runs in a ``copy_context`` snapshot of
    the submitting context: cancellation/fault hooks and per-query mode
    overrides travel into the workers.
    """
    global _ACTIVE
    k = len(arg_lists)
    pool = _pool(max(active_workers(), k if k <= 64 else 64))
    futures = []
    for args in arg_lists:
        ctx = copy_context()
        with _ACTIVE_LOCK:
            _ACTIVE += 1
        futures.append(pool.submit(ctx.run, _run_task, fn, *args))
    results, first_error = [], None
    for future in futures:
        try:
            results.append(future.result())
        # Capture-then-re-raise: every future is drained before the
        # first failure propagates (the raise sits after the loop).
        except BaseException as exc:  # noqa: BLE001  # repro-lint: disable=error-taxonomy
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results


# ----------------------------------------------------------------------
# Sharded kernels
# ----------------------------------------------------------------------


def _plan_shard(plan, shard_block, want_steps=False):
    counter = _Counter()
    steps = [] if want_steps else None
    out, mask = plan.execute_batch_ndarray_local(shard_block, counter, steps)
    return out, mask, counter.tuples_touched, steps


class _Counter:
    """A local stand-in for :class:`repro.engine.ops.WorkCounter` (which
    lives above this module in the import graph)."""

    __slots__ = ("tuples_touched",)

    def __init__(self):
        self.tuples_touched = 0

    def add(self, amount: int = 1) -> None:
        self.tuples_touched += amount


def run_plan_sharded(plan, block, counter=None, step_alive=None):
    """``ExpansionPlan.execute_batch_ndarray``, sharded.

    Hash-partitions the block on the plan's first guard-key columns,
    runs each shard through the unsharded kernel on the worker pool, and
    merges with :func:`repro.engine.frontier.combine_shard_parts` /
    :func:`~repro.engine.frontier.scatter_part` — the returned
    ``(out, mask)`` and the counter charge are bit-identical to the
    unsharded call for any worker count.  Per-step alive counts
    (``step_alive``) merge by exact per-step integer sums across shards
    — associative and partition-independent like the touch totals.
    """
    n = block.shape[0]
    k = min(max(1, active_workers()), n)
    if k <= 1:
        return plan.execute_batch_ndarray_local(block, counter, step_alive)
    plan._ndarray_specs()  # compile once, outside the pool
    if fused.fuse_engaged():
        plan._fused_pipeline()  # likewise the generated pipeline
    positions = plan.shard_positions()
    indices = [
        idx for idx in frontier.hash_partition(block, positions, k) if len(idx)
    ]
    if len(indices) <= 1:
        return plan.execute_batch_ndarray_local(block, counter, step_alive)
    want_steps = step_alive is not None
    if SHARD_BACKEND == "process" and process_plan_safe(plan):
        results = _map_shards_process(plan, block, indices, want_steps)
    else:
        results = _map_shards(
            _plan_shard,
            [(plan, block[idx], want_steps) for idx in indices],
        )
    parts = [
        (idx, out, mask, touched)
        for idx, (out, mask, touched, _) in zip(indices, results)
    ]
    if want_steps:
        merged = [sum(counts) for counts in zip(*(r[3] for r in results))]
        step_alive.extend(merged)
    out, mask, touched = frontier.scatter_part(
        n, len(plan.out_schema), frontier.combine_shard_parts(parts)
    )
    if counter is not None and touched:
        counter.add(touched)
    return out, mask


def _key_join_shard(struct, shard_block, positions):
    return frontier.key_join(struct, shard_block, positions)


def key_join(struct, block, positions):
    """:func:`repro.engine.frontier.key_join`, sharded over contiguous
    row ranges.

    ``key_join`` emits left-row-major output, so a contiguous range
    partition concatenated in range order (with the ``reps`` offset
    restored) reproduces the unsharded ``(reps, gather, touched)``
    arrays bit-identically for any worker count.
    """
    n = block.shape[0]
    if not shard_engaged(n):
        return frontier.key_join(struct, block, positions)
    k = min(max(1, active_workers()), n)
    ranges = [(lo, hi) for lo, hi in frontier.range_partition(n, k) if hi > lo]
    if len(ranges) <= 1:
        return frontier.key_join(struct, block, positions)
    results = _map_shards(
        _key_join_shard,
        [(struct, block[lo:hi], positions) for lo, hi in ranges],
    )
    reps = np.concatenate(
        [r + lo for (lo, _), (r, _, _) in zip(ranges, results)]
    )
    gather = np.concatenate([g for _, g, _ in results])
    touched = sum(t for _, _, t in results)
    return reps, gather, touched


def _isin_shard(shard_block, positions, struct):
    return frontier.block_isin(shard_block, positions, struct)


def block_isin(block, positions, struct):
    """:func:`repro.engine.frontier.block_isin`, sharded over contiguous
    row ranges (per-row membership: order-preserving concat merge)."""
    n = block.shape[0]
    if not shard_engaged(n):
        return frontier.block_isin(block, positions, struct)
    k = min(max(1, active_workers()), n)
    ranges = [(lo, hi) for lo, hi in frontier.range_partition(n, k) if hi > lo]
    if len(ranges) <= 1:
        return frontier.block_isin(block, positions, struct)
    results = _map_shards(
        _isin_shard,
        [(block[lo:hi], positions, struct) for lo, hi in ranges],
    )
    return np.concatenate(results)


# ----------------------------------------------------------------------
# The process backend (multiprocessing + shared-memory input blocks)
# ----------------------------------------------------------------------

_PROC_POOL = None
_PROC_POOL_SIZE = 0
_GUARD_TAGS = (0, 2)  # expansion_plan.GUARD, expansion_plan.GUARD_DENSE


def process_plan_safe(plan) -> bool:
    """Can ``plan`` cross a process boundary?  Guard-only encoded plans
    qualify: their payloads are plain dict/list-of-int-tuples.  UDF steps
    never do — the callables close over the codec, whose mid-run
    interning cannot be mirrored back from a worker process."""
    return plan.encoded and all(tag in _GUARD_TAGS for tag, _, _ in plan.steps)


def _sanitized_steps(plan):
    """Plan steps with fd-:data:`INCONSISTENT` sentinel entries dropped.

    The sentinel is a bare ``object()`` whose identity cannot survive
    pickling; the ndarray kernel already treats an inconsistent key
    exactly like a missing one (both dangle), so dropping the entries
    preserves the worker-side semantics bit-for-bit.
    """
    from repro.engine.expansion_plan import GUARD_DENSE, INCONSISTENT

    steps = []
    for tag, positions, payload in plan.steps:
        if tag == GUARD_DENSE:
            payload = [
                None if entry is INCONSISTENT else entry for entry in payload
            ]
        else:
            payload = {
                key: image
                for key, image in payload.items()
                if image is not INCONSISTENT
            }
        steps.append((tag, positions, payload))
    return tuple(steps)


def _shutdown_proc_pool() -> None:
    """atexit: join worker processes before interpreter teardown (the
    executor's manager thread must not outlive module globals)."""
    global _PROC_POOL
    with _POOL_LOCK:
        if _PROC_POOL is not None:
            _PROC_POOL.shutdown(wait=True)
            _PROC_POOL = None


def _proc_pool(size: int):
    global _PROC_POOL, _PROC_POOL_SIZE
    import atexit
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import get_context

    with _POOL_LOCK:
        if _PROC_POOL is None or _PROC_POOL_SIZE < size:
            if _PROC_POOL is not None:
                _PROC_POOL.shutdown(wait=True)
            else:
                atexit.register(_shutdown_proc_pool)
            method = "fork" if "fork" in __import__(
                "multiprocessing"
            ).get_all_start_methods() else "spawn"
            _PROC_POOL = ProcessPoolExecutor(
                max_workers=size, mp_context=get_context(method)
            )
            _PROC_POOL_SIZE = size
        return _PROC_POOL


_PROC_PLAN_CACHE: dict = {}


def _process_worker(spec_bytes, shm_name, shape, want_steps=False):
    """Runs in a worker process: rebuild (or reuse) the plan, attach the
    shared-memory input block, run the unsharded kernel, return the
    result by value."""
    from multiprocessing import shared_memory

    from repro.engine.expansion_plan import ExpansionPlan

    digest = hashlib.sha1(spec_bytes).digest()
    plan = _PROC_PLAN_CACHE.get(digest)
    if plan is None:
        source_schema, out_schema, steps = pickle.loads(spec_bytes)
        plan = ExpansionPlan(source_schema, out_schema, steps, encoded=True)
        if len(_PROC_PLAN_CACHE) >= 64:
            _PROC_PLAN_CACHE.clear()
        _PROC_PLAN_CACHE[digest] = plan
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        block = np.ndarray(shape, dtype=np.int64, buffer=shm.buf).copy()
    finally:
        shm.close()
    counter = _Counter()
    steps = [] if want_steps else None
    out, mask = plan.execute_batch_ndarray_local(block, counter, steps)
    return out, mask, counter.tuples_touched, steps


def _map_shards_process(plan, block, indices, want_steps=False):
    """Dispatch plan shards to the process pool, inputs via shared
    memory.  Cancellation is checked at the dispatch boundaries only
    (hooks cannot cross the process boundary)."""
    from multiprocessing import shared_memory

    checkpoint()
    spec_bytes = pickle.dumps(
        (plan.source_schema, plan.out_schema, _sanitized_steps(plan)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    pool = _proc_pool(active_workers())
    futures, segments = [], []
    try:
        for idx in indices:
            shard_block = np.ascontiguousarray(block[idx])
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, shard_block.nbytes)
            )
            segments.append(shm)
            view = np.ndarray(
                shard_block.shape, dtype=np.int64, buffer=shm.buf
            )
            view[...] = shard_block
            futures.append(
                # Process workers run in a fresh interpreter: contextvars
                # cannot cross the boundary, so there is nothing to
                # snapshot (worker state travels in spec_bytes instead).
                pool.submit(  # repro-lint: disable=context-propagation
                    _process_worker,
                    spec_bytes,
                    shm.name,
                    shard_block.shape,
                    want_steps,
                )
            )
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            # Capture-then-re-raise, as in _map_shards above.
            except BaseException as exc:  # noqa: BLE001  # repro-lint: disable=error-taxonomy
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
    finally:
        for shm in segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
    checkpoint()
    return results
