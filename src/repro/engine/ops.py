"""Relational operators over :class:`~repro.engine.relation.Relation`.

All operators are set-semantics (duplicates eliminated) as in the paper's
model.  ``natural_join`` is a hash join that builds its index on the
smaller side and probes with the larger, which is the right primitive for
the per-tuple joins inside the paper's algorithms; full query evaluation
goes through the algorithms in ``repro.core`` or the baselines in this
package.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.engine.relation import Relation


class WorkCounter:
    """Counts tuple-touch operations so benchmarks can compare *work* shapes
    without OS timer noise.  All engine algorithms accept an optional
    counter."""

    __slots__ = ("tuples_touched",)

    def __init__(self):
        self.tuples_touched = 0

    def add(self, amount: int = 1) -> None:
        self.tuples_touched += amount


def memoized_join_rows(
    left_tuples,
    left_positions: Sequence[int],
    guard_index: dict,
    extra_key,
    keep=None,
) -> tuple[list[tuple], int]:
    """``(left ⋈ guard)`` row materialization with per-key extras memo.

    The shared core of SMA's SM-join and CSMA's CC/SM joins: probe the
    guard index with the left tuple's key (inlined 1-tuple build for the
    common single-attribute key), extract the guard's extension columns
    once per distinct key (``keep`` optionally filters matches, e.g.
    SMA's light-hitter test), and concatenate rows via C-level
    ``tuple.__add__``.

    Returns ``(rows, touched)`` where ``touched`` counts every index
    match *before* the ``keep`` filter — exactly the per-tuple charges of
    the naive join loop, so callers post it to their counter in one add.
    """
    from repro.engine.expansion_plan import tuple_getter

    rows: list[tuple] = []
    touched = 0
    extras_memo: dict[tuple, list[tuple]] = {}
    single = left_positions[0] if len(left_positions) == 1 else None
    left_key = tuple_getter(left_positions) if single is None else None
    for t in left_tuples:
        key = (t[single],) if single is not None else left_key(t)
        matches = guard_index.get(key)
        if not matches:
            continue
        touched += len(matches)
        extras = extras_memo.get(key)
        if extras is None:
            extras = extras_memo[key] = [
                extra_key(m)
                for m in matches
                if keep is None or keep(m)
            ]
        rows.extend(map(t.__add__, extras))
    return rows, touched


def project(relation: Relation, attrs: Sequence[str]) -> Relation:
    return relation.project(attrs)


def select_eq(relation: Relation, **binding) -> Relation:
    return relation.select(binding)


def natural_join(
    left: Relation,
    right: Relation,
    name: str | None = None,
    counter: WorkCounter | None = None,
) -> Relation:
    """Hash join on the shared attributes; output schema = left ++ new right.

    The hash index is built on the smaller relation and probed with the
    larger — a constant-factor heuristic only (the counted work is the
    number of emitted rows either way; output schema order is preserved).
    """
    from repro.engine.expansion_plan import tuple_getter

    shared = tuple(a for a in left.schema if a in right.varset)
    right_extra = tuple(a for a in right.schema if a not in left.varset)
    out_schema = left.schema + right_extra
    extra_key = tuple_getter(right.positions(right_extra))
    out: list[tuple] = []
    if len(left) < len(right):
        # Build on the smaller left side, probe with right tuples.
        index = left.index_on(shared)
        probe_key = tuple_getter(right.positions(shared))
        for u in right.tuples:
            matches = index.get(probe_key(u))
            if not matches:
                continue
            extra = extra_key(u)
            for t in matches:
                out.append(t + extra)
    else:
        index = right.index_on(shared)
        probe_key = tuple_getter(left.positions(shared))
        # Extract the appended columns once per *probed* bucket (untouched
        # buckets cost nothing; repeated probes of a hot key reuse the list).
        extras: dict[tuple, list[tuple]] = {}
        for t in left.tuples:
            key = probe_key(t)
            bucket = index.get(key)
            if not bucket:
                continue
            extra_rows = extras.get(key)
            if extra_rows is None:
                extra_rows = [extra_key(m) for m in bucket]
                extras[key] = extra_rows
            for extra in extra_rows:
                out.append(t + extra)
    if counter is not None:
        counter.add(len(out))
    # An output row is determined by its (left tuple, appended columns)
    # pair and both factors are distinct, so the join output needs no
    # re-deduplication.
    return Relation(
        name or f"({left.name}⋈{right.name})", out_schema, out, distinct=True
    )


def semijoin(
    left: Relation, right: Relation, counter: WorkCounter | None = None
) -> Relation:
    """left ⋉ right: keep left tuples with a join partner in right."""
    shared = tuple(a for a in left.schema if a in right.varset)
    if not shared:
        return left if len(right) else Relation(left.name, left.schema, ())
    index = right.index_on(shared)
    positions = left.positions(shared)
    kept = []
    for t in left.tuples:
        if counter is not None:
            counter.add()
        if tuple(t[p] for p in positions) in index:
            kept.append(t)
    return Relation(left.name, left.schema, kept, distinct=True)


def intersect(left: Relation, right: Relation) -> Relation:
    """Set intersection of two relations with identical attribute sets."""
    if left.varset != right.varset:
        raise ValueError("intersect requires identical attribute sets")
    aligned = right.project(left.schema)
    other = set(aligned.tuples)
    return Relation(
        f"({left.name}∩{right.name})",
        left.schema,
        (t for t in left.tuples if t in other),
        distinct=True,
    )


def union_all(relations: Iterable[Relation], name: str = "∪") -> Relation:
    """Set union of relations with identical attribute sets (schemas are
    aligned to the first relation's order)."""
    relations = list(relations)
    if not relations:
        raise ValueError("union of no relations")
    schema = relations[0].schema
    tuples: list[tuple] = []
    for rel in relations:
        if rel.varset != frozenset(schema):
            raise ValueError("union requires identical attribute sets")
        tuples.extend(rel.project(schema).tuples)
    return Relation(name, schema, tuples)


def cross_product(
    left: Relation, right: Relation, counter: WorkCounter | None = None
) -> Relation:
    if left.varset & right.varset:
        raise ValueError("cross product requires disjoint schemas")
    out = []
    for t in left.tuples:
        for u in right.tuples:
            out.append(t + u)
            if counter is not None:
                counter.add()
    return Relation(
        f"({left.name}×{right.name})", left.schema + right.schema, out,
        distinct=True,
    )
