"""LeapFrog TrieJoin (Veldhuizen [23]) on the positional kernel.

The paper's industrial baseline: a worst-case optimal join that walks one
variable at a time, intersecting the sorted children of per-relation trie
iterators with a leapfrogging gallop.  Footnote 1's FD handling is
included: a variable functionally determined by the bound prefix is bound
by the expansion procedure instead of trie search.

This implementation is faithful to the published algorithm (trie
iterators with open/up/seek/next, the leapfrog k-way intersection) rather
than a re-skin of :mod:`repro.engine.generic_join` — the two serve as
independent engines whose agreement is itself a test.  Execution rides on
the shared positional substrate: prefixes are raw tuples over
``order[:depth]``, footnote 1's FD binding goes through the compiled
expansion plan for that prefix schema (closure membership and plans are
derived once per depth, not per node), and the final UDF-consistency check
is the compiled positional predicate.  ``expansion="reference"`` swaps the
plan for the naive row-dict formulation
(:func:`repro.engine.reference.reference_expand_tuple`); the differential
suite runs both and asserts bit-identical results and work counts.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from decimal import Decimal
from fractions import Fraction
from typing import Sequence

from repro.engine.cancellation import checkpoint
from repro.engine.database import Database
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.query.query import Query


class TrieIndex:
    """A sorted nested-dict trie over a relation in a fixed attribute order.

    ``int_keys=True`` (the dictionary-encoded plane) declares every level
    key a plain int: levels sort and seek on the codes directly, skipping
    the heterogeneous ``_sort_key`` wrapper — no per-comparison tuple
    allocation, and ``seek`` bisects the key list itself.
    """

    def __init__(
        self, relation: Relation, order: Sequence[str], int_keys: bool = False
    ):
        order = tuple(a for a in order if a in relation.varset)
        if set(order) != set(relation.schema):
            raise ValueError(
                f"trie order {order} must cover schema {relation.schema}"
            )
        self.order = order
        self.int_keys = int_keys
        self.key_fn = _identity if int_keys else _sort_key
        positions = relation.positions(order)
        root: dict = {}
        for t in relation.tuples:
            node = root
            for p in positions:
                node = node.setdefault(t[p], {})
        self._sorted: dict[int, dict] = {}
        self.root = self._sort(root)

    def _sort(self, node: dict) -> dict:
        """Recursively replace dicts by (sorted keys, children) pairs."""
        keys = sorted(node) if self.int_keys else sorted(node, key=_sort_key)
        return {
            "keys": keys,
            "children": {k: self._sort(node[k]) for k in keys},
        }


def _identity(value):
    return value


def _sort_key(value):
    """Total order over heterogeneous values, *consistent with ==*.

    Joins compare values by ``==``/hash everywhere else in the engine, so
    the trie order must treat ``==``-equal values as equal keys — else a
    key interned as ``True`` in one trie and ``1`` in another would never
    meet in the leapfrog intersection.  Numerics (``bool``/``int``/
    ``float``/``Fraction``/``Decimal``) collapse onto one exact
    ``Fraction`` axis; every
    other type groups by type name (so ints never compare against
    strings) and orders naturally within the group.  Non-finite floats
    keep the legacy per-type key — they are ``==``-isolated anyway.
    """
    if isinstance(value, (bool, int, float, Fraction, Decimal)):
        try:
            return ("num", Fraction(value))
        except (ValueError, OverflowError):
            # Non-finite: ±inf compares ``==`` across float/Decimal too,
            # so each sign shares one key; NaN is ``==``-isolated (not
            # even equal to itself) and keeps the per-type key.
            if value == float("inf"):
                return ("num+inf", 0)
            if value == float("-inf"):
                return ("num-inf", 0)
            return (type(value).__name__, value)
    return (type(value).__name__, value)


@dataclass
class TrieIterator:
    """Veldhuizen's linear iterator interface over one trie level."""

    index: TrieIndex
    depth: int = -1
    path: list = field(default_factory=list)  # stack of node dicts
    positions: list[int] = field(default_factory=list)

    def __post_init__(self):
        self.path = [self.index.root]
        self.positions = []

    # -- vertical moves -------------------------------------------------
    def open(self) -> None:
        node = self.path[-1]
        keys = node["keys"]
        if not keys:
            raise RuntimeError("open() on empty level")
        self.path.append(node["children"][keys[0]])
        self.positions.append(0)
        self.depth += 1

    def up(self) -> None:
        self.path.pop()
        self.positions.pop()
        self.depth -= 1

    # -- horizontal moves ------------------------------------------------
    def key(self):
        parent = self.path[-2]
        return parent["keys"][self.positions[-1]]

    def at_end(self) -> bool:
        parent = self.path[-2]
        return self.positions[-1] >= len(parent["keys"])

    def next(self) -> None:
        parent = self.path[-2]
        self.positions[-1] += 1
        if not self.at_end():
            self.path[-1] = parent["children"][parent["keys"][self.positions[-1]]]

    def seek(self, target) -> None:
        """Advance to the least key >= target (galloping via bisect).

        Heterogeneous levels bisect a *cached* sort-key array, built once
        per node on its first seek and stored on the (shared) node dict —
        previously the ``[_sort_key(k) for k in keys]`` list was rebuilt
        on every seek, making the decoded-plane run seek-bound on wide
        levels (O(width) per seek instead of O(log width)).
        """
        parent = self.path[-2]
        keys = parent["keys"]
        if self.index.int_keys:
            lo = bisect.bisect_left(keys, target, self.positions[-1])
        else:
            skeys = parent.get("skeys")
            if skeys is None:
                skeys = parent["skeys"] = [_sort_key(k) for k in keys]
            lo = bisect.bisect_left(
                skeys, _sort_key(target), self.positions[-1]
            )
        self.positions[-1] = lo
        if not self.at_end():
            self.path[-1] = parent["children"][keys[lo]]


def leapfrog_intersection(iterators: list[TrieIterator], emit) -> None:
    """The k-way leapfrog: emit every key present in all iterators."""
    if any(it.at_end() for it in iterators):
        return
    key_fn = iterators[0].index.key_fn
    iterators = sorted(iterators, key=lambda it: key_fn(it.key()))
    p = 0
    while True:
        lowest = iterators[p]
        highest = iterators[p - 1]
        if key_fn(lowest.key()) == key_fn(highest.key()):
            emit(lowest.key())
            lowest.next()
            if lowest.at_end():
                return
        else:
            lowest.seek(highest.key())
            if lowest.at_end():
                return
        p = (p + 1) % len(iterators)


@dataclass
class LeapfrogStats:
    tuples_touched: int = 0
    seeks: int = 0


def leapfrog_triejoin(
    query: Query,
    db: Database,
    order: Sequence[str] | None = None,
    fd_aware: bool = True,
    counter: WorkCounter | None = None,
    expansion: str = "plan",
) -> tuple[Relation, LeapfrogStats]:
    """Evaluate ``query`` with LFTJ over tries built in ``order``.

    ``fd_aware`` enables footnote 1: bind FD-determined variables via the
    expansion procedure at the earliest level.  ``counter`` receives the
    expansion substrate's work charges (one touch per fd application, as
    everywhere in the kernel).  ``expansion`` selects the substrate:
    ``"plan"`` (compiled positional plans, the default) or ``"reference"``
    (the naive row-dict path) — the differential suite asserts the two are
    observationally identical.
    """
    order = tuple(order) if order is not None else query.variables
    if set(order) != set(query.variables):
        raise ValueError("order must be a permutation of the query variables")
    if expansion not in ("plan", "reference"):
        raise ValueError(f"unknown expansion substrate {expansion!r}")
    use_reference = expansion == "reference"
    if use_reference:
        from repro.engine.reference import reference_expand_tuple
    # The compiled-plan substrate rides the active data plane (encoded
    # twins + int-keyed tries when the database carries a codec); the
    # reference substrate stays on decoded values — it *is* the
    # decoded-value specification the differential suite compares against.
    encoded = db.encoded and not use_reference
    stats = LeapfrogStats()
    tries: dict[str, TrieIndex] = {}
    for atom in query.atoms:
        source = db.runtime(atom.name) if encoded else db.relations[atom.name]
        tries[atom.name] = TrieIndex(source, order, int_keys=encoded)
    # For each variable: atoms whose trie has a level for it, and the level.
    var_atoms: dict[str, list[str]] = {
        v: [
            atom.name
            for atom in query.atoms
            if v in atom.varset
        ]
        for v in order
    }
    n_vars = len(order)
    # Per-depth static data: every prefix at depth d has schema
    # order[:d], so closure membership and the expansion plan are derived
    # once per depth instead of once per node.
    determined = [
        fd_aware and var in db.fds.closure(frozenset(order[:depth]))
        for depth, var in enumerate(order)
    ]
    plans: list = [None] * n_vars
    consistent = db.udf_filter(order, encoded=encoded)
    results: list[tuple] = []

    def bind_determined(depth: int, prefix: tuple):
        """Footnote 1: the FD-determined value for ``prefix``, or ``None``
        when the prefix dangles (guard miss / inconsistent guard key)."""
        if use_reference:
            expanded = reference_expand_tuple(
                db,
                dict(zip(order[:depth], prefix)),
                target=frozenset(order[:depth]) | {order[depth]},
                counter=counter,
            )
            return None if expanded is None else (expanded[order[depth]],)
        plan = plans[depth]
        if plan is None:
            plan = plans[depth] = db.expansion_plan(
                order[:depth],
                frozenset(order[:depth]) | {order[depth]},
                encoded=encoded,
            )
        extended = plan.execute(prefix, counter)
        # The plan appends exactly {var}: extended IS prefix + (value,).
        return None if extended is None else (extended[depth],)

    def descend(depth: int, prefix: tuple,
                open_iters: dict[str, TrieIterator]) -> None:
        checkpoint()  # per-node deadline/fault check-in
        if depth == n_vars:
            if consistent is None or consistent(prefix):
                results.append(prefix)
            return
        var = order[depth]
        names = var_atoms[var]
        if determined[depth]:
            bound = bind_determined(depth, prefix)
            stats.tuples_touched += 1
            if bound is None:
                return
            (value,) = bound
            # Verify against each trie having this level.
            next_iters = {}
            ok = True
            for name in names:
                it = open_iters[name]
                kf = it.index.key_fn
                it.open()
                it.seek(value)
                if it.at_end() or kf(it.key()) != kf(value):
                    it.up()
                    ok = False
                    break
                next_iters[name] = it
            if ok:
                descend(depth + 1, prefix + (value,), open_iters)
            for name in reversed(list(next_iters)):
                open_iters[name].up()
            return
        if not names:
            raise ValueError(
                f"variable {var!r} is in no atom; requires fd_aware=True"
            )
        # Open this level on every participating trie and leapfrog.
        for name in names:
            open_iters[name].open()
        matches: list = []
        leapfrog_intersection(
            [open_iters[name] for name in names], matches.append
        )
        stats.tuples_touched += len(matches)
        for value in matches:
            # Re-position every iterator at the matched key.
            for name in names:
                it = open_iters[name]
                # reset to level start then seek (positions may have moved).
                it.positions[-1] = 0
                parent = it.path[-2]
                it.path[-1] = parent["children"][parent["keys"][0]]
                it.seek(value)
                stats.seeks += 1
            descend(depth + 1, prefix + (value,), open_iters)
        for name in reversed(names):
            open_iters[name].up()

    open_iters = {
        atom.name: TrieIterator(tries[atom.name]) for atom in query.atoms
    }
    if all(len(db[atom.name]) for atom in query.atoms):
        descend(0, (), open_iters)
    if encoded:
        results = db.decode_tuples(order, results)
    return Relation("Q", order, results), stats
