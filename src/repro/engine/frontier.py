"""Array-of-int64 frontier blocks — the ndarray batch backend's substrate.

On the dictionary-encoded plane every frontier cell is a small non-negative
int code, so a frontier of ``n`` rows over ``w`` attributes is exactly an
``(n, w)`` int64 matrix.  This module provides the block vocabulary the
third batch backend (``ExpansionPlan.execute_batch_ndarray``) and the
engines' frontier seams share:

* **blocks** — ``rows_to_block`` / ``columns_to_block`` /
  ``block_to_rows`` convert between Python tuple frontiers and int64
  matrices at the (few) remaining row boundaries;
* **dangling masks** — a block travels with an optional boolean mask
  (``None`` = every row alive); dead rows keep garbage cells that are
  never read;
* **key joins** — multi-attribute guard probes and membership tests run
  as sort/searchsorted joins over a *lexicographic void view*: rows cast
  to big-endian int64 and reinterpreted as fixed-width byte strings
  compare exactly like the corresponding key tuples (codes are
  non-negative, so the sign bit never flips the byte order);
* **mode knobs** — ``REPRO_BATCH_NDARRAY`` (``auto``/``on``/``off``) and
  ``REPRO_BATCH_NDARRAY_MIN`` select when encoded plans route batches
  through the block backend.  ``auto`` engages above the row threshold;
  the CI smoke pins ``on`` vs ``off`` to bit-identical
  ``tuples_touched``.

Everything here is encoded-plane only: raw-plane values are arbitrary
Python objects and never enter a block.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from repro import config
from repro.engine import fused as _fused
from repro.engine.cancellation import checkpoint

try:  # pragma: no cover - the image bakes numpy in
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


#: Row count at which ``auto`` mode routes an encoded batch through the
#: block backend.  Below it the generated row-loop's lower constant wins;
#: above it ``np.take``/searchsorted amortize the boundary conversions.
NDARRAY_MIN_ROWS = config.get("REPRO_BATCH_NDARRAY_MIN")

_ON = config.ON_VALUES
_OFF = config.OFF_VALUES

#: ``auto`` (threshold), ``on`` (every encoded batch) or ``off`` (never).
#: Mutable module state so the differential harness can force both modes.
NDARRAY_MODE = config.get("REPRO_BATCH_NDARRAY")

#: Per-context mode override: the serving layer's degradation chain runs
#: one query's fallback stage with the block backend off *without*
#: touching the process-global mode other worker threads are using.
_MODE_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_ndarray_mode_override", default=None
)


def active_mode() -> str:
    """The mode in force for the current context: the contextual override
    when one is installed, the module-global knob otherwise."""
    override = _MODE_OVERRIDE.get()
    return NDARRAY_MODE if override is None else override


@contextmanager
def mode_override(mode: str):
    """Force ``mode`` (``auto``/``on``/``off``) for the dynamic extent of
    the block, in this thread/context only."""
    token = _MODE_OVERRIDE.set(mode)
    try:
        yield
    finally:
        _MODE_OVERRIDE.reset(token)


_shard_mod = None


def _shard_forces_blocks() -> bool:
    """``REPRO_SHARD=on`` implies the block backend: shards only exist on
    blocks, so forcing the sharded path forces blocks everywhere they can
    run (unless blocks are themselves explicitly ``off``, which wins)."""
    global _shard_mod
    if _shard_mod is None:
        from repro.engine import shard as _shard_mod_imported

        _shard_mod = _shard_mod_imported
    return _shard_mod.shard_forced_on()


def ndarray_engaged(n: int) -> bool:
    """Does the block backend handle an encoded batch of ``n`` rows under
    the current mode?  (Callers have already checked ``plan.encoded``.)"""
    if np is None or n <= 0:
        return False
    mode = active_mode()
    if mode in _OFF:
        return False
    if mode in _ON:
        return True
    if _shard_forces_blocks() or _fused.fuse_forced_on():
        return True
    return n >= NDARRAY_MIN_ROWS


def ndarray_forced_on() -> bool:
    """Is the backend *forced* on (``REPRO_BATCH_NDARRAY=on``, or forced
    transitively via ``REPRO_SHARD=on`` / ``REPRO_FUSE=on``)?  Callers
    with extra engagement heuristics (e.g. generic join's determined-run
    length) bypass them under force, so the differential variants and
    the CI cross gate exercise the block path everywhere it can run.
    Shards and pipelines only exist on blocks, so forcing either forces
    blocks (unless blocks are themselves explicitly ``off``, which
    wins)."""
    if np is None:
        return False
    mode = active_mode()
    if mode in _OFF:
        return False
    return mode in _ON or _shard_forces_blocks() or _fused.fuse_forced_on()


def ndarray_roundtrip_engaged(n: int) -> bool:
    """Should a *row-tuple* entry point (``execute_batch``) route through
    the block backend?  Those calls convert tuples → block **and** back,
    and the E17 suite measures that roundtrip at best neutral (the step
    work saved roughly equals the two conversions), so under ``auto`` it
    never engages — the block backend is reserved for the direct seams
    (``execute_batch_ndarray`` callers), where frontiers stay blocks.
    Forcing ``on`` still routes every encoded batch through it, which is
    what the differential variants and the CI cross gate rely on."""
    return n > 0 and ndarray_forced_on()


# ----------------------------------------------------------------------
# Block construction / deconstruction
# ----------------------------------------------------------------------

def rows_to_block(rows, width: int):
    """``[tuple, ...] → (n, width) int64`` block, or ``None`` when the rows
    are not a rectangular all-int frontier (callers fall back to the
    row-loop; encoded frontiers always qualify)."""
    try:
        block = np.array(rows, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    if block.ndim != 2 or block.shape[1] != width:
        return None
    return block


def columns_to_block(columns, n: int):
    """Column store → ``(n, len(columns))`` int64 block (or ``None``)."""
    if not columns:
        return np.empty((n, 0), dtype=np.int64)
    try:
        block = np.array(columns, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    if block.ndim != 2 or block.shape != (len(columns), n):
        return None
    return block.T


def block_to_rows(block, mask) -> list:
    """Block + dangling mask → the aligned tuple list ``execute_batch``
    promises (``None`` marks dangling rows)."""
    if mask is None:
        return list(map(tuple, block.tolist()))
    out: list = [None] * block.shape[0]
    alive = np.flatnonzero(mask).tolist()
    for i, row in zip(alive, map(tuple, block[mask].tolist())):
        out[i] = row
    return out


def block_rows(block) -> list[tuple]:
    """Block → plain tuple rows (no mask; used at terminal boundaries)."""
    return list(map(tuple, block.tolist()))


# ----------------------------------------------------------------------
# Sorted-key structures: mixed-radix packed int64 (with a lexicographic
# void-view fallback) for sort/searchsorted key joins
# ----------------------------------------------------------------------
#
# A key structure is a ``(kind, sorted_array, radixes)`` triple:
#
# * ``("int", arr, None)`` — single-column keys, sorted int64;
# * ``("packed", arr, radixes)`` — multi-column keys mixed-radix-packed
#   into one int64 (radix per column = max code + 1 on the *build* side;
#   probe components outside a radix — e.g. codes interned mid-run —
#   cannot be present and pack to the impossible key ``-1``).  Packing
#   keeps numpy's fast int64 searchsorted; the build-side order equals
#   the lexicographic row order by construction.
# * ``("void", arr, None)`` — overflow fallback: rows as big-endian
#   fixed-width byte keys (bytewise order = lexicographic order; codes
#   are non-negative so the sign bit never flips it).  Void searchsorted
#   is an order of magnitude slower than int64, hence fallback-only.
# * ``("empty", None, None)`` — zero keys; every probe misses.


def void_view(block):
    """Rows of an ``(n, k)`` int64 block as a 1-D array of ``k*8``-byte
    keys whose bytewise order equals the lexicographic row order (codes
    are non-negative, so big-endian two's complement sorts correctly)."""
    be = np.ascontiguousarray(block.astype(">i8"))
    return be.view(f"V{block.shape[1] * 8}").ravel()


def _pack_radixes(block):
    """Per-column radixes for mixed-radix packing, or ``None`` when the
    packed key space would overflow int64."""
    radixes = [int(r) + 1 for r in block.max(axis=0)]
    capacity = 1
    for radix in radixes:
        capacity *= max(1, radix)
        if capacity >= 1 << 62:
            return None
    return radixes


def _pack_build(block, radixes):
    packed = block[:, 0].astype(np.int64, copy=True)
    for j in range(1, block.shape[1]):
        packed *= radixes[j]
        packed += block[:, j]
    return packed


def _pack_probe(block, positions, radixes):
    """Probe-side packing under the build side's radixes: any component
    outside its radix (a code the build side has never seen) packs to
    the impossible key ``-1`` — an automatic miss, never a collision."""
    cols = [block[:, p] for p in positions]
    packed = cols[0].astype(np.int64, copy=True)
    invalid = cols[0] >= radixes[0]
    for j in range(1, len(cols)):
        packed *= radixes[j]
        packed += cols[j]
        invalid |= cols[j] >= radixes[j]
    if invalid.any():
        packed[invalid] = -1
    return packed


def sorted_key_block(block):
    """A searchable key structure from an ``(n, k)`` int64 key block.

    Returns ``(struct, order)`` where ``struct`` sorts the keys (see the
    kind table above) and ``order`` is the stable argsort permutation, so
    callers can align per-key payload rows with the sorted keys.
    """
    checkpoint()  # block-granularity deadline/fault check-in
    n, k = block.shape
    if n == 0:
        return ("empty", None, None), np.empty(0, dtype=np.int64)
    if k == 1:
        flat = np.ascontiguousarray(block[:, 0])
        order = np.argsort(flat, kind="stable")
        return ("int", flat[order], None), order
    radixes = _pack_radixes(block)
    if radixes is not None:
        packed = _pack_build(block, radixes)
        order = np.argsort(packed, kind="stable")
        return ("packed", packed[order], radixes), order
    voids = void_view(block)
    order = np.argsort(voids, kind="stable")
    return ("void", voids[order], None), order


def _probe_array(struct, block, positions):
    kind, _, radixes = struct
    if kind == "int":
        return np.ascontiguousarray(block[:, positions[0]])
    if kind == "packed":
        return _pack_probe(block, positions, radixes)
    return void_view(block[:, list(positions)])


def key_hits(struct, block, positions):
    """``(hit, slot)``: per-row membership of ``block``'s ``positions``
    key in the sorted structure, and the first matching sorted index
    (clipped; only meaningful where ``hit``)."""
    kind, sorted_keys, _ = struct
    n = block.shape[0]
    if kind == "empty":
        return np.zeros(n, dtype=bool), np.zeros(n, dtype=np.int64)
    probes = _probe_array(struct, block, positions)
    return _fused.sorted_lookup(sorted_keys, probes)


def block_isin(block, positions, struct):
    """Membership of ``block``'s ``positions``-key rows in a sorted key
    structure built by :func:`sorted_key_block` (bool per row)."""
    hit, _ = key_hits(struct, block, positions)
    return hit


def key_join(struct, block, positions):
    """The vectorized core of an index-nested-loops join.

    ``struct`` is the key-sorted guard side (``sorted_key_block``);
    probes come from ``block``'s ``positions`` columns.  Returns
    ``(reps, gather, touched)``: emitting ``left[reps[i]] ++
    guard_payload[gather[i]]`` for every ``i`` reproduces the probe join
    in left-row-major order with guard matches in stable
    (original-relation) order per key — exactly the rows the per-tuple
    probe loop would emit, in the same order.  ``touched`` is the total
    match count (the per-tuple counter charges, summed).
    """
    checkpoint()  # block-granularity deadline/fault check-in
    kind, sorted_keys, _ = struct
    n = block.shape[0]
    if kind == "empty":
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, 0
    probes = _probe_array(struct, block, positions)
    lo = np.searchsorted(sorted_keys, probes, side="left")
    hi = np.searchsorted(sorted_keys, probes, side="right")
    counts = hi - lo
    touched = int(counts.sum())
    reps = np.repeat(np.arange(n), counts)
    shift = np.cumsum(counts) - counts
    gather = np.repeat(lo - shift, counts) + np.arange(touched)
    return reps, gather, touched


# ----------------------------------------------------------------------
# Shard partitioning and deterministic merge
# ----------------------------------------------------------------------
#
# The sharded backend (engine/shard.py) splits an ``(n, w)`` block into
# per-shard row subsets, runs each shard through the same per-row
# kernels, and merges.  Two partition shapes:
#
# * ``hash_partition`` — rows grouped by a multiplicative hash of the
#   join-key columns.  Per-row kernels (``execute_batch_ndarray``) are
#   row-independent, so any partition is correct; hashing the keys keeps
#   co-keyed rows on one shard (locality for the guard probes).
# * ``range_partition`` — contiguous row ranges, for order-sensitive
#   kernels (``key_join`` emits left-row-major output; contiguous ranges
#   concatenated in range order reproduce it exactly).
#
# Merging scatters per-shard outputs back to the original row indices,
# so the merged block is *bit-identical* to the unsharded run regardless
# of shard count or completion order, and sums the per-shard
# ``tuples_touched`` (exact integer addition — associative, commutative,
# shard-count-independent; the paper's degree-aware work measure is a
# per-row sum, hence per-partition-composable).

# Fixed multiplicative-hash constants (splitmix64's, pre-wrapped to
# signed int64 so numpy never sees an overflowing Python int).
_HASH_MULT_1 = -7046029254386353131  # 0x9E3779B97F4A7C15 as int64
_HASH_MULT_2 = -4658895280553007687  # 0xBF58476D1CE4E5B9 as int64


def shard_keys(block, positions, n_shards: int):
    """Per-row shard assignment in ``[0, n_shards)`` from a mixed
    multiplicative hash of the ``positions`` columns (deterministic:
    depends only on the row's key cells and ``n_shards``)."""
    n = block.shape[0]
    h = np.zeros(n, dtype=np.int64)
    with np.errstate(over="ignore"):
        for p in positions:
            h = h * _HASH_MULT_1 + block[:, p]
            h ^= h >> 29
        h = h * _HASH_MULT_2
        h ^= h >> 32
    # numpy's % follows the divisor's sign, so this is already in range.
    return h % n_shards


def hash_partition(block, positions, n_shards: int):
    """Split an ``(n, w)`` block into ``n_shards`` row-index arrays by
    key hash.  The concatenation of the returned index arrays is a
    permutation of ``arange(n)``; empty shards come back as empty
    arrays.  With no key columns every row lands on shard 0."""
    n = block.shape[0]
    if n_shards <= 1 or n == 0:
        return [np.arange(n, dtype=np.int64)] + [
            np.empty(0, dtype=np.int64) for _ in range(max(0, n_shards - 1))
        ]
    if not positions:
        parts = [np.empty(0, dtype=np.int64) for _ in range(n_shards)]
        parts[0] = np.arange(n, dtype=np.int64)
        return parts
    keys = shard_keys(block, tuple(positions), n_shards)
    order = np.argsort(keys, kind="stable")
    bounds = np.searchsorted(keys[order], np.arange(n_shards + 1))
    return [order[bounds[s]:bounds[s + 1]] for s in range(n_shards)]


def range_partition(n: int, n_shards: int):
    """``n`` rows as ``n_shards`` contiguous ``(lo, hi)`` ranges covering
    ``[0, n)`` in order (some possibly empty)."""
    if n_shards <= 1:
        return [(0, n)]
    step = -(-n // n_shards)  # ceil division
    return [(min(s * step, n), min((s + 1) * step, n)) for s in range(n_shards)]


def combine_shard_parts(parts):
    """Fold shard results into one part, in any order or grouping.

    A *part* is ``(indices, out, mask, touched)``: the original row
    indices a shard covered, its ``(len(indices), width)`` output block,
    its dangling mask (``None`` = all alive), and its ``tuples_touched``.
    Because the indices are disjoint and ``touched`` merges by exact
    integer addition, ``combine`` is associative and commutative: any
    permutation or grouping of the same parts folds to a part that
    :func:`scatter_part` finalizes identically.
    """
    parts = list(parts)
    if len(parts) == 1:
        return parts[0]
    indices = np.concatenate([p[0] for p in parts])
    out = np.concatenate([p[1] for p in parts], axis=0)
    if all(p[2] is None for p in parts):
        mask = None
    else:
        mask = np.concatenate(
            [
                np.ones(len(p[0]), dtype=bool) if p[2] is None else p[2]
                for p in parts
            ]
        )
    touched = sum(p[3] for p in parts)
    return indices, out, mask, touched


def scatter_part(n: int, width: int, part):
    """Finalize a combined part back into original row order.

    Returns ``(out, mask, touched)`` with rows scattered to their
    original indices — bit-identical to the unsharded kernel's output,
    independent of how the shards were ordered or grouped on the way in
    (the per-row kernels write every cell row-deterministically, dead
    rows included, so even the never-read garbage cells match).
    """
    indices, shard_out, shard_mask, touched = part
    if len(indices) != n:
        raise ValueError(
            f"shard parts cover {len(indices)} rows of {n}: not a partition"
        )
    out = np.empty((n, width), dtype=np.int64)
    out[indices] = shard_out
    if shard_mask is None:
        mask = None
    else:
        mask = np.empty(n, dtype=bool)
        mask[indices] = shard_mask
    return out, mask, touched
