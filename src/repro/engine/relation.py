"""Named-column in-memory relations with hash prefix indexes.

A :class:`Relation` is an immutable set of tuples over a named schema.
Indexes on attribute subsets are built lazily and cached; they give O(1)
degree lookups (`|σ_{X=v}(R)|`), which the Chain Algorithm, SMA and CSMA
all rely on (the paper charges a log factor for this via sorted indexes;
hashing gives amortized O(1) and does not change any shape).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class Relation:
    """An immutable relation: ``schema`` (attribute names) + distinct tuples."""

    __slots__ = ("name", "schema", "tuples", "_indexes", "_positions")

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        tuples: Iterable[tuple] = (),
    ):
        self.name = name
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise ValueError(f"duplicate attributes in schema {self.schema}")
        width = len(self.schema)
        deduped = dict.fromkeys(tuple(t) for t in tuples)
        for t in deduped:
            if len(t) != width:
                raise ValueError(f"tuple {t} does not match schema {self.schema}")
        self.tuples: tuple[tuple, ...] = tuple(deduped)
        self._indexes: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}
        self._positions: dict[str, int] = {a: i for i, a in enumerate(self.schema)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __contains__(self, t: tuple) -> bool:
        index = self.index_on(self.schema)
        return tuple(t) in index

    @property
    def varset(self) -> frozenset:
        return frozenset(self.schema)

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        return tuple(self._positions[a] for a in attrs)

    def as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.schema, t)) for t in self.tuples]

    # ------------------------------------------------------------------
    # Indexing / degrees
    # ------------------------------------------------------------------
    def index_on(self, attrs: Sequence[str]) -> dict[tuple, list[tuple]]:
        """Hash index keyed on the given attributes (cached)."""
        key = tuple(attrs)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        positions = self.positions(key)
        index: dict[tuple, list[tuple]] = {}
        for t in self.tuples:
            index.setdefault(tuple(t[p] for p in positions), []).append(t)
        self._indexes[key] = index
        return index

    def matching(self, binding: Mapping[str, object]) -> list[tuple]:
        """Tuples agreeing with ``binding`` on the bound attributes in schema."""
        attrs = tuple(a for a in self.schema if a in binding)
        if not attrs:
            return list(self.tuples)
        index = self.index_on(attrs)
        return index.get(tuple(binding[a] for a in attrs), [])

    def degree(self, binding: Mapping[str, object]) -> int:
        """|σ_{binding}(R)| via the prefix index."""
        attrs = tuple(a for a in self.schema if a in binding)
        if not attrs:
            return len(self.tuples)
        index = self.index_on(attrs)
        return len(index.get(tuple(binding[a] for a in attrs), ()))

    def max_degree(self, group_attrs: Sequence[str]) -> int:
        """max_v |σ_{group_attrs = v}(R)| — the degree bound of Sec. 1.2."""
        if not group_attrs:
            return len(self.tuples)
        index = self.index_on(tuple(group_attrs))
        return max((len(bucket) for bucket in index.values()), default=0)

    def distinct_values(self, attr: str) -> list:
        pos = self._positions[attr]
        return list(dict.fromkeys(t[pos] for t in self.tuples))

    # ------------------------------------------------------------------
    # Relational operators (see also repro.engine.ops)
    # ------------------------------------------------------------------
    def project(self, attrs: Sequence[str], name: str | None = None) -> "Relation":
        positions = self.positions(tuple(attrs))
        return Relation(
            name or f"π({self.name})",
            tuple(attrs),
            (tuple(t[p] for p in positions) for t in self.tuples),
        )

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        schema = tuple(mapping.get(a, a) for a in self.schema)
        return Relation(name or self.name, schema, self.tuples)

    def select(self, binding: Mapping[str, object], name: str | None = None) -> "Relation":
        return Relation(
            name or f"σ({self.name})", self.schema, self.matching(binding)
        )

    def restrict(self, predicate, name: str | None = None) -> "Relation":
        """Keep tuples where ``predicate(row_dict)`` is truthy."""
        kept = [
            t
            for t in self.tuples
            if predicate(dict(zip(self.schema, t)))
        ]
        return Relation(name or f"σ({self.name})", self.schema, kept)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Relation({self.name}[{','.join(self.schema)}], {len(self)} tuples)"
