"""Named-column in-memory relations with hash prefix indexes.

A :class:`Relation` is an immutable set of tuples over a named schema.
Indexes on attribute subsets are built lazily and cached; they give O(1)
degree lookups (`|σ_{X=v}(R)|`), which the Chain Algorithm, SMA and CSMA
all rely on (the paper charges a log factor for this via sorted indexes;
hashing gives amortized O(1) and does not change any shape).

Three kernel-level optimizations keep derived relations cheap:

* **Interned schemas** — the (schema, positions, varset) triple is computed
  once per distinct schema in a module registry and shared by every
  relation over it.
* **Distinctness provenance** — operators whose output is provably
  duplicate-free (``select``, ``rename``, permuting projections, guard
  expansions, CD log-degree buckets) construct with ``distinct=True`` and
  skip the re-deduplication pass entirely.
* **Index inheritance** — children built from a partition of a parent index
  (:meth:`seed_index`) start life with that index installed instead of
  re-hashing their tuples; projections are memoized per parent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

from repro import config

# Opt-in re-validation of the ``distinct=True`` fast path (set
# REPRO_CHECK_DISTINCT=1; the test suite enables it).  Each call site's
# distinctness rests on an injectivity argument — this flag re-checks those
# arguments at runtime without taxing production construction.
_CHECK_DISTINCT = config.get("REPRO_CHECK_DISTINCT")

# Registry of interned (schema, positions, varset) triples, keyed by the
# schema tuple.  Interning is a sharing optimization only — each relation
# holds its own references, so evicting an entry merely means the next
# construction over that schema rebuilds the triple.  The LRU cap bounds
# the registry under heavy traffic with unbounded distinct schemas.
_SCHEMA_REGISTRY: "OrderedDict[tuple, tuple[tuple, dict, frozenset]]" = (
    OrderedDict()
)
SCHEMA_REGISTRY_MAX = 4096

# Per-relation projection memos are capped the same way: a projection is a
# pure function of (parent, attrs, name), so eviction only costs a
# recomputation on the next request.
PROJECTION_CACHE_MAX = 64


def _intern_schema(schema: Sequence[str]) -> tuple[tuple, dict, frozenset]:
    key = tuple(schema)
    cached = _SCHEMA_REGISTRY.get(key)
    if cached is None:
        if len(set(key)) != len(key):
            raise ValueError(f"duplicate attributes in schema {key}")
        cached = (key, {a: i for i, a in enumerate(key)}, frozenset(key))
        _SCHEMA_REGISTRY[key] = cached
        if len(_SCHEMA_REGISTRY) > SCHEMA_REGISTRY_MAX:
            _SCHEMA_REGISTRY.popitem(last=False)
    else:
        _SCHEMA_REGISTRY.move_to_end(key)
    return cached


class Relation:
    """An immutable relation: ``schema`` (attribute names) + distinct tuples."""

    __slots__ = (
        "name", "schema", "tuples", "_indexes", "_positions", "_varset",
        "_projections", "_columns", "_columns_all_int", "_twins",
        "_tuple_set", "_key_sets", "_key_blocks",
    )

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        tuples: Iterable[tuple] = (),
        distinct: bool = False,
    ):
        self.name = name
        self.schema, self._positions, self._varset = _intern_schema(schema)
        if distinct:
            # Provenance guarantees distinct, well-formed tuples: skip the
            # dedup/validation pass (internal fast path for operators).
            self.tuples: tuple[tuple, ...] = tuple(tuples)
            if _CHECK_DISTINCT:
                width = len(self.schema)
                if any(
                    not isinstance(t, tuple) or len(t) != width
                    for t in self.tuples
                ):
                    raise AssertionError(
                        f"distinct=True with malformed tuples for {self.schema}"
                    )
                if len(set(self.tuples)) != len(self.tuples):
                    raise AssertionError(
                        f"distinct=True violated for {name}[{self.schema}]"
                    )
        else:
            width = len(self.schema)
            deduped = dict.fromkeys(map(tuple, tuples))
            for t in deduped:
                if len(t) != width:
                    raise ValueError(
                        f"tuple {t} does not match schema {self.schema}"
                    )
            self.tuples = tuple(deduped)
        self._indexes: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}
        self._projections: "OrderedDict[tuple, Relation]" = OrderedDict()
        self._columns: tuple[tuple, ...] | None = None
        self._columns_all_int: tuple[bool, ...] | None = None
        self._twins: dict[int, tuple] | None = None
        self._tuple_set: set | None = None
        self._key_sets: dict[tuple, set] | None = None
        self._key_blocks: dict[tuple, object] | None = None

    @classmethod
    def from_columns(
        cls,
        name: str,
        schema: Sequence[str],
        columns: Sequence[Sequence],
        distinct: bool = False,
        all_int: bool = False,
    ) -> "Relation":
        """Build a relation from a column store, installing the store.

        The seam the array-of-int64 frontier uses: a producer that already
        holds result *columns* (e.g. ``Database.expand_rows_relation``'s
        ndarray path) constructs the relation with one C-level ``zip``
        transposition and seeds the columnar view (plus the all-int
        verdict, when the columns are dictionary codes), so downstream
        ``index_on``/batch executions never re-transpose or re-scan.

        The store is installed only when it matches the relation's rows:
        without ``distinct=True`` the constructor may dedup, and seeding
        the pre-dedup columns would desync ``columns()`` from ``tuples``
        — in that case the (consistent) lazy transpose applies instead.
        """
        columns = tuple(tuple(column) for column in columns)
        rows = zip(*columns) if columns else ()
        rel = cls(name, schema, rows, distinct=distinct)
        if len(columns) == len(rel.schema) and (
            not columns or len(rel.tuples) == len(columns[0])
        ):
            rel.seed_columns(columns, all_int=all_int)
        return rel

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __contains__(self, t: tuple) -> bool:
        return tuple(t) in self.tuple_set()

    def tuple_set(self) -> set:
        """The tuples as a cached set — the membership structure.

        A full-schema hash index has singleton buckets; everything that
        only asks "is this row present?" (final filters, the chain
        algorithm's footnote-8 check, ``in``) probes this set instead:
        construction is one C-level pass and probes skip the bucket
        indirection.
        """
        if self._tuple_set is None:
            self._tuple_set = set(self.tuples)
        return self._tuple_set

    def key_set(self, attrs: Sequence[str]) -> set:
        """The distinct keys on ``attrs`` as a cached set (C-level build).

        The membership-only counterpart of :meth:`index_on` — verification
        probes ("does any tuple match this key?") need no buckets.  For a
        single attribute the set holds *bare* values (probe with
        ``t[pos]``, no 1-tuple allocation); for several it holds key
        tuples in ``attrs`` order.
        """
        key = tuple(attrs)
        if self._key_sets is None:
            self._key_sets = {}
        cached = self._key_sets.get(key)
        if cached is not None:
            return cached
        from operator import itemgetter

        positions = self.positions(key)
        if len(positions) == 1:
            keys = set(map(itemgetter(positions[0]), self.tuples))
        else:
            keys = set(map(itemgetter(*positions), self.tuples))
        self._key_sets[key] = keys
        return keys

    def key_block(self, attrs: Sequence[str]):
        """The keys on ``attrs`` as a cached *sorted key structure*
        (``frontier.sorted_key_block``: int64, mixed-radix packed, or
        void fallback) — the vectorized counterpart of :meth:`key_set`,
        probed by the ndarray frontier's membership checks
        (``frontier.block_isin``).

        Only meaningful on all-int relations (dictionary-encoded twins);
        callers on the encoded plane guarantee that by construction.
        """
        key = tuple(attrs)
        if self._key_blocks is None:
            self._key_blocks = {}
        cached = self._key_blocks.get(key)
        if cached is None:
            import numpy as np

            from repro.engine import frontier

            columns = self.columns()
            positions = self.positions(key)
            block = np.empty((len(self.tuples), len(positions)), dtype=np.int64)
            for j, p in enumerate(positions):
                block[:, j] = columns[p]
            cached, _ = frontier.sorted_key_block(block)
            self._key_blocks[key] = cached
        return cached

    def join_block(self, key_attrs: Sequence[str], payload_attrs: Sequence[str]):
        """``(sorted_keys, payload)`` for vectorized probe joins — the
        build side of ``frontier.key_join``.

        ``sorted_keys`` is the sorted key structure over this relation's
        ``key_attrs`` (stable, so rows with equal keys keep their
        original relation order — matching :meth:`index_on` bucket order
        exactly); ``payload`` is the ``payload_attrs`` columns gathered
        into the same order as an int64 block.  Cached per attribute
        pair; encoded-plane callers only (all-int cells).
        """
        key = ("join", tuple(key_attrs), tuple(payload_attrs))
        if self._key_blocks is None:
            self._key_blocks = {}
        cached = self._key_blocks.get(key)
        if cached is None:
            import numpy as np

            from repro.engine import frontier

            columns = self.columns()
            n = len(self.tuples)
            key_positions = self.positions(tuple(key_attrs))
            block = np.empty((n, len(key_positions)), dtype=np.int64)
            for j, p in enumerate(key_positions):
                block[:, j] = columns[p]
            sorted_keys, order = frontier.sorted_key_block(block)
            payload_positions = self.positions(tuple(payload_attrs))
            payload = np.empty((n, len(payload_positions)), dtype=np.int64)
            for j, p in enumerate(payload_positions):
                payload[:, j] = columns[p]
            cached = (sorted_keys, payload[order])
            self._key_blocks[key] = cached
        return cached

    @property
    def varset(self) -> frozenset:
        return self._varset

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        return tuple(self._positions[a] for a in attrs)

    def as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.schema, t)) for t in self.tuples]

    def columns(self) -> tuple[tuple, ...]:
        """Columnar view: one tuple per attribute, cached after first use.

        The batched plan backend (`ExpansionPlan.execute_batch_columns`)
        consumes this directly, so pushing a whole relation through a plan
        skips the per-call transposition.
        """
        if self._columns is None:
            from operator import itemgetter

            self._columns = tuple(
                tuple(map(itemgetter(j), self.tuples))
                for j in range(len(self.schema))
            )
        return self._columns

    def cached_columns(self) -> tuple[tuple, ...] | None:
        """The columnar view if already materialized, else ``None``.

        For fast paths that profit from columns but should not pay the
        transposition just to find out (encoded twins always have them).
        """
        return self._columns

    def columns_all_int(self) -> tuple[bool, ...]:
        """Per-column "every cell is an int" verdict, memoized on the
        cached columnar view.

        The batched guard backend consults this instead of re-scanning
        ``type(v) is int`` per cell on every call; encoded twins are
        seeded ``True`` without a scan (codes are ints by construction).
        """
        if self._columns_all_int is None:
            self._columns_all_int = tuple(
                all(type(v) is int for v in column)
                for column in self.columns()
            )
        return self._columns_all_int

    # ------------------------------------------------------------------
    # The encoded twin hooks (see repro.engine.dictionary)
    # ------------------------------------------------------------------
    def seed_columns(
        self, columns: tuple[tuple, ...], all_int: bool = False
    ) -> None:
        """Install a pre-built columnar view (and its all-int verdict).

        Used by the dictionary encoder, whose column-wise encode produces
        the column-store as a by-product.
        """
        self._columns = columns
        if all_int:
            self._columns_all_int = (True,) * len(self.schema)

    def encoded_twin(self, codec) -> "Relation | None":
        """The cached encoded twin for ``codec``, if one was built."""
        if self._twins is None:
            return None
        entry = self._twins.get(id(codec))
        return entry[1] if entry is not None else None

    def cache_encoded_twin(self, codec, twin: "Relation") -> None:
        """Cache ``twin`` keyed by codec identity (the codec object is
        retained so the ``id`` key cannot be recycled)."""
        if self._twins is None:
            self._twins = {}
        self._twins[id(codec)] = (codec, twin)
        if len(self._twins) > 4:
            self._twins.pop(next(iter(self._twins)))

    # ------------------------------------------------------------------
    # Indexing / degrees
    # ------------------------------------------------------------------
    def index_on(self, attrs: Sequence[str]) -> dict[tuple, list[tuple]]:
        """Hash index keyed on the given attributes (cached)."""
        key = tuple(attrs)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        index: dict[tuple, list[tuple]] = {}
        setdefault = index.setdefault
        if len(key) == 1:
            (p,) = self.positions(key)
            grouped = self._group_int_column(p)
            if grouped is not None:
                self._indexes[key] = grouped
                return grouped
            # Inline the 1-tuple key build: no per-row lambda frame.
            for t in self.tuples:
                setdefault((t[p],), []).append(t)
        else:
            from repro.engine.expansion_plan import tuple_getter

            extract = tuple_getter(self.positions(key))
            for t in self.tuples:
                setdefault(extract(t), []).append(t)
        self._indexes[key] = index
        return index

    def _group_int_column(self, p: int) -> dict[tuple, list[tuple]] | None:
        """Sort-based index build for a single all-int column via numpy.

        A stable argsort groups equal codes contiguously; buckets are then
        C-level list slices instead of per-row ``setdefault`` calls.  Only
        engaged on large relations whose column is statically (or
        memoized) all-int — dictionary-encoded twins always qualify.
        Bucket-internal order stays insertion order (stable sort), like
        the hash build.  Only relations that already hold their columnar
        view qualify (encoded twins precompute it): forcing a transpose
        just to index would cost more than the hash build saves.
        """
        if (
            self._columns is None
            or len(self.tuples) < 4096
            or not self.columns_all_int()[p]
        ):
            return None
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - the image bakes numpy in
            return None
        col = self._columns[p]
        try:
            arr = np.fromiter(col, dtype=np.int64, count=len(col))
        except OverflowError:
            return None
        order = np.argsort(arr, kind="stable")
        sorted_codes = arr[order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        tuples = self.tuples
        ordered = [tuples[i] for i in order.tolist()]
        index: dict[tuple, list[tuple]] = {}
        start = 0
        for end in boundaries.tolist():
            index[(int(sorted_codes[start]),)] = ordered[start:end]
            start = end
        index[(int(sorted_codes[start]),)] = ordered[start:]
        return index

    def seed_index(
        self, attrs: Sequence[str], index: dict[tuple, list[tuple]]
    ) -> None:
        """Install a pre-built index (inherited from a parent's partition).

        Used by operators that already hold the exact ``{key: bucket}``
        partition for this relation (e.g. CD log-degree bucketing) so the
        child never re-hashes its tuples.
        """
        self._indexes[tuple(attrs)] = index

    def matching(self, binding: Mapping[str, object]) -> list[tuple]:
        """Tuples agreeing with ``binding`` on the bound attributes in schema."""
        attrs = tuple(a for a in self.schema if a in binding)
        if not attrs:
            return list(self.tuples)
        index = self.index_on(attrs)
        return index.get(tuple(binding[a] for a in attrs), [])

    def degree(self, binding: Mapping[str, object]) -> int:
        """|σ_{binding}(R)| via the prefix index."""
        attrs = tuple(a for a in self.schema if a in binding)
        if not attrs:
            return len(self.tuples)
        index = self.index_on(attrs)
        return len(index.get(tuple(binding[a] for a in attrs), ()))

    def max_degree(self, group_attrs: Sequence[str]) -> int:
        """max_v |σ_{group_attrs = v}(R)| — the degree bound of Sec. 1.2."""
        if not group_attrs:
            return len(self.tuples)
        index = self.index_on(tuple(group_attrs))
        return max((len(bucket) for bucket in index.values()), default=0)

    def distinct_values(self, attr: str) -> list:
        pos = self._positions[attr]
        return list(dict.fromkeys(t[pos] for t in self.tuples))

    # ------------------------------------------------------------------
    # Relational operators (see also repro.engine.ops)
    # ------------------------------------------------------------------
    def project(self, attrs: Sequence[str], name: str | None = None) -> "Relation":
        attrs = tuple(attrs)
        if attrs == self.schema and name is None:
            return self
        cache_key = (attrs, name)
        cached = self._projections.get(cache_key)
        if cached is not None:
            self._projections.move_to_end(cache_key)
            return cached
        from repro.engine.expansion_plan import tuple_getter

        extract = tuple_getter(self.positions(attrs))
        # A projection onto a permutation of the full schema is injective:
        # the result inherits distinctness from this relation.
        permutation = len(attrs) == len(self.schema)
        result = Relation(
            name or f"π({self.name})",
            attrs,
            map(extract, self.tuples),
            distinct=permutation,
        )
        self._projections[cache_key] = result
        if len(self._projections) > PROJECTION_CACHE_MAX:
            self._projections.popitem(last=False)
        return result

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        schema = tuple(mapping.get(a, a) for a in self.schema)
        return Relation(name or self.name, schema, self.tuples, distinct=True)

    def select(self, binding: Mapping[str, object], name: str | None = None) -> "Relation":
        # A selection is a subset of this relation's (distinct) tuples.
        return Relation(
            name or f"σ({self.name})",
            self.schema,
            self.matching(binding),
            distinct=True,
        )

    def restrict(self, predicate, name: str | None = None) -> "Relation":
        """Keep tuples where ``predicate(row_dict)`` is truthy."""
        kept = [
            t
            for t in self.tuples
            if predicate(dict(zip(self.schema, t)))
        ]
        return Relation(name or f"σ({self.name})", self.schema, kept, distinct=True)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Relation({self.name}[{','.join(self.schema)}], {len(self)} tuples)"
