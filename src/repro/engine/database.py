"""Database instances and the expansion procedure (Sec. 2).

A :class:`Database` bundles the relation instances, the FD set with its
guards, the UDF registry for unguarded fds, and optional declared degree
bounds.  The *expansion* of a relation fills in functionally-determined
attributes: guarded fds by joining with a projection of the guard relation,
unguarded fds by evaluating the UDF — in time Õ(N), as the paper requires.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.engine.ops import WorkCounter, natural_join
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet, VarSet, varset
from repro.fds.udf import UDF, UDFRegistry


class ExpansionError(RuntimeError):
    """An fd could not be applied: no guard relation and no UDF."""


class Database:
    """Relations + FDs + UDFs + declared degree bounds for one query run."""

    def __init__(
        self,
        relations: Iterable[Relation] = (),
        fds: FDSet | None = None,
        udfs: Iterable[UDF] = (),
        degree_bounds: Mapping[tuple[VarSet, str], int] | None = None,
    ):
        self.relations: dict[str, Relation] = {}
        for rel in relations:
            self.add(rel)
        self.fds: FDSet = fds if fds is not None else FDSet()
        self.udfs = UDFRegistry(udfs)
        for udf in self.udfs:
            # UDFs always contribute their fd (possibly already declared).
            if not self.fds.implies(udf.fd):
                self.fds.add(udf.fd)
        # Declared max-degree bounds: (X, y) -> max #distinct y per X-value.
        self.degree_bounds: dict[tuple[VarSet, str], int] = dict(
            degree_bounds or {}
        )

    # ------------------------------------------------------------------
    def add(self, relation: Relation) -> None:
        if relation.name in self.relations:
            raise ValueError(f"duplicate relation {relation.name!r}")
        self.relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def sizes(self) -> dict[str, int]:
        return {name: len(rel) for name, rel in self.relations.items()}

    def log_sizes(self) -> dict[str, float]:
        return {
            name: (math.log2(len(rel)) if len(rel) > 0 else 0.0)
            for name, rel in self.relations.items()
        }

    @property
    def total_size(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    # ------------------------------------------------------------------
    # Guard resolution
    # ------------------------------------------------------------------
    def guard_relation(self, fd: FD) -> Relation | None:
        """A stored relation containing lhs ∪ rhs — the fd's guard."""
        needed = fd.lhs | fd.rhs
        for rel in self.relations.values():
            if needed <= rel.varset:
                return rel
        return None

    def applicable_fds(self, bound: VarSet) -> list[FD]:
        """Non-trivial fds whose lhs is within ``bound``."""
        return [
            fd for fd in self.fds if fd.lhs <= bound and not fd.rhs <= bound
        ]

    # ------------------------------------------------------------------
    # The expansion procedure (Sec. 2)
    # ------------------------------------------------------------------
    def expand_relation(
        self,
        relation: Relation,
        counter: WorkCounter | None = None,
    ) -> Relation:
        """R⁺: extend ``relation`` to the closure of its attributes.

        Repeatedly applies fds X -> y with X ⊆ current attributes: guarded
        fds join with Π_{X∪y}(guard) (a function on X, so the size does not
        grow; tuples with no guard partner are dangling and dropped);
        unguarded fds evaluate their UDF per tuple.
        """
        current = relation
        target = self.fds.closure(current.varset)
        while current.varset != target:
            progressed = False
            for fd in self.applicable_fds(current.varset):
                new_attrs = fd.rhs - current.varset
                if not new_attrs:
                    continue
                current = self._apply_fd(current, fd, counter)
                progressed = True
                break
            if not progressed:
                raise ExpansionError(
                    f"cannot expand {current.schema} towards {sorted(target)}: "
                    "missing guard/UDF"
                )
        return current

    def _apply_fd(
        self, relation: Relation, fd: FD, counter: WorkCounter | None
    ) -> Relation:
        guard = self.guard_relation(fd)
        if guard is not None:
            attrs = tuple(sorted(fd.lhs | fd.rhs))
            lookup = guard.project(attrs, name=f"Π({guard.name})")
            return natural_join(
                relation, lookup, name=relation.name, counter=counter
            )
        # Unguarded: fill each rhs attribute via a UDF.
        current = relation
        for target_attr in sorted(fd.rhs - relation.varset):
            udf = self.udfs.resolve(current.varset, target_attr)
            if udf is None:
                raise ExpansionError(
                    f"no guard relation and no UDF for fd {fd!r} "
                    f"(attribute {target_attr!r})"
                )
            positions = current.positions(udf.inputs)
            new_tuples = []
            for t in current.tuples:
                if counter is not None:
                    counter.add()
                new_tuples.append(t + (udf(*(t[p] for p in positions)),))
            current = Relation(
                current.name, current.schema + (target_attr,), new_tuples
            )
        return current

    def expand_tuple(
        self,
        binding: dict[str, object],
        target: VarSet | None = None,
        counter: WorkCounter | None = None,
    ) -> dict[str, object] | None:
        """Expand a single tuple (as an attr->value dict) to the closure of
        its attributes.  Returns None when a guard lookup misses (dangling)
        or a guarded fd maps the tuple to several images inconsistently.
        """
        bound = varset(binding)
        goal = target if target is not None else self.fds.closure(bound)
        while bound != goal:
            progressed = False
            for fd in self.applicable_fds(bound):
                missing = (fd.rhs - bound) & goal
                if not missing:
                    continue
                guard = self.guard_relation(fd)
                if guard is not None:
                    key_binding = {a: binding[a] for a in fd.lhs}
                    matches = guard.matching(key_binding)
                    if counter is not None:
                        counter.add()
                    if not matches:
                        return None
                    reference = matches[0]
                    for attr in missing:
                        pos = guard.positions((attr,))[0]
                        value = reference[pos]
                        # All matches must agree (the guard satisfies the fd).
                        binding[attr] = value
                else:
                    for attr in sorted(missing):
                        udf = self.udfs.resolve(bound, attr)
                        if udf is None:
                            raise ExpansionError(
                                f"no guard and no UDF for {fd!r} -> {attr!r}"
                            )
                        if counter is not None:
                            counter.add()
                        binding[attr] = self.udfs.apply(udf, binding)
                bound = varset(binding)
                progressed = True
                break
            if not progressed:
                raise ExpansionError(
                    f"cannot expand tuple over {sorted(bound)} to {sorted(goal)}"
                )
        return binding

    def udf_consistent(self, row: Mapping[str, object]) -> bool:
        """Does ``row`` satisfy every UDF-defined fd it fully covers?

        A tuple is a query answer only when t[out] = f(t[inputs]) for every
        UDF f with inputs ∪ {out} ⊆ attrs(t).  All algorithms apply this
        in their final filter, making the output semantics identical across
        engines even for partial (lookup-table) UDFs.
        """
        for udf in self.udfs:
            if udf.output in row and all(a in row for a in udf.inputs):
                if self.udfs.apply(udf, row) != row[udf.output]:
                    return False
        return True

    # ------------------------------------------------------------------
    # Statistics for CLLP constraints
    # ------------------------------------------------------------------
    def observed_degree_bound(
        self, relation_name: str, group: Sequence[str], target: Sequence[str]
    ) -> int:
        """max over group-values of #distinct target-values — an honest
        n_{Y|X} witness from the data."""
        rel = self.relations[relation_name]
        index = rel.index_on(tuple(group))
        target_positions = rel.positions(tuple(target))
        worst = 0
        for bucket in index.values():
            distinct = {tuple(t[p] for p in target_positions) for t in bucket}
            worst = max(worst, len(distinct))
        return worst
