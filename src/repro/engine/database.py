"""Database instances and the expansion procedure (Sec. 2).

A :class:`Database` bundles the relation instances, the FD set with its
guards, the UDF registry for unguarded fds, and optional declared degree
bounds.  The *expansion* of a relation fills in functionally-determined
attributes: guarded fds by joining with a projection of the guard relation,
unguarded fds by evaluating the UDF — in time Õ(N), as the paper requires.

Expansion runs through compiled positional plans
(:mod:`repro.engine.expansion_plan`): for each (source schema, target)
pair the FD-application order is derived symbolically once, guard lookups
become precomputed functional maps, and per-tuple execution touches no
dicts.  ``repro.engine.reference`` retains the naive path; the two are
differentially tested for identical outputs *and* identical work counts.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

from repro import config
from repro.engine import frontier
from repro.engine.dictionary import Codec
from repro.engine.expansion_plan import (
    GUARD,
    GUARD_DENSE,
    UDF as UDF_STEP,
    ExpansionPlan,
    RelationExpansionPlan,
    build_guard_lookup,
    build_multi_guard_lookup,
    densify_lookup,
    tuple_getter,
)
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.errors import ExpansionError  # noqa: F401  (historical home)
from repro.fds.fd import FD, FDSet, VarSet
from repro.fds.udf import UDF, UDFRegistry

#: Dictionary encoding is the default data plane; ``REPRO_ENCODE=0``
#: reverts every new Database to the decoded (PR3) kernel.
_ENCODE_DEFAULT = config.get("REPRO_ENCODE")

#: LRU cap shared by the per-database compiled-kernel caches (tuple plans,
#: relation plans, guard lookups, udf filters).  Every entry memoizes a
#: pure compilation, so eviction only costs a recompile — the cap exists
#: for long-uptime serving, where a tenant's query mix churns through far
#: more (schema, target, plane) combinations than any one benchmark run.
PLAN_CACHE_MAX = config.get("REPRO_PLAN_CACHE_MAX")


def _lru_get(cache: OrderedDict, key):
    hit = cache.get(key)
    if hit is not None:
        cache.move_to_end(key)
    return hit


def _lru_put(cache: OrderedDict, key, value) -> None:
    cache[key] = value
    while len(cache) > PLAN_CACHE_MAX:
        cache.popitem(last=False)


class Database:
    """Relations + FDs + UDFs + declared degree bounds for one query run.

    When ``encode`` is on (the default), the database owns a
    :class:`~repro.engine.dictionary.Codec` and every stored relation gets
    a dictionary-encoded twin at :meth:`add` time.  The engines execute on
    the encoded plane — :meth:`runtime` relations, ``encoded=True`` plans
    and filters — and decode only at the final result boundary
    (:meth:`final_filter` / their terminal output relation).  The public
    per-tuple/per-relation APIs (:meth:`expand_tuple`,
    :meth:`expand_relation`) keep decoded-value semantics either way:
    with a codec they encode on entry and decode on exit, charging the
    work counter bit-identically (encoding is a bijection).
    """

    def __init__(
        self,
        relations: Iterable[Relation] = (),
        fds: FDSet | None = None,
        udfs: Iterable[UDF] = (),
        degree_bounds: Mapping[tuple[VarSet, str], int] | None = None,
        encode: bool | None = None,
        codec: Codec | None = None,
    ):
        if codec is not None:
            # A caller-supplied codec (the serving layer shares one per
            # tenant across that tenant's databases) implies the encoded
            # plane.
            if encode is False:
                raise ValueError("codec= given but encode=False requested")
            self.codec: Codec | None = codec
        else:
            self.codec = (
                Codec()
                if (encode if encode is not None else _ENCODE_DEFAULT)
                else None
            )
        self.relations: dict[str, Relation] = {}
        self._runtime: dict[str, Relation] = {}
        # Compiled-kernel caches (LRU, capped at PLAN_CACHE_MAX).  Keys
        # incorporate len(fds)/len(udfs) so post-hoc fd/udf registration
        # cannot serve stale plans; adding a relation clears everything
        # (it may become a better guard).
        self._tuple_plans: OrderedDict[tuple, ExpansionPlan] = OrderedDict()
        self._relation_plans: OrderedDict[tuple, RelationExpansionPlan] = (
            OrderedDict()
        )
        self._guard_lookups: OrderedDict[tuple, dict] = OrderedDict()
        # Keyed on (schema, #udfs, plane) — the salt covers post-hoc
        # registration.
        self._udf_filters: OrderedDict[tuple, tuple] = OrderedDict()
        for rel in relations:
            self.add(rel)
        self.fds: FDSet = fds if fds is not None else FDSet()
        self.udfs = UDFRegistry(udfs)
        for udf in self.udfs:
            # UDFs always contribute their fd (possibly already declared).
            if not self.fds.implies(udf.fd):
                self.fds.add(udf.fd)
        # Declared max-degree bounds: (X, y) -> max #distinct y per X-value.
        self.degree_bounds: dict[tuple[VarSet, str], int] = dict(
            degree_bounds or {}
        )

    # ------------------------------------------------------------------
    def add(self, relation: Relation) -> None:
        if relation.name in self.relations:
            raise ValueError(f"duplicate relation {relation.name!r}")
        self.relations[relation.name] = relation
        if self.codec is not None:
            # Encode at construction time; interning only appends, so the
            # codes of previously-added relations are untouched (their
            # twins, indexes and guard tables stay valid — only the plan
            # caches below are invalidated, because the new relation may
            # become a better guard).
            self._runtime[relation.name] = self.codec.encode_relation(relation)
        self._invalidate_plans()

    def _invalidate_plans(self) -> None:
        self._tuple_plans.clear()
        self._relation_plans.clear()
        self._guard_lookups.clear()
        self._udf_filters.clear()

    def rebuild_codec(self, codec: Codec | None = None) -> Codec:
        """Swap in a fresh (or caller-shared) codec and re-encode every
        stored relation through it.

        The dictionaries' append-only/stable-code contract means cold
        entries — values interned by long-gone queries' mid-run UDF
        evaluations — can never be evicted *in place*.  A long-uptime
        service instead compacts wholesale: rebuild from the live stored
        relations, dropping everything else.  All compiled plans and the
        runtime twins are invalidated (they embed the old codes); results
        are unchanged because encoding is a bijection per codec.

        Must not run concurrently with queries on this database — the
        serving layer compacts only when the tenant has no query in
        flight.
        """
        if self.codec is None:
            raise ValueError("rebuild_codec on a codec-less database")
        self.codec = codec if codec is not None else Codec()
        self._runtime = {
            name: self.codec.encode_relation(rel)
            for name, rel in self.relations.items()
        }
        self._invalidate_plans()
        return self.codec

    @property
    def encoded(self) -> bool:
        """Is the dictionary-encoded plane active for this database?"""
        return self.codec is not None

    def runtime(self, name: str) -> Relation:
        """The stored relation on the active execution plane: the encoded
        twin when a codec is installed, the raw relation otherwise."""
        if self.codec is None:
            return self.relations[name]
        return self._runtime[name]

    def decode_tuples(self, schema: Sequence[str], rows) -> list[tuple]:
        """Decode plane → value tuples (the engines' result boundary)."""
        return self.codec.decode_tuples(tuple(schema), rows)

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def sizes(self) -> dict[str, int]:
        return {name: len(rel) for name, rel in self.relations.items()}

    def log_sizes(self) -> dict[str, float]:
        return {
            name: (math.log2(len(rel)) if len(rel) > 0 else 0.0)
            for name, rel in self.relations.items()
        }

    @property
    def total_size(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    # ------------------------------------------------------------------
    # Guard resolution
    # ------------------------------------------------------------------
    def guard_relation(self, fd: FD) -> Relation | None:
        """A stored relation containing lhs ∪ rhs — the fd's guard."""
        needed = fd.lhs | fd.rhs
        for rel in self.relations.values():
            if needed <= rel.varset:
                return rel
        return None

    def applicable_fds(self, bound: VarSet) -> list[FD]:
        """Non-trivial fds whose lhs is within ``bound``."""
        return [
            fd for fd in self.fds if fd.lhs <= bound and not fd.rhs <= bound
        ]

    # ------------------------------------------------------------------
    # Compiled expansion plans (the positional kernel)
    # ------------------------------------------------------------------
    def _plan_salt(self) -> tuple[int, int]:
        return (len(self.fds), len(self.udfs))

    def _guard_lookup(
        self,
        guard: Relation,
        key_attrs: tuple[str, ...],
        value_attrs: tuple[str, ...],
        multi: bool,
        encoded: bool,
    ) -> dict:
        key = (guard.name, key_attrs, value_attrs, multi, encoded)
        cached = _lru_get(self._guard_lookups, key)
        if cached is None:
            build = build_multi_guard_lookup if multi else build_guard_lookup
            source = self.runtime(guard.name) if encoded else guard
            cached = build(source, key_attrs, value_attrs)
            _lru_put(self._guard_lookups, key, cached)
        return cached

    def _encoded_udf_fn(self, udf: UDF):
        """``udf.fn`` lifted to the encoded plane: decode the argument
        codes lazily (a list index per argument — only paid when the
        genuinely opaque predicate actually runs), apply, intern the
        result into the output attribute's dictionary."""
        fn = udf.fn
        out_encode = self.codec.dictionary(udf.output).encode
        tables = tuple(self.codec.dictionary(a).values for a in udf.inputs)
        if not tables:
            return lambda: out_encode(fn())
        if len(tables) == 1:
            (t0,) = tables
            return lambda a: out_encode(fn(t0[a]))
        if len(tables) == 2:
            t0, t1 = tables
            return lambda a, b: out_encode(fn(t0[a], t1[b]))
        return lambda *codes: out_encode(
            fn(*(t[c] for t, c in zip(tables, codes)))
        )

    def _compile_steps(
        self,
        source_schema: tuple[str, ...],
        goal: VarSet,
        relation_mode: bool,
        encoded: bool = False,
    ) -> tuple[tuple[tuple, ...], tuple[str, ...]]:
        """The symbolic replay shared by tuple and relation plans.

        At each iteration the *first* applicable fd with goal progress is
        applied (guarded fds become lookup steps, unguarded ones UDF
        steps) until the bound attributes reach ``goal``.  The two plan
        variants differ only in three pinned rules, each mirroring its
        naive reference formulation exactly:

        * **missing attrs** — tuple mode targets ``(rhs - bound) & goal``
          (a partial ``target`` stops early); relation mode always chases
          the full ``rhs - bound``.
        * **guard key** — tuple mode keys on the fd's lhs in guard-schema
          order with a single-image lookup; relation mode keys on every
          already-bound attribute of lhs ∪ rhs in layout order with a
          multi-image lookup (join set semantics).
        * **UDF resolution scope** — tuple mode resolves every missing
          attribute against the *pre-fd* bound set (as
          ``reference_expand_tuple`` does); relation mode grows the bound
          set per attribute (as ``reference_expand_relation`` does).

        Returns ``(steps, out_layout)``.
        """
        bound = frozenset(source_schema)
        layout = list(source_schema)
        pos = {a: i for i, a in enumerate(layout)}
        steps: list[tuple] = []
        while bound != goal:
            progressed = False
            for fd in self.applicable_fds(bound):
                if relation_mode:
                    missing = fd.rhs - bound
                else:
                    missing = (fd.rhs - bound) & goal
                if not missing:
                    continue
                guard = self.guard_relation(fd)
                if guard is not None:
                    if relation_mode:
                        attrs = tuple(sorted(fd.lhs | fd.rhs))
                        attr_set = frozenset(attrs)
                        key_attrs = tuple(a for a in layout if a in attr_set)
                        new_attrs = tuple(a for a in attrs if a not in bound)
                    else:
                        # Key attrs in guard-schema order: reuses the same
                        # cached guard index the naive lookup would build.
                        key_attrs = tuple(
                            a for a in guard.schema if a in fd.lhs
                        )
                        new_attrs = tuple(sorted(missing))
                    lookup = self._guard_lookup(
                        guard,
                        key_attrs,
                        new_attrs,
                        multi=relation_mode,
                        encoded=encoded,
                    )
                    step = (GUARD, tuple(pos[a] for a in key_attrs), lookup)
                    if (
                        encoded
                        and not relation_mode
                        and len(key_attrs) == 1
                    ):
                        # Single-attribute key over a dense code domain:
                        # the functional lookup flattens to a list index.
                        table = densify_lookup(
                            lookup, len(self.codec.dictionary(key_attrs[0]))
                        )
                        if table is not None:
                            step = (GUARD_DENSE, step[1], table)
                    steps.append(step)
                    for a in new_attrs:
                        pos[a] = len(layout)
                        layout.append(a)
                    bound = bound | frozenset(new_attrs)
                else:
                    for attr in sorted(missing):
                        udf = self.udfs.resolve(bound, attr)
                        if udf is None:
                            raise ExpansionError(
                                f"no guard and no UDF for {fd!r} -> {attr!r}"
                            )
                        steps.append(
                            (
                                UDF_STEP,
                                tuple(pos[a] for a in udf.inputs),
                                self._encoded_udf_fn(udf) if encoded
                                else udf.fn,
                            )
                        )
                        pos[attr] = len(layout)
                        layout.append(attr)
                        if relation_mode:
                            bound = bound | {attr}
                    if not relation_mode:
                        bound = bound | missing
                progressed = True
                break
            if not progressed:
                raise ExpansionError(
                    f"cannot expand {tuple(source_schema)} over "
                    f"{sorted(bound)} to {sorted(goal)}: missing guard/UDF"
                )
        return tuple(steps), tuple(layout)

    def expansion_plan(
        self,
        source_schema: Sequence[str],
        target: VarSet | None = None,
        encoded: bool = False,
    ) -> ExpansionPlan:
        """Compile (and cache) the per-tuple expansion plan for a schema,
        towards ``target`` (default: the closure of the source schema).

        ``encoded=True`` compiles for the dictionary-encoded plane (code
        inputs, code-keyed guard lookups / dense tables, lazily-decoding
        UDF steps); the default stays on decoded values, as the public
        callers and the pinning tests expect.
        """
        source_schema = tuple(source_schema)
        if encoded and self.codec is None:
            raise ValueError("encoded plan requested on a codec-less database")
        key = (source_schema, target, encoded, self._plan_salt())
        cached = _lru_get(self._tuple_plans, key)
        if cached is not None:
            return cached
        goal = (
            target
            if target is not None
            else self.fds.closure(frozenset(source_schema))
        )
        steps, layout = self._compile_steps(
            source_schema, goal, relation_mode=False, encoded=encoded
        )
        plan = ExpansionPlan(source_schema, layout, steps, encoded=encoded)
        _lru_put(self._tuple_plans, key, plan)
        return plan

    def run_plan(
        self,
        source_schema: Sequence[str],
        vars_seq: Sequence[str],
        encoded: bool = False,
    ) -> ExpansionPlan | None:
        """Compile (and cache) the *segment* plan binding ``vars_seq`` in
        order from ``source_schema`` — the concatenation of the per-depth
        single-step plans the generic join's determined run would execute
        one at a time.

        Returns ``None`` unless every per-depth plan is exactly one step
        appending exactly its variable: the segment must replay the same
        guard/UDF choices (first-applicable-fd against each depth's own
        narrow goal), so it is built by concatenation, never by
        recompiling toward a union goal — that keeps step counts, fd
        application order, and therefore ``tuples_touched`` bit-identical
        to the per-depth execution.  The fused pipeline then collapses
        the whole dense chain into one gather (see
        :mod:`~repro.engine.fused`).
        """
        source_schema = tuple(source_schema)
        vars_seq = tuple(vars_seq)
        key = ("run", source_schema, vars_seq, encoded, self._plan_salt())
        cached = _lru_get(self._tuple_plans, key)
        if cached is not None:
            return cached if isinstance(cached, ExpansionPlan) else None
        schema = source_schema
        steps: list = []
        plan: ExpansionPlan | None = None
        for var in vars_seq:
            sub = self.expansion_plan(
                schema, frozenset(schema) | {var}, encoded=encoded
            )
            if len(sub.steps) != 1 or sub.out_schema != schema + (var,):
                plan = None
                break
            steps.append(sub.steps[0])
            schema = sub.out_schema
        else:
            plan = ExpansionPlan(
                source_schema, schema, tuple(steps), encoded=encoded
            )
        # Negative results cache too (a non-ExpansionPlan marker): the
        # generic join asks once per (frontier schema, run) per query.
        _lru_put(self._tuple_plans, key, plan if plan is not None else key)
        return plan

    def relation_plan(
        self, source_schema: Sequence[str], encoded: bool = False
    ) -> RelationExpansionPlan:
        """Compile (and cache) the whole-relation expansion plan ``R → R⁺``.

        Guard steps replicate the join with ``Π_{X∪Y}(guard)``: the key is
        every already-bound attribute of lhs ∪ rhs (in schema order) and
        fd-violating keys contribute one row per distinct image.
        """
        source_schema = tuple(source_schema)
        if encoded and self.codec is None:
            raise ValueError("encoded plan requested on a codec-less database")
        key = (source_schema, encoded, self._plan_salt())
        cached = _lru_get(self._relation_plans, key)
        if cached is not None:
            return cached
        goal = self.fds.closure(frozenset(source_schema))
        steps, layout = self._compile_steps(
            source_schema, goal, relation_mode=True, encoded=encoded
        )
        plan = RelationExpansionPlan(
            source_schema, layout, steps, encoded=encoded
        )
        _lru_put(self._relation_plans, key, plan)
        return plan

    def expand_rows(
        self,
        rows: list[tuple],
        source_schema: Sequence[str],
        target: VarSet,
        out_schema: Sequence[str],
        counter: WorkCounter | None = None,
        encoded: bool = False,
    ) -> list[tuple]:
        """Joined rows → expanded-and-reordered output tuples.

        The shared epilogue of SMA's SM-join and CSMA's join rules: push
        ``rows`` (laid out over ``source_schema``) through the compiled
        expansion plan toward ``target``, drop dangling rows, and reorder
        each survivor onto ``out_schema``.  A step-less plan (already
        closed schema) short-circuits to a C-level reorder — or a
        pass-through when the reorder is the identity.
        """
        if not rows:
            return []
        source_schema = tuple(source_schema)
        out_schema = tuple(out_schema)
        plan = self.expansion_plan(source_schema, target, encoded=encoded)
        out_positions = plan.positions(out_schema)
        if not plan.steps:
            if (
                len(out_schema) == len(plan.out_schema)
                and out_positions == tuple(range(len(out_schema)))
            ):
                return rows
            return list(map(tuple_getter(out_positions), rows))
        survivors = self._expand_rows_block(plan, rows, out_positions, counter)
        if survivors is not None:
            return frontier.block_rows(survivors)
        out_key = tuple_getter(out_positions)
        return [
            out_key(expanded)
            for expanded in plan.execute_batch(rows, counter)
            if expanded is not None
        ]

    def _expand_rows_block(self, plan, rows, out_positions, counter):
        """The ndarray fast path shared by :meth:`expand_rows` and
        :meth:`expand_rows_relation`: rows → plan → surviving rows as a
        reordered int64 block (``None`` when the backend is not engaged).
        """
        if not (plan.encoded and frontier.ndarray_engaged(len(rows))):
            return None
        block = frontier.rows_to_block(rows, len(plan.source_schema))
        if block is None:
            return None
        out, mask = plan.execute_batch_ndarray(block, counter)
        if mask is not None:
            out = out[mask]
        return out[:, list(out_positions)]

    def expand_rows_relation(
        self,
        name: str,
        rows: list[tuple],
        source_schema: Sequence[str],
        target: VarSet,
        out_schema: Sequence[str],
        counter: WorkCounter | None = None,
        encoded: bool = False,
    ) -> Relation:
        """:meth:`expand_rows` materialized straight into a relation.

        SMA's SM-join and CSMA's join rules build their T(·) tables here:
        on the ndarray path the surviving frontier block is handed to
        :meth:`Relation.from_columns` column-wise — the relation starts
        life with its column store and all-int verdict installed, so the
        next join/index/batch over it skips the transpose and the int
        scan.  Output rows are distinct by the callers' provenance
        argument (injective join + expansion), exactly as before.
        """
        source_schema = tuple(source_schema)
        out_schema = tuple(out_schema)
        if rows:
            plan = self.expansion_plan(source_schema, target, encoded=encoded)
            if plan.steps:
                survivors = self._expand_rows_block(
                    plan, rows, plan.positions(out_schema), counter
                )
                if survivors is not None:
                    return Relation.from_columns(
                        name,
                        out_schema,
                        [column.tolist() for column in survivors.T],
                        distinct=True,
                        all_int=True,
                    )
        out_tuples = self.expand_rows(
            rows, source_schema, target, out_schema,
            counter=counter, encoded=encoded,
        )
        return Relation(name, out_schema, out_tuples, distinct=True)

    def expand_block_relation(
        self,
        name: str,
        block,
        source_schema: Sequence[str],
        target: VarSet,
        out_schema: Sequence[str],
        counter: WorkCounter | None = None,
    ) -> Relation:
        """:meth:`expand_rows_relation` for callers already holding an
        int64 frontier block (encoded plane only): the block runs the
        ndarray backend (or just reorders, when the schema is already
        closed — charging nothing, like the step-less row path) and
        materializes column-wise.  Output distinctness is the caller's
        provenance argument, as everywhere.
        """
        source_schema = tuple(source_schema)
        out_schema = tuple(out_schema)
        plan = self.expansion_plan(source_schema, target, encoded=True)
        out_positions = list(plan.positions(out_schema))
        if plan.steps:
            out, mask = plan.execute_batch_ndarray(block, counter)
            if mask is not None:
                out = out[mask]
            out = out[:, out_positions]
        elif out_positions == list(range(block.shape[1])):
            out = block
        else:
            out = block[:, out_positions]
        return Relation.from_columns(
            name,
            out_schema,
            [column.tolist() for column in out.T],
            distinct=True,
            all_int=True,
        )

    # ------------------------------------------------------------------
    # The expansion procedure (Sec. 2)
    # ------------------------------------------------------------------
    def expand_relation(
        self,
        relation: Relation,
        counter: WorkCounter | None = None,
    ) -> Relation:
        """R⁺: extend ``relation`` to the closure of its attributes.

        Repeatedly applies fds X -> y with X ⊆ current attributes: guarded
        fds join with Π_{X∪y}(guard) (a function on X, so the size does not
        grow; tuples with no guard partner are dangling and dropped);
        unguarded fds evaluate their UDF per tuple.
        """
        plan = self.relation_plan(relation.schema, encoded=self.encoded)
        if not plan.steps:
            return relation
        source = relation.tuples
        if self.codec is not None:
            source = self.codec.encode_relation(relation).tuples
        tuples = plan.execute_all(source, counter)
        if self.codec is not None:
            tuples = self.codec.decode_tuples(plan.out_schema, tuples)
        # Guard steps map each distinct tuple to distinct images and UDF
        # steps are injective, so the output is distinct by provenance.
        return Relation(relation.name, plan.out_schema, tuples, distinct=True)

    def expand_runtime(
        self, name: str, counter: WorkCounter | None = None
    ) -> Relation:
        """R⁺ of a *stored* relation on the active plane (no decode).

        The engines' entry point: with a codec the result stays encoded —
        its tuples feed indexes, guard probes and plan batches directly,
        and only each engine's terminal output decodes.  Work counts are
        bit-identical to :meth:`expand_relation` (encoding is a bijection).
        """
        rel = self.runtime(name)
        plan = self.relation_plan(rel.schema, encoded=self.encoded)
        if not plan.steps:
            return rel
        tuples = plan.execute_all(rel.tuples, counter)
        return Relation(rel.name, plan.out_schema, tuples, distinct=True)

    def expand_tuple(
        self,
        binding: Mapping[str, object],
        target: VarSet | None = None,
        counter: WorkCounter | None = None,
    ) -> dict[str, object] | None:
        """Expand a single tuple (as an attr->value dict) to the closure of
        its attributes.  Returns None when a guard lookup misses (dangling)
        or a guarded fd maps the tuple to several images inconsistently
        (checked once per guard key when the lookup is compiled).

        Pure: the caller's ``binding`` is never mutated.
        """
        schema = tuple(binding)
        plan = self.expansion_plan(schema, target, encoded=self.encoded)
        row = tuple(binding.values())
        if self.codec is not None:
            row = self.codec.encode_row(schema, row)
        out = plan.execute(row, counter)
        if out is None:
            return None
        if self.codec is not None:
            out = self.codec.decode_row(plan.out_schema, out)
        return dict(zip(plan.out_schema, out))

    # ------------------------------------------------------------------
    # UDF-consistency filtering
    # ------------------------------------------------------------------
    def _udf_check_triples(self, schema: tuple[str, ...]) -> list[tuple]:
        """``(fn, input_positions, output_position)`` per UDF fully covered
        by ``schema``, in registration order (uncached helper for
        :meth:`udf_filter`, which owns the cache)."""
        positions = {a: i for i, a in enumerate(schema)}
        checks = []
        for udf in self.udfs:
            if udf.output in positions and all(
                a in positions for a in udf.inputs
            ):
                checks.append(
                    (
                        udf.fn,
                        tuple(positions[a] for a in udf.inputs),
                        positions[udf.output],
                    )
                )
        return checks

    def udf_filter(self, schema: Sequence[str], encoded: bool = False):
        """Compiled positional predicate ``t -> bool`` for UDF consistency.

        Returns ``None`` when no UDF is fully covered by ``schema`` (so
        callers can skip the filter entirely); otherwise a closure testing
        every covered UDF in registration order with unrolled argument
        extraction.  With ``encoded=True`` the generated clauses decode
        each cell through its attribute's dictionary (a list index) before
        applying the opaque predicate — values are compared, never codes.
        """
        schema = tuple(schema)
        key = (schema, len(self.udfs), encoded)
        cached = _lru_get(self._udf_filters, key)
        if cached is None:
            checks = self._udf_check_triples(schema)
            if not checks:
                cached = (None,)
            else:
                # Flatten the conjunction into one generated function so a
                # row check costs a single call frame plus the UDF calls.
                namespace: dict[str, object] = {}
                clauses = []
                for i, (fn, input_positions, output_position) in enumerate(checks):
                    namespace[f"fn{i}"] = fn
                    if encoded:
                        for k, p in enumerate(input_positions):
                            namespace[f"d{i}_{k}"] = self.codec.dictionary(
                                schema[p]
                            ).values
                        namespace[f"o{i}"] = self.codec.dictionary(
                            schema[output_position]
                        ).values
                        args = ", ".join(
                            f"d{i}_{k}[t[{p}]]"
                            for k, p in enumerate(input_positions)
                        )
                        clauses.append(
                            f"fn{i}({args}) == o{i}[t[{output_position}]]"
                        )
                    else:
                        args = ", ".join(f"t[{p}]" for p in input_positions)
                        clauses.append(
                            f"fn{i}({args}) == t[{output_position}]"
                        )
                source = (
                    "def consistent(t):\n    return " + " and ".join(clauses)
                )
                exec(source, namespace)
                cached = (namespace["consistent"],)
            self._udf_filters[key] = cached
        return cached[0]

    def final_filter(
        self,
        top_attrs: tuple[str, ...],
        candidates: Iterable[tuple],
        input_names: Iterable[str],
        counter: WorkCounter | None = None,
        encoded: bool = False,
    ) -> list[tuple]:
        """Exact final filter: keep candidate tuples (over ``top_attrs``)
        present in every named input relation and UDF-consistent.

        Positional form of the per-algorithm "filter against the inputs"
        epilogue: membership via each input's full-schema hash index, UDF
        consistency via the compiled checks.  One work-counter touch per
        candidate, as in the naive row-dict filter.

        ``encoded=True`` is the engines' decode boundary: candidates are
        code tuples, membership probes hit the encoded twins' indexes, and
        the surviving tuples are decoded back to values on return.  Under
        a forced-on block backend the membership conjunction runs
        vectorized instead: the candidates become one int64 block and
        each input contributes a sorted-key-block ``isin`` pass — same
        survivors, in the same order, decoded at the same single
        boundary.  (Like every tuples→block roundtrip, this is at best
        neutral against the generated listcomp's C-level set probes, so
        ``auto`` keeps the listcomp; the forced mode keeps the path
        under differential coverage.)
        """
        input_names = list(input_names)
        consistent = self.udf_filter(top_attrs, encoded=encoded)
        candidates = list(candidates)
        if counter is not None:
            counter.add(len(candidates))
        if (
            encoded
            and top_attrs
            and frontier.ndarray_roundtrip_engaged(len(candidates))
        ):
            block = frontier.rows_to_block(candidates, len(top_attrs))
            if block is not None:
                keep = None
                for name in input_names:
                    rel = self.runtime(name)
                    positions = tuple(
                        top_attrs.index(a) for a in rel.schema
                    )
                    hit = frontier.block_isin(
                        block, positions, rel.key_block(rel.schema)
                    )
                    keep = hit if keep is None else keep & hit
                rows = (block if keep is None else block[keep]).tolist()
                if consistent is not None:
                    rows = [t for t in rows if consistent(t)]
                return self.codec.decode_tuples(top_attrs, rows)
        membership_checks = []
        for name in input_names:
            rel = self.runtime(name) if encoded else self.relations[name]
            membership_checks.append(
                (
                    rel.tuple_set(),
                    tuple_getter(top_attrs.index(a) for a in rel.schema),
                )
            )
        # Flatten the membership conjunction into one generated listcomp:
        # per candidate it costs the key extractions (C itemgetters) and
        # set probes, no per-check loop frames.  Semantically identical to
        # the short-circuiting check loop.
        namespace: dict[str, object] = {}
        clauses = []
        for i, (members, key_of) in enumerate(membership_checks):
            namespace[f"m{i}"], namespace[f"k{i}"] = members, key_of
            clauses.append(f"k{i}(t) in m{i}")
        if consistent is not None:
            namespace["consistent"] = consistent
            clauses.append("consistent(t)")
        if clauses:
            source = (
                "def keep(ts):\n    return [t for t in ts if "
                + " and ".join(clauses)
                + "]"
            )
            exec(source, namespace)
            result = namespace["keep"](candidates)
        else:
            result = candidates
        if encoded:
            return self.codec.decode_tuples(top_attrs, result)
        return result

    def udf_consistent(self, row: Mapping[str, object]) -> bool:
        """Does ``row`` satisfy every UDF-defined fd it fully covers?

        A tuple is a query answer only when t[out] = f(t[inputs]) for every
        UDF f with inputs ∪ {out} ⊆ attrs(t).  All algorithms apply this
        in their final filter, making the output semantics identical across
        engines even for partial (lookup-table) UDFs.
        """
        consistent = self.udf_filter(tuple(row))
        if consistent is None:
            return True
        return consistent(tuple(row.values()))

    # ------------------------------------------------------------------
    # Statistics for CLLP constraints
    # ------------------------------------------------------------------
    def observed_degree_bound(
        self, relation_name: str, group: Sequence[str], target: Sequence[str]
    ) -> int:
        """max over group-values of #distinct target-values — an honest
        n_{Y|X} witness from the data."""
        rel = self.relations[relation_name]
        index = rel.index_on(tuple(group))
        target_positions = rel.positions(tuple(target))
        worst = 0
        for bucket in index.values():
            distinct = {tuple(t[p] for p in target_positions) for t in bucket}
            worst = max(worst, len(distinct))
        return worst
