"""In-memory relational engine: relations, operators, databases, baselines."""

from repro.engine.relation import Relation
from repro.engine.database import Database
from repro.engine.dictionary import Codec, Dictionary
from repro.engine.expansion_plan import ExpansionPlan, RelationExpansionPlan
from repro.engine.ops import natural_join, semijoin, project, select_eq, union_all
from repro.engine.generic_join import generic_join, GenericJoinStats
from repro.engine.binary_join import binary_join_plan
from repro.engine.leapfrog import leapfrog_triejoin, TrieIndex
from repro.engine.statistics import (
    derive_degree_constraints,
    data_aware_bound_log2,
    degree_profiles,
)

__all__ = [
    "Relation",
    "Database",
    "Codec",
    "Dictionary",
    "ExpansionPlan",
    "RelationExpansionPlan",
    "natural_join",
    "semijoin",
    "project",
    "select_eq",
    "union_all",
    "generic_join",
    "GenericJoinStats",
    "binary_join_plan",
    "leapfrog_triejoin",
    "TrieIndex",
    "derive_degree_constraints",
    "data_aware_bound_log2",
    "degree_profiles",
]
