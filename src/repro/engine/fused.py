"""Fused plan pipelines — compile the query, not the tuple.

The ndarray backend (PR 5) vectorized each plan *step*; E17 showed the
remaining cost is what happens **between** steps: per-step Python
dispatch over ``_ndarray_specs()``, an intermediate mask AND plus
``count_nonzero`` per step, and a dense-chain frontier that is gathered
k times when one composed gather would do.  This module removes all
three, in the order the worst-case-optimal-join literature suggests —
first compose, then compile:

* **Gather-table composition** (:func:`compose_fused_specs`): a run of
  consecutive ``GUARD_DENSE`` steps whose key column is the run's entry
  column or a column the run itself appended collapses into one flat
  table over the entry attribute's code domain.  Per entry code the
  composed table stores the full appended image row *and* ``surv`` — how
  many of the run's steps that entry survives before dangling (capped at
  the run length).  One gather then replaces k gathers, one ``sv == k``
  compare replaces k mask ANDs, and ``min(sv+1, k)`` *is* the exact
  per-row charge the unfused loop would have accumulated (each original
  step still charges the rows alive when it runs — bit-identical
  ``tuples_touched``).  Out-of-range codes (values interned after the
  plan compiled) and fd-:data:`~repro.engine.expansion_plan.INCONSISTENT`
  entries dangle exactly as before: both compose to ``surv`` short of
  the run length.  Dead rows keep gathering the clipped slot-0 chain, so
  even the never-read cells of the output block are bit-identical to the
  step loop (the shard scatter-merge determinism contract).
* **Generated pipelines** (:func:`compile_pipeline`): one exec-compiled
  function per plan — mirroring the per-tuple executor codegen in
  :mod:`~repro.engine.expansion_plan` — that runs the whole fused spec
  list with no per-step dispatch, no dead-branch checks (mask-is-None
  and empty-table branches resolve at *codegen* time), and mask
  short-circuiting baked in.  ``execute_batch_ndarray_local`` becomes a
  thin call into the cached pipeline, so the shard backend and every
  block seam (chain stage-2/3, SMA/CSMA SM-joins, generic BFS, LFTJ)
  inherit fusion for free.
* **An optional compiled-kernel seam**: the three hot primitives —
  :func:`dense_probe` (dense gather+mask), :func:`sorted_lookup`
  (searchsorted key join), :func:`compact` (mask compaction) — dispatch
  to numba-jitted kernels under ``REPRO_FUSE_NATIVE`` when numba is
  importable (an optional extra in ``setup.py``, import-guarded exactly
  like scipy), and fall back to the numpy expressions bit-identically.

Knobs follow the house pattern:

* ``REPRO_FUSE`` — ``auto`` (default: fuse whenever the block backend
  runs; fusion is a strict constant-factor win so auto means on), ``on``
  (additionally *forces* the block backend everywhere it can run, like
  ``REPRO_SHARD=on``), ``off`` (the per-step spec loop of PR 5).
* ``REPRO_FUSE_NATIVE`` — ``auto`` (numba if importable), ``on`` (same;
  the no-numba degradation to numpy stays graceful and is proved in
  CI), ``off`` (pure numpy).
* ``REPRO_PROFILE_STEPS=1`` — per-spec-kind wall time and row counts
  accumulated during block execution (:func:`profile_snapshot`),
  surfaced by ``bench_e17_large_frontier.py``.

The differential suite (``tests/differential.py``) pins fused-on vs
fused-off to bit-identical work profiles and order-independent result
digests across all five engines, shard on and off; CI adds a tier-1 run
under ``REPRO_FUSE=on`` and an E17 fused-on/off cross gate.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter

from repro import config
from repro.errors import classify

try:  # pragma: no cover - the image bakes numpy in
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

_ON = config.ON_VALUES
_OFF = config.OFF_VALUES

#: ``auto`` (fuse whenever blocks run), ``on`` (fuse + force blocks) or
#: ``off`` (the per-step spec loop).  Mutable module state so the
#: differential harness can force both modes.
FUSE_MODE = config.get("REPRO_FUSE")

#: ``auto``/``on`` (numba kernels when importable), ``off`` (numpy only).
FUSE_NATIVE_MODE = config.get("REPRO_FUSE_NATIVE")

#: Per-context override for the serving layer's degradation chain: one
#: query's fallback stage runs with fusion off without touching the
#: process-global knob other worker threads are using.
_MODE_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_fuse_mode_override", default=None
)


def active_mode() -> str:
    """The fuse mode in force for the current context."""
    override = _MODE_OVERRIDE.get()
    return FUSE_MODE if override is None else override


@contextmanager
def mode_override(mode: str):
    """Force ``mode`` (``auto``/``on``/``off``) for the dynamic extent of
    the block, in this thread/context only."""
    token = _MODE_OVERRIDE.set(mode)
    try:
        yield
    finally:
        _MODE_OVERRIDE.reset(token)


def fuse_engaged() -> bool:
    """Does a block execution route through the generated pipeline?
    ``auto`` means yes: fusion never changes counts or results, only the
    constant factor, so there is no threshold to tune."""
    if np is None:
        return False
    return active_mode() not in _OFF


def fuse_forced_on() -> bool:
    """Is fusion *forced* (``REPRO_FUSE=on``)?  Forcing fusion also
    forces the block backend (via ``frontier.ndarray_forced_on``):
    pipelines only exist on blocks, so the differential variants and the
    CI cross gate exercise the fused path everywhere it can run."""
    if np is None:
        return False
    return active_mode() in _ON


# ----------------------------------------------------------------------
# The optional compiled-kernel seam (REPRO_FUSE_NATIVE)
# ----------------------------------------------------------------------

_NUMBA_CHECKED = False
_NUMBA = None  # the module when importable, else None
_NATIVE_KERNELS: dict | None | bool = None  # dict once built, False if broken

#: When numba imports but kernel compilation fails, the classified fault
#: (an :class:`~repro.errors.EngineFault` with the original traceback as
#: ``__cause__``) is kept here — the degradation to numpy is silent on
#: the hot path but never *unobservable*.
NATIVE_KERNEL_FAULT = None


def _numba():
    """Import-guarded numba, checked once (exactly the scipy pattern)."""
    global _NUMBA_CHECKED, _NUMBA
    if not _NUMBA_CHECKED:
        _NUMBA_CHECKED = True
        try:  # pragma: no cover - numba is an optional extra
            import numba as _nb

            _NUMBA = _nb
        except ImportError:
            _NUMBA = None
    return _NUMBA


def native_active() -> bool:
    """Are the numba kernels in force?  ``off`` never; ``auto``/``on``
    when numba imports and the kernels compile.  ``on`` without numba
    degrades to pure numpy (proved in CI) — the seam is an accelerator,
    not a dependency."""
    return _native_kernels() is not None


def _native_kernels():
    global _NATIVE_KERNELS, NATIVE_KERNEL_FAULT
    if FUSE_NATIVE_MODE in _OFF or np is None:
        return None
    if _NATIVE_KERNELS is None:
        if _numba() is None:
            _NATIVE_KERNELS = False
        else:  # pragma: no cover - exercised only with numba installed
            try:
                _NATIVE_KERNELS = _build_native_kernels()
            except Exception as exc:
                # Degrade to the numpy fallbacks, but keep the classified
                # fault observable instead of swallowing it.
                NATIVE_KERNEL_FAULT = classify(exc, backend="fuse-native")
                _NATIVE_KERNELS = False
    return _NATIVE_KERNELS or None


def _build_native_kernels() -> dict:  # pragma: no cover - needs numba
    """Compile the three hot kernels.  Bodies replicate the numpy
    expressions exactly under the code contract (cells are non-negative
    int64 dictionary codes), so the fallback is bit-identical."""
    numba = _numba()
    njit = numba.njit(cache=False, nogil=True)

    @njit
    def dense_probe_nb(codes, size, valid):
        n = codes.shape[0]
        hit = np.empty(n, dtype=np.bool_)
        slot = np.empty(n, dtype=np.int64)
        for i in range(n):
            c = codes[i]
            if c < size:
                slot[i] = c
                hit[i] = valid[c]
            else:
                slot[i] = 0
                hit[i] = False
        return hit, slot

    @njit
    def sorted_lookup_nb(sorted_keys, probes):
        n = probes.shape[0]
        nk = sorted_keys.shape[0]
        hit = np.empty(n, dtype=np.bool_)
        slot = np.empty(n, dtype=np.int64)
        for i in range(n):
            idx = np.searchsorted(sorted_keys, probes[i])
            s = idx if idx < nk else nk - 1
            slot[i] = s
            hit[i] = idx < nk and sorted_keys[s] == probes[i]
        return hit, slot

    @njit
    def compact_nb(mask):
        return np.flatnonzero(mask)

    return {
        "dense_probe": dense_probe_nb,
        "sorted_lookup": sorted_lookup_nb,
        "compact": compact_nb,
    }


def dense_probe(codes, size, valid):
    """``(hit, slot)`` for a dense flat-table probe: ``slot`` is the code
    clipped to slot 0 out of range, ``hit`` marks in-range codes whose
    table entry is valid.  (``size`` is the table length; ``size == 0``
    is handled by callers at codegen time.)"""
    kernels = _native_kernels()
    if kernels is not None and codes.dtype == np.int64:
        return kernels["dense_probe"](codes, size, valid)
    inrange = codes < size
    slot = np.where(inrange, codes, 0)
    return inrange & valid[slot], slot


def sorted_lookup(sorted_keys, probes):
    """``(hit, slot)`` for a searchsorted key join: first matching index
    in ``sorted_keys`` per probe (clipped; meaningful only where
    ``hit``).  The native kernel engages for int64 keys only — packed
    void keys stay on numpy (numba has no void dtype)."""
    kernels = _native_kernels()
    if (
        kernels is not None
        and probes.dtype == np.int64
        and sorted_keys.dtype == np.int64
    ):
        return kernels["sorted_lookup"](sorted_keys, probes)
    nk = sorted_keys.shape[0]
    idx = np.searchsorted(sorted_keys, probes)
    slot = np.minimum(idx, nk - 1)
    hit = (idx < nk) & (sorted_keys[slot] == probes)
    return hit, slot


def compact(mask):
    """Alive-row indices of a boolean mask (``np.flatnonzero``)."""
    kernels = _native_kernels()
    if kernels is not None:
        return kernels["compact"](mask)
    return np.flatnonzero(mask)


# ----------------------------------------------------------------------
# Per-step profiling (REPRO_PROFILE_STEPS=1)
# ----------------------------------------------------------------------

#: Truthy env flag; mutable so benches can flip it in-process.
PROFILE_STEPS = config.get("REPRO_PROFILE_STEPS")

#: kind → [calls, rows, wall seconds].  Guarded by the GIL per += — the
#: counters are advisory (profiling only), never part of the
#: bit-identical contract.
_PROFILE: dict[str, list] = {}


def profile_record(kind: str, rows: int, seconds: float) -> None:
    entry = _PROFILE.get(kind)
    if entry is None:
        entry = _PROFILE.setdefault(kind, [0, 0, 0.0])
    entry[0] += 1
    entry[1] += rows
    entry[2] += seconds


def profile_snapshot(reset: bool = True) -> dict:
    """``{kind: {"calls", "rows", "wall_s"}}`` accumulated since the last
    reset — per spec kind (``dense``/``sparse``/``udf``) plus ``fused``
    for composed dense runs, so a fusion win is attributable per step
    kind rather than a single aggregate number."""
    snap = {
        kind: {"calls": c, "rows": r, "wall_s": round(w, 6)}
        for kind, (c, r, w) in sorted(_PROFILE.items())
    }
    if reset:
        _PROFILE.clear()
    return snap


# ----------------------------------------------------------------------
# Gather-table composition
# ----------------------------------------------------------------------

def _composable(spec) -> bool:
    """Dense specs worth composing: a non-empty table appending at least
    one column.  (A zero-width or empty-table dense guard kills every
    row at that step; it stays a plain spec and the pipeline's
    short-circuit handles it.)"""
    return spec[0] == "dense" and spec[2] > 0 and spec[5] > 0


def compose_fused_specs(specs, source_width: int):
    """Collapse runs of consecutive composable dense specs whose key
    column is already materialized *within the run* (the entry column or
    a column the run appended) into ``("fused", entry_pos, size, surv,
    images, width, nsteps)`` specs.

    ``surv[c]`` is how many run steps entry code ``c`` survives (capped
    at ``nsteps``); ``images[c]`` is the full appended row gathered
    through the clipped slot-0 chain — exactly the cells the per-step
    loop writes, dangling rows included.  Runs of length 1 stay plain
    ``dense`` specs.
    """
    out: list = []
    cursor = source_width
    run: list | None = None  # [entry_pos, run_cursor, size, surv, cols, k]

    def flush():
        nonlocal run
        if run is None:
            return
        entry_pos, _, size, surv, cols, k, plain = run
        run = None
        if k == 1:
            out.append(plain)
            return
        images = (
            np.column_stack(cols)
            if cols
            else np.zeros((size, 0), dtype=np.int64)
        )
        out.append(
            ("fused", entry_pos, size, surv, images, images.shape[1], k)
        )

    for spec in specs:
        width = spec[5] if spec[0] == "dense" else (
            1 if spec[0] == "udf" else spec[4]
        )
        if _composable(spec):
            _, pos, size, valid, images, w = spec
            if run is not None:
                entry_pos, run_cursor, size0, surv, cols, k, _plain = run
                if pos == entry_pos:
                    key = np.arange(size0, dtype=np.int64)
                elif run_cursor <= pos < run_cursor + len(cols):
                    key = cols[pos - run_cursor]
                else:
                    key = None
                if key is not None:
                    # Compose: probe this step's table with each entry's
                    # current chain value.  ``slot`` clips exactly like
                    # the per-step loop, so dangled entries keep
                    # following the deterministic slot-0 garbage chain.
                    inrange = key < size
                    slot = np.where(inrange, key, 0)
                    hit = inrange & valid[slot]
                    surv += (surv == k) & hit
                    gathered = images[slot]
                    for j in range(w):
                        cols.append(np.ascontiguousarray(gathered[:, j]))
                    run[5] = k + 1
                    cursor += width
                    continue
                flush()
            # Start a new run at this spec (its own table is step 0:
            # key = the entry code itself).
            surv = valid.astype(np.int64)
            cols = [np.ascontiguousarray(images[:, j]) for j in range(w)]
            run = [spec[1], cursor, size, surv, cols, 1, spec]
            cursor += width
            continue
        flush()
        out.append(spec)
        cursor += width
    flush()
    return tuple(out)


# ----------------------------------------------------------------------
# Pipeline codegen
# ----------------------------------------------------------------------

def pipeline_key() -> tuple:
    """Cache key for a plan's compiled pipeline.  Only the profiling
    flag changes the *generated code* — the native seam dispatches
    inside the primitives, so one pipeline serves both."""
    return (bool(PROFILE_STEPS),)


def compile_pipeline(plan):
    """Exec-compile one function running ``plan``'s whole fused spec
    list over an int64 block: ``pipeline(block, counter=None,
    step_alive=None) -> (out, mask)``.

    The contract is ``ExpansionPlan.execute_batch_ndarray_local``'s,
    bit-identically — same output block (dead cells included), same
    mask, same counter total.  ``step_alive``, when a list is passed,
    receives the alive-row count of every *original* plan step (fused
    runs fan their per-step counts back out via a ``surv`` bincount;
    short-circuited steps append 0) — the generic join's determined-run
    seam uses it to keep per-depth stats exact.

    Dead branches are resolved at codegen time: whether ``mask`` can
    still be ``None``, whether a table is empty, whether a step appends
    columns — none of it is re-checked per call.
    """
    # Function-level imports: frontier imports this module at load time,
    # so the reverse edge must stay out of module scope.
    from repro.engine import frontier as _frontier
    from repro.engine.cancellation import checkpoint as _checkpoint

    specs = plan._ndarray_specs()
    fused_specs = compose_fused_specs(specs, len(plan.source_schema))
    total_orig = len(specs)
    profiled = bool(PROFILE_STEPS)

    ns: dict = {
        "np": np,
        "checkpoint": _checkpoint,
        "dense_probe": dense_probe,
        "compact": compact,
        "key_hits": _frontier.key_hits,
        "_prof": profile_record,
        "_pc": perf_counter,
    }
    w_out = len(plan.out_schema)
    ncols = len(plan.source_schema)
    lines = [
        "def pipeline(block, counter=None, step_alive=None):",
        "    n = block.shape[0]",
        f"    out = np.zeros((n, {w_out}), dtype=np.int64)",
    ]
    if ncols:
        lines.append(f"    out[:, :{ncols}] = block")
    lines.append("    mask = None")
    lines.append("    touched = 0")

    cursor = ncols
    mask_none = True  # compile-time: no masking spec emitted yet
    orig_done = 0

    def alive_expr() -> str:
        return "n" if mask_none else "m"

    def emit_early_return(remaining: int):
        lines.append("    if not m:")
        if remaining:
            lines.append("        if step_alive is not None:")
            lines.append(
                f"            step_alive.extend((0,) * {remaining})"
            )
        lines.append("        if counter is not None and touched:")
        lines.append("            counter.add(touched)")
        lines.append("        return out, mask")

    for i, spec in enumerate(fused_specs):
        kind = spec[0]
        lines.append("    checkpoint()")
        if profiled:
            lines.append("    _t0 = _pc()")
            lines.append(f"    _rows0 = {alive_expr()}")
        if kind == "udf":
            _, positions, fn, width = spec
            ns[f"fn{i}"] = fn
            lines.append(f"    touched += {alive_expr()}")
            lines.append("    if step_alive is not None:")
            lines.append(f"        step_alive.append({alive_expr()})")
            if mask_none:
                if positions:
                    args = ", ".join(
                        f"out[:, {p}].tolist()" for p in positions
                    )
                    lines.append(
                        f"    out[:, {cursor}] = np.fromiter("
                        f"map(fn{i}, {args}), np.int64, count=n)"
                    )
                else:
                    lines.append(
                        f"    out[:, {cursor}] = np.fromiter("
                        f"(fn{i}() for _ in range(n)), np.int64, count=n)"
                    )
            else:
                lines.append("    alive = compact(mask)")
                if positions:
                    args = ", ".join(
                        f"out[alive, {p}].tolist()" for p in positions
                    )
                    lines.append(
                        f"    out[alive, {cursor}] = np.fromiter("
                        f"map(fn{i}, {args}), np.int64, count=m)"
                    )
                else:
                    lines.append(
                        f"    out[alive, {cursor}] = np.fromiter("
                        f"(fn{i}() for _ in range(m)), np.int64, count=m)"
                    )
            cursor += width
            orig_done += 1
            if profiled:
                lines.append(
                    "    _prof('udf', _rows0, _pc() - _t0)"
                )
            continue
        if kind == "dense":
            _, pos, size, valid, images, width = spec
            lines.append(f"    touched += {alive_expr()}")
            lines.append("    if step_alive is not None:")
            lines.append(f"        step_alive.append({alive_expr()})")
            if size:
                ns[f"valid{i}"] = valid
                ns[f"images{i}"] = images
                lines.append(
                    f"    hit, slot = dense_probe(out[:, {pos}], {size}, "
                    f"valid{i})"
                )
                if width:
                    lines.append(
                        f"    out[:, {cursor}:{cursor + width}] = "
                        f"images{i}[slot]"
                    )
            else:
                lines.append("    hit = np.zeros(n, dtype=bool)")
            cursor += width
            orig_done += 1
            prof_kind = "dense"
        elif kind == "sparse":
            _, positions, struct, images, width = spec
            ns[f"struct{i}"] = struct
            ns[f"positions{i}"] = positions
            lines.append(f"    touched += {alive_expr()}")
            lines.append("    if step_alive is not None:")
            lines.append(f"        step_alive.append({alive_expr()})")
            lines.append(
                f"    hit, slot = key_hits(struct{i}, out, positions{i})"
            )
            if width and images.shape[0]:
                ns[f"images{i}"] = images
                lines.append(
                    f"    out[:, {cursor}:{cursor + width}] = "
                    f"images{i}[slot]"
                )
            cursor += width
            orig_done += 1
            prof_kind = "sparse"
        else:  # fused dense run
            _, pos, size, surv, images, width, k = spec
            ns[f"surv{i}"] = surv
            ns[f"images{i}"] = images
            lines.append(f"    codes = out[:, {pos}]")
            lines.append(f"    inr = codes < {size}")
            lines.append("    slot = np.where(inr, codes, 0)")
            lines.append(f"    sv = np.where(inr, surv{i}[slot], 0)")
            # Each original step charges the rows alive when its fused
            # run executes: a row surviving s < k steps was charged by
            # steps 0..s (s+1 touches), a full survivor by all k.
            if mask_none:
                lines.append(
                    f"    touched += int(np.minimum(sv + 1, {k}).sum())"
                )
            else:
                lines.append(
                    f"    touched += int(np.minimum(sv + 1, {k})[mask].sum())"
                )
            lines.append("    if step_alive is not None:")
            lines.append(
                "        _svm = sv" if mask_none else "        _svm = sv[mask]"
            )
            lines.append(
                f"        _c = np.bincount(_svm, minlength={k + 1})"
            )
            lines.append("        _a = int(_svm.shape[0])")
            for j in range(k):
                if j:
                    lines.append(f"        _a -= int(_c[{j - 1}])")
                lines.append("        step_alive.append(_a)")
            lines.append(f"    hit = sv == {k}")
            if width:
                lines.append(
                    f"    out[:, {cursor}:{cursor + width}] = images{i}[slot]"
                )
            cursor += width
            orig_done += k
            prof_kind = "fused"
        # Masking specs: fold the hit into the mask, short-circuit when
        # the frontier dies.
        if mask_none:
            lines.append("    mask = hit")
            mask_none = False
        else:
            lines.append("    mask = mask & hit")
        lines.append("    m = int(np.count_nonzero(mask))")
        if profiled:
            lines.append(f"    _prof('{prof_kind}', _rows0, _pc() - _t0)")
        if orig_done < total_orig:
            emit_early_return(total_orig - orig_done)
    lines.append("    if counter is not None and touched:")
    lines.append("        counter.add(touched)")
    lines.append("    return out, mask")
    exec("\n".join(lines), ns)
    return ns["pipeline"]
