"""A tiny parser for datalog-style query strings.

Grammar (whitespace-insensitive)::

    Q(x,y,z) :- R(x,y), S(y,z), T(z,x); xy -> z, u -> v

The head is optional (full queries list all variables anyway).  The fd tail
after ``;`` is optional; each fd is ``<vars> -> <vars>`` with single-letter
or comma-separated variable lists.
"""

from __future__ import annotations

import re

from repro.fds.fd import FD, FDSet
from repro.query.query import Atom, Query

_ATOM_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)")
_FD_RE = re.compile(r"([A-Za-z_0-9,\s]+?)\s*->\s*([A-Za-z_0-9,\s]+)")


def _parse_varlist(text: str) -> tuple[str, ...]:
    text = text.strip()
    if "," in text:
        return tuple(part.strip() for part in text.split(",") if part.strip())
    # Compact single-letter form, e.g. "xyz".
    return tuple(text.replace(" ", ""))


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`Query`.

    >>> q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)")
    >>> [a.name for a in q.atoms]
    ['R', 'S', 'T']
    """
    if ":-" in text:
        _, body = text.split(":-", 1)
    else:
        body = text
    if ";" in body:
        body, fd_text = body.split(";", 1)
    else:
        fd_text = ""
    atoms = [
        Atom(name, _parse_varlist(args)) for name, args in _ATOM_RE.findall(body)
    ]
    if not atoms:
        raise ValueError(f"no atoms found in query text: {text!r}")
    fds = _parse_fds(fd_text)
    variables = [v for atom in atoms for v in atom.attrs]
    return Query(atoms, FDSet(fds, variables))


def _parse_fds(fd_text: str) -> list[FD]:
    """Parse 'x,y -> z, u -> v' into fds.

    Comma-separated segments without an arrow attach to the lhs of the
    *next* arrow segment (or, after the last arrow, to its rhs), so both
    compact ('xy -> z') and comma ('x, y -> z') variable lists work.
    """
    segments = [s.strip() for s in fd_text.split(",") if s.strip()]
    arrow_positions = [i for i, s in enumerate(segments) if "->" in s]
    fds: list[FD] = []
    for k, pos in enumerate(arrow_positions):
        prev_arrow = arrow_positions[k - 1] if k > 0 else -1
        lhs_extra = segments[prev_arrow + 1 : pos]
        lhs_text, rhs_text = segments[pos].split("->", 1)
        lhs: set[str] = set()
        for part in lhs_extra + [lhs_text]:
            lhs |= set(_parse_varlist(part))
        rhs = set(_parse_varlist(rhs_text))
        next_arrow = (
            arrow_positions[k + 1] if k + 1 < len(arrow_positions) else None
        )
        if next_arrow is None:
            for part in segments[pos + 1 :]:
                rhs |= set(_parse_varlist(part))
        fds.append(FD(frozenset(lhs), frozenset(rhs)))
    return fds
