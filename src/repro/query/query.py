"""Full conjunctive queries without self-joins (Eq. (3) of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.fds.fd import FD, FDSet, VarSet, varset
from repro.query.hypergraph import Hypergraph


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(x1, ..., xn)``.

    ``attrs`` keeps the order of the variables as written, which matters for
    binding relation columns; the hypergraph view uses the set.
    """

    name: str
    attrs: tuple[str, ...]

    def __init__(self, name: str, attrs: Iterable[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attrs", tuple(attrs))

    @property
    def varset(self) -> VarSet:
        return frozenset(self.attrs)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{self.name}({','.join(self.attrs)})"


class Query:
    """A full conjunctive query plus an optional set of fds.

    ``Query`` is symbolic only; a :class:`repro.engine.Database` supplies the
    data.  All variables appear in the head (the paper drops the head).
    """

    def __init__(self, atoms: Iterable[Atom], fds: FDSet | None = None):
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        if len({atom.name for atom in self.atoms}) != len(self.atoms):
            raise ValueError("self-joins are not supported (Sec. 2)")
        variables: list[str] = []
        for atom in self.atoms:
            for attr in atom.attrs:
                if attr not in variables:
                    variables.append(attr)
        self.fds: FDSet = fds if fds is not None else FDSet((), variables)
        # Variables appearing only in fds (e.g. z in R(x), S(y), xy→z,
        # Fig. 5) are functionally determined and belong to the query head.
        for attr in sorted(self.fds.variables):
            if attr not in variables:
                variables.append(attr)
        self.variables: tuple[str, ...] = tuple(variables)

    # ------------------------------------------------------------------
    @property
    def varset(self) -> VarSet:
        return frozenset(self.variables)

    def atom(self, name: str) -> Atom:
        for candidate in self.atoms:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def hypergraph(self) -> Hypergraph:
        """The query hypergraph H_Q = (vars, atoms)."""
        return Hypergraph(
            self.variables, {atom.name: atom.varset for atom in self.atoms}
        )

    def closure_query(self) -> "Query":
        """Q⁺: replace each atom's attribute set with its closure, forget fds
        (Sec. 2, "Closure").  Tight for simple keys."""
        closed_atoms = [
            Atom(atom.name, sorted(self.fds.closure(atom.varset)))
            for atom in self.atoms
        ]
        return Query(closed_atoms, FDSet((), self.variables))

    def guard(self, fd: FD) -> Atom | None:
        """An atom guarding ``fd`` (both sides within its attributes), if any."""
        needed = fd.lhs | fd.rhs
        for atom in self.atoms:
            if needed <= atom.varset:
                return atom
        return None

    def unguarded_fds(self) -> list[FD]:
        return [fd for fd in self.fds if self.guard(fd) is None]

    def with_fds(self, fds: Iterable[FD]) -> "Query":
        return Query(self.atoms, FDSet(list(self.fds) + list(fds), self.variables))

    def cardinalities_log(
        self, sizes: Mapping[str, int]
    ) -> dict[str, float]:
        """n_j = log2 |R_j| for each atom, from a name -> size mapping."""
        import math

        return {
            atom.name: math.log2(sizes[atom.name]) if sizes[atom.name] > 0 else 0.0
            for atom in self.atoms
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        body = ", ".join(map(repr, self.atoms))
        if self.fds:
            body += "; " + ", ".join(map(repr, self.fds))
        return f"Query({body})"


def triangle_query() -> Query:
    """The running triangle query Q(x,y,z) :- R(x,y), S(y,z), T(z,x)."""
    return Query(
        [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    )


def paper_example_query() -> Query:
    """Eq. (1) / Fig. 1: R(x,y), S(y,z), T(z,u) with xz→u and yu→x."""
    atoms = [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "u"))]
    fds = FDSet([FD("xz", "u"), FD("yu", "x")], "xyzu")
    return Query(atoms, fds)
