"""Hypergraphs with fractional edge covers / vertex packings (Sec. 2).

The same class serves the query hypergraph, the co-atomic hypergraph
(Def. 4.7) and chain hypergraphs (Def. 5.1): it is just named vertices plus
named edges (vertex subsets), with the two weighted LPs of Theorem 2.1.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Mapping, Sequence


class Hypergraph:
    """A finite hypergraph with hashable vertices and named edges."""

    def __init__(
        self,
        vertices: Iterable[Hashable],
        edges: Mapping[str, Iterable[Hashable]],
    ):
        self.vertices: tuple[Hashable, ...] = tuple(dict.fromkeys(vertices))
        vertex_set = set(self.vertices)
        self.edges: dict[str, frozenset] = {}
        for name, edge in edges.items():
            edge = frozenset(edge)
            if not edge <= vertex_set:
                raise ValueError(f"edge {name!r} has vertices outside the graph")
            self.edges[name] = edge
        self.edge_names: tuple[str, ...] = tuple(self.edges)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def isolated_vertices(self) -> set:
        """Vertices in no edge; if any exist the cover LP is infeasible
        (footnote 7 of the paper)."""
        covered = set().union(*self.edges.values()) if self.edges else set()
        return set(self.vertices) - covered

    def incident_edges(self, vertex: Hashable) -> list[str]:
        return [name for name, edge in self.edges.items() if vertex in edge]

    # ------------------------------------------------------------------
    # Fractional covering LPs
    # ------------------------------------------------------------------
    def is_fractional_edge_cover(self, weights: Mapping[str, Fraction]) -> bool:
        """Check Σ_{j: v ∈ e_j} w_j >= 1 for every vertex, w >= 0."""
        if any(Fraction(weights.get(name, 0)) < 0 for name in self.edge_names):
            return False
        for vertex in self.vertices:
            total = sum(
                Fraction(weights.get(name, 0))
                for name in self.edges
                if vertex in self.edges[name]
            )
            if total < 1:
                return False
        return True

    def edge_cover_vertices(self, max_dimension: int = 12) -> list[dict[str, Fraction]]:
        """Enumerate all vertices of the fractional edge cover polytope
        exactly (used by the normality test, Sec. 4.3).

        Routed through the pruned enumerator of :mod:`repro.lp.exact`;
        ``tests/test_lp_exact.py`` keeps it differentially pinned to the
        flat reference enumerator in :mod:`repro.util.rational`.
        """
        from repro.lp.exact import enumerate_vertices  # local: avoid cycle

        if self.isolated_vertices():
            return []
        n = len(self.edge_names)
        # Cover constraints as A x <= b:  -Σ_{j: v∈e_j} x_j <= -1.
        a_ub = []
        b_ub = []
        for vertex in self.vertices:
            row = [
                -1 if vertex in self.edges[name] else 0 for name in self.edge_names
            ]
            a_ub.append(row)
            b_ub.append(-1)
        # The cover polytope is unbounded upward; its vertices all lie in
        # [0, 1]^n, so intersect with x_j <= 1 and keep points where the
        # added constraints are not the only tight ones... Simpler: vertices
        # of the polyhedron are exactly vertices of the [0,1]-truncation
        # that satisfy: either x_j < 1, or x_j = 1 is forced.  Since any
        # weight > 1 can be lowered to 1 while remaining a cover, all
        # *minimal* cover vertices have x <= 1, and truncation vertices with
        # some x_j = 1 tight-only-at-the-box are still valid covers, just
        # possibly not vertices of the untruncated polyhedron.  For the
        # normality test we only need a superset of the vertices (extra
        # points make the test stricter-but-equivalent since they are still
        # covers and the inequality must hold for all covers).
        for i in range(n):
            row = [0] * n
            row[i] = 1
            a_ub.append(row)
            b_ub.append(1)
        points = enumerate_vertices(a_ub, b_ub, max_dimension=max_dimension)
        return [dict(zip(self.edge_names, point)) for point in points]

    def fractional_edge_cover_number(
        self, log_weights: Mapping[str, float] | None = None
    ) -> tuple[Fraction | float, dict[str, Fraction]]:
        """Solve the weighted fractional edge cover LP (Thm. 2.1).

        ``log_weights[j]`` is ``n_j = log2 N_j`` (defaults to 1 for the
        classic unweighted cover).  Returns ``(optimum, weights)`` with the
        weights rationalized and re-verified to be a cover.
        """
        from repro.lp.solver import solve_lp  # local import to avoid cycle

        if self.isolated_vertices():
            raise ValueError("cover LP infeasible: isolated vertices present")
        costs = [
            float(log_weights[name]) if log_weights is not None else 1.0
            for name in self.edge_names
        ]
        # Scaling the cost vector changes neither the feasible region nor
        # the optimal vertex set; normalizing makes proportional instances
        # (the same hypergraph at different data sizes) identical problems,
        # so the solver's memo serves them.  The reported objective is
        # recomputed exactly from the weights below, unaffected by scaling.
        scale = max(costs, default=0.0)
        if scale > 0:
            costs = [c / scale for c in costs]
        a_ub = []
        b_ub = []
        for vertex in self.vertices:
            row = [
                -1.0 if vertex in self.edges[name] else 0.0
                for name in self.edge_names
            ]
            a_ub.append(row)
            b_ub.append(-1.0)
        solution = solve_lp(costs, a_ub, b_ub)
        weights = dict(zip(self.edge_names, solution.x_rational))
        if solution.certificate is None and not self.is_fractional_edge_cover(
            weights
        ):
            # Nudge for a certificate-free (raw-float) primal:
            # rationalization can round a tight constraint the wrong way;
            # scale up minimally to restore feasibility.  Unreachable
            # through solve_lp today — every policy returns the certified
            # canonical vertex, a certified cover vertex by construction —
            # but kept for callers injecting float solutions directly.
            slack = min(
                sum(w for name, w in weights.items() if v in self.edges[name])
                for v in self.vertices
            )
            weights = {name: w / slack for name, w in weights.items()}
        objective = sum(
            Fraction(weights[name])
            * (Fraction(log_weights[name]).limit_denominator() if log_weights else 1)
            for name in self.edge_names
        )
        return objective, weights

    def fractional_vertex_packing(
        self, log_weights: Mapping[str, float] | None = None
    ) -> tuple[Fraction | float, dict[Hashable, Fraction]]:
        """Solve the dual LP: maximize Σ v_i s.t. Σ_{i ∈ e_j} v_i <= n_j."""
        from repro.lp.solver import solve_lp

        bounds = {
            name: (float(log_weights[name]) if log_weights is not None else 1.0)
            for name in self.edge_names
        }
        costs = [-1.0] * len(self.vertices)  # maximize sum
        a_ub = []
        b_ub = []
        for name in self.edge_names:
            row = [1.0 if v in self.edges[name] else 0.0 for v in self.vertices]
            a_ub.append(row)
            b_ub.append(bounds[name])
        solution = solve_lp(costs, a_ub, b_ub)
        packing = dict(zip(self.vertices, solution.x_rational))
        objective = sum(packing.values())
        return objective, packing

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        edges = ", ".join(
            f"{name}={{{','.join(map(str, sorted(edge, key=str)))}}}"
            for name, edge in self.edges.items()
        )
        return f"Hypergraph({edges})"
