"""Conjunctive query model: atoms, hypergraphs, and a small parser."""

from repro.query.hypergraph import Hypergraph
from repro.query.query import Atom, Query
from repro.query.parse import parse_query

__all__ = ["Atom", "Query", "Hypergraph", "parse_query"]
