"""GLVV colorings ↔ normal polymatroids (Sec. 4.3).

Gottlob et al. bound query outputs through *colorings*: maps L from
variables to non-empty color sets with L(Y) ⊆ L(X) for every fd X → Y;
the color number is max_L |L(vars)| / max_j |L(vars(R_j))|.  The paper
shows colorings are exactly integral normal polymatroids via
h(X) = |⋃_{x∈X} L(x)|, which both proves GLVV's simple-key results and
exposes their limits (non-normal lattices).

This module makes the correspondence executable in both directions and
computes the (fractional) color-number bound, which coincides with the
co-atomic cover / normal-polymatroid bound of ``repro.core.bounds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping

from repro.core.bounds import normal_bound_log2
from repro.fds.fd import FDSet
from repro.lattice.embedding import canonical_embedding, variable_join_irreducible
from repro.lattice.lattice import Lattice
from repro.lattice.polymatroid import LatticeFunction


@dataclass
class Coloring:
    """A GLVV coloring: variable -> non-empty set of colors."""

    assignment: dict[str, frozenset]

    def color_set(self, variables) -> frozenset:
        out: frozenset = frozenset()
        for v in variables:
            out |= self.assignment[v]
        return out

    def respects_fds(self, fds: FDSet) -> bool:
        """L(Y) ⊆ L(X) for every fd X → Y."""
        for fd in fds:
            lhs = self.color_set(fd.lhs)
            rhs = self.color_set(fd.rhs)
            if not rhs <= lhs:
                return False
        return True

    def is_valid(self) -> bool:
        return all(colors for colors in self.assignment.values())

    def color_number(self, atom_vars: Mapping[str, frozenset]) -> Fraction:
        """C(L) = |L(all vars)| / max_j |L(vars(R_j))| (Sec. 4.3)."""
        total = len(self.color_set(self.assignment))
        worst = max(
            len(self.color_set(attrs)) for attrs in atom_vars.values()
        )
        if worst == 0:
            raise ValueError("a relation received no colors")
        return Fraction(total, worst)

    def to_polymatroid(self, lattice: Lattice) -> LatticeFunction:
        """h(X) = |⋃_{x ∈ X} L(x)| on a frozenset-labelled lattice —
        always an integral normal polymatroid (Sec. 4.3)."""
        values = []
        for el in lattice.elements:
            if not isinstance(el, frozenset):
                raise TypeError("FD (frozenset-labelled) lattice required")
            values.append(Fraction(len(self.color_set(el))))
        return LatticeFunction(lattice, values)


def coloring_from_polymatroid(
    h: LatticeFunction, variables
) -> Coloring:
    """The reverse direction: an integral normal polymatroid's canonical
    embedding defines a coloring with h(X) = |L(X)| (Sec. 4.3).

    GLVV colorings must give every variable a non-empty color set, so the
    correspondence covers exactly the integral normal polymatroids with
    h(x⁺) >= 1 for every variable; others are rejected.
    """
    lattice = h.lattice
    coloring = canonical_embedding(h)  # raises if not normal/integral
    assignment: dict[str, frozenset] = {}
    for v in variables:
        ji = variable_join_irreducible(lattice, v)
        colors = coloring.colors[ji]
        if not colors:
            raise ValueError(
                f"h({v}⁺) = 0: no GLVV coloring exists (colorings require "
                "L(x) ≠ ∅, Sec. 4.3)"
            )
        assignment[v] = frozenset(colors)
    return Coloring(assignment)


def color_number_bound_log2(
    lattice: Lattice,
    inputs: Mapping[str, int],
    log_sizes: Mapping[str, float],
) -> float:
    """The fractional color-number bound.

    By the coloring ↔ normal-polymatroid correspondence this equals the
    max over normal polymatroids of h(1̂) s.t. h(R_j) <= n_j — i.e. the
    normal bound of ``repro.core.bounds``; exposed under its GLVV name for
    discoverability.
    """
    return normal_bound_log2(lattice, inputs, log_sizes)
