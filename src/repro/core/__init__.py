"""The paper's contribution: output-size bounds and FD-aware join algorithms.

* :mod:`repro.core.bounds` — AGM, closure (Q⁺), GLVV/LLP, chain, SM and
  normal-polymatroid bounds, plus degree-aware CLLP bounds.
* :mod:`repro.core.chain_algorithm` — Algorithm 1 (Sec. 5.1).
* :mod:`repro.core.proofs` — SM proof sequences + goodness (Def. 5.26).
* :mod:`repro.core.sma` — Algorithm 2 (Sec. 5.2).
* :mod:`repro.core.csma` — CSMA (Sec. 5.3): CSM proofs + the algorithm.
* :mod:`repro.core.planner` — strategy selection per query.
"""

from repro.core.bounds import BoundReport, compute_bounds
from repro.core.chain_algorithm import chain_algorithm
from repro.core.proofs import SMStep, SMProof, find_good_sm_proof, sm_proof_exists
from repro.core.sma import submodularity_algorithm
from repro.core.csma import csma, CSMAResult
from repro.core.planner import Planner, PlanChoice
from repro.core.simple_keys import all_guarded_simple_keys, closure_trick_join
from repro.core.report import analyze_query, classify_lattice, taxonomy_table
from repro.core.colorings import Coloring, coloring_from_polymatroid, color_number_bound_log2

__all__ = [
    "BoundReport",
    "compute_bounds",
    "chain_algorithm",
    "SMStep",
    "SMProof",
    "find_good_sm_proof",
    "sm_proof_exists",
    "submodularity_algorithm",
    "csma",
    "CSMAResult",
    "Planner",
    "PlanChoice",
    "all_guarded_simple_keys",
    "closure_trick_join",
    "analyze_query",
    "classify_lattice",
    "taxonomy_table",
    "Coloring",
    "coloring_from_polymatroid",
    "color_number_bound_log2",
]
