"""The Chain Algorithm — Algorithm 1 of the paper (Sec. 5.1).

Given a good chain C, the algorithm climbs the chain computing
``Q_i = (⋈_j Π_{R_j ∧ C_i}(R_j))⁺`` via per-tuple intersections: for each
tuple of ``Q_{i-1}`` it iterates over the *cheapest* covering relation
(chosen per tuple by an O(1) degree lookup) and verifies candidates against
the others — the combinatorial counterpart of Radhakrishnan's telescoping
proof, with runtime Õ(N + Π_j N_j^{w_j}) for any fractional edge cover w of
the chain hypergraph (Thm. 5.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.engine.database import Database
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.lattice.chains import Chain, is_good_chain, shearer_chain
from repro.lattice.lattice import Lattice
from repro.query.query import Query


@dataclass
class ChainAlgorithmStats:
    tuples_touched: int = 0
    per_step_sizes: list[int] = field(default_factory=list)


def chain_algorithm(
    query: Query,
    db: Database,
    lattice: Lattice,
    inputs: Mapping[str, int],
    chain: Chain | None = None,
) -> tuple[Relation, ChainAlgorithmStats]:
    """Evaluate ``query`` along ``chain`` (defaults to the Corollary 5.9
    chain).  ``inputs`` maps atom names to their *closed* lattice elements.

    Raises ``ValueError`` when the chain is not good for the inputs or has
    an uncovered step (footnote 7: the bound would be infinite).
    """
    if chain is None:
        chain = shearer_chain(lattice, list(inputs.values()))
    if not is_good_chain(chain, inputs.values()):
        raise ValueError(f"chain {chain!r} is not good for the inputs")
    counter = WorkCounter()
    stats = ChainAlgorithmStats()

    # Step 1: expand inputs to their closures (line 1 of Algorithm 1).
    expanded: dict[str, Relation] = {}
    for name in inputs:
        expanded[name] = db.expand_relation(db[name], counter=counter)
        if frozenset(expanded[name].schema) != lattice.label(inputs[name]):
            raise ValueError(
                f"input {name} expands to {expanded[name].schema}, "
                f"expected {sorted(lattice.label(inputs[name]))}"
            )

    k = len(chain.elements) - 1
    covering: list[list[str]] = [[]]
    for i in range(1, k + 1):
        names = [name for name, r in inputs.items() if chain.covers(r, i)]
        if not names:
            raise ValueError(f"chain step {i} is covered by no input")
        covering.append(names)

    # Per-step projections Π_{R_j ∧ C_i}(R_j⁺), built lazily.
    projections: dict[tuple[int, str], Relation] = {}

    def projection(i: int, name: str) -> Relation:
        key = (i, name)
        if key not in projections:
            shared = lattice.label(inputs[name]) & lattice.label(chain.elements[i])
            projections[key] = expanded[name].project(sorted(shared))
        return projections[key]

    # Q_0 = {()} (line 2).
    frontier: list[dict[str, object]] = [{}]
    stats.per_step_sizes.append(1)

    for i in range(1, k + 1):
        ci: frozenset = lattice.label(chain.elements[i])
        next_frontier: dict[tuple, dict[str, object]] = {}
        ci_sorted = tuple(sorted(ci))
        for t in frontier:
            # Pick j* = argmin |t ⋈ Π_{R_j ∧ C_i}(R_j)| by degree lookup.
            best_name = None
            best_count = None
            for name in covering[i]:
                proj = projection(i, name)
                partial = {a: t[a] for a in proj.schema if a in t}
                count = proj.degree(partial)
                counter.add()
                if best_count is None or count < best_count:
                    best_name, best_count = name, count
            proj_star = projection(i, best_name)
            partial_star = {a: t[a] for a in proj_star.schema if a in t}
            for match in proj_star.matching(partial_star):
                counter.add()
                candidate = dict(t)
                candidate.update(zip(proj_star.schema, match))
                # Expand to C_i (goodness guarantees the closure is C_i).
                expanded_t = db.expand_tuple(candidate, target=ci, counter=counter)
                if expanded_t is None:
                    continue
                if not _verify(
                    expanded_t, t, i, covering[i], best_name, projection,
                    db, ci, counter,
                ):
                    continue
                key = tuple(expanded_t[a] for a in ci_sorted)
                next_frontier[key] = expanded_t
        frontier = list(next_frontier.values())
        stats.per_step_sizes.append(len(frontier))

    schema = tuple(sorted(lattice.label(chain.elements[k])))
    out = Relation(
        "Q",
        schema,
        (
            tuple(t[a] for a in schema)
            for t in frontier
            if db.udf_consistent(t)
        ),
    )
    stats.tuples_touched = counter.tuples_touched
    return out, stats


def _verify(
    candidate: dict[str, object],
    prefix: dict[str, object],
    i: int,
    covering_names: list[str],
    chosen: str,
    projection,
    db: Database,
    ci: frozenset,
    counter: WorkCounter,
) -> bool:
    """Line 6's intersection, checked per candidate tuple.

    For every other covering relation j: the candidate's R_j ∧ C_i
    projection must be present in Π_{R_j ∧ C_i}(R_j), and re-expanding the
    prefix joined with that projection must reproduce the candidate (the
    subtle step of footnote 8)."""
    for name in covering_names:
        if name == chosen:
            continue
        proj = projection(i, name)
        counter.add()
        key_binding = {a: candidate[a] for a in proj.schema}
        if proj.degree(key_binding) == 0:
            return False
        rebuilt = dict(prefix)
        rebuilt.update(key_binding)
        rebuilt = db.expand_tuple(rebuilt, target=ci, counter=counter)
        if rebuilt is None or any(
            rebuilt[a] != candidate[a] for a in candidate
        ):
            return False
    return True
