"""The Chain Algorithm — Algorithm 1 of the paper (Sec. 5.1).

Given a good chain C, the algorithm climbs the chain computing
``Q_i = (⋈_j Π_{R_j ∧ C_i}(R_j))⁺`` via per-tuple intersections: for each
tuple of ``Q_{i-1}`` it iterates over the *cheapest* covering relation
(chosen per tuple by an O(1) degree lookup) and verifies candidates against
the others — the combinatorial counterpart of Radhakrishnan's telescoping
proof, with runtime Õ(N + Π_j N_j^{w_j}) for any fractional edge cover w of
the chain hypergraph (Thm. 5.7).

The frontier is kept as raw tuples over the sorted attributes of C_{i-1}
and flows through the kernel in whole-frontier batches: per-tuple work is
only the data-dependent cover argmin; candidate expansion and the
footnote-8 verification push one batch per covering relation through the
compiled plans (``ExpansionPlan.execute_batch``).  The counted work is
identical to the row-dict formulation, only the constant factor drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.engine import frontier as frontier_blocks
from repro.engine import shard as frontier_shard
from repro.engine.database import Database
from repro.engine.expansion_plan import tuple_getter
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.lattice.chains import Chain, is_good_chain, shearer_chain
from repro.lattice.lattice import Lattice
from repro.query.query import Query


@dataclass
class ChainAlgorithmStats:
    tuples_touched: int = 0
    per_step_sizes: list[int] = field(default_factory=list)


@dataclass
class _CoverInfo:
    """Per-(step, covering relation) positional access paths."""

    name: str
    proj: Relation
    # Degree/match lookups keyed on the attrs shared with the frontier.
    index: dict
    key: object
    # Extension: projection attrs not yet in the frontier.
    extra_attrs: tuple[str, ...]
    extra_key: object
    # Verification: candidate → full projection-schema key; the
    # membership set is built lazily on first verify (single-cover steps
    # never need it).
    cand_key: object
    cand_extra_key: object
    members: set | None = None
    # Sorted key block over the full projection schema — the vectorized
    # membership structure the footnote-8 block path probes.
    members_block: object = None
    # Compiled expansion (prefix ++ extra → C_i), lazily built.
    plan: object = None
    reorder: object = None


def chain_algorithm(
    query: Query,
    db: Database,
    lattice: Lattice,
    inputs: Mapping[str, int],
    chain: Chain | None = None,
) -> tuple[Relation, ChainAlgorithmStats]:
    """Evaluate ``query`` along ``chain`` (defaults to the Corollary 5.9
    chain).  ``inputs`` maps atom names to their *closed* lattice elements.

    Raises ``ValueError`` when the chain is not good for the inputs or has
    an uncovered step (footnote 7: the bound would be infinite).
    """
    if chain is None:
        chain = shearer_chain(lattice, list(inputs.values()))
    if not is_good_chain(chain, inputs.values()):
        raise ValueError(f"chain {chain!r} is not good for the inputs")
    counter = WorkCounter()
    stats = ChainAlgorithmStats()
    encoded = db.encoded

    # Step 1: expand inputs to their closures (line 1 of Algorithm 1).
    # ``expand_runtime`` keeps the result on the active plane: with a
    # codec the whole climb — degree argmins, candidate expansion, the
    # footnote-8 verification — runs on dictionary codes, and only the
    # terminal output decodes.
    expanded: dict[str, Relation] = {}
    for name in inputs:
        expanded[name] = db.expand_runtime(name, counter=counter)
        if frozenset(expanded[name].schema) != lattice.label(inputs[name]):
            raise ValueError(
                f"input {name} expands to {expanded[name].schema}, "
                f"expected {sorted(lattice.label(inputs[name]))}"
            )

    k = len(chain.elements) - 1
    covering: list[list[str]] = [[]]
    for i in range(1, k + 1):
        names = [name for name, r in inputs.items() if chain.covers(r, i)]
        if not names:
            raise ValueError(f"chain step {i} is covered by no input")
        covering.append(names)

    # Per-step projections Π_{R_j ∧ C_i}(R_j⁺), built lazily (and memoized
    # again inside Relation.project).
    projections: dict[tuple[int, str], Relation] = {}

    def projection(i: int, name: str) -> Relation:
        key = (i, name)
        if key not in projections:
            shared = lattice.label(inputs[name]) & lattice.label(chain.elements[i])
            projections[key] = expanded[name].project(sorted(shared))
        return projections[key]

    # Q_0 = {()} (line 2).  Frontier tuples are laid out over prev_attrs.
    frontier: list[tuple] = [()]
    prev_attrs: tuple[str, ...] = ()
    stats.per_step_sizes.append(1)

    for i in range(1, k + 1):
        ci: frozenset = lattice.label(chain.elements[i])
        ci_sorted = tuple(sorted(ci))
        if not frontier:
            # Nothing to extend: skip building the per-step access paths
            # (the naive path built its projections lazily and likewise did
            # no work here), but keep the per-step stats trajectory.
            prev_attrs = ci_sorted
            stats.per_step_sizes.append(0)
            continue
        prev_set = frozenset(prev_attrs)
        infos: list[_CoverInfo] = []
        for name in covering[i]:
            proj = projection(i, name)
            bound_attrs = tuple(a for a in proj.schema if a in prev_set)
            extra_attrs = tuple(a for a in proj.schema if a not in prev_set)
            infos.append(
                _CoverInfo(
                    name=name,
                    proj=proj,
                    index=proj.index_on(bound_attrs),
                    key=tuple_getter(
                        prev_attrs.index(a) for a in bound_attrs
                    ),
                    extra_attrs=extra_attrs,
                    extra_key=tuple_getter(proj.positions(extra_attrs)),
                    cand_key=tuple_getter(
                        ci_sorted.index(a) for a in proj.schema
                    ),
                    cand_extra_key=tuple_getter(
                        ci_sorted.index(a) for a in extra_attrs
                    ),
                )
            )

        def ensure_plan(info: _CoverInfo):
            if info.plan is None:
                info.plan = db.expansion_plan(
                    prev_attrs + info.extra_attrs, ci, encoded=encoded
                )
                info.reorder = tuple_getter(info.plan.positions(ci_sorted))
            return info.plan

        # Stage 1 — per-tuple cover choice (the argmin is data-dependent,
        # so the degree probes stay per tuple), accumulating each tuple's
        # matches into the chosen cover's frontier batch.
        # Stage-1 counter charges (one per degree probe, one per emitted
        # match) accumulate locally and post once per step — the total is
        # bit-identical to the per-probe ``add`` calls.
        # The chosen cover's extension columns extract once per distinct
        # key (`extras` memo per cover — same core as
        # ``ops.memoized_join_rows``; hot keys repeat on skewed data);
        # rows concatenate via C-level ``tuple.__add__``.
        batches: list[list[tuple]] = [[] for _ in infos]
        extras_memos: list[dict] = [{} for _ in infos]
        touched = 0
        if len(infos) == 1:
            # Single cover: the argmin is trivial — probe, extend.
            (info,) = infos
            index, info_key, extra_key = info.index, info.key, info.extra_key
            batch = batches[0]
            memo = extras_memos[0]
            for t in frontier:
                key = info_key(t)
                matches = index.get(key)
                touched += 1
                if not matches:
                    continue
                touched += len(matches)
                extras = memo.get(key)
                if extras is None:
                    extras = memo[key] = [extra_key(m) for m in matches]
                batch.extend(map(t.__add__, extras))
        else:
            keys: list = [None] * len(infos)
            n_infos = len(infos)
            for t in frontier:
                # Pick j* = argmin |t ⋈ Π_{R_j ∧ C_i}(R_j)| by degree
                # lookup.
                best_idx = 0
                best_count: int | None = None
                for j, info in enumerate(infos):
                    keys[j] = key = info.key(t)
                    count = len(info.index.get(key, ()))
                    if best_count is None or count < best_count:
                        best_idx, best_count = j, count
                touched += n_infos
                if not best_count:
                    continue
                best = infos[best_idx]
                touched += best_count
                key = keys[best_idx]
                memo = extras_memos[best_idx]
                extras = memo.get(key)
                if extras is None:
                    extra_key = best.extra_key
                    extras = memo[key] = [
                        extra_key(m) for m in best.index[key]
                    ]
                batches[best_idx].extend(map(t.__add__, extras))
        counter.add(touched)

        # Stage 2 — each batch goes through its cover's compiled plan in
        # one call (goodness guarantees the closure is C_i); the prefix of
        # a surviving candidate is recovered positionally (the plan's
        # layout starts with prev_attrs).
        n_prev = len(prev_attrs)
        next_frontier: dict[tuple, None] = {}

        def run_batch_block(chosen: _CoverInfo, rows: list[tuple]) -> bool:
            """Stages 2-3 on the int64 block backend: candidate expansion,
            per-cover membership and the footnote-8 re-expansion all stay
            array blocks; rows re-tuple only at the frontier-dedup
            boundary.  Counter charges mirror the tuple path exactly
            (plan batches charge inside the backend; each other cover
            charges the surviving candidate count before its checks).
            Returns False when the batch does not convert to a block (the
            caller falls back to the tuple path)."""
            np = frontier_blocks.np
            plan = ensure_plan(chosen)
            block = frontier_blocks.rows_to_block(
                rows, len(plan.source_schema)
            )
            if block is None:
                return False
            ext, keep = plan.execute_batch_ndarray(block, counter)
            if keep is not None:
                ext = ext[keep]
            cand_positions = list(plan.positions(ci_sorted))
            for info in infos:
                if info is chosen or not ext.shape[0]:
                    continue
                counter.add(ext.shape[0])
                keys = info.members_block
                if keys is None:
                    keys = info.members_block = info.proj.key_block(
                        info.proj.schema
                    )
                hit = frontier_shard.block_isin(
                    ext, plan.positions(info.proj.schema), keys
                )
                ext = ext[hit]
                if not ext.shape[0]:
                    continue
                info_plan = ensure_plan(info)
                rebuilt, rb_keep = info_plan.execute_batch_ndarray(
                    np.concatenate(
                        (
                            ext[:, :n_prev],
                            ext[:, list(plan.positions(info.extra_attrs))],
                        ),
                        axis=1,
                    ),
                    counter,
                )
                ok = (
                    rebuilt[:, list(info_plan.positions(ci_sorted))]
                    == ext[:, cand_positions]
                ).all(axis=1)
                if rb_keep is not None:
                    ok &= rb_keep
                ext = ext[ok]
            for candidate in map(tuple, ext[:, cand_positions].tolist()):
                next_frontier[candidate] = None
            return True

        for chosen, rows in zip(infos, batches):
            if not rows:
                continue
            if (
                encoded
                and frontier_blocks.ndarray_engaged(len(rows))
                and run_batch_block(chosen, rows)
            ):
                continue
            plan = ensure_plan(chosen)
            reorder = chosen.reorder
            survivors = [
                (reorder(e), e[:n_prev])
                for e in plan.execute_batch(rows, counter)
                if e is not None
            ]
            # Stage 3 — line 6's intersection, batched per other covering
            # relation: the candidate's R_j ∧ C_i projection must be
            # present in Π_{R_j ∧ C_i}(R_j), and re-expanding the prefix
            # joined with that projection must reproduce the candidate
            # (the subtle step of footnote 8).  A candidate failing one
            # cover never reaches the next — exactly the per-tuple
            # early-exit, so the counted work is identical.
            for info in infos:
                if info is chosen or not survivors:
                    continue
                counter.add(len(survivors))
                members = info.members
                if members is None:
                    members = info.members = info.proj.tuple_set()
                cand_key = info.cand_key
                passed = [
                    (c, p) for c, p in survivors if cand_key(c) in members
                ]
                if not passed:
                    survivors = passed
                    continue
                info_plan = ensure_plan(info)
                cand_extra_key = info.cand_extra_key
                rebuilt = info_plan.execute_batch(
                    [p + cand_extra_key(c) for c, p in passed], counter
                )
                info_reorder = info.reorder
                survivors = [
                    (c, p)
                    for (c, p), rb in zip(passed, rebuilt)
                    if rb is not None and info_reorder(rb) == c
                ]
            for candidate, _ in survivors:
                next_frontier[candidate] = None
        frontier = list(next_frontier)
        prev_attrs = ci_sorted
        stats.per_step_sizes.append(len(frontier))

    schema = tuple(sorted(lattice.label(chain.elements[k])))
    consistent = db.udf_filter(schema, encoded=encoded)
    rows = (
        frontier
        if consistent is None
        else [t for t in frontier if consistent(t)]
    )
    if encoded:
        rows = db.decode_tuples(schema, rows)
    out = Relation("Q", schema, rows, distinct=True)
    stats.tuples_touched = counter.tuples_touched
    return out, stats
