"""Reporting: per-query analysis and the Fig. 10 taxonomy, programmatic.

These drive the benchmark harness and `examples/lattice_explorer.py`, and
give downstream users a one-call diagnosis of a query: its lattice, every
bound, which algorithm is optimal, and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.core.bounds import coatomic_bound_log2, normal_bound_log2
from repro.core.proofs import find_good_sm_proof
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound, condition_15_holds
from repro.lattice.lattice import Lattice
from repro.lattice.properties import (
    has_m3_with_top,
    is_distributive,
    is_modular,
    is_normal_lattice,
)
from repro.lp.llp import LatticeLinearProgram
from repro.query.query import Query


@dataclass
class LatticeClassification:
    """One row of the Fig. 10 taxonomy."""

    size: int
    distributive: bool
    modular: bool
    m3_at_top: bool
    normal: bool
    chain_tight: bool
    sm_tight: bool
    glvv_log2: float
    chain_log2: float
    coatomic_log2: float

    def region(self) -> str:
        """The innermost Fig. 10 region containing this lattice."""
        if self.distributive:
            return "distributive"
        if self.chain_tight:
            return "chain-tight"
        if self.sm_tight:
            return "sm-tight"
        if self.normal:
            return "normal"
        return "general"


def classify_lattice(
    lattice: Lattice,
    inputs: Mapping[str, int],
    log_sizes: Mapping[str, float] | None = None,
    sm_search_steps: int | None = None,
) -> LatticeClassification:
    """Compute every Fig. 10 membership for one lattice presentation."""
    logs = (
        {name: float(v) for name, v in log_sizes.items()}
        if log_sizes is not None
        else {name: 1.0 for name in inputs}
    )
    program = LatticeLinearProgram(lattice, inputs, logs)
    solution = program.solve()
    glvv = solution.objective
    chain_value, chain, _ = best_chain_bound(lattice, inputs, logs)
    chain_tight = chain is not None and chain_value <= glvv + 1e-6
    proof = find_good_sm_proof(
        lattice, solution.inequality.weights, inputs,
        max_steps=sm_search_steps,
    )
    return LatticeClassification(
        size=lattice.n,
        distributive=is_distributive(lattice),
        modular=is_modular(lattice),
        m3_at_top=has_m3_with_top(lattice),
        normal=is_normal_lattice(lattice, inputs),
        chain_tight=chain_tight,
        sm_tight=proof is not None,
        glvv_log2=glvv,
        chain_log2=chain_value,
        coatomic_log2=coatomic_bound_log2(lattice, inputs, logs),
    )


@dataclass
class QueryAnalysis:
    """Full diagnosis of one (query, cardinalities) pair."""

    query: Query
    lattice: Lattice
    inputs: dict[str, int]
    classification: LatticeClassification
    normal_log2: float
    recommended: str
    notes: list[str] = field(default_factory=list)


def analyze_query(query: Query, sizes: Mapping[str, int]) -> QueryAnalysis:
    """Classify a query's lattice and recommend an algorithm, with the
    paper-facts justifying the choice."""
    lattice, inputs = lattice_from_query(query)
    logs = query.cardinalities_log(sizes)
    classification = classify_lattice(lattice, inputs, logs)
    notes: list[str] = []
    if not query.fds:
        recommended = "generic-join"
        notes.append("no fds: AGM bound applies (Thm. 2.1)")
    elif classification.chain_tight:
        recommended = "chain"
        notes.append("a good chain meets GLVV (Thm. 5.3)")
        if classification.distributive:
            notes.append("distributive lattice: tightness by Cor. 5.15")
    elif classification.sm_tight:
        recommended = "sma"
        notes.append("good SM-proof exists (Thm. 5.28)")
    else:
        recommended = "csma"
        notes.append("needs conditional rules (Sec. 5.3, Thm. 5.37)")
    if not classification.normal:
        notes.append(
            "lattice is NOT normal: no quasi-product worst case "
            "(Thm. 4.9); GLVV exceeds the co-atomic cover bound"
        )
    if query.fds.all_simple:
        notes.append("all fds simple: lattice distributive (Prop. 3.2)")
    return QueryAnalysis(
        query=query,
        lattice=lattice,
        inputs=inputs,
        classification=classification,
        normal_log2=normal_bound_log2(lattice, inputs, logs),
        recommended=recommended,
        notes=notes,
    )


def taxonomy_table(
    catalog: Mapping[str, tuple[Lattice, Mapping[str, int]]]
) -> dict[str, LatticeClassification]:
    """Fig. 10 for a catalog of lattice presentations."""
    return {
        name: classify_lattice(lattice, inputs)
        for name, (lattice, inputs) in catalog.items()
    }
