"""SM-proof sequences (Sec. 5.2): construction, goodness, and search.

An SM-proof starts from a multiset B of lattice elements (q_j copies of
each input R_j, where w_j = q_j/d) and repeatedly replaces an incomparable
pair (X, Y) by (X∧Y, X∨Y) until all elements are pairwise comparable; it
proves Σ_j q_j h(R_j) >= d·h(1̂) + (dangling terms).

*Goodness* (Def. 5.26) is the label discipline guaranteeing that SMA's
heavy/light branches re-join into output tables: every SM-step's operand
label sets must intersect, and every label must eventually reach a copy of
1̂.  Following Ex. 5.30, the fresh-label assignment maps the whole
intersection to a single new label (the most permissive valid choice).

The search enumerates step choices depth-first with labels tracked
incrementally; it finds the good sequences for Figs. 4 and 7 and correctly
reports that Fig. 9's inequality admits no SM-proof at all (Ex. 5.31).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.lattice.lattice import Lattice


@dataclass(frozen=True)
class SMStep:
    """One elementary compression: items at ``left``/``right`` (indices into
    the item list) are consumed; their meet/join become new items."""

    left: int
    right: int


@dataclass
class SMProof:
    """A full SM-proof over a lattice.

    ``items`` records every item ever created: (element, alive) evolves as
    steps execute.  ``initial`` maps item index -> input name for the
    starting multiset.  ``steps`` give, per SM-step, the consumed item
    indices; ``produced`` the created item indices (meet, join).
    """

    lattice: Lattice
    elements: list[int]                  # element of each item ever created
    initial: dict[int, str]              # item index -> input name
    steps: list[SMStep] = field(default_factory=list)
    produced: list[tuple[int, int]] = field(default_factory=list)  # (meet, join)

    def final_items(self) -> list[int]:
        """Indices of items alive after all steps."""
        consumed = {s.left for s in self.steps} | {s.right for s in self.steps}
        return [i for i in range(len(self.elements)) if i not in consumed]

    def reaches_top(self) -> int:
        """Number of alive copies of 1̂ (the d of inequality (16))."""
        top = self.lattice.top
        return sum(1 for i in self.final_items() if self.elements[i] == top)

    def is_terminal(self) -> bool:
        """All alive items pairwise comparable (the proof has finished)."""
        alive = [self.elements[i] for i in self.final_items()]
        return all(
            not self.lattice.incomparable(a, b)
            for a, b in itertools.combinations(alive, 2)
        )

    def verify(self) -> bool:
        """Each step's operands were alive and incomparable at step time."""
        alive = set(range(len(self.initial)))
        count = len(self.initial)
        for step, (meet_item, join_item) in zip(self.steps, self.produced):
            if step.left not in alive or step.right not in alive:
                return False
            x = self.elements[step.left]
            y = self.elements[step.right]
            if not self.lattice.incomparable(x, y):
                return False
            if self.elements[meet_item] != self.lattice.meet(x, y):
                return False
            if self.elements[join_item] != self.lattice.join(x, y):
                return False
            alive.discard(step.left)
            alive.discard(step.right)
            alive.add(meet_item)
            alive.add(join_item)
            count += 2
        return count == len(self.elements)

    # ------------------------------------------------------------------
    # Goodness (Def. 5.26)
    # ------------------------------------------------------------------
    def label_trace(self) -> tuple[bool, list[frozenset[int]]]:
        """Run the label bookkeeping.  Returns (good, final labels per item).

        Labels accumulate on *all* items ever created (consumed items keep
        receiving labels, per the Def. 5.26 discussion).
        """
        labels: list[set[int]] = [set() for _ in self.elements]
        for i in self.initial:
            labels[i] = {1}
        next_label = 2
        bottom = self.lattice.bottom
        for step, (meet_item, join_item) in zip(self.steps, self.produced):
            common = labels[step.left] & labels[step.right]
            if not common:
                return False, [frozenset(l) for l in labels]
            labels[join_item] = set(common)
            fresh: int | None = None
            if self.elements[meet_item] != bottom:
                fresh = next_label
                next_label += 1
                labels[meet_item] = {fresh}
            if fresh is not None:
                for idx in range(len(labels)):
                    if idx in (step.left, step.right, meet_item, join_item):
                        continue
                    if labels[idx] & common:
                        labels[idx].add(fresh)
        # Every label must reach a copy of 1̂ among *final* top items.
        top = self.lattice.top
        reached: set[int] = set()
        for i in self.final_items():
            if self.elements[i] == top:
                reached |= labels[i]
        all_labels = set().union(*labels) if labels else set()
        good = all_labels <= reached
        return good, [frozenset(l) for l in labels]

    def is_good(self) -> bool:
        return self.is_terminal() and self.label_trace()[0]

    def pretty(self) -> str:
        """Human-readable rendering for the benchmark reports."""

        def show(el: int) -> str:
            label = self.lattice.label(el)
            if isinstance(label, frozenset):
                return "".join(sorted(map(str, label))) or "∅"
            return str(label)

        lines = []
        for step, (meet_item, join_item) in zip(self.steps, self.produced):
            lines.append(
                f"h({show(self.elements[step.left])}) + "
                f"h({show(self.elements[step.right])}) >= "
                f"h({show(self.elements[join_item])}) + "
                f"h({show(self.elements[meet_item])})"
            )
        return "\n".join(lines)


def initial_multiset(
    weights: Mapping[str, Fraction], inputs: Mapping[str, int]
) -> tuple[list[int], dict[int, str], int]:
    """Clear denominators: w_j = q_j/d -> q_j copies of R_j (Sec. 5.2).

    Returns (elements, item->name, d)."""
    fracs = {name: Fraction(w) for name, w in weights.items() if Fraction(w) > 0}
    if not fracs:
        raise ValueError("no positive weights")
    d = 1
    for w in fracs.values():
        d = d * w.denominator // _gcd(d, w.denominator)
    elements: list[int] = []
    origin: dict[int, str] = {}
    for name, w in sorted(fracs.items()):
        copies = int(w * d)
        for _ in range(copies):
            origin[len(elements)] = name
            elements.append(inputs[name])
    return elements, origin, d


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def find_good_sm_proof(
    lattice: Lattice,
    weights: Mapping[str, Fraction],
    inputs: Mapping[str, int],
    max_steps: int | None = None,
    require_good: bool = True,
) -> SMProof | None:
    """DFS over SM-step choices for a (good) terminal proof reaching d
    copies of 1̂.

    Returns None when no such sequence exists — which is a *proof sketch*
    of non-existence only up to the search bound ``max_steps`` (default
    4·|L|, comfortably above the paper's sequences).
    """
    elements, origin, d = initial_multiset(weights, inputs)
    if max_steps is None:
        max_steps = 4 * lattice.n
    base = SMProof(lattice, list(elements), dict(origin))
    seen_states: set[tuple] = set()

    def state_key(proof: SMProof) -> tuple:
        alive = sorted(proof.elements[i] for i in proof.final_items())
        return tuple(alive)

    def dfs(proof: SMProof) -> SMProof | None:
        if proof.is_terminal():
            if proof.reaches_top() >= d and (
                not require_good or proof.label_trace()[0]
            ):
                return proof
            return None
        if len(proof.steps) >= max_steps:
            return None
        if not require_good:
            # The alive multiset fully determines the future when labels
            # are ignored; with goodness required, label history matters,
            # so memoization would be unsound.
            key = state_key(proof)
            if key in seen_states:
                return None
            seen_states.add(key)
        alive = proof.final_items()
        for a, b in itertools.combinations(alive, 2):
            x, y = proof.elements[a], proof.elements[b]
            if not lattice.incomparable(x, y):
                continue
            meet_item = len(proof.elements)
            join_item = meet_item + 1
            proof.elements.extend([lattice.meet(x, y), lattice.join(x, y)])
            proof.steps.append(SMStep(a, b))
            proof.produced.append((meet_item, join_item))
            if not require_good or _prefix_labels_ok(proof):
                found = dfs(proof)
                if found is not None:
                    return found
            proof.elements.pop()
            proof.elements.pop()
            proof.steps.pop()
            proof.produced.pop()
        return None

    result = dfs(base)
    if result is None:
        return None
    # Return a detached copy.
    return SMProof(
        lattice,
        list(result.elements),
        dict(result.initial),
        list(result.steps),
        list(result.produced),
    )


def _prefix_labels_ok(proof: SMProof) -> bool:
    """All steps so far had non-empty label intersections."""
    labels: list[set[int]] = [set() for _ in proof.elements]
    for i in proof.initial:
        labels[i] = {1}
    next_label = 2
    bottom = proof.lattice.bottom
    for step, (meet_item, join_item) in zip(proof.steps, proof.produced):
        common = labels[step.left] & labels[step.right]
        if not common:
            return False
        labels[join_item] = set(common)
        if proof.elements[meet_item] != bottom:
            fresh = next_label
            next_label += 1
            labels[meet_item] = {fresh}
            for idx in range(len(labels)):
                if idx in (step.left, step.right, meet_item, join_item):
                    continue
                if labels[idx] & common:
                    labels[idx].add(fresh)
    return True


def sm_proof_exists(
    lattice: Lattice,
    weights: Mapping[str, Fraction],
    inputs: Mapping[str, int],
    max_steps: int | None = None,
) -> bool:
    """Does *any* terminal SM-proof reach d copies of 1̂ (goodness ignored)?

    Ex. 5.31 / Fig. 9: returns False for h(M)+h(N)+h(O) >= 2 h(1̂)."""
    return (
        find_good_sm_proof(
            lattice, weights, inputs, max_steps=max_steps, require_good=False
        )
        is not None
    )
