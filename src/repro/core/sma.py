"""The Sub-Modularity Algorithm — Algorithm 2 of the paper (Sec. 5.2).

SMA executes an SM-proof sequence: each SM-step (X, Y) → (X∧Y, X∨Y)
becomes an *SM-join* that splits Π_{X∧Y}(T(Y)) into light and heavy values
at the threshold 2^{h*(Y) - h*(X∧Y)}:

* ``T(X∨Y) = (T(X) ⋈ (T(Y) ⋉ Lite))⁺``  — bounded by 2^{h*(X∨Y)},
* ``T(X∧Y) = Π_Z(T(X)) ∩ Π_Z(T(Y)) ∩ Heavy``  — bounded by 2^{h*(X∧Y)},

by Lemma 5.24's invariant ``log |T(B)| <= h*(B)`` (which this
implementation asserts).  With a *good* proof sequence (Def. 5.26) the
union of the T(1̂) tables, semi-join reduced against the inputs, is exactly
the query output (Thm. 5.28), in time Õ(N + Π_j N_j^{w*_j}).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.proofs import SMProof, find_good_sm_proof
from repro.engine import frontier as frontier_blocks
from repro.engine import shard as frontier_shard
from repro.engine.database import Database
from repro.engine.expansion_plan import tuple_getter
from repro.engine.ops import WorkCounter, memoized_join_rows
from repro.engine.relation import Relation
from repro.lattice.lattice import Lattice
from repro.lattice.polymatroid import LatticeFunction
from repro.lp.llp import LatticeLinearProgram
from repro.query.query import Query


class SMAError(RuntimeError):
    """SMA could not run (no good proof sequence, or invariant violated)."""


@dataclass
class SMAStats:
    tuples_touched: int = 0
    table_sizes: dict[int, int] = field(default_factory=dict)
    heavy_sizes: list[int] = field(default_factory=list)
    budget_log2: float = 0.0


def submodularity_algorithm(
    query: Query,
    db: Database,
    lattice: Lattice,
    inputs: Mapping[str, int],
    proof: SMProof | None = None,
    h_star: LatticeFunction | None = None,
    slack_bits: float = 1.0,
) -> tuple[Relation, SMAStats]:
    """Evaluate ``query`` with SMA.

    ``proof``/``h_star`` default to the dual-optimal LLP certificate and a
    good proof sequence found by search; raises :class:`SMAError` when no
    good sequence exists (e.g. Fig. 9 / Ex. 5.31 — use CSMA there).
    ``slack_bits`` loosens the Lemma 5.24 assertion to absorb the integer
    rounding the paper also ignores.
    """
    log_sizes = db.log_sizes()
    if any(len(db[name]) == 0 for name in inputs):
        top_attrs = tuple(sorted(lattice.label(lattice.top)))
        return Relation("Q", top_attrs, ()), SMAStats()
    if h_star is None or proof is None:
        program = LatticeLinearProgram(
            lattice, inputs, {name: log_sizes[name] for name in inputs}
        )
        solution = program.solve()
        h_star = solution.h
        weights = solution.inequality.weights
        proof = find_good_sm_proof(lattice, weights, inputs)
        if proof is None:
            raise SMAError(
                "no good SM-proof sequence exists for the optimal dual "
                "weights; CSMA handles this case"
            )
    counter = WorkCounter()
    stats = SMAStats(budget_log2=float(h_star.values[lattice.top]))
    encoded = db.encoded

    # Initial temporary tables: one expanded copy of R_j per multiset item
    # (on the active plane — with a codec every SM-join, light/heavy split
    # and projection below runs on dictionary codes; ``final_filter`` is
    # the decode boundary).
    tables: dict[int, Relation] = {}
    for item, name in proof.initial.items():
        expanded = db.expand_runtime(name, counter=counter)
        tables[item] = expanded
        _assert_budget(expanded, h_star, inputs[name], lattice, slack_bits)

    for step, (meet_item, join_item) in zip(proof.steps, proof.produced):
        t_x = tables.pop(step.left)
        t_y = tables.pop(step.right)
        x = proof.elements[step.left]
        y = proof.elements[step.right]
        z = lattice.meet(x, y)
        xy = lattice.join(x, y)
        z_attrs = tuple(sorted(lattice.label(z)))
        # Light iff log2(degree) <= h*(Y) - h*(Z), tested with a small
        # slack in bits so that boundary degrees (exactly at the
        # threshold) stay light despite the rationalization of h*.
        threshold = 2.0 ** (
            float(h_star.values[y] - h_star.values[z]) + 1e-6
        )

        # Partition Π_Z(T(Y)) into light and heavy hitters (lines 5-6).
        y_z_index = t_y.index_on(z_attrs)
        z_positions_y = t_y.positions(z_attrs)
        lite_keys: set[tuple] = set()
        heavy_keys: set[tuple] = set()
        for key, bucket in y_z_index.items():
            counter.add()
            if len(bucket) <= threshold:
                lite_keys.add(key)
            else:
                heavy_keys.add(key)
        stats.heavy_sizes.append(len(heavy_keys))

        # T(X∧Y) = Π_Z(T(X)) ∩ Π_Z(T(Y)) ∩ Heavy (line 8).
        z_positions_x = t_x.positions(tuple(a for a in z_attrs))
        x_z_proj = {tuple(t[p] for p in z_positions_x) for t in t_x.tuples}
        meet_tuples = [key for key in heavy_keys if key in x_z_proj]
        tables[meet_item] = Relation(
            f"T({meet_item})", z_attrs, meet_tuples, distinct=True
        )

        # T(X∨Y) = (T(X) ⋈ (T(Y) ⋉ Lite))⁺ (line 9), executed on the
        # compiled expansion plan for the concatenated (X ++ Y-extra)
        # layout.  The join frontier materializes through the shared
        # per-key memoized core (``memoized_join_rows`` — the ``keep``
        # filter is the light-hitter test); counter charges are the
        # pre-filter match counts, as in the naive loop.  On the encoded
        # plane with a large T(X) the whole SM-join runs vectorized
        # instead: ``frontier.key_join`` over T(Y)'s sorted key block,
        # the light-hitter test as a key-block membership, and the
        # frontier an int64 block end to end — same rows, same order,
        # same pre-filter match charges.
        xy_attrs = lattice.label(xy)
        y_extra = tuple(a for a in t_y.schema if a not in t_x.varset)
        y_lookup_attrs = tuple(a for a in t_y.schema if a in t_x.varset)
        z_key_of = tuple_getter(z_positions_y)
        out_schema = tuple(sorted(xy_attrs))
        tables[join_item] = None
        # The block join engages only when the downstream plan has steps:
        # a step-less join materializes straight into relation tuples,
        # where the per-key memoized C loop beats gather-and-retuple.
        if (
            encoded
            and y_lookup_attrs
            and z_attrs
            and frontier_blocks.ndarray_engaged(len(t_x))
            and db.expansion_plan(
                t_x.schema + y_extra, xy_attrs, encoded=True
            ).steps
        ):
            np = frontier_blocks.np
            left_block = frontier_blocks.columns_to_block(
                t_x.columns(), len(t_x.tuples)
            )
            if left_block is not None:
                sorted_keys, payload = t_y.join_block(
                    y_lookup_attrs, y_extra + z_attrs
                )
                reps, gather, touched = frontier_shard.key_join(
                    sorted_keys, left_block, t_x.positions(y_lookup_attrs)
                )
                counter.add(touched)
                if lite_keys:
                    lite_sorted, _ = frontier_blocks.sorted_key_block(
                        frontier_blocks.rows_to_block(
                            list(lite_keys), len(z_attrs)
                        )
                    )
                else:
                    lite_sorted = ("empty", None, None)
                # Light-hitter test on the z columns only, then gather
                # just the survivors — a heavy split is supposed to drop
                # most matches, so the full-width join block is never
                # materialized pre-filter.
                keep = frontier_shard.block_isin(
                    payload[:, len(y_extra):][gather],
                    tuple(range(len(z_attrs))),
                    lite_sorted,
                )
                rows_block = left_block[reps[keep]]
                if y_extra:
                    rows_block = np.concatenate(
                        (rows_block, payload[gather[keep], : len(y_extra)]),
                        axis=1,
                    )
                tables[join_item] = db.expand_block_relation(
                    f"T({join_item})",
                    rows_block,
                    t_x.schema + y_extra,
                    xy_attrs,
                    out_schema,
                    counter=counter,
                )
        if tables[join_item] is None:
            rows, touched = memoized_join_rows(
                t_x.tuples,
                t_x.positions(y_lookup_attrs),
                t_y.index_on(y_lookup_attrs),
                tuple_getter(t_y.positions(y_extra)),
                keep=lambda match: z_key_of(match) in lite_keys,
            )
            counter.add(touched)
            # The join frontier flows through the compiled plan as one
            # batch and materializes as T(X∨Y) column-wise — no
            # re-tupling detour between the plan's output block and the
            # relation's column store.
            tables[join_item] = db.expand_rows_relation(
                f"T({join_item})",
                rows,
                t_x.schema + y_extra,
                xy_attrs,
                out_schema,
                counter=counter,
                encoded=encoded,
            )
        _assert_budget(tables[meet_item], h_star, z, lattice, slack_bits)
        _assert_budget(tables[join_item], h_star, xy, lattice, slack_bits)
        stats.table_sizes[meet_item] = len(tables[meet_item])
        stats.table_sizes[join_item] = len(tables[join_item])

    # Union of top tables, filtered exactly against all inputs (line 10).
    top_attrs = tuple(sorted(lattice.label(lattice.top)))
    candidates: dict[tuple, None] = {}
    for item, rel in tables.items():
        if proof.elements[item] != lattice.top:
            continue
        aligned = rel.project(top_attrs)
        for t in aligned.tuples:
            candidates.setdefault(t, None)
    result = db.final_filter(
        top_attrs, candidates, inputs, counter=counter, encoded=encoded
    )
    stats.tuples_touched = counter.tuples_touched
    return Relation("Q", top_attrs, result), stats


def _assert_budget(
    table: Relation,
    h_star: LatticeFunction,
    element: int,
    lattice: Lattice,
    slack_bits: float,
) -> None:
    """Lemma 5.24: log |T(B)| <= h*(B) (up to integrality slack)."""
    if len(table) == 0:
        return
    actual = math.log2(len(table))
    allowed = float(h_star.values[element]) + slack_bits
    if actual > allowed:
        raise SMAError(
            f"budget invariant violated at {lattice.label(element)!r}: "
            f"log|T| = {actual:.3f} > h* + slack = {allowed:.3f}"
        )
