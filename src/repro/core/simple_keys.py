"""The closure trick for simple keys (Sec. 2, "Closure").

When every fd is a *guarded simple key* (u → v with u a key of some input
relation), replacing each relation by its expansion R⁺ and forgetting the
fds preserves the output, and AGM(Q⁺) is a tight bound — so any
FD-oblivious worst-case-optimal join on the expanded query is worst-case
optimal for the original.  This predates the lattice machinery and is the
paper's baseline FD-exploiting strategy; the Chain Algorithm subsumes it
(simple fds ⇒ distributive lattice ⇒ tight chain bound), but it is the
cheapest option when it applies.
"""

from __future__ import annotations

from repro.core.bounds import closure_bound_log2
from repro.engine.database import Database
from repro.engine.generic_join import GenericJoinStats, generic_join
from repro.engine.relation import Relation
from repro.query.query import Query


def all_guarded_simple_keys(query: Query) -> bool:
    """Is every fd a simple fd guarded by a relation in which the lhs is a
    key?  (The paper's "simple keys" case.)"""
    for fd in query.fds:
        if not fd.is_simple:
            return False
        if query.guard(fd) is None:
            return False
    return True


def closure_trick_join(
    query: Query, db: Database
) -> tuple[Relation, GenericJoinStats]:
    """Evaluate via Q⁺: expand every relation to its closure, drop the
    fds, and run a generic worst-case-optimal join.

    Valid whenever every fd is *expandable* (guarded or UDF-backed); tight
    (worst-case optimal) when the fds are simple keys.
    """
    expanded_query = query.closure_query()
    expanded_relations = []
    for atom in query.atoms:
        expanded = db.expand_relation(db[atom.name])
        attrs = expanded_query.atom(atom.name).attrs
        expanded_relations.append(
            expanded.project(attrs, name=atom.name)
        )
    expanded_db = Database(expanded_relations, udfs=list(db.udfs))
    out, stats = generic_join(expanded_query, expanded_db)
    # Restore the original variable order and filter any UDF-definable
    # variable consistency (no-op when the fds are guarded).
    missing = [v for v in query.variables if v not in out.schema]
    if missing:
        rows = []
        target = frozenset(query.variables)
        for row in out.as_dicts():
            full = db.expand_tuple(row, target=target)
            if full is not None and db.udf_consistent(full):
                rows.append(tuple(full[v] for v in query.variables))
        out = Relation("Q", query.variables, rows)
    else:
        out = out.project(query.variables, name="Q")
    return out, stats


def closure_trick_budget_log2(query: Query, db: Database) -> float:
    """The strategy's budget: AGM(Q⁺) with the *expanded* cardinalities
    (expansion never grows a relation, so the original sizes are upper
    bounds)."""
    return closure_bound_log2(query, db.sizes())
