"""Output-size bound calculators (the paper's full hierarchy, Fig. 10).

For a query with cardinalities this module computes, all in log2:

* ``agm``          — the AGM bound (Thm. 2.1), ignoring fds;
* ``closure``      — AGM(Q⁺) (Sec. 2, tight for simple keys);
* ``glvv``         — the GLVV bound = LLP optimum (Prop. 3.4);
* ``chain``        — the best chain bound over good chains (Thm. 5.3);
* ``normal``       — max over *normal* polymatroids (= co-atomic cover
  bound on normal lattices, Thm. 4.9); also the GLVV "color number" bound;
* ``coatomic``     — the fractional edge cover bound of H_co (Lemma 4.8).

On a normal lattice glvv == normal == coatomic; chain >= glvv always,
with equality on distributive lattices (Cor. 5.15).

Every bound here is the value of a small LP routed through
:func:`repro.lp.solver.solve_lp`, which solves on the exact rational
backend under every policy (``REPRO_LP_BACKEND=scipy/both`` only adds a
per-solve scipy cross-check); the reported float is ``float()`` of a
certificate-verified canonical rational optimum rather than raw solver
output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.lattice.lattice import Lattice
from repro.lattice.properties import coatomic_hypergraph
from repro.lp.llp import LatticeLinearProgram
from repro.lp.solver import solve_lp
from repro.query.query import Query


@dataclass
class BoundReport:
    """All bounds for one (query, cardinalities) pair, in log2."""

    agm: float
    closure: float
    glvv: float
    chain: float
    normal: float
    coatomic: float

    def as_dict(self) -> dict[str, float]:
        return {
            "agm": self.agm,
            "closure": self.closure,
            "glvv": self.glvv,
            "chain": self.chain,
            "normal": self.normal,
            "coatomic": self.coatomic,
        }

    def sizes(self) -> dict[str, float]:
        """The bounds as tuple counts (2^log2)."""
        return {k: 2.0**v for k, v in self.as_dict().items()}


def agm_bound_log2(query: Query, sizes: Mapping[str, int]) -> float:
    """ρ*(Q, (N_j)) — weighted fractional edge cover of the query hypergraph."""
    logs = query.cardinalities_log(sizes)
    objective, _ = query.hypergraph().fractional_edge_cover_number(logs)
    return float(objective)


def closure_bound_log2(query: Query, sizes: Mapping[str, int]) -> float:
    """AGM(Q⁺): replace every relation by its closure, drop the fds."""
    return agm_bound_log2(query.closure_query(), sizes)


def glvv_bound_log2(
    query: Query, sizes: Mapping[str, int]
) -> tuple[float, Lattice, dict[str, int]]:
    """The GLVV bound via the LLP (Prop. 3.4); returns the lattice too."""
    lattice, inputs = lattice_from_query(query)
    logs = query.cardinalities_log(sizes)
    program = LatticeLinearProgram(lattice, inputs, logs)
    objective, _ = program.solve_primal()
    return objective, lattice, inputs


def normal_bound_log2(
    lattice: Lattice, inputs: Mapping[str, int], log_sizes: Mapping[str, float]
) -> float:
    """max h(1̂) over *normal* polymatroids with h(R_j) <= n_j.

    Decomposing h = Σ_Z a_Z h_Z into step functions (Sec. 4) turns this
    into the LP of Thm. 4.9's proof: max Σ_Z a_Z s.t.
    Σ {a_Z : R_j ≰ Z} <= n_j.  Via the coloring correspondence (Sec. 4.3)
    this is also the fractional relaxation of the GLVV color-number bound.
    """
    candidates = [z for z in range(lattice.n) if z != lattice.top]
    costs = [-1.0] * len(candidates)  # maximize Σ a_Z
    a_ub = []
    b_ub = []
    for name, r in inputs.items():
        row = [
            1.0 if not lattice.leq(r, z) else 0.0 for z in candidates
        ]
        a_ub.append(row)
        b_ub.append(float(log_sizes[name]))
    solution = solve_lp(costs, a_ub, b_ub)
    if solution.certificate is not None:
        return -float(solution.certificate.objective)
    return -solution.objective


def coatomic_bound_log2(
    lattice: Lattice, inputs: Mapping[str, int], log_sizes: Mapping[str, float]
) -> float:
    """min Σ w_j n_j over fractional edge covers of H_co (Lemma 4.8).

    Infinite when H_co has an isolated vertex (an input above every
    co-atom is impossible since inputs join to 1̂ — but a co-atom above
    *all* inputs is possible and makes the cover infeasible).
    """
    graph = coatomic_hypergraph(lattice, inputs)
    if graph.isolated_vertices():
        return math.inf
    objective, _ = graph.fractional_edge_cover_number(dict(log_sizes))
    return float(objective)


def compute_bounds(query: Query, sizes: Mapping[str, int]) -> BoundReport:
    """The full bound hierarchy for one query + cardinalities."""
    logs = query.cardinalities_log(sizes)
    agm = agm_bound_log2(query, sizes)
    closure = closure_bound_log2(query, sizes)
    glvv, lattice, inputs = glvv_bound_log2(query, sizes)
    chain, _, _ = best_chain_bound(lattice, inputs, logs)
    normal = normal_bound_log2(lattice, inputs, logs)
    coatomic = coatomic_bound_log2(lattice, inputs, logs)
    return BoundReport(
        agm=agm,
        closure=closure,
        glvv=glvv,
        chain=chain,
        normal=normal,
        coatomic=coatomic,
    )
