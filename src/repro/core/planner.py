"""Strategy selection: which of the paper's algorithms fits a query best.

The decision mirrors the paper's hierarchy (Fig. 10):

* no fds                       → generic join (already worst-case optimal);
* best chain bound == GLVV     → Chain Algorithm (single log factor,
  always the case on distributive lattices / simple fds, Cor. 5.15/5.17);
* a good SM-proof exists       → SMA (single log factor, Thm. 5.28);
* otherwise                    → CSMA (polylog factor, Thm. 5.37).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.proofs import find_good_sm_proof
from repro.core.sma import submodularity_algorithm
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.relation import Relation
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.lp.llp import LatticeLinearProgram
from repro.query.query import Query


@dataclass
class PlanChoice:
    """The planner's verdict for one (query, cardinalities) pair."""

    algorithm: str            # "generic-join" | "chain" | "sma" | "csma"
    glvv_log2: float
    chain_log2: float
    reason: str


class Planner:
    """Chooses and runs the cheapest applicable strategy."""

    def __init__(self, query: Query, db: Database):
        self.query = query
        self.db = db
        self.lattice, self.inputs = lattice_from_query(query)
        self._log_sizes = {
            name: db.log_sizes()[name] for name in self.inputs
        }
        # choose() is deterministic per tolerance; run() re-asks it, and
        # the underlying LP solves are memoized anyway — cache the verdict
        # (and the chain it was based on) so repeated queries are free.
        self._choices: dict[float, PlanChoice] = {}
        self._chain = None

    def choose(self, tolerance: float = 1e-6) -> PlanChoice:
        cached = self._choices.get(tolerance)
        if cached is not None:
            return cached
        choice = self._choose(tolerance)
        self._choices[tolerance] = choice
        return choice

    def _choose(self, tolerance: float) -> PlanChoice:
        from repro.core.simple_keys import all_guarded_simple_keys

        if not self.query.fds:
            program = LatticeLinearProgram(
                self.lattice, self.inputs, self._log_sizes
            )
            glvv, _ = program.solve_primal()
            return PlanChoice(
                algorithm="generic-join",
                glvv_log2=glvv,
                chain_log2=glvv,
                reason="no fds: AGM bound applies, generic join is optimal",
            )
        if all_guarded_simple_keys(self.query):
            program = LatticeLinearProgram(
                self.lattice, self.inputs, self._log_sizes
            )
            glvv, _ = program.solve_primal()
            return PlanChoice(
                algorithm="closure-trick",
                glvv_log2=glvv,
                chain_log2=glvv,
                reason="all fds are guarded simple keys: AGM(Q+) is tight "
                "(Sec. 2) and any WCOJ on Q+ is worst-case optimal",
            )
        program = LatticeLinearProgram(self.lattice, self.inputs, self._log_sizes)
        solution = program.solve()
        glvv = solution.objective
        chain_log2, chain, _ = best_chain_bound(
            self.lattice, self.inputs, self._log_sizes
        )
        self._chain = chain
        if chain is not None and chain_log2 <= glvv + tolerance:
            return PlanChoice(
                algorithm="chain",
                glvv_log2=glvv,
                chain_log2=chain_log2,
                reason="a good chain meets the GLVV bound (Thm. 5.3)",
            )
        proof = find_good_sm_proof(
            self.lattice, solution.inequality.weights, self.inputs
        )
        if proof is not None:
            return PlanChoice(
                algorithm="sma",
                glvv_log2=glvv,
                chain_log2=chain_log2,
                reason="a good SM-proof of the optimal inequality exists "
                "(Thm. 5.28)",
            )
        return PlanChoice(
            algorithm="csma",
            glvv_log2=glvv,
            chain_log2=chain_log2,
            reason="no tight chain and no good SM-proof: CSMA (Thm. 5.37)",
        )

    def run(self) -> tuple[Relation, PlanChoice]:
        from repro.core.simple_keys import closure_trick_join

        choice = self.choose()
        if choice.algorithm == "generic-join":
            out, _ = generic_join(self.query, self.db)
        elif choice.algorithm == "closure-trick":
            out, _ = closure_trick_join(self.query, self.db)
        elif choice.algorithm == "chain":
            chain = self._chain
            if chain is None:
                _, chain, _ = best_chain_bound(
                    self.lattice, self.inputs, self._log_sizes
                )
            out, _ = chain_algorithm(
                self.query, self.db, self.lattice, self.inputs, chain
            )
        elif choice.algorithm == "sma":
            out, _ = submodularity_algorithm(
                self.query, self.db, self.lattice, self.inputs
            )
        else:
            out = csma(
                self.query, self.db, self.lattice, self.inputs
            ).relation
        return out, choice
