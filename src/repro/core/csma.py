"""CSMA — the Conditional Sub-Modularity Algorithm (Sec. 5.3).

CSMA meets the GLVV/CLLP bound up to a polylog factor (Thm. 5.37) and, via
the Conditional LLP, natively supports *prescribed maximum degree bounds*
(Prop. 5.32) — strictly generalizing both cardinality constraints and fds.

Pipeline (Secs. 5.3.2-5.3.3):

1. Solve the CLLP; take a feasible dual (c, s, m).
2. Build a **CSM proof sequence** of CD / CC / SM rules by the conditional
   closure procedure of Lemma 5.33 / Thm. 5.34.
3. Execute the rules on *branches*:
   - **CD** h(Y) → h(X) + h(Y|X): partition the guard T(Y) into O(log N)
     log-degree buckets (Lemma 5.35) and recurse per bucket;
   - **CC** h(X) + h(Y|X) → h(Y) and **SM** h(A) + h(B|A∧B) → h(A∨B):
     join the guards when the measured cost fits in 2^(OPT+θ); otherwise
     the branch's CLLP optimum has provably dropped (Lemma 5.36) — re-solve
     with the branch's accumulated degree constraints and restart the
     branch on the new proof sequence.
4. The union of branch T(1̂) tables, filtered exactly against the inputs,
   is the query output.

Branches partition the data, every join is complete within its branch, and
the final filter is exact, so the result equals the query answer whenever
the run completes; the stats record any safety fallbacks (none on the
paper's examples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.engine import frontier as frontier_blocks
from repro.engine import shard as frontier_shard
from repro.engine.database import Database
from repro.engine.expansion_plan import tuple_getter
from repro.engine.ops import WorkCounter, memoized_join_rows
from repro.engine.relation import Relation
from repro.lattice.lattice import Lattice
from repro.lp.cllp import CLLPSolution, ConditionalLLP, DegreeConstraint, DualCLLP
from repro.query.query import Query


class CSMAError(RuntimeError):
    pass


@dataclass(frozen=True)
class CSMRule:
    """One proof rule.  CD: h(y) → h(x) + h(y|x);  CC: h(x) + h(y|x) → h(y);
    SM: h(x) + h(y | x∧y) → h(x∨y)."""

    kind: str  # "CD" | "CC" | "SM"
    x: int
    y: int

    def describe(self, lattice: Lattice) -> str:
        def show(el: int) -> str:
            label = lattice.label(el)
            if isinstance(label, frozenset):
                return "".join(sorted(map(str, label))) or "∅"
            return str(label)

        x, y = show(self.x), show(self.y)
        if self.kind == "CD":
            return f"CD: h({y}) → h({x}) + h({y}|{x})"
        if self.kind == "CC":
            return f"CC: h({x}) + h({y}|{x}) → h({y})"
        join = show(self.lattice_join(lattice))
        return f"SM: h({x}) + h({y}|{x}∧{y}) → h({join})"

    def lattice_join(self, lattice: Lattice) -> int:
        return lattice.join(self.x, self.y)


def build_csm_proof(
    lattice: Lattice, dual: DualCLLP, initial_pairs: Iterable[tuple[int, int]]
) -> list[CSMRule]:
    """The constructive proof of Theorem 5.34.

    Grow K from {0̂} by conditional closure (CC-steps along positive
    c_{Y|X}, CD-steps downward), and when stuck apply the SM-pair that
    Lemma 5.33 guarantees.  Rules are recorded forward, then pruned
    backward to those actually feeding the final h(1̂).
    """
    bottom, top = lattice.bottom, lattice.top
    k: set[int] = {bottom}
    rules: list[CSMRule] = []
    initial_pairs = set(initial_pairs)

    def close() -> None:
        changed = True
        while changed:
            changed = False
            for (x, y), value in dual.c.items():
                if value > 0 and x in k and y not in k:
                    rules.append(CSMRule("CC", x, y))
                    k.add(y)
                    changed = True
            for y in sorted(k):
                for x in range(lattice.n):
                    if x not in k and lattice.lt(x, y):
                        rules.append(CSMRule("CD", x, y))
                        k.add(x)
                        changed = True

    close()
    guard_steps = 0
    while top not in k:
        guard_steps += 1
        if guard_steps > lattice.n + 1:
            raise CSMAError("conditional closure failed to reach 1̂")
        for (a, b), value in dual.s.items():
            join = lattice.join(a, b)
            if value > 0 and a in k and b in k and join not in k:
                meet = lattice.meet(a, b)
                if meet != bottom:
                    rules.append(CSMRule("CD", meet, b))
                rules.append(CSMRule("SM", a, b))
                k.add(join)
                break
        else:
            raise CSMAError(
                "no SM pair available — dual certificate does not reach 1̂ "
                "(contradicts Lemma 5.33 for a feasible dual)"
            )
        close()
    return _prune_rules(lattice, rules, initial_pairs)


def _prune_rules(
    lattice: Lattice,
    rules: list[CSMRule],
    initial_pairs: set[tuple[int, int]],
) -> list[CSMRule]:
    """Backward slicing: keep only rules whose products feed h(1̂).

    Tracks two needs: table terms h(X) and conditional terms h(Y|X)."""
    bottom, top = lattice.bottom, lattice.top
    needed_tables: set[int] = {top}
    needed_conditionals: set[tuple[int, int]] = set()
    keep: list[bool] = [False] * len(rules)
    for idx in range(len(rules) - 1, -1, -1):
        rule = rules[idx]
        if rule.kind == "SM":
            target = lattice.join(rule.x, rule.y)
            if target in needed_tables:
                keep[idx] = True
                needed_tables.discard(target)
                needed_tables.add(rule.x)
                meet = lattice.meet(rule.x, rule.y)
                if meet == bottom:
                    needed_tables.add(rule.y)
                else:
                    needed_conditionals.add((meet, rule.y))
        elif rule.kind == "CC":
            if rule.y in needed_tables:
                keep[idx] = True
                needed_tables.discard(rule.y)
                needed_tables.add(rule.x)
                if (rule.x, rule.y) not in initial_pairs:
                    needed_conditionals.add((rule.x, rule.y))
        else:  # CD
            produces_table = rule.x in needed_tables
            produces_cond = (rule.x, rule.y) in needed_conditionals
            if produces_table or produces_cond:
                keep[idx] = True
                needed_tables.discard(rule.x)
                needed_conditionals.discard((rule.x, rule.y))
                needed_tables.add(rule.y)
    return [rule for idx, rule in enumerate(rules) if keep[idx]]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

@dataclass
class _Branch:
    """A subproblem: its guard tables and accumulated degree constraints."""

    tables: dict[int, Relation]
    degree_guards: dict[tuple[int, int], Relation]

    def clone(self) -> "_Branch":
        return _Branch(dict(self.tables), dict(self.degree_guards))

    def measured_constraints(self, lattice: Lattice) -> list[DegreeConstraint]:
        """Honest CLLP constraints from the branch's current tables."""
        constraints: list[DegreeConstraint] = []
        for element, table in self.tables.items():
            if element == lattice.bottom:
                continue
            size = max(1, len(table))
            constraints.append(
                DegreeConstraint(lattice.bottom, element, math.log2(size))
            )
        for (x, y), table in self.degree_guards.items():
            x_attrs = tuple(sorted(lattice.label(x))) if isinstance(
                lattice.label(x), frozenset
            ) else ()
            degree = max(1, table.max_degree(x_attrs))
            constraints.append(DegreeConstraint(x, y, math.log2(degree)))
        return constraints


@dataclass
class CSMAResult:
    relation: Relation
    stats: "CSMAStats"


@dataclass
class CSMAStats:
    tuples_touched: int = 0
    branches: int = 0
    restarts: int = 0
    fallbacks: int = 0
    opt_log2: float = 0.0
    budget_log2: float = 0.0
    rules: list[str] = field(default_factory=list)


def csma(
    query: Query,
    db: Database,
    lattice: Lattice,
    inputs: Mapping[str, int],
    extra_degree_constraints: Sequence[DegreeConstraint] = (),
    theta_bits: float = 4.0,
    max_restarts: int = 24,
) -> CSMAResult:
    """Run CSMA on ``query``.

    ``extra_degree_constraints`` declare known maximum degree bounds
    (Sec. 1.2); each must name a ``guard`` relation that witnesses it.
    ``theta_bits`` is the budget slack θ (Lemma 5.36): joins may cost up to
    2^(OPT + θ); larger θ means fewer restarts but looser budgets.
    """
    counter = WorkCounter()
    stats = CSMAStats()
    log_sizes = db.log_sizes()

    # Expanded inputs (closed schemas) serve as the initial guards, on the
    # active plane: with a codec every CD bucketing, CC/SM join and budget
    # measurement below runs on dictionary codes, and ``final_filter`` is
    # the decode boundary.
    expanded: dict[str, Relation] = {
        name: db.expand_runtime(name, counter=counter) for name in inputs
    }
    base_constraints: list[DegreeConstraint] = [
        DegreeConstraint(lattice.bottom, r, log_sizes[name], guard=name)
        for name, r in inputs.items()
    ]
    base_constraints.extend(extra_degree_constraints)

    root = _Branch(tables={}, degree_guards={})
    # T(0̂) is the unit relation {()} — the starting point of every
    # conditional composition (cardinality constraints are degree bounds
    # of the empty tuple, Sec. 5.3.1).
    root.tables[lattice.bottom] = Relation("T(0̂)", (), [()])
    for name, r in inputs.items():
        root.tables[r] = expanded[name]
        root.degree_guards[(lattice.bottom, r)] = expanded[name]
    for dc in extra_degree_constraints:
        if dc.guard is None or dc.guard not in expanded and dc.guard not in db:
            raise CSMAError(
                f"degree constraint {dc} must name a guard relation"
            )
        guard_rel = expanded.get(dc.guard) or db.expand_runtime(
            dc.guard, counter=counter
        )
        root.degree_guards[dc.pair] = guard_rel

    program = ConditionalLLP(lattice, base_constraints)
    solution = program.solve()
    stats.opt_log2 = solution.objective
    stats.budget_log2 = solution.objective + theta_bits
    rules = build_csm_proof(
        lattice, solution.dual, [dc.pair for dc in base_constraints]
    )
    stats.rules = [r.describe(lattice) for r in rules]

    outputs: list[Relation] = []
    budget = 2.0 ** (solution.objective + theta_bits)

    def run_branch(branch: _Branch, todo: list[CSMRule], restarts: int) -> None:
        stats.branches += 1
        idx = 0
        while idx < len(todo):
            rule = todo[idx]
            if rule.kind == "CD":
                children = _execute_cd(branch, rule, lattice, counter)
                for child in children:
                    run_branch(child, todo[idx + 1 :], restarts)
                return
            ok = _execute_join_rule(
                branch, rule, lattice, db, budget, counter
            )
            if not ok:
                _restart(branch, todo[idx:], restarts)
                return
            idx += 1
        top_table = branch.tables.get(lattice.top)
        if top_table is not None:
            outputs.append(top_table)

    def _restart(branch: _Branch, remaining: list[CSMRule], restarts: int) -> None:
        stats.restarts += 1
        if restarts >= max_restarts:
            stats.fallbacks += 1
            outputs.append(_fallback_join(branch, lattice, db, inputs, counter))
            return
        constraints = base_constraints + branch.measured_constraints(lattice)
        sub_program = ConditionalLLP(lattice, constraints)
        try:
            sub_solution = sub_program.solve()
            sub_rules = build_csm_proof(
                lattice, sub_solution.dual, [dc.pair for dc in constraints]
            )
        except (CSMAError, RuntimeError):
            stats.fallbacks += 1
            outputs.append(_fallback_join(branch, lattice, db, inputs, counter))
            return
        run_branch(branch, sub_rules, restarts + 1)

    run_branch(root, rules, 0)

    # Union + exact filter against the original inputs (and UDF-consistency,
    # which holds by construction through the expansion procedure).  The
    # filter runs positionally on the compiled membership/UDF checks.
    top_attrs = tuple(sorted(lattice.label(lattice.top)))
    seen: dict[tuple, None] = {}
    for rel in outputs:
        # C-level union: dict.fromkeys preserves first-insertion order,
        # exactly like the per-tuple setdefault loop.
        seen.update(dict.fromkeys(rel.project(top_attrs).tuples))
    result = db.final_filter(
        top_attrs, seen, inputs, counter=counter, encoded=db.encoded
    )
    stats.tuples_touched = counter.tuples_touched
    return CSMAResult(Relation("Q", top_attrs, result), stats)


def _execute_cd(
    branch: _Branch, rule: CSMRule, lattice: Lattice, counter: WorkCounter
) -> list[_Branch]:
    """Lemma 5.35: partition T(Y) into log-degree buckets over X.

    Bucket j holds tuples whose X-value has degree in [2^j, 2^{j+1}), so
    each bucket satisfies n_X^{(j)} + n_{Y|X}^{(j)} <= n_Y + 1 (the extra
    bit is absorbed by θ rather than halving buckets as in the paper)."""
    table = branch.tables.get(rule.y)
    if table is None:
        table = branch.degree_guards.get((lattice.bottom, rule.y))
    if table is None:
        raise CSMAError(
            f"CD rule needs a guard table for {lattice.label(rule.y)!r}"
        )
    x_attrs = tuple(sorted(lattice.label(rule.x)))
    index = table.index_on(x_attrs)
    buckets: dict[int, list[tuple]] = {}
    bucket_indexes: dict[int, dict[tuple, list[tuple]]] = {}
    touched = 0
    for key, bucket in index.items():
        touched += len(bucket)
        level = max(0, int(math.log2(len(bucket))))
        buckets.setdefault(level, []).extend(bucket)
        bucket_indexes.setdefault(level, {})[key] = bucket
    counter.add(touched)
    children: list[_Branch] = []
    for level, tuples in sorted(buckets.items()):
        child = branch.clone()
        # Buckets partition the parent's (distinct) tuples, so the child is
        # distinct by provenance and inherits its X-index from the
        # partition instead of re-hashing.
        partition = bucket_indexes[level]
        sub_table = Relation(
            f"{table.name}@deg{level}", table.schema, tuples, distinct=True
        )
        sub_table.seed_index(x_attrs, partition)
        child.tables[rule.y] = sub_table
        child.degree_guards[(rule.x, rule.y)] = sub_table
        # Π_X of the bucket is exactly the partition's key set.
        child.tables[rule.x] = Relation(
            f"Π({table.name})@deg{level}", x_attrs, partition.keys(),
            distinct=True,
        )
        child.degree_guards[(lattice.bottom, rule.x)] = child.tables[rule.x]
        children.append(child)
    return children


def _execute_join_rule(
    branch: _Branch,
    rule: CSMRule,
    lattice: Lattice,
    db: Database,
    budget: float,
    counter: WorkCounter,
) -> bool:
    """CC and SM rules both join a table term with a conditional guard.

    Returns False when the measured cost exceeds the budget (Lemma 5.36
    then promises a strictly better CLLP optimum on restart)."""
    if rule.kind == "CC":
        left_el, cond = rule.x, (rule.x, rule.y)
        target = rule.y
    else:
        meet = lattice.meet(rule.x, rule.y)
        left_el = rule.x
        cond = (meet, rule.y)
        target = lattice.join(rule.x, rule.y)
    left = branch.tables.get(left_el)
    guard = branch.degree_guards.get(cond)
    if guard is None and cond[0] == lattice.bottom:
        guard = branch.tables.get(cond[1])
    if left is None or guard is None:
        raise CSMAError(
            f"rule {rule.kind}({lattice.label(rule.x)!r}, "
            f"{lattice.label(rule.y)!r}) is missing its guards"
        )
    shared = tuple(a for a in guard.schema if a in left.varset)
    max_deg = guard.max_degree(shared) if shared else len(guard)
    if len(left) * max(1, max_deg) > budget:
        return False
    target_attrs = lattice.label(target)
    guard_extra = tuple(a for a in guard.schema if a not in left.varset)
    out_schema = tuple(sorted(target_attrs))
    extra_key = tuple_getter(guard.positions(guard_extra))
    # Collect the whole (left ⋈ guard) frontier, then push it through the
    # compiled plan in one batch; an empty join (like the naive path)
    # never compiles anything.  On the encoded plane with a large left
    # side the join itself runs vectorized (``frontier.key_join`` over
    # the guard's sorted key block) and the frontier stays an int64
    # block end to end — emitted rows, match counts and output order are
    # exactly the per-key memoized loop's (``memoized_join_rows``).
    # Engages only when the downstream plan has steps — a step-less join
    # materializes straight into relation tuples, where the per-key
    # memoized C loop beats gather-and-retuple.
    if (
        shared
        and db.encoded
        and frontier_blocks.ndarray_engaged(len(left))
        and db.expansion_plan(
            left.schema + guard_extra, target_attrs, encoded=True
        ).steps
    ):
        np = frontier_blocks.np
        left_block = frontier_blocks.columns_to_block(
            left.columns(), len(left.tuples)
        )
        if left_block is not None:
            sorted_keys, payload = guard.join_block(shared, guard_extra)
            reps, gather, touched = frontier_shard.key_join(
                sorted_keys, left_block, left.positions(shared)
            )
            counter.add(touched)
            rows_block = left_block[reps]
            if guard_extra:
                rows_block = np.concatenate(
                    (rows_block, payload[gather]), axis=1
                )
            branch.tables[target] = db.expand_block_relation(
                f"T({lattice.label(target)})",
                rows_block,
                left.schema + guard_extra,
                target_attrs,
                out_schema,
                counter=counter,
            )
            branch.degree_guards[(lattice.bottom, target)] = branch.tables[
                target
            ]
            return True
    if shared:
        rows, touched = memoized_join_rows(
            left.tuples,
            left.positions(shared),
            guard.index_on(shared),
            extra_key,
        )
    else:
        rows, touched = [], 0
        if len(guard):
            extras = [extra_key(match) for match in guard.tuples]
            for t in left.tuples:
                touched += len(extras)
                rows.extend(map(t.__add__, extras))
    # One post per join: the total equals the per-tuple match charges.
    counter.add(touched)
    # (left tuple, guard image) → output is injective, so no re-dedup;
    # on the ndarray backend the frontier stays an int64 block end to end
    # and T(target) materializes column-wise with its store pre-seeded.
    branch.tables[target] = db.expand_rows_relation(
        f"T({lattice.label(target)})",
        rows,
        left.schema + guard_extra,
        target_attrs,
        out_schema,
        counter=counter,
        encoded=db.encoded,
    )
    branch.degree_guards[(lattice.bottom, target)] = branch.tables[target]
    return True


def _fallback_join(
    branch: _Branch,
    lattice: Lattice,
    db: Database,
    inputs: Mapping[str, int],
    counter: WorkCounter,
) -> Relation:
    """Sound last-resort: pairwise-join the branch's input tables and
    expand.  Keeps CSMA total even when restarts are exhausted; the stats
    record how often this fires (never, on the paper's workloads)."""
    from repro.engine.ops import natural_join

    tables = [branch.tables[r] for name, r in inputs.items() if r in branch.tables]
    current = tables[0]
    for table in tables[1:]:
        current = natural_join(current, table, counter=counter)
    target = lattice.label(lattice.top)
    out_schema = tuple(sorted(target))
    rows = []
    if len(current):
        plan = db.expansion_plan(current.schema, target, encoded=db.encoded)
        out_key = tuple_getter(plan.positions(out_schema))
        rows = [
            out_key(expanded)
            for expanded in plan.execute_batch_columns(
                current.columns(),
                len(current),
                counter,
                all_int=current.columns_all_int(),
            )
            if expanded is not None
        ]
    return Relation("fallback", out_schema, rows)
