"""The six ``repro-lint`` rules — the codebase's contracts, as AST checks.

Each rule documents the convention it enforces and the conforming
pattern.  Scoping: *engine* rules (raise taxonomy, broad-except
classification, message string-matching, knob read discipline in their
strict forms) apply under ``src/repro/`` only; structural rules (bare
``except:``, knob-name validity, context propagation, codegen and
optional-dependency hygiene) apply to every scanned file, tests and
benchmarks included.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    BUILTIN_EXCEPTIONS,
    AnalysisContext,
    Finding,
    ModuleInfo,
    Rule,
    ancestors,
    const_str,
    dotted_name,
    register,
    terminal_name,
)

#: Exact knob-name constants (docstrings never fullmatch this).
_KNOB_CONST = re.compile(r"REPRO_[A-Z0-9_]+\Z")

#: Modules allowed to call ``exec``/``eval`` (the codegen seams).
CODEGEN_WHITELIST = (
    "engine/expansion_plan.py",
    "engine/fused.py",
    "engine/database.py",
)

#: The registry module itself is exempt from knob rules — it *is* the
#: sanctioned ``os.environ`` access point.
_REGISTRY_MODULE = ("repro/config.py",)

#: Container methods that mutate ``self.<field>`` in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "add",
        "update",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
    }
)


def _is_environ_receiver(node: ast.AST | None) -> bool:
    dotted = dotted_name(node)
    return dotted is not None and dotted.split(".")[-1] == "environ"


@register
class KnobDiscipline(Rule):
    """Every ``REPRO_*`` environment read goes through ``repro.config``.

    Raw reads (``os.environ.get``/``os.getenv``/``os.environ[...]`` with
    a ``REPRO_*`` key) are flagged everywhere outside ``config.py``;
    writes and ``pop`` are allowed (tests set knobs all the time).
    Additionally, every exact ``"REPRO_*"`` string constant must name a
    *declared* knob — a retired or undeclared name is an error, which is
    what keeps dead knobs from silently lingering in tests or docs
    tooling.
    """

    name = "knob-discipline"
    description = (
        "REPRO_* env reads go through repro.config; knob-name constants "
        "must be declared in the registry"
    )

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        if module.ends_with(*_REGISTRY_MODULE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                key = const_str(node.args[0]) if node.args else None
                if key is None or not key.startswith("REPRO_"):
                    continue
                raw_read = isinstance(func, ast.Attribute) and (
                    (func.attr == "get" and _is_environ_receiver(func.value))
                    or (func.attr == "getenv" and dotted_name(func.value) == "os")
                )
                if raw_read:
                    yield self.finding(
                        module,
                        node,
                        f"raw environment read of {key}; "
                        "read knobs via repro.config.get",
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                key = const_str(node.slice)
                if (
                    key is not None
                    and key.startswith("REPRO_")
                    and _is_environ_receiver(node.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"raw environment read of {key}; "
                        "read knobs via repro.config.get",
                    )
            elif isinstance(node, ast.Constant):
                value = node.value
                if not (isinstance(value, str) and _KNOB_CONST.fullmatch(value)):
                    continue
                if value in ctx.retired_knobs:
                    yield self.finding(
                        module,
                        node,
                        f"references retired knob {value} "
                        f"({ctx.retired_knobs[value]})",
                    )
                elif value not in ctx.knob_names:
                    yield self.finding(
                        module,
                        node,
                        f"references undeclared knob {value}; "
                        "declare it in repro.config",
                    )


def _snapshots_context(node: ast.AST | None) -> bool:
    """The conforming shape: the callable handed to the scheduler is
    ``<something>.run`` — i.e. ``copy_context().run`` or a saved
    ``ctx.run``."""
    return isinstance(node, ast.Attribute) and node.attr == "run"


@register
class ContextPropagation(Rule):
    """Work handed to pools/threads must snapshot contextvars.

    The engine carries per-query state in ``contextvars`` (the LP
    backend override, for one); a bare ``pool.submit(fn, ...)`` or
    ``Thread(target=fn)`` silently drops it.  Conforming calls route
    through a context snapshot::

        ctx = copy_context()
        pool.submit(ctx.run, fn, *args)
        threading.Thread(target=copy_context().run, args=(fn, arg))
    """

    name = "context-propagation"
    description = (
        "Executor.submit / Thread(...) must route through "
        "copy_context().run"
    )

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "submit":
                receiver = (terminal_name(func.value) or "").lower()
                if "pool" not in receiver and "executor" not in receiver:
                    continue
                if node.args and not _snapshots_context(node.args[0]):
                    yield self.finding(
                        module,
                        node,
                        "Executor.submit without a contextvars snapshot; "
                        "use submit(copy_context().run, fn, ...)",
                    )
            elif terminal_name(func) == "Thread":
                target = None
                for kw in node.keywords:
                    if kw.arg == "target":
                        target = kw.value
                        break
                else:
                    if len(node.args) >= 2:
                        target = node.args[1]
                if target is not None and not _snapshots_context(target):
                    yield self.finding(
                        module,
                        node,
                        "Thread target without a contextvars snapshot; "
                        "use target=copy_context().run, args=(fn, ...)",
                    )


_IMPORT_GUARD_CATCHES = frozenset({"ImportError", "ModuleNotFoundError", "Exception"})


def _handler_catches_import_error(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = t.elts if isinstance(t, ast.Tuple) else [t]
    return any(terminal_name(n) in _IMPORT_GUARD_CATCHES for n in names)


@register
class OptionalDepGuard(Rule):
    """``scipy``/``numba`` imports only inside guarded seams.

    The engine must import (and run: the no-scipy CI leg) without either
    package, so their imports live either inside a function (a lazy
    seam) or in a ``try:`` whose handler catches ``ImportError``.
    """

    name = "optional-dep-guard"
    description = "scipy/numba imports must sit behind a function or try/ImportError"

    _OPTIONAL = frozenset({"scipy", "numba"})

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                roots = {alias.name.split(".")[0] for alias in node.names}
            elif isinstance(node, ast.ImportFrom):
                roots = {(node.module or "").split(".")[0]}
            else:
                continue
            hit = roots & self._OPTIONAL
            if not hit:
                continue
            guarded = False
            for anc in ancestors(node):
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    guarded = True
                    break
                if isinstance(anc, ast.Try) and any(
                    _handler_catches_import_error(h) for h in anc.handlers
                ):
                    guarded = True
                    break
            if not guarded:
                yield self.finding(
                    module,
                    node,
                    f"unguarded import of optional dependency "
                    f"{'/'.join(sorted(hit))}; wrap in a function seam or "
                    "try/except ImportError",
                )


@register
class CodegenHygiene(Rule):
    """``exec``/``eval`` only in the whitelisted codegen modules, and
    always with an explicit namespace dict (never the caller's
    globals)."""

    name = "codegen-hygiene"
    description = (
        "exec/eval only in codegen modules, with explicit namespace dicts"
    )

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("exec", "eval")
            ):
                continue
            kind = node.func.id
            if not module.ends_with(*CODEGEN_WHITELIST):
                yield self.finding(
                    module,
                    node,
                    f"{kind}() outside the codegen whitelist "
                    f"({', '.join(CODEGEN_WHITELIST)})",
                )
            elif len(node.args) < 2:
                yield self.finding(
                    module,
                    node,
                    f"{kind}() without an explicit namespace dict",
                )


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    t = handler.type
    if t is None:
        return set()
    names = t.elts if isinstance(t, ast.Tuple) else [t]
    return {terminal_name(n) or "" for n in names}


@register
class ErrorTaxonomy(Rule):
    """Errors speak the :mod:`repro.errors` taxonomy.

    * no bare ``except:`` anywhere;
    * (engine) a broad ``except Exception/BaseException`` must re-raise
      or route through ``errors.classify()`` — never swallow;
    * (engine) no string-matching on exception messages inside a
      handler (``"..." in str(exc)``) — match on the type;
    * (engine) a raised class must be a ReproError descendant or carry
      *specific* stdlib catch semantics — a builtin other than bare
      ``Exception``/``BaseException``, or a project class deriving one
      (``class LPError(RuntimeError)`` passes, ``class E(Exception)``
      does not).
    """

    name = "error-taxonomy"
    description = (
        "no bare except; broad excepts classify or re-raise; raises use "
        "the ReproError taxonomy or stdlib types"
    )

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        module,
                        node,
                        "bare except: — name the exception types",
                    )
                    continue
                if not module.is_engine:
                    continue
                if _handler_names(node) & {"Exception", "BaseException"}:
                    resolved = any(
                        isinstance(inner, ast.Raise)
                        or (
                            isinstance(inner, ast.Call)
                            and terminal_name(inner.func) == "classify"
                        )
                        for stmt in node.body
                        for inner in ast.walk(stmt)
                    )
                    if not resolved:
                        yield self.finding(
                            module,
                            node,
                            "broad except that neither re-raises nor "
                            "calls errors.classify()",
                        )
            elif isinstance(node, ast.Compare) and module.is_engine:
                sides = [node.left, *node.comparators]
                str_call = any(
                    isinstance(s, ast.Call)
                    and isinstance(s.func, ast.Name)
                    and s.func.id == "str"
                    and len(s.args) == 1
                    for s in sides
                )
                if str_call and any(
                    isinstance(a, ast.ExceptHandler) for a in ancestors(node)
                ):
                    yield self.finding(
                        module,
                        node,
                        "string-matching on an exception message; match "
                        "on the exception type instead",
                    )
            elif isinstance(node, ast.Raise) and module.is_engine:
                exc = node.exc
                if exc is None:
                    continue  # bare re-raise
                if isinstance(exc, ast.Call):
                    cls = terminal_name(exc.func)
                elif isinstance(exc, ast.Name):
                    cls = exc.id
                else:
                    continue
                if cls in ("Exception", "BaseException"):
                    yield self.finding(
                        module,
                        node,
                        f"raise of bare {cls}; raise a ReproError or a "
                        "specific stdlib exception",
                    )
                    continue
                if cls is None or cls in BUILTIN_EXCEPTIONS:
                    continue
                if cls not in ctx.class_graph:
                    # A variable holding an exception instance, or a
                    # class the scan didn't see — don't guess.
                    continue
                if not (
                    ctx.derives_from(cls, "ReproError")
                    or ctx.has_specific_builtin_root(cls)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"raise of {cls}, which neither joins the "
                        "ReproError taxonomy nor derives a specific "
                        "stdlib exception",
                    )


def _locked_fields_of(cls: ast.ClassDef) -> tuple[str, ...]:
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "_locked_fields" for t in targets
        ):
            continue
        value = stmt.value
        if isinstance(value, (ast.Tuple, ast.List)):
            return tuple(
                v for v in (const_str(e) for e in value.elts) if v is not None
            )
    return ()


def _under_lock(node: ast.AST) -> bool:
    for anc in ancestors(node):
        if isinstance(anc, ast.With):
            for item in anc.items:
                name = dotted_name(item.context_expr) or terminal_name(
                    item.context_expr
                )
                if name and "lock" in name.lower():
                    return True
    return False


def _self_field(node: ast.AST | None, fields: tuple[str, ...]) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in fields
    ):
        return node.attr
    return None


@register
class LockDiscipline(Rule):
    """Writes to a class's declared ``_locked_fields`` happen under its
    lock.

    A class opts in by declaring::

        _locked_fields = ("values", "_codes")

    after which every assignment, item-store, augmented assignment or
    mutating method call on ``self.<field>`` outside a ``with
    self.<...lock...>`` block is flagged.  ``__init__``/``__new__`` are
    exempt (no concurrent access before construction completes).
    """

    name = "lock-discipline"
    description = (
        "writes to declared _locked_fields must sit inside a with-lock "
        "block"
    )

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        classes = [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]
        fields_by_class = {
            cls: _locked_fields_of(cls) for cls in classes
        }
        for cls, fields in fields_by_class.items():
            if not fields:
                continue
            for node in ast.walk(cls):
                field = self._written_field(node, fields)
                if field is None:
                    continue
                # Nested classes keep their own declarations.
                owner = next(
                    (
                        a
                        for a in ancestors(node)
                        if isinstance(a, ast.ClassDef)
                    ),
                    None,
                )
                if owner is not cls:
                    continue
                method = next(
                    (
                        a
                        for a in ancestors(node)
                        if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                    ),
                    None,
                )
                if method is not None and method.name in ("__init__", "__new__"):
                    continue
                if not _under_lock(node):
                    yield self.finding(
                        module,
                        node,
                        f"write to locked field {field!r} outside a "
                        "with-lock block",
                    )

    @staticmethod
    def _written_field(node: ast.AST, fields: tuple[str, ...]) -> str | None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                field = _self_field(t, fields)
                if field:
                    return field
                if isinstance(t, ast.Subscript):
                    field = _self_field(t.value, fields)
                    if field:
                        return field
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                return _self_field(func.value, fields)
        return None
