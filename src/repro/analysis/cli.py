"""The ``repro-lint`` command line.

Usage::

    repro-lint [paths...]            # default: src
    repro-lint src tests benchmarks --strict
    repro-lint --json src            # machine-readable findings
    repro-lint --check-docs          # PERFORMANCE.md knob-matrix drift
    repro-lint --write-docs          # regenerate the matrix in place
    repro-lint --write-baseline src  # accept current findings

Exit status is 0 when no (non-baselined) findings and no docs drift,
1 otherwise, 2 on usage errors.  ``--strict`` ignores the committed
baseline entirely — CI runs strict, so the baseline the repo commits is
*empty* and stays that way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.core import Analysis, Finding, all_rules

#: Where the committed zero-findings baseline lives, relative to the
#: repo root (= the directory ``repro-lint`` is invoked from).
DEFAULT_BASELINE = "src/repro/analysis/baseline.json"

#: The generated knob matrix lives in PERFORMANCE.md between the
#: ``repro-lint:knob-matrix`` markers.
DEFAULT_DOCS = "PERFORMANCE.md"


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    p = Path(path)
    if not p.is_file():
        return set()
    data = json.loads(p.read_text(encoding="utf-8"))
    return {
        (f["rule"], f["path"], f["message"]) for f in data.get("findings", [])
    }


def write_baseline(path: str, findings: list[Finding]) -> None:
    payload = {
        "version": 1,
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in findings
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def check_docs(docs_path: str) -> list[str]:
    from repro import config

    p = Path(docs_path)
    if not p.is_file():
        return [f"{docs_path}: not found (expected the knob matrix here)"]
    return [f"{docs_path}: {p_}" for p_ in config.check_docs(p.read_text(encoding="utf-8"))]


def write_docs(docs_path: str) -> None:
    from repro import config

    p = Path(docs_path)
    p.write_text(config.rewrite_docs(p.read_text(encoding="utf-8")), encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST invariant checker for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to scan (default: src)",
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="ignore the baseline; every finding fails",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--docs",
        default=DEFAULT_DOCS,
        help=f"docs file for the knob matrix (default: {DEFAULT_DOCS})",
    )
    parser.add_argument(
        "--check-docs",
        action="store_true",
        help="also fail when the docs knob matrix drifted from the registry",
    )
    parser.add_argument(
        "--write-docs",
        action="store_true",
        help="regenerate the docs knob matrix from the registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(all_rules().items()):
            print(f"{name}: {cls.description}")
        return 0

    if args.write_docs:
        write_docs(args.docs)
        print(f"regenerated knob matrix in {args.docs}")
        return 0

    rule_names = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        analysis = Analysis(rule_names)
        findings = analysis.run_paths(args.paths or ["src"])
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    if not args.strict:
        baselined = load_baseline(args.baseline)
        findings = [f for f in findings if f.fingerprint() not in baselined]

    docs_problems: list[str] = []
    if args.check_docs:
        docs_problems = check_docs(args.docs)

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "docs_drift": docs_problems,
                },
                indent=2,
            )
        )
    else:
        for f in findings:
            print(f.render())
        for problem in docs_problems:
            print(f"docs-drift: {problem}")
        if not findings and not docs_problems:
            print("repro-lint: clean")

    return 1 if (findings or docs_problems) else 0


if __name__ == "__main__":
    sys.exit(main())
