"""The ``repro-lint`` rule framework: findings, pragmas, registry, runner.

Everything here is deliberately boring stdlib ``ast`` machinery so the
analyzer can run on any interpreter the repo supports (the no-scipy CI
leg included).  The interesting parts — what the rules actually enforce
— live in :mod:`repro.analysis.rules`.

Architecture
------------
* :class:`ModuleInfo` — one parsed file: source, AST (with parent links
  attached), the pragma map, and whether the file is *engine code*
  (under ``src/repro/``), which scopes the stricter rules.
* :class:`Rule` — a named check with a severity; ``check(module, ctx)``
  yields :class:`Finding`\\ s.  Rules register themselves via
  :func:`register`.
* :class:`AnalysisContext` — cross-file state built in a first pass:
  the project-wide exception-class graph (so ``raise LPError(...)`` in
  one module is judged against ``class LPError(Exception)`` in another)
  and the knob registry from :mod:`repro.config`.
* :class:`Analysis` — the two-pass runner: collect files, build the
  context, run every rule, drop pragma-suppressed findings.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Directory names never scanned (fixture corpora are *intentional*
#: violations; caches and VCS internals are noise).
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", "lint_fixtures", ".hypothesis", "node_modules"}
)

#: Names of every builtin exception type, the roots of the allowed
#: raise taxonomy (``repro.errors`` classes all derive from these).
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def fingerprint(self) -> tuple[str, str, str]:
        """The baseline identity: line numbers drift under unrelated
        edits, so the committed baseline matches on (rule, path,
        message) only."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


class ModuleInfo:
    """One parsed source file plus its pragma map."""

    def __init__(self, path: str, source: str, *, is_engine: bool | None = None):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        attach_parents(self.tree)
        posix = path.replace("\\", "/")
        if is_engine is None:
            is_engine = "src/repro/" in posix or posix.startswith("repro/")
        #: Engine code (under ``src/repro/``) is held to the stricter
        #: rules (raise taxonomy, broad-except classification, message
        #: string-matching); tests and benchmarks are not.
        self.is_engine = is_engine
        self.disabled_lines: dict[int, set[str]] = {}
        self.disabled_file: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            for kind, names in _PRAGMA.findall(line):
                rules = {n.strip() for n in names.split(",") if n.strip()}
                if kind == "disable-file":
                    self.disabled_file |= rules
                else:
                    self.disabled_lines.setdefault(lineno, set()).update(rules)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.disabled_file or "all" in self.disabled_file:
            return True
        at_line = self.disabled_lines.get(finding.line, ())
        return finding.rule in at_line or "all" in at_line

    def ends_with(self, *suffixes: str) -> bool:
        posix = self.path.replace("\\", "/")
        return posix.endswith(suffixes)


def attach_parents(tree: ast.AST) -> None:
    """Give every node a ``_rl_parent`` link so rules can climb."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._rl_parent = node  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    parent = getattr(node, "_rl_parent", None)
    while parent is not None:
        yield parent
        parent = getattr(parent, "_rl_parent", None)


def terminal_name(node: ast.AST | None) -> str | None:
    """The last identifier of a ``Name``/``Attribute``/``Call`` chain
    (``a.b.c`` → ``"c"``; ``f().run`` → ``"run"``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    return None


def dotted_name(node: ast.AST | None) -> str | None:
    """``a.b.c`` for pure Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def const_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class AnalysisContext:
    """Cross-file state shared by every rule invocation."""

    def __init__(self, modules: Iterable[ModuleInfo]):
        #: class name → tuple of base terminal names, across every
        #: scanned file.  Names are assumed project-unique (they are).
        self.class_graph: dict[str, tuple[str, ...]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    bases = []
                    for b in node.bases:
                        if isinstance(b, ast.Subscript):  # Generic[...]
                            b = b.value
                        name = terminal_name(b)
                        if name:
                            bases.append(name)
                    self.class_graph.setdefault(node.name, tuple(bases))
        # The knob registry (stdlib-only import).
        from repro import config

        self.knob_names = frozenset(config.KNOBS)
        self.retired_knobs = dict(config.RETIRED)
        self._exc_memo: dict[str, bool] = {}
        self._derive_memo: dict[tuple[str, str], bool] = {}

    def is_exception_class(self, name: str) -> bool | None:
        """Does ``name`` (transitively) derive from a builtin exception?
        ``None`` when the name is unknown to the scanned tree — callers
        should not guess."""
        if name in BUILTIN_EXCEPTIONS:
            return True
        if name not in self.class_graph:
            return None
        memo = self._exc_memo
        if name in memo:
            return memo[name]
        memo[name] = False  # cycle guard
        result = False
        for base in self.class_graph[name]:
            judged = self.is_exception_class(base)
            if judged:
                result = True
                break
        memo[name] = result
        return result

    def has_specific_builtin_root(self, name: str) -> bool:
        """Does ``name``'s ancestry reach a builtin exception *other
        than* bare ``Exception``/``BaseException``?  That is the house
        bar for domain-error roots outside the ReproError taxonomy:
        ``class LPError(RuntimeError)`` pins catch semantics,
        ``class LPError(Exception)`` pins nothing."""
        for base in self.class_graph.get(name, ()):
            if base in BUILTIN_EXCEPTIONS:
                if base not in ("Exception", "BaseException"):
                    return True
            elif base in self.class_graph and self.has_specific_builtin_root(
                base
            ):
                return True
        return False

    def derives_from(self, name: str, root: str) -> bool:
        """Does class ``name`` (transitively) list ``root`` among its
        bases, per the scanned class graph?"""
        if name == root:
            return True
        key = (name, root)
        memo = self._derive_memo
        if key in memo:
            return memo[key]
        memo[key] = False  # cycle guard
        result = any(
            self.derives_from(base, root)
            for base in self.class_graph.get(name, ())
        )
        memo[key] = result
        return result


class Rule:
    """Base class: subclasses set ``name``/``severity``/``description``
    and implement :meth:`check`."""

    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule_cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    _REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    # Importing the rules module populates the registry.
    from repro.analysis import rules as _rules  # noqa: F401

    return dict(_REGISTRY)


def collect_files(paths: Iterable[str]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files or directories), with
    the standard exclusions, deterministically ordered."""
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                out.append(p)
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for f in sorted(p.rglob("*.py")):
            if not EXCLUDED_DIRS.intersection(f.parts):
                out.append(f)
    return out


def display_path(path: Path) -> str:
    """Stable, cwd-relative posix path for findings and baselines."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


class Analysis:
    """The two-pass runner."""

    def __init__(self, rule_names: Iterable[str] | None = None):
        registry = all_rules()
        if rule_names is None:
            selected = registry
        else:
            unknown = set(rule_names) - set(registry)
            if unknown:
                raise ValueError(f"unknown rules: {sorted(unknown)}")
            selected = {n: registry[n] for n in rule_names}
        self.rules = [cls() for _, cls in sorted(selected.items())]

    def run_modules(self, modules: list[ModuleInfo]) -> list[Finding]:
        ctx = AnalysisContext(modules)
        findings: list[Finding] = []
        for module in modules:
            for rule in self.rules:
                for f in rule.check(module, ctx):
                    if not module.suppressed(f):
                        findings.append(f)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def run_paths(self, paths: Iterable[str]) -> list[Finding]:
        modules = []
        errors: list[Finding] = []
        for path in collect_files(paths):
            shown = display_path(path)
            try:
                source = path.read_text(encoding="utf-8")
                modules.append(ModuleInfo(shown, source))
            except (SyntaxError, UnicodeDecodeError) as exc:
                errors.append(
                    Finding(
                        rule="parse",
                        path=shown,
                        line=getattr(exc, "lineno", 1) or 1,
                        col=0,
                        message=f"file does not parse: {exc}",
                    )
                )
        return errors + self.run_modules(modules)
