"""``python -m repro.analysis`` — same entry point as ``repro-lint``."""

import sys

from repro.analysis.cli import main

sys.exit(main())
