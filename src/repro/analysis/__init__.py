"""``repro-lint`` — AST invariant checking for the repo's own contracts.

Nine PRs of engine growth rest on repo-specific *conventions*: every
``REPRO_*`` knob read goes through :mod:`repro.config`, every pool
submit snapshots contextvars, scipy/numba only import behind guards,
``exec`` lives only in the codegen modules, errors speak the
:mod:`repro.errors` taxonomy, and locked fields are written under their
lock.  This package turns those conventions into machine-checked
contracts — a stdlib-``ast`` static analyzer in the spirit of the
paper's own thesis that certified, machine-checkable reasoning beats
reviewer memory.

Entry points::

    repro-lint src tests benchmarks --strict   # console script
    python -m repro.analysis src               # same thing

The rule framework lives in :mod:`repro.analysis.core` (findings,
pragmas, the registry, the runner), the six codebase rules in
:mod:`repro.analysis.rules`, and the CLI (JSON/human output, the
committed zero-findings baseline, the PERFORMANCE.md ``--check-docs``
drift gate) in :mod:`repro.analysis.cli`.

Suppressing a finding is explicit and greppable::

    something_odd()  # repro-lint: disable=rule-name
    # repro-lint: disable-file=rule-name   (anywhere, whole file)

The analyzer itself depends on nothing beyond the stdlib plus
:mod:`repro.config`/:mod:`repro.errors` (both stdlib-only) — CI runs it
on the no-scipy leg.
"""

from repro.analysis.core import (  # noqa: F401
    Analysis,
    AnalysisContext,
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
)
