"""Functional dependencies: closure, implication, guards, and UDF-backed FDs."""

from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF, UDFRegistry

__all__ = ["FD", "FDSet", "UDF", "UDFRegistry"]
