"""User-defined functions as unguarded functional dependencies (Sec. 1.1).

A UDF ``y = f(X)`` behaves like an infinite relation ``F(X, y)`` with the fd
``X -> y`` and the access restriction that it can only be read by providing
values for ``X``.  The expansion procedure (Sec. 2) applies UDFs to fill in
functionally-determined attributes of an intermediate relation in O(1) per
tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.fds.fd import FD, VarSet, varset


@dataclass(frozen=True)
class UDF:
    """A user-defined function computing ``output`` from ``inputs``.

    ``fn`` receives the input values in the (sorted) order of ``inputs`` and
    returns the single output value.
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    fn: Callable[..., object] = field(compare=False)

    @property
    def fd(self) -> FD:
        """The unguarded fd ``inputs -> output`` induced by this UDF."""
        return FD(frozenset(self.inputs), frozenset({self.output}))

    def __call__(self, *args: object) -> object:
        return self.fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"UDF({self.output}={self.name}({','.join(self.inputs)}))"


class UDFRegistry:
    """Resolves unguarded fds ``X -> y`` to the UDF that computes them.

    The registry indexes UDFs by ``(frozenset(inputs), output)``; the
    expansion procedure asks for a UDF whose input set is *contained in* the
    currently bound attributes and whose output is the attribute to fill.
    """

    def __init__(self, udfs: Iterable[UDF] = ()):
        self._udfs: list[UDF] = []
        self._by_key: dict[tuple[VarSet, str], UDF] = {}
        for udf in udfs:
            self.register(udf)

    def register(self, udf: UDF) -> None:
        key = (varset(udf.inputs), udf.output)
        if key in self._by_key:
            raise ValueError(f"duplicate UDF for {key}")
        self._udfs.append(udf)
        self._by_key[key] = udf

    def __iter__(self):
        return iter(self._udfs)

    def __len__(self) -> int:
        return len(self._udfs)

    def exact(self, inputs: Iterable[str] | str, output: str) -> UDF | None:
        """The UDF registered exactly for ``inputs -> output``, if any."""
        return self._by_key.get((varset(inputs), output))

    def resolve(self, bound: Iterable[str] | str, target: str) -> UDF | None:
        """Find a UDF computing ``target`` from a subset of ``bound``."""
        bound = varset(bound)
        for udf in self._udfs:
            if udf.output == target and varset(udf.inputs) <= bound:
                return udf
        return None

    def apply(self, udf: UDF, assignment: Mapping[str, object]) -> object:
        """Evaluate ``udf`` on an attribute-value mapping."""
        return udf(*(assignment[attr] for attr in udf.inputs))
