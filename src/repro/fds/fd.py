"""Functional dependencies and attribute-set closure (Sec. 2 of the paper).

An FD ``U -> V`` over variable sets is *guarded* when some input relation
contains ``U ∪ V`` (so the dependency can be enforced/looked up by joining
with a projection of that relation), and *unguarded* when it is defined by a
user-defined function (Sec. 1.1).  Guard resolution lives in the engine; this
module is purely symbolic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator

VarSet = FrozenSet[str]


def varset(variables: Iterable[str] | str) -> VarSet:
    """Normalize ``variables`` into a frozenset of variable names.

    Accepts an iterable of names or a single compact string such as ``"xyz"``
    (each character a variable) — the compact form matches the paper's
    notation and is convenient in tests.
    """
    if isinstance(variables, str):
        return frozenset(variables)
    return frozenset(variables)


@dataclass(frozen=True)
class FD:
    """A functional dependency ``lhs -> rhs``."""

    lhs: VarSet
    rhs: VarSet

    def __init__(self, lhs: Iterable[str] | str, rhs: Iterable[str] | str):
        object.__setattr__(self, "lhs", varset(lhs))
        object.__setattr__(self, "rhs", varset(rhs))

    @property
    def is_simple(self) -> bool:
        """A *simple fd* has single-variable lhs and rhs (Sec. 2)."""
        return len(self.lhs) == 1 and len(self.rhs) == 1

    @property
    def is_trivial(self) -> bool:
        return self.rhs <= self.lhs

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        lhs = "".join(sorted(self.lhs)) or "∅"
        rhs = "".join(sorted(self.rhs)) or "∅"
        return f"FD({lhs}→{rhs})"


class FDSet:
    """A set of functional dependencies over a fixed variable universe."""

    def __init__(self, fds: Iterable[FD] = (), variables: Iterable[str] | str = ()):
        self._fds: list[FD] = list(fds)
        universe = varset(variables)
        for fd in self._fds:
            universe |= fd.lhs | fd.rhs
        self._variables: VarSet = universe
        # Closure memo, salted with len(self._fds) so post-hoc add()s
        # invalidate transparently.  Closure is called per compiled plan,
        # per generic-join depth and per lattice build — heavily repeated.
        self._closure_cache: dict[tuple[VarSet, int], VarSet] = {}

    @property
    def variables(self) -> VarSet:
        return self._variables

    def add(self, fd: FD) -> None:
        self._fds.append(fd)
        self._variables |= fd.lhs | fd.rhs

    def __iter__(self) -> Iterator[FD]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __bool__(self) -> bool:
        return bool(self._fds)

    @property
    def all_simple(self) -> bool:
        """True when every fd is simple; then the FD lattice is distributive
        (Prop. 3.2)."""
        return all(fd.is_simple for fd in self._fds)

    def closure(self, attrs: Iterable[str] | str) -> VarSet:
        """The closure ``X⁺``: smallest superset of ``X`` closed under all fds.

        Standard fixpoint chase; linear in ``|FD| * |X|`` per round.
        Memoized per attribute set (salted with the fd count).
        """
        start = varset(attrs)
        key = (start, len(self._fds))
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        closed = set(start)
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.lhs <= closed and not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
        result = frozenset(closed)
        self._closure_cache[key] = result
        return result

    def is_closed(self, attrs: Iterable[str] | str) -> bool:
        attrs = varset(attrs)
        return self.closure(attrs) == attrs

    def implies(self, fd: FD) -> bool:
        """Armstrong implication test: ``FD ⊨ (U -> V)`` iff ``V ⊆ U⁺``."""
        return fd.rhs <= self.closure(fd.lhs)

    def equivalent(self, other: "FDSet") -> bool:
        """Two FD sets are equivalent when each implies the other's fds."""
        return all(self.implies(fd) for fd in other) and all(
            other.implies(fd) for fd in self
        )

    def closed_sets(self, variables: Iterable[str] | str | None = None) -> set[VarSet]:
        """All closed subsets of the universe — the elements of the FD lattice.

        Computed by the standard "next closure" observation in a simple form:
        closed sets are exactly intersections of closures reachable from the
        top by removing one variable at a time.  We use a BFS from the top of
        the lattice; each closed set has at most ``k`` closed lower
        neighbours of the form ``(X - {x})⁺ ∩ X``-style candidates, and the
        family of closed sets is intersection-closed, so BFS over
        ``closure(X - {x})``-candidates intersected pairwise covers
        everything.  For the small variable counts of queries (k ≤ ~16) a
        direct intersection-closure fixpoint is simplest and fast enough.
        """
        universe = varset(variables) if variables is not None else self._variables
        # Every closed set X equals closure(∪_{x∈X} {x}), so saturating the
        # singleton closures (plus the bottom, closure(∅)) under the binary
        # operation (A, B) ↦ closure(A ∪ B) enumerates exactly the closed
        # sets.  Intersections of closed sets are closed and automatically
        # present (each is its own closure).
        closed: set[VarSet] = {self.closure(frozenset())}
        closed.update(self.closure(frozenset({var})) for var in universe)
        work = list(closed)
        while work:
            current = work.pop()
            for other in list(closed):
                joined = self.closure(current | other)
                if joined not in closed:
                    closed.add(joined)
                    work.append(joined)
        return closed

    def redundant_variables(self) -> VarSet:
        """Variables ``x`` with ``Y ↔ x`` for some set Y not containing x
        (Sec. 3.1).  Such variables can be removed w.l.o.g. because their
        values are recoverable through expansion."""
        redundant = set()
        for var in self._variables:
            # x is redundant iff some Y ∌ x has Y ↔ x.  The maximal candidate
            # is Y* = x⁺ - {x} (any witness Y satisfies Y ⊆ Y* and
            # closure(Y) ⊆ closure(Y*)), so testing Y* alone is exact.
            y_star = self.closure(frozenset({var})) - {var}
            if var in self.closure(y_star):
                redundant.add(var)
        return frozenset(redundant)

    def minimal_cover(self) -> "FDSet":
        """A minimal (canonical) cover: singleton rhs, no redundant fds,
        no extraneous lhs attributes.  Classic algorithm."""
        # Split rhs into singletons.
        split = [FD(fd.lhs, {b}) for fd in self._fds for b in fd.rhs - fd.lhs]
        # Remove extraneous lhs attributes.
        reduced: list[FD] = []
        for fd in split:
            lhs = set(fd.lhs)
            for attr in sorted(fd.lhs):
                if len(lhs) == 1:
                    break
                trial = frozenset(lhs - {attr})
                if next(iter(fd.rhs)) in FDSet(split, self._variables).closure(trial):
                    lhs.discard(attr)
            reduced.append(FD(frozenset(lhs), fd.rhs))
        # Remove redundant fds.
        result = list(reduced)
        for fd in list(result):
            rest = [g for g in result if g is not fd]
            if FDSet(rest, self._variables).implies(fd):
                result = rest
        return FDSet(result, self._variables)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"FDSet({', '.join(map(repr, self._fds))})"
