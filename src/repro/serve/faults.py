"""Fault injection for the serving layer's chaos/robustness testing.

A :class:`FaultInjector` owns a set of *sites* — named points in the
query path where a fault may fire — armed with a probability and an
optional firing budget.  The service consults the injector at two kinds
of points:

* the **worker** site fires once per query, before admission, simulating
  a crash in service code outside the engines (a raw ``RuntimeError``,
  exercising the outer :func:`repro.errors.classify` choke point);
* the **engine** / **alloc** / **timeout** sites fire from the engines'
  cooperative checkpoints (:func:`hook` plugs into
  :func:`repro.engine.cancellation.checkpoint_scope`), simulating an
  engine-internal bug, an allocation failure mid-join, and a forced
  deadline expiry respectively;
* the **shard** site fires at shard-worker start (:func:`shard_hook`
  plugs into :func:`repro.engine.shard.worker_hook_scope`), killing an
  individual shard task mid-query — the degradation chain must join the
  surviving shards and fall back to an unsharded stage.

Everything is deterministic given the seed, and ``times=`` budgets give
tests byte-exact control ("fail the first stage once, then succeed") —
the degradation-chain tests arm ``engine`` with ``times=1`` to force
exactly one fallback.

:func:`poison_codec` is the fourth fault class: it corrupts a shared
dictionary entry in place (the decode table suddenly holds an object
whose ``__eq__``/``__hash__``/``__repr__`` raise), simulating a
poisoned cache entry.  Encoded-plane stages die at the decode boundary;
the decoded-reference stage bypasses the codec entirely and still
produces the correct answer — which is the property the chaos suite
asserts.

``REPRO_FAULTS`` arms sites from the environment (the CI chaos smoke
does this): a comma-separated ``site:probability`` list, e.g.
``worker:0.05,engine:0.1,alloc:0.05,timeout:0.05``, with
``REPRO_FAULTS_SEED`` fixing the stream.
"""

from __future__ import annotations

import random
import threading

from repro import config
from repro.errors import QueryTimeout

SITES = ("worker", "engine", "alloc", "timeout", "shard")


class PoisonedValue:
    """A codec-cache entry gone bad: every observation raises.

    ``__reduce__``-style repr access, hashing (set/dict membership at the
    decode boundary) and equality all blow up, so any terminal result
    that tries to surface this value dies loudly instead of silently
    emitting garbage.
    """

    __slots__ = ("attr", "code")

    def __init__(self, attr: str, code: int):
        object.__setattr__(self, "attr", attr)
        object.__setattr__(self, "code", code)

    def _boom(self):
        raise RuntimeError(
            "poisoned codec entry observed "
            f"(attr={object.__getattribute__(self, 'attr')!r}, "
            f"code={object.__getattribute__(self, 'code')})"
        )

    def __eq__(self, other):
        self._boom()

    def __hash__(self):
        self._boom()

    def __repr__(self):
        self._boom()

    def __str__(self):
        self._boom()


def poison_codec(codec, attr: str, code: int | None = None):
    """Replace one interned value of ``attr``'s dictionary with a
    :class:`PoisonedValue` (default: the last interned code).  Returns
    ``(code, original_value)`` so a test can restore it."""
    dictionary = codec.dictionaries[attr]
    if code is None:
        code = len(dictionary.values) - 1
    original = dictionary.values[code]
    dictionary.values[code] = PoisonedValue(attr, code)
    return code, original


class _Arm:
    __slots__ = ("probability", "times")

    def __init__(self, probability: float, times: int | None):
        self.probability = float(probability)
        self.times = times


class FaultInjector:
    """Seeded, thread-safe fault source for the query service.

    ``arm(site, probability=..., times=...)`` schedules faults;
    :meth:`fire` is called at the site and raises when a fault lands.
    ``times=None`` means unbounded; an integer is a firing budget
    decremented on each *hit* (probability misses don't consume it).
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._arms: dict[str, _Arm] = {}
        self._lock = threading.Lock()
        self.fired: dict[str, int] = {site: 0 for site in SITES}

    # -- configuration -------------------------------------------------
    def arm(
        self, site: str, probability: float = 1.0, times: int | None = None
    ) -> "FaultInjector":
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r} (sites: {SITES})")
        with self._lock:
            self._arms[site] = _Arm(probability, times)
        return self

    def disarm(self, site: str | None = None) -> None:
        with self._lock:
            if site is None:
                self._arms.clear()
            else:
                self._arms.pop(site, None)

    @property
    def armed(self) -> bool:
        return bool(self._arms)

    @classmethod
    def from_env(cls, environ=None) -> "FaultInjector":
        """Build from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` (an
        unarmed injector when the knob is absent).  ``environ`` may be
        any mapping (the CLI passes its parsed flags through one)."""
        seed = config.get("REPRO_FAULTS_SEED", environ=environ)
        injector = cls(seed=seed)
        spec = config.get("REPRO_FAULTS", environ=environ)
        if not spec:
            return injector
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            site, _, prob = part.partition(":")
            injector.arm(site.strip(), float(prob) if prob else 1.0)
        return injector

    # -- firing --------------------------------------------------------
    def _should_fire(self, site: str) -> bool:
        with self._lock:
            arm = self._arms.get(site)
            if arm is None:
                return False
            if arm.probability < 1.0 and self._rng.random() >= arm.probability:
                return False
            if arm.times is not None:
                if arm.times <= 0:
                    return False
                arm.times -= 1
                if arm.times == 0:
                    del self._arms[site]
            self.fired[site] += 1
            return True

    def fire(self, site: str) -> None:
        """Raise the site's fault if one lands (no-op otherwise)."""
        if not self._should_fire(site):
            return
        if site == "worker":
            raise RuntimeError("injected fault: worker crash before admission")
        if site == "engine":
            raise RuntimeError("injected fault: engine-internal failure")
        if site == "alloc":
            raise MemoryError("injected fault: allocation failure mid-join")
        if site == "timeout":
            raise QueryTimeout(
                "injected fault: forced deadline expiry", deadline_s=0.0
            )
        if site == "shard":
            raise RuntimeError("injected fault: shard worker killed mid-query")
        raise AssertionError(f"unreachable site {site!r}")

    def hook(self):
        """A checkpoint hook firing the engine-side sites — install with
        :func:`repro.engine.cancellation.checkpoint_scope`."""
        def _checkpoint_hook() -> None:
            self.fire("timeout")
            self.fire("alloc")
            self.fire("engine")
        return _checkpoint_hook

    def shard_hook(self):
        """A shard-worker-start hook firing the ``shard`` site — install
        with :func:`repro.engine.shard.worker_hook_scope` (thread-safe:
        shard tasks fire it concurrently)."""
        def _shard_worker_hook() -> None:
            self.fire("shard")
        return _shard_worker_hook
