"""A fault-tolerant multi-tenant query service over the repro engines.

:class:`QueryService` runs queries from many tenants on a shared thread
pool, with the robustness pieces the kernel alone doesn't provide:

* **Tenant isolation with shared interning.**  Each tenant owns one
  :class:`~repro.engine.dictionary.Codec` shared by all of its attached
  databases (cross-database joins within a tenant compare codes
  directly), and nothing is shared *across* tenants — a poisoned or
  bloated dictionary never leaks to a neighbor.
* **Bounded admission queue.**  ``max_workers + queue_depth`` slots; a
  submit past the bound fails fast with
  :class:`~repro.errors.ServiceOverloaded` (retryable) instead of
  queueing unboundedly.
* **Certified admission control** (:mod:`repro.serve.admission`): the
  exact LLP bound is solved *before* execution and queries whose
  certified bound exceeds the tenant budget are rejected with the
  certificate attached.
* **Deadlines and cancellation**: a per-query wall-clock budget enforced
  at the engines' cooperative checkpoints
  (:mod:`repro.engine.cancellation`) — a timed-out query unwinds and
  releases its worker.
* **Graceful degradation**: on a classified engine fault the query
  retries down a fallback chain — sharded encoded plane (when the shard
  backend is configured) → single-worker encoded plane → encoded plane
  with the ndarray block backend off → the decoded reference plane
  (codec-free, immune to poisoned dictionary entries).  Every
  stage computes the same bit-identical answer (the kernel's
  differential contract), so a degraded response is *correct*, just
  slower; the response records which stage answered and every fault
  absorbed along the way.
* **Dictionary compaction**: long-uptime memory control.  When a
  tenant's interned-value count passes its cap, the service rebuilds the
  tenant's codec from the live stored relations (codes are append-only,
  so per-entry eviction is impossible by contract) — only ever between
  that tenant's queries, never under one.

Every error escaping :meth:`QueryService.submit` futures is a
:class:`~repro.errors.ReproError` carrying machine-readable context —
the chaos suite (``tests/test_serve_chaos.py``) asserts that under
randomized fault injection every query ends in exactly one of {correct
result, clean typed error}.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from contextvars import copy_context
from dataclasses import dataclass, field

from repro.core.planner import Planner
from repro.engine import frontier
from repro.engine import fused
from repro.engine import shard as frontier_shard
from repro.engine.cancellation import Deadline, checkpoint_scope
from repro.engine.database import Database
from repro.engine.dictionary import Codec
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import leapfrog_triejoin
from repro.engine.binary_join import binary_join_plan
from repro.errors import (
    AdmissionRejected,
    EngineFault,
    QueryTimeout,
    ReproError,
    ServiceOverloaded,
    classify,
)
from repro.query.query import Query
from repro.serve.admission import AdmissionDecision, admit
from repro.serve.faults import FaultInjector

#: The engines a client may request.  ``auto`` delegates to the planner's
#: Fig. 10 taxonomy; the rest force one engine (the chaos suite uses them
#: to cover every code path).
ENGINES = ("auto", "generic", "lftj", "binary", "csma")

#: The fixed tail of the degradation chain: stage label →
#: (ndarray-mode, shard-mode, fuse-mode) overrides (``None`` = leave the
#: configured knob alone).  The head depends on the shard configuration —
#: see :func:`degradation_stages`.
_ENCODED_STAGES = (
    ("encoded-ndarray", None, "off", None),
    ("encoded-nofuse", None, "off", "off"),
    ("encoded-rows", "off", "off", "off"),
)


def degradation_stages() -> tuple[
    tuple[str, str | None, str | None, str | None], ...
]:
    """The degradation chain for the current shard configuration, as
    ``(label, ndarray_mode, shard_mode, fuse_mode)`` 4-tuples.

    When the sharded backend can engage (``REPRO_SHARD`` not off and
    more than one worker configured), the full-speed first stage is
    ``encoded-sharded`` and its first fallback is the single-worker
    block backend (``encoded-ndarray`` with sharding forced off) — a
    shard-worker fault degrades to fewer moving parts, not straight to
    the row loop.  The next fallback, ``encoded-nofuse``, keeps the
    block backend but runs the per-step spec loop instead of the
    generated pipelines (a fault in a compiled pipeline degrades to the
    interpreted path before abandoning blocks).  Without shards the
    chain starts at ``encoded-ndarray`` as before.  Every stage computes
    bit-identical canonical rows (the kernel's differential contract).
    """
    stages: list[tuple[str, str | None, str | None, str | None]] = []
    if frontier_shard.shard_available():
        stages.append(("encoded-sharded", None, None, None))
    else:
        stages.append(("encoded-ndarray", None, None, None))
    for label, nd_mode, shard_mode, fuse_mode in _ENCODED_STAGES:
        if label != stages[0][0]:
            stages.append((label, nd_mode, shard_mode, fuse_mode))
    stages.append(("decoded-reference", "off", "off", "off"))
    return tuple(stages)


@dataclass
class QueryResult:
    """One successful (possibly degraded) query response."""

    tenant: str
    database: str
    engine: str            # what the client asked for
    algorithm: str         # what actually ran (planner verdict / forced)
    backend: str           # degradation stage that answered
    schema: tuple[str, ...]
    rows: list[tuple]
    bound_log2: float
    certified: bool
    degraded: bool = False
    faults_absorbed: list[dict] = field(default_factory=list)
    tuples_touched: int | None = None
    wall_s: float = 0.0

    @property
    def row_count(self) -> int:
        return len(self.rows)


class Tenant:
    """Per-tenant state: one shared codec, attached databases, budgets."""

    def __init__(
        self,
        name: str,
        budget_log2: float | None = None,
        dictionary_cap: int | None = None,
    ):
        self.name = name
        self.budget_log2 = budget_log2
        self.dictionary_cap = dictionary_cap
        self.codec = Codec()
        self.databases: dict[str, Database] = {}
        self.decoded: dict[str, Database] = {}
        self.lock = threading.Lock()
        self.in_flight = 0
        self.compactions = 0


def canonical_rows(relation, query: Query) -> tuple[tuple[str, ...], list[tuple]]:
    """The service's response shape: the query variables in sorted order,
    distinct rows sorted deterministically (``repr`` ordering, total even
    over mixed types).  Every engine and every degradation stage maps to
    the same canonical form — the chaos suite compares these digests."""
    schema = tuple(sorted(query.variables))
    rows = sorted(set(relation.project(schema).tuples), key=repr)
    return schema, rows


def _run_engine(engine: str, query: Query, db: Database):
    """Run one engine; returns ``(relation, algorithm, tuples_touched)``."""
    if engine == "auto":
        relation, choice = Planner(query, db).run()
        return relation, choice.algorithm, None
    if engine == "generic":
        relation, stats = generic_join(query, db, fd_aware=True)
        return relation, "generic-join", stats.tuples_touched
    if engine == "lftj":
        relation, stats = leapfrog_triejoin(query, db)
        return relation, "lftj", stats.tuples_touched
    if engine == "binary":
        relation, stats = binary_join_plan(query, db)
        return relation, "binary-join", stats.tuples_touched
    if engine == "csma":
        from repro.core.csma import csma
        from repro.lattice.builders import lattice_from_query

        lattice, inputs = lattice_from_query(query)
        result = csma(query, db, lattice, inputs)
        return result.relation, "csma", result.stats.tuples_touched
    raise ValueError(f"unknown engine {engine!r} (engines: {ENGINES})")


class QueryService:
    """Thread-pool query executor with admission control and degradation."""

    #: ``repro-lint``'s lock-discipline contract: every write to these
    #: fields (the shared metrics counters) must sit inside a
    #: ``with self._metrics_lock`` block.
    _locked_fields = ("_counters",)

    def __init__(
        self,
        max_workers: int = 4,
        queue_depth: int = 8,
        faults: FaultInjector | None = None,
    ):
        self.max_workers = max_workers
        self.queue_depth = queue_depth
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._slots = threading.BoundedSemaphore(max_workers + queue_depth)
        self._tenants: dict[str, Tenant] = {}
        self._faults = faults if faults is not None else FaultInjector.from_env()
        self._metrics_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "degraded": 0,
            "rejected_overload": 0,
            "rejected_admission": 0,
            "timeouts": 0,
            "engine_faults": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    # -- tenant management ---------------------------------------------
    def create_tenant(
        self,
        name: str,
        budget_log2: float | None = None,
        dictionary_cap: int | None = None,
    ) -> Tenant:
        if name in self._tenants:
            raise ValueError(f"duplicate tenant {name!r}")
        tenant = Tenant(name, budget_log2, dictionary_cap)
        self._tenants[name] = tenant
        return tenant

    def attach_database(
        self,
        tenant: str,
        name: str,
        relations,
        fds=None,
        udfs=(),
        degree_bounds=None,
    ) -> Database:
        """Build an encoded database over the tenant's shared codec."""
        t = self._tenants[tenant]
        with t.lock:
            if name in t.databases:
                raise ValueError(f"tenant {tenant!r}: duplicate database {name!r}")
            db = Database(
                relations,
                fds=fds,
                udfs=udfs,
                degree_bounds=degree_bounds,
                codec=t.codec,
            )
            t.databases[name] = db
        return db

    def detach_database(self, tenant: str, name: str) -> None:
        t = self._tenants[tenant]
        with t.lock:
            t.databases.pop(name, None)
            t.decoded.pop(name, None)

    def tenant(self, name: str) -> Tenant:
        return self._tenants[name]

    # -- submission ----------------------------------------------------
    def submit(
        self,
        tenant: str,
        database: str,
        query: Query,
        engine: str = "auto",
        deadline_s: float | None = None,
    ) -> Future:
        """Enqueue a query; the future resolves to a :class:`QueryResult`
        or raises a :class:`~repro.errors.ReproError`."""
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} (engines: {ENGINES})")
        t = self._tenants[tenant]
        if database not in t.databases:
            raise KeyError(f"tenant {tenant!r} has no database {database!r}")
        if not self._slots.acquire(blocking=False):
            with self._metrics_lock:
                self._counters["rejected_overload"] += 1
            raise ServiceOverloaded(
                f"admission queue full "
                f"({self.max_workers} workers + {self.queue_depth} queued)",
                tenant=tenant,
            )
        with self._metrics_lock:
            self._counters["submitted"] += 1
        start = time.perf_counter()
        try:
            # Run the worker inside a contextvars snapshot of the
            # submitting context, so ambient overrides (LP policy, batch
            # modes) propagate into the pool exactly as shard tasks do.
            ctx = copy_context()
            return self._pool.submit(
                ctx.run,
                self._worker, t, database, query, engine, deadline_s, start,
            )
        except BaseException:
            self._slots.release()
            raise

    def execute(
        self,
        tenant: str,
        database: str,
        query: Query,
        engine: str = "auto",
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(
            tenant, database, query, engine, deadline_s
        ).result(timeout=timeout)

    # -- worker --------------------------------------------------------
    def _worker(
        self,
        tenant: Tenant,
        db_name: str,
        query: Query,
        engine: str,
        deadline_s: float | None,
        start: float,
    ) -> QueryResult:
        try:
            with tenant.lock:
                db = tenant.databases[db_name]
                tenant.in_flight += 1
            try:
                self._faults.fire("worker")
                decision = admit(
                    query, db, tenant.budget_log2, tenant=tenant.name
                )
                hooks = []
                if deadline_s is not None:
                    hooks.append(Deadline(deadline_s).check)
                if self._faults.armed:
                    hooks.append(self._faults.hook())
                shard_scope = (
                    frontier_shard.worker_hook_scope(self._faults.shard_hook())
                    if self._faults.armed
                    else nullcontext()
                )
                with checkpoint_scope(*hooks), shard_scope:
                    result = self._run_chain(
                        tenant, db_name, db, query, engine, decision
                    )
                result.wall_s = time.perf_counter() - start
                with self._metrics_lock:
                    self._counters["completed"] += 1
                    if result.degraded:
                        self._counters["degraded"] += 1
                return result
            finally:
                with tenant.lock:
                    tenant.in_flight -= 1
                self._maybe_compact(tenant)
        except BaseException as exc:
            err = classify(exc, tenant=tenant.name, engine=engine)
            with self._metrics_lock:
                if isinstance(err, QueryTimeout):
                    self._counters["timeouts"] += 1
                elif isinstance(err, AdmissionRejected):
                    self._counters["rejected_admission"] += 1
                else:
                    self._counters["engine_faults"] += 1
            raise err from err.__cause__
        finally:
            self._slots.release()

    def _run_chain(
        self,
        tenant: Tenant,
        db_name: str,
        db: Database,
        query: Query,
        engine: str,
        decision: AdmissionDecision,
    ) -> QueryResult:
        """The degradation chain.  Control-flow errors (timeout, admission,
        overload) propagate; anything else is absorbed, recorded, and the
        next (simpler) stage retries.  All stages produce bit-identical
        canonical rows — the kernel's differential contract."""
        absorbed: list[dict] = []
        stages = degradation_stages()
        for index, (label, mode, shard_mode, fuse_mode) in enumerate(stages):
            stage_db = (
                self._decoded_twin(tenant, db_name, db)
                if label == "decoded-reference"
                else db
            )
            try:
                override = (
                    frontier.mode_override(mode) if mode else nullcontext()
                )
                shard_override = (
                    frontier_shard.mode_override(shard_mode)
                    if shard_mode
                    else nullcontext()
                )
                fuse_override = (
                    fused.mode_override(fuse_mode)
                    if fuse_mode
                    else nullcontext()
                )
                with override, shard_override, fuse_override:
                    relation, algorithm, touched = _run_engine(
                        engine, query, stage_db
                    )
                    schema, rows = canonical_rows(relation, query)
                return QueryResult(
                    tenant=tenant.name,
                    database=db_name,
                    engine=engine,
                    algorithm=algorithm,
                    backend=label,
                    schema=schema,
                    rows=rows,
                    bound_log2=decision.bound_log2,
                    certified=decision.certified,
                    degraded=index > 0,
                    faults_absorbed=absorbed,
                    tuples_touched=touched,
                )
            except (QueryTimeout, AdmissionRejected, ServiceOverloaded):
                raise
            except BaseException as exc:
                absorbed.append(
                    classify(
                        exc, tenant=tenant.name, engine=engine, backend=label
                    ).context()
                )
        raise EngineFault(
            "all degradation stages failed",
            stage="exhausted",
            tenant=tenant.name,
            engine=engine,
            absorbed=absorbed,
        )

    def _decoded_twin(
        self, tenant: Tenant, db_name: str, db: Database
    ) -> Database:
        """The codec-free reference database for the last-resort stage
        (built lazily, cached per tenant/database, dropped on detach)."""
        with tenant.lock:
            twin = tenant.decoded.get(db_name)
        if twin is not None:
            return twin
        twin = Database(
            list(db.relations.values()),
            fds=db.fds,
            udfs=list(db.udfs),
            degree_bounds=db.degree_bounds,
            encode=False,
        )
        with tenant.lock:
            return tenant.decoded.setdefault(db_name, twin)

    # -- compaction ----------------------------------------------------
    def _maybe_compact(self, tenant: Tenant) -> None:
        """Rebuild the tenant's codec from live relations when the
        interned-value count passes the cap — only with no query of that
        tenant in flight (submissions increment ``in_flight`` under the
        same lock, so nothing starts mid-compaction)."""
        if tenant.dictionary_cap is None:
            return
        with tenant.lock:
            if tenant.in_flight:
                return
            if tenant.codec.total_values() <= tenant.dictionary_cap:
                return
            fresh = Codec()
            for db in tenant.databases.values():
                db.rebuild_codec(fresh)
            tenant.codec = fresh
            tenant.compactions += 1

    # -- observability -------------------------------------------------
    def metrics(self) -> dict:
        with self._metrics_lock:
            counters = dict(self._counters)
        tenants = {}
        for name, tenant in self._tenants.items():
            with tenant.lock:
                tenants[name] = {
                    "databases": len(tenant.databases),
                    "in_flight": tenant.in_flight,
                    "compactions": tenant.compactions,
                    "dictionary_values": tenant.codec.total_values(),
                }
        counters["tenants"] = tenants
        counters["faults_fired"] = dict(self._faults.fired)
        return counters
