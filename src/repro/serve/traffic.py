"""Traffic generators for the query service: latency/robustness metrics.

Two generators, mirroring the standard serving-benchmark taxonomy:

* :func:`closed_loop` — ``clients`` threads issue requests back-to-back;
  each retryable failure (:class:`~repro.errors.ServiceOverloaded`,
  :class:`~repro.errors.EngineFault`) is retried with seeded-jitter
  exponential backoff up to a retry budget.  Measures service latency
  under a fixed concurrency level.
* :func:`open_loop` — one dispatcher submits on a seeded
  exponential-inter-arrival schedule regardless of completions (the
  "arrival rate is not gated by the service" model); overload shows up
  as fast rejections rather than queueing delay.

Both return a plain-dict report (p50/p99/mean latency, achieved QPS,
rejection and degradation rates, per-outcome counts) suitable for JSON
trajectory files — ``benchmarks/bench_pr6_serve.py`` records it into
``BENCH_<tag>.json`` and ``benchmarks/check_regression.py`` compares it
warn-only.
"""

from __future__ import annotations

import random
import threading
import time
from contextvars import copy_context

from repro.errors import (
    AdmissionRejected,
    QueryTimeout,
    ReproError,
    ServiceOverloaded,
)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (no interpolation, deterministic)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class _Stats:
    """Shared outcome accounting for both generators."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.counts = {
            "requests": 0,
            "ok": 0,
            "degraded": 0,
            "rejected_admission": 0,
            "rejected_overload": 0,
            "timeouts": 0,
            "engine_faults": 0,
            "retries": 0,
        }

    def record(self, outcome: str, latency_ms: float | None = None) -> None:
        with self.lock:
            self.counts[outcome] += 1
            if latency_ms is not None:
                self.latencies_ms.append(latency_ms)

    def bump(self, key: str, n: int = 1) -> None:
        with self.lock:
            self.counts[key] += n

    def report(self, wall_s: float) -> dict:
        with self.lock:
            lat = list(self.latencies_ms)
            counts = dict(self.counts)
        requests = counts["requests"]
        finished = counts["ok"]
        rejected = counts["rejected_admission"] + counts["rejected_overload"]
        failed = rejected + counts["timeouts"] + counts["engine_faults"]
        return {
            **counts,
            "wall_s": round(wall_s, 4),
            "qps": round(finished / wall_s, 2) if wall_s > 0 else 0.0,
            "p50_ms": round(percentile(lat, 0.50), 3),
            "p99_ms": round(percentile(lat, 0.99), 3),
            "mean_ms": round(sum(lat) / len(lat), 3) if lat else 0.0,
            "rejection_rate": round(rejected / requests, 4) if requests else 0.0,
            "degradation_rate": (
                round(counts["degraded"] / finished, 4) if finished else 0.0
            ),
            "failure_rate": round(failed / requests, 4) if requests else 0.0,
        }


def _classify_outcome(err: ReproError) -> str:
    if isinstance(err, AdmissionRejected):
        return "rejected_admission"
    if isinstance(err, ServiceOverloaded):
        return "rejected_overload"
    if isinstance(err, QueryTimeout):
        return "timeouts"
    return "engine_faults"


def closed_loop(
    service,
    requests: list[dict],
    clients: int = 4,
    retry_budget: int = 3,
    backoff_base_s: float = 0.005,
    backoff_cap_s: float = 0.25,
    seed: int = 0,
) -> dict:
    """Drive ``requests`` (dicts of :meth:`QueryService.execute` kwargs)
    through ``clients`` closed-loop worker threads and report."""
    stats = _Stats()
    cursor = {"next": 0}
    cursor_lock = threading.Lock()

    def client(client_id: int) -> None:
        rng = random.Random((seed << 8) ^ client_id)
        while True:
            with cursor_lock:
                i = cursor["next"]
                if i >= len(requests):
                    return
                cursor["next"] = i + 1
            request = requests[i]
            stats.bump("requests")
            attempt = 0
            while True:
                start = time.perf_counter()
                try:
                    result = service.execute(**request)
                except ReproError as err:
                    outcome = _classify_outcome(err)
                    if err.retryable and attempt < retry_budget:
                        attempt += 1
                        stats.bump("retries")
                        delay = min(
                            backoff_cap_s,
                            backoff_base_s
                            * (2 ** attempt)
                            * (0.5 + rng.random()),
                        )
                        time.sleep(delay)
                        continue
                    stats.record(outcome)
                    break
                latency_ms = (time.perf_counter() - start) * 1e3
                stats.record("ok", latency_ms)
                if result.degraded:
                    stats.bump("degraded")
                break

    start = time.perf_counter()
    threads = [
        threading.Thread(
            target=copy_context().run, args=(client, c), daemon=True
        )
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return stats.report(time.perf_counter() - start)


def open_loop(
    service,
    requests: list[dict],
    rate_qps: float = 50.0,
    seed: int = 0,
    result_timeout_s: float = 60.0,
) -> dict:
    """Submit ``requests`` on a seeded exponential-inter-arrival schedule
    (no retries — an open-loop client's next arrival doesn't wait), then
    gather every future and report."""
    stats = _Stats()
    rng = random.Random(seed)
    inflight: list = []
    done_at: dict[int, float] = {}
    done_lock = threading.Lock()

    def stamp(future) -> None:
        with done_lock:
            done_at[id(future)] = time.perf_counter()

    start = time.perf_counter()
    for request in requests:
        stats.bump("requests")
        try:
            submitted = time.perf_counter()
            future = service.submit(**request)
            future.add_done_callback(stamp)
            inflight.append((submitted, future))
        except ServiceOverloaded:
            stats.record("rejected_overload")
        # Exponential inter-arrival at the target rate.
        time.sleep(-1.0 / rate_qps * _log1m(rng.random()))
    for submitted, future in inflight:
        try:
            result = future.result(timeout=result_timeout_s)
        except ReproError as err:
            stats.record(_classify_outcome(err))
            continue
        finished = done_at.get(id(future), time.perf_counter())
        stats.record("ok", (finished - submitted) * 1e3)
        if result.degraded:
            stats.bump("degraded")
    return stats.report(time.perf_counter() - start)


def _log1m(u: float) -> float:
    """ln(1-u), guarded against u == 1.0 from a float rng."""
    import math

    return math.log(max(1e-12, 1.0 - u))
