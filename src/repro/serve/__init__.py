"""Fault-tolerant multi-tenant serving layer over the repro engines."""

from repro.serve.admission import AdmissionDecision, admit, certified_bound
from repro.serve.faults import FaultInjector, PoisonedValue, poison_codec
from repro.serve.service import (
    ENGINES,
    QueryResult,
    QueryService,
    Tenant,
    canonical_rows,
)
from repro.serve.traffic import closed_loop, open_loop

__all__ = [
    "AdmissionDecision",
    "admit",
    "certified_bound",
    "FaultInjector",
    "PoisonedValue",
    "poison_codec",
    "ENGINES",
    "QueryResult",
    "QueryService",
    "Tenant",
    "canonical_rows",
    "closed_loop",
    "open_loop",
]
