"""``repro-serve``: drive the demo multi-tenant service and print a report.

Usage::

    repro-serve --tenants 2 --workers 4 --rounds 10 --mode closed
    repro-serve --mode open --rate 100 --faults engine:0.05,alloc:0.02
    PYTHONPATH=src python -m repro.serve.cli --chaos

Emits a JSON report (latency percentiles, QPS, rejection/degradation
rates, service counters) on stdout — the same shape
``benchmarks/bench_pr6_serve.py`` records into the trajectory file.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.faults import FaultInjector
from repro.serve.traffic import closed_loop, open_loop
from repro.serve.workloads import build_demo_service, demo_requests


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=10,
                        help="request rounds per tenant per query shape")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--rate", type=float, default=100.0,
                        help="open-loop arrival rate (QPS)")
    parser.add_argument("--edges", type=int, default=48,
                        help="edges per demo relation")
    parser.add_argument("--budget", type=float, default=None,
                        help="per-tenant output budget (log2 tuples)")
    parser.add_argument("--dictionary-cap", type=int, default=None,
                        help="per-tenant interned-value cap (compaction)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-query deadline in seconds")
    parser.add_argument("--faults", default=None,
                        help="fault spec, e.g. engine:0.05,alloc:0.02 "
                        "(default: REPRO_FAULTS env)")
    parser.add_argument("--chaos", action="store_true",
                        help="shorthand: arm all fault sites at 5%%")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.chaos:
        args.faults = args.faults or (
            "worker:0.05,engine:0.05,alloc:0.05,timeout:0.05"
        )
    faults = None
    if args.faults:
        faults = FaultInjector.from_env(
            {"REPRO_FAULTS": args.faults, "REPRO_FAULTS_SEED": str(args.seed)}
        )

    service = build_demo_service(
        tenants=args.tenants,
        max_workers=args.workers,
        queue_depth=args.queue_depth,
        seed=args.seed,
        n_edges=args.edges,
        budget_log2=args.budget,
        dictionary_cap=args.dictionary_cap,
        faults=faults,
    )
    requests = demo_requests(
        tenants=args.tenants,
        rounds=args.rounds,
        deadline_s=args.deadline,
        seed=args.seed,
    )
    with service:
        if args.mode == "closed":
            report = closed_loop(
                service, requests, clients=args.clients, seed=args.seed
            )
        else:
            report = open_loop(
                service, requests, rate_qps=args.rate, seed=args.seed
            )
        report["service"] = service.metrics()
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
