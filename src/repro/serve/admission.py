"""Certified admission control: reject oversized queries *with proof*.

Before a query executes, the service solves the paper's LLP for the
query's lattice presentation (Prop. 3.4 — the GLVV bound) and compares
the certified log2 output bound against the tenant's budget.  Every
admission solve runs on the exact rational backend
(:func:`repro.lp.solver.forced_lp_backend` — scipy never participates,
so admission works identically on a no-scipy interpreter), and the
canonical-vertex rule makes the solution the unique lex-min optimum of
the program.  A rejection therefore always carries an
:class:`~repro.lp.exact.ExactCertificate` — a machine-checkable proof
that *any* engine would have been allowed to produce up to
``2**bound_log2`` tuples, i.e. the rejection is a theorem, not a
heuristic.  (The old ``REPRO_ADMIT_EXACT_MAX`` lattice-size cutoff,
which left big-lattice decisions uncertified, is gone: the sparse
Fraction simplex handles the big programs.)

The solve itself is cheap and memoized per lattice
(:mod:`repro.lp.llp`), so repeated submissions of the same query shape
hit the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdmissionRejected
from repro.lattice.builders import lattice_from_query
from repro.lp.llp import LatticeLinearProgram, LLPSolution
from repro.lp.solver import forced_lp_backend


@dataclass
class AdmissionDecision:
    """The outcome of one admission check (always returned on *admit*;
    carried inside :class:`~repro.errors.AdmissionRejected` on reject)."""

    admitted: bool
    bound_log2: float
    budget_log2: float | None
    certified: bool
    solution: LLPSolution

    @property
    def weights(self) -> dict[str, float]:
        """The dual inequality's per-atom weights (the bound's witness)."""
        return {
            name: float(w)
            for name, w in self.solution.inequality.weights.items()
        }


def certified_bound(query, db) -> tuple[float, LLPSolution, bool]:
    """The GLVV log2 output bound for ``query`` on ``db``'s cardinalities,
    always solved (and verified) on the exact backend.

    Returns ``(bound_log2, solution, certified)``; ``certified`` is kept
    for API compatibility and is ``True`` whenever the solve produced a
    verified certificate — which the forced exact backend always does.
    """
    lattice, inputs = lattice_from_query(query)
    log_sizes = {name: db.log_sizes()[name] for name in inputs}
    program = LatticeLinearProgram(lattice, inputs, log_sizes)
    with forced_lp_backend("exact"):
        solution = program.solve()
    certified = solution.certificate is not None
    return solution.objective, solution, certified


def admit(
    query,
    db,
    budget_log2: float | None,
    tenant: str | None = None,
) -> AdmissionDecision:
    """Admit ``query`` or raise :class:`AdmissionRejected`.

    ``budget_log2`` is the tenant's per-query output budget in log2
    tuples (``None`` = unlimited: the bound is still computed and
    reported, nothing is rejected).
    """
    bound_log2, solution, certified = certified_bound(query, db)
    decision = AdmissionDecision(
        admitted=budget_log2 is None or bound_log2 <= budget_log2,
        bound_log2=bound_log2,
        budget_log2=budget_log2,
        certified=certified,
        solution=solution,
    )
    if not decision.admitted:
        raise AdmissionRejected(
            f"certified output bound 2^{bound_log2:.3f} exceeds the "
            f"tenant budget 2^{budget_log2:.3f}",
            bound_log2=bound_log2,
            budget_log2=budget_log2,
            certificate=solution.certificate,
            tenant=tenant,
            weights=decision.weights,
        )
    return decision
