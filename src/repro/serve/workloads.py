"""Canned multi-tenant workloads for the serving bench, CLI and examples.

Pure-int demo data (so every degradation stage — encoded or decoded —
produces byte-identical canonical rows), with per-tenant disjoint value
ranges so cross-tenant corruption is *detectable*: a tenant's result or
dictionary containing a value outside its range is proof of a leak, and
the chaos suite asserts exactly that.

The query mix covers the planner's taxonomy: a triangle (no fds —
generic join / AGM), a guarded-simple-key chain (closure trick), and a
UDF query (unguarded fd, mid-run dictionary interning — the workload
that actually grows a tenant's dictionaries and exercises compaction).
"""

from __future__ import annotations

import random

from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF
from repro.query.query import Atom, Query
from repro.serve.service import QueryService

#: Value-range stride between tenants — tenant ``i`` draws from
#: ``[i * TENANT_STRIDE, i * TENANT_STRIDE + range)``.
TENANT_STRIDE = 100_000


def demo_relations(
    seed: int, n_edges: int = 48, value_base: int = 0, value_range: int = 20
) -> list[Relation]:
    """R(x,y) / S(y,z) / T(z,x) over a tenant-private int range; S is
    functional in ``y`` so it can guard the fd ``y → z``."""
    rng = random.Random(seed)
    lo, hi = value_base, value_base + value_range
    r = {(rng.randrange(lo, hi), rng.randrange(lo, hi)) for _ in range(n_edges)}
    t = {(rng.randrange(lo, hi), rng.randrange(lo, hi)) for _ in range(n_edges)}
    ys = sorted({y for _, y in r} | {z for z, _ in t})
    s = {(y, lo + (y * 7 + 3) % value_range) for y in ys}
    return [
        Relation("R", ("x", "y"), sorted(r)),
        Relation("S", ("y", "z"), sorted(s)),
        Relation("T", ("z", "x"), sorted(t)),
    ]


def demo_queries() -> dict[str, Query]:
    """The demo query mix, keyed by shape name."""
    triangle = Query(
        [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    )
    guarded_chain = Query(
        [Atom("R", ("x", "y")), Atom("S", ("y", "z"))],
        FDSet([FD("y", "z")], "xyz"),
    )
    udf_expand = Query(
        [Atom("R", ("x", "y"))], FDSet([FD("xy", "z")], "xyz")
    )
    return {
        "triangle": triangle,
        "guarded_chain": guarded_chain,
        "udf_expand": udf_expand,
    }


def demo_udfs() -> list[UDF]:
    return [UDF("add", ("x", "y"), "z", fn=lambda x, y: x + y)]


def tenant_name(i: int) -> str:
    return f"tenant{i}"


def tenant_range(i: int, value_range: int = 20) -> tuple[int, int]:
    """The closed-open int range tenant ``i``'s *stored* values live in
    (UDF outputs ``x + y`` may reach twice the upper bound)."""
    return i * TENANT_STRIDE, i * TENANT_STRIDE + value_range


def build_demo_service(
    tenants: int = 2,
    max_workers: int = 4,
    queue_depth: int = 8,
    seed: int = 0,
    n_edges: int = 48,
    budget_log2: float | None = None,
    dictionary_cap: int | None = None,
    faults=None,
) -> QueryService:
    """A service with ``tenants`` tenants, each holding two databases over
    its private value range: ``main`` (R/S/T, no UDFs — a database-level
    fd asserts the *data* satisfies it, and the triangle data doesn't
    satisfy ``z = x + y``) and ``expand`` (R plus the ``add`` UDF, whose
    mid-run interning of ``x + y`` outputs is what bloats the tenant's
    shared dictionaries and exercises compaction)."""
    service = QueryService(
        max_workers=max_workers, queue_depth=queue_depth, faults=faults
    )
    for i in range(tenants):
        name = tenant_name(i)
        service.create_tenant(
            name, budget_log2=budget_log2, dictionary_cap=dictionary_cap
        )
        relations = demo_relations(
            seed + i, n_edges=n_edges, value_base=i * TENANT_STRIDE
        )
        # S is functional in y by construction, so "main" legitimately
        # guards the fd y → z — the planner's closure trick needs the
        # *database* to hold the fd, not just the query.
        service.attach_database(
            name, "main", relations, fds=FDSet([FD("y", "z")], "xyz")
        )
        service.attach_database(
            name, "expand", [relations[0]], udfs=demo_udfs()
        )
    return service


def demo_requests(
    tenants: int = 2,
    rounds: int = 10,
    engines: tuple[str, ...] = ("auto", "generic", "lftj"),
    deadline_s: float | None = None,
    seed: int = 0,
) -> list[dict]:
    """A deterministic shuffled request list cycling tenants × queries ×
    engines — kwargs dicts for :meth:`QueryService.execute`/``submit``."""
    queries = demo_queries()
    rng = random.Random(seed)
    requests: list[dict] = []
    for _ in range(rounds):
        for i in range(tenants):
            for shape, query in queries.items():
                engine = engines[rng.randrange(len(engines))]
                if engine in ("binary", "lftj") and shape == "udf_expand":
                    engine = "generic"  # lftj/binary need every var in an atom
                requests.append(
                    {
                        "tenant": tenant_name(i),
                        "database": (
                            "expand" if shape == "udf_expand" else "main"
                        ),
                        "query": query,
                        "engine": engine,
                        "deadline_s": deadline_s,
                    }
                )
    rng.shuffle(requests)
    return requests
