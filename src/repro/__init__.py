"""repro — FD-aware worst-case-optimal join processing.

A complete implementation of Abo Khamis, Ngo, Suciu, *Computing Join
Queries with Functional Dependencies* (PODS 2016): the GLVV/LLP bound on
FD lattices, normal lattices and quasi-product instances, and the Chain /
Submodularity / CSMA algorithms with their proof-sequence machinery.

Public API highlights::

    from repro import (
        FD, FDSet, UDF,                 # functional dependencies
        Atom, Query, parse_query,       # queries
        Relation, Database,             # data
        compute_bounds,                 # AGM / closure / GLVV / chain / ...
        Planner,                        # pick & run the right algorithm
        chain_algorithm, submodularity_algorithm, csma,
    )
"""

from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF, UDFRegistry
from repro.query.query import Atom, Query, triangle_query, paper_example_query
from repro.query.parse import parse_query
from repro.query.hypergraph import Hypergraph
from repro.engine.relation import Relation
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.binary_join import binary_join_plan
from repro.lattice.lattice import Lattice
from repro.lattice.builders import lattice_from_fds, lattice_from_query
from repro.lattice.polymatroid import LatticeFunction, step_function
from repro.lp.llp import LatticeLinearProgram, glvv_bound_log2
from repro.lp.cllp import ConditionalLLP, DegreeConstraint
from repro.core.bounds import BoundReport, compute_bounds
from repro.core.chain_algorithm import chain_algorithm
from repro.core.sma import submodularity_algorithm
from repro.core.csma import csma
from repro.core.planner import Planner

__version__ = "1.0.0"

__all__ = [
    "FD",
    "FDSet",
    "UDF",
    "UDFRegistry",
    "Atom",
    "Query",
    "triangle_query",
    "paper_example_query",
    "parse_query",
    "Hypergraph",
    "Relation",
    "Database",
    "generic_join",
    "binary_join_plan",
    "Lattice",
    "lattice_from_fds",
    "lattice_from_query",
    "LatticeFunction",
    "step_function",
    "LatticeLinearProgram",
    "glvv_bound_log2",
    "ConditionalLLP",
    "DegreeConstraint",
    "BoundReport",
    "compute_bounds",
    "chain_algorithm",
    "submodularity_algorithm",
    "csma",
    "Planner",
    "__version__",
]
