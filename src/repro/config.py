"""Central registry of every ``REPRO_*`` environment knob.

Nine PRs grew ~18 tuning knobs, each parsed by a private one-liner next
to its consumer.  This module is now the **single source of truth**: a
knob exists iff it is declared here, with its type, default, allowed
values and a one-line meaning.  Everything else flows from the registry:

* :func:`get` is the only sanctioned way to read a knob (the
  ``knob-discipline`` rule of ``repro-lint`` flags raw ``os.environ``
  access to ``REPRO_*`` names anywhere outside this file);
* undeclared or retired knob names are typed errors
  (:class:`ConfigError`), not silent defaults — the staleness class PR 8
  cleaned up by hand (``REPRO_LP_EXACT_MAX_VARS`` & co.) can no longer
  creep back in;
* the PERFORMANCE.md knob matrix is *generated* from the registry
  (:func:`knob_matrix_markdown`) and drift-checked by
  ``repro-lint --check-docs`` (:func:`check_docs`).

Declaring a new knob
--------------------
Add one :class:`Knob` entry to ``_DECLARATIONS`` below (name, kind,
default, meaning, consumer module), read it through
``config.get("REPRO_MY_KNOB")`` at the consumer, and regenerate the
PERFORMANCE.md matrix with ``repro-lint --write-docs``.  Kinds:

* ``mode`` — the house tri-state: ``auto`` plus the on/off synonym sets
  (:data:`ON_VALUES` / :data:`OFF_VALUES`).  Parsed to the lowered
  token, so consumers keep testing ``mode in ON_VALUES`` exactly as the
  scattered readers did.
* ``choice`` — one of an explicit token tuple (e.g. LP policies).
* ``int`` — ``int(raw)``; empty means the default.
* ``flag`` — boolean: on-synonyms → True, off-synonyms → False, empty →
  the default.
* ``str`` — free-form (validated downstream, e.g. fault specs).

Parsing is *strict*: a token outside the declared domain raises
:class:`ConfigError` (which is both a :class:`~repro.errors.ReproError`
and a ``ValueError``) instead of silently behaving like some default.
Defaults are bit-identical to what the old scattered readers used —
pinned by ``tests/test_config.py``.

This module must stay stdlib-only (``repro-lint`` imports it on the
no-scipy CI leg).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ReproError


class ConfigError(ReproError, ValueError):
    """An undeclared, retired, or unparseable ``REPRO_*`` knob.

    Doubles as a ``ValueError`` so legacy callers (and tests) that guard
    knob parsing with ``except ValueError`` keep working.
    """


#: The house on/off synonym sets shared by every ``mode``/``flag`` knob.
ON_VALUES = frozenset({"1", "on", "force", "always", "true", "yes"})
OFF_VALUES = frozenset({"0", "off", "never", "false", "no"})

_MODE_TOKENS = frozenset({"auto"}) | ON_VALUES | OFF_VALUES

_UNSET = object()


@dataclass(frozen=True)
class Knob:
    """One declared ``REPRO_*`` environment knob."""

    name: str
    kind: str  # "mode" | "choice" | "int" | "flag" | "str"
    default: object = None
    #: Lazily-computed default (e.g. ``os.cpu_count``); wins over
    #: ``default`` when set.  ``default_doc`` names it in the docs.
    default_factory: Callable[[], object] | None = None
    default_doc: str | None = None
    choices: tuple[str, ...] = ()
    description: str = ""
    #: The module(s) consuming the knob — documentation only.
    consumers: tuple[str, ...] = ()

    def default_value(self):
        if self.default_factory is not None:
            return self.default_factory()
        return self.default

    def documented_default(self) -> str:
        if self.default_doc is not None:
            return self.default_doc
        default = self.default_value() if self.default_factory else self.default
        if self.kind == "flag":
            return "on" if default else "off"
        return str(default)

    def documented_domain(self) -> str:
        if self.kind == "mode":
            return "auto / on / off"
        if self.kind == "choice":
            return " / ".join(self.choices)
        if self.kind == "flag":
            return "on / off"
        return self.kind

    def parse(self, raw: str):
        """Parse one env string; raises :class:`ConfigError` on values
        outside the declared domain.  Empty (after strip) → default."""
        token = raw.strip()
        if token == "":
            return self.default_value()
        if self.kind == "int":
            try:
                return int(token)
            except ValueError:
                raise ConfigError(
                    f"{self.name} expects an integer, got {raw!r}"
                ) from None
        token = token.lower()
        if self.kind == "mode":
            if token not in _MODE_TOKENS:
                raise ConfigError(
                    f"{self.name} must be auto, an on-synonym "
                    f"{sorted(ON_VALUES)} or an off-synonym "
                    f"{sorted(OFF_VALUES)}, got {raw!r}"
                )
            return token
        if self.kind == "choice":
            if token not in self.choices:
                raise ConfigError(
                    f"{self.name} must be one of {self.choices}, got {raw!r}"
                )
            return token
        if self.kind == "flag":
            if token in ON_VALUES:
                return True
            if token in OFF_VALUES:
                return False
            raise ConfigError(
                f"{self.name} is a flag: use an on-synonym "
                f"{sorted(ON_VALUES)} or an off-synonym "
                f"{sorted(OFF_VALUES)}, got {raw!r}"
            )
        # "str" — free-form, validated by the consumer.
        return raw.strip()


_DECLARATIONS: tuple[Knob, ...] = (
    # -- data plane ----------------------------------------------------
    Knob(
        "REPRO_ENCODE",
        "flag",
        default=True,
        description=(
            "Dictionary-encoded data plane on new Databases; off reverts "
            "to the decoded (PR 3) kernel"
        ),
        consumers=("repro.engine.database",),
    ),
    Knob(
        "REPRO_PLAN_CACHE_MAX",
        "int",
        default=512,
        description=(
            "LRU cap shared by the per-database compiled-plan caches "
            "(tuple/relation plans, guard lookups, udf filters)"
        ),
        consumers=("repro.engine.database",),
    ),
    Knob(
        "REPRO_CHECK_DISTINCT",
        "flag",
        default=False,
        description=(
            "Re-validate every distinct=True fast-path construction at "
            "runtime (the test suite turns it on)"
        ),
        consumers=("repro.engine.relation",),
    ),
    # -- batch backends ------------------------------------------------
    Knob(
        "REPRO_BATCH_COLUMN_MIN",
        "int",
        default=32768,
        description=(
            "Frontier rows at which execute_batch switches from the "
            "generated row-loop to the columnwise backend"
        ),
        consumers=("repro.engine.expansion_plan",),
    ),
    Knob(
        "REPRO_BATCH_NUMPY_MIN",
        "int",
        default=1 << 20,
        description=(
            "Alive rows at which single-attribute integer guard steps "
            "dedup lookups through numpy on the raw plane"
        ),
        consumers=("repro.engine.expansion_plan",),
    ),
    Knob(
        "REPRO_BATCH_NUMPY_MIN_ENCODED",
        "int",
        default=1 << 16,
        description=(
            "The numpy unique-key threshold for dictionary-encoded plans "
            "(keys are ints by construction)"
        ),
        consumers=("repro.engine.expansion_plan",),
    ),
    Knob(
        "REPRO_BATCH_NDARRAY",
        "mode",
        default="auto",
        description=(
            "int64 block backend: auto engages at REPRO_BATCH_NDARRAY_MIN "
            "rows, on forces every encoded batch, off never"
        ),
        consumers=("repro.engine.frontier",),
    ),
    Knob(
        "REPRO_BATCH_NDARRAY_MIN",
        "int",
        default=4096,
        description="auto-mode row threshold for the block backend",
        consumers=("repro.engine.frontier",),
    ),
    # -- sharded execution ---------------------------------------------
    Knob(
        "REPRO_SHARD",
        "mode",
        default="auto",
        description=(
            "sharded block execution: auto engages at REPRO_SHARD_MIN "
            "rows with >1 worker, on forces shards (and the block "
            "backend), off disables"
        ),
        consumers=("repro.engine.shard",),
    ),
    Knob(
        "REPRO_SHARD_WORKERS",
        "int",
        default_factory=lambda: os.cpu_count() or 1,
        default_doc="cpu_count",
        description="shard worker-pool size",
        consumers=("repro.engine.shard",),
    ),
    Knob(
        "REPRO_SHARD_MIN",
        "int",
        default=65536,
        description="auto-mode block-row threshold for sharding",
        consumers=("repro.engine.shard",),
    ),
    Knob(
        "REPRO_SHARD_BACKEND",
        "choice",
        default="thread",
        choices=("thread", "process"),
        description=(
            "thread pool (numpy kernels release the GIL) or "
            "multiprocessing + SharedMemory for guard-only plans"
        ),
        consumers=("repro.engine.shard",),
    ),
    # -- fused pipelines -----------------------------------------------
    Knob(
        "REPRO_FUSE",
        "mode",
        default="auto",
        description=(
            "fused plan pipelines: auto fuses wherever the block backend "
            "runs, on additionally forces the block backend, off reverts "
            "to the per-step spec loop"
        ),
        consumers=("repro.engine.fused",),
    ),
    Knob(
        "REPRO_FUSE_NATIVE",
        "mode",
        default="auto",
        description=(
            "numba-jitted hot primitives when importable (auto/on; "
            "degrades to numpy bit-identically), off forces pure numpy"
        ),
        consumers=("repro.engine.fused",),
    ),
    Knob(
        "REPRO_PROFILE_STEPS",
        "flag",
        default=False,
        description=(
            "record per-spec-kind wall/rows/calls into "
            "fused.profile_snapshot()"
        ),
        consumers=("repro.engine.fused",),
    ),
    # -- LP policy -----------------------------------------------------
    Knob(
        "REPRO_LP_BACKEND",
        "choice",
        default="auto",
        choices=("auto", "exact", "scipy", "both"),
        description=(
            "LP policy: auto/exact solve on the canonical exact backend; "
            "scipy/both additionally cross-check every solve against "
            "scipy (requires the [scipy] extra)"
        ),
        consumers=("repro.lp.solver",),
    ),
    # -- serving / fault injection -------------------------------------
    Knob(
        "REPRO_FAULTS",
        "str",
        default="",
        default_doc="unset",
        description=(
            "fault-injection spec site:prob,... arming every "
            "QueryService in the process (sites: worker, engine, alloc, "
            "timeout, shard)"
        ),
        consumers=("repro.serve.faults",),
    ),
    Knob(
        "REPRO_FAULTS_SEED",
        "int",
        default=0,
        description="deterministic seed for the fault-injection stream",
        consumers=("repro.serve.faults",),
    ),
)

#: name → Knob for every declared knob.
KNOBS: dict[str, Knob] = {k.name: k for k in _DECLARATIONS}

#: Retired knob names → why they are gone.  Referencing one anywhere is
#: a ``repro-lint`` error *and* a :class:`ConfigError` at read time.
RETIRED: dict[str, str] = {
    "REPRO_LP_EXACT_MAX_VARS": (
        "PR 8 removed the auto size cutoff; every solve is exact"
    ),
    "REPRO_LP_EXACT_MAX_ROWS": (
        "PR 8 removed the auto size cutoff; every solve is exact"
    ),
    "REPRO_ADMIT_EXACT_MAX": (
        "PR 8: every admission bound is certified on every path"
    ),
}


def knob(name: str) -> Knob:
    """The declaration for ``name``; :class:`ConfigError` when the name
    is unknown or retired."""
    entry = KNOBS.get(name)
    if entry is not None:
        return entry
    if name in RETIRED:
        raise ConfigError(f"knob {name} is retired: {RETIRED[name]}")
    raise ConfigError(
        f"unknown knob {name!r} — declare it in repro/config.py"
    )


def get(name: str, environ: Mapping[str, str] | None = None, default=_UNSET):
    """Read knob ``name`` from ``environ`` (``os.environ`` by default).

    Unset or empty values yield the declared default — or ``default``
    when the caller passes one (for call sites whose fallback is not the
    knob's, e.g. the E17 bench's shard-worker heuristic).  Values
    outside the declared domain raise :class:`ConfigError`.
    """
    entry = knob(name)
    source = os.environ if environ is None else environ
    raw = source.get(name)
    if raw is None or raw.strip() == "":
        return entry.default_value() if default is _UNSET else default
    return entry.parse(raw)


def is_set(name: str, environ: Mapping[str, str] | None = None) -> bool:
    """Is the (declared) knob explicitly set to a non-empty value?"""
    entry = knob(name)
    source = os.environ if environ is None else environ
    raw = source.get(entry.name)
    return raw is not None and raw.strip() != ""


# ----------------------------------------------------------------------
# Generated documentation (the PERFORMANCE.md knob matrix)
# ----------------------------------------------------------------------

#: Markers bounding the generated matrix inside PERFORMANCE.md.
DOCS_BEGIN = "<!-- repro-lint:knob-matrix:begin -->"
DOCS_END = "<!-- repro-lint:knob-matrix:end -->"


def knob_matrix_markdown() -> str:
    """The generated knob matrix (between the PERFORMANCE.md markers).

    One row per declared knob plus a retired-knob list; regenerated by
    ``repro-lint --write-docs`` and drift-checked by ``--check-docs``.
    """
    lines = [
        "| knob | kind | default | values | consumer | meaning |",
        "|---|---|---|---|---|---|",
    ]
    for entry in sorted(KNOBS.values(), key=lambda k: k.name):
        consumer = ", ".join(
            c.removeprefix("repro.") for c in entry.consumers
        )
        lines.append(
            f"| `{entry.name}` | {entry.kind} "
            f"| `{entry.documented_default()}` "
            f"| {entry.documented_domain()} | `{consumer}` "
            f"| {entry.description} |"
        )
    lines.append("")
    lines.append("Retired knobs (referencing one is a `repro-lint` error):")
    lines.append("")
    for name in sorted(RETIRED):
        lines.append(f"* `{name}` — {RETIRED[name]}")
    return "\n".join(lines)


def check_docs(markdown: str) -> list[str]:
    """Drift problems between ``markdown`` (PERFORMANCE.md's content)
    and the registry — empty when the generated section is in sync."""
    problems: list[str] = []
    begin = markdown.find(DOCS_BEGIN)
    end = markdown.find(DOCS_END)
    if begin < 0 or end < 0 or end < begin:
        return [
            f"PERFORMANCE.md is missing the generated knob matrix "
            f"markers {DOCS_BEGIN} ... {DOCS_END}"
        ]
    committed = markdown[begin + len(DOCS_BEGIN) : end].strip()
    expected = knob_matrix_markdown().strip()
    if committed != expected:
        problems.append(
            "PERFORMANCE.md knob matrix has drifted from repro/config.py "
            "— regenerate it with `repro-lint --write-docs`"
        )
    return problems


def rewrite_docs(markdown: str) -> str:
    """``markdown`` with the generated section replaced (the
    ``--write-docs`` implementation); raises :class:`ConfigError` when
    the markers are missing."""
    begin = markdown.find(DOCS_BEGIN)
    end = markdown.find(DOCS_END)
    if begin < 0 or end < 0 or end < begin:
        raise ConfigError(
            f"cannot rewrite docs: markers {DOCS_BEGIN} ... {DOCS_END} "
            "not found"
        )
    head = markdown[: begin + len(DOCS_BEGIN)]
    tail = markdown[end:]
    return f"{head}\n{knob_matrix_markdown()}\n{tail}"
