"""Weighted (asymmetric) cardinalities across the whole stack.

The paper's bounds are all *weighted*: Σ w_j n_j with per-relation sizes.
Most fixtures use unit logs; this suite exercises genuinely asymmetric
profiles through the LPs, chains, proofs and algorithms.
"""

import math
import random

import pytest

from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.proofs import find_good_sm_proof
from repro.core.sma import submodularity_algorithm
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.udf import UDF
from repro.lattice.builders import fig1_lattice, lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.lp.llp import LatticeLinearProgram
from repro.query.query import paper_example_query, triangle_query


def asymmetric_fig1_db(n_r: int, n_s: int, n_t: int, seed: int = 0):
    """Random-ish R/S/T of different sizes for query (1)."""
    rng = random.Random(seed)
    dom = 32

    def mk(size):
        return {
            (rng.randrange(dom), rng.randrange(dom)) for _ in range(size)
        }

    return Database(
        [
            Relation("R", ("x", "y"), mk(n_r)),
            Relation("S", ("y", "z"), mk(n_s)),
            Relation("T", ("z", "u"), mk(n_t)),
        ],
        udfs=[
            UDF("f", ("x", "z"), "u", lambda x, z: (x + z) % dom),
            UDF("g", ("y", "u"), "x", lambda y, u: (y * 3 + u) % dom),
        ],
    )


class TestWeightedLLP:
    def test_fig1_weighted_optimum(self):
        """With |S| tiny the weighted bound pivots away from the symmetric
        1/2,1/2,1/2 cover."""
        lat, inputs = fig1_lattice()
        logs = {"R": 10.0, "S": 1.0, "T": 10.0}
        program = LatticeLinearProgram(lat, inputs, logs)
        value, _ = program.solve_primal()
        symmetric = 0.5 * sum(logs.values())
        assert value <= symmetric
        dual = program.solve_dual()
        assert dual.bound(logs) == pytest.approx(value)
        assert dual.verify_certificate()

    def test_monotone_in_each_cardinality(self):
        lat, inputs = fig1_lattice()
        base = {"R": 4.0, "S": 4.0, "T": 4.0}
        value0, _ = LatticeLinearProgram(lat, inputs, base).solve_primal()
        for name in inputs:
            bumped = dict(base)
            bumped[name] += 2.0
            value1, _ = LatticeLinearProgram(lat, inputs, bumped).solve_primal()
            assert value1 >= value0 - 1e-9

    def test_zero_size_relation(self):
        lat, inputs = fig1_lattice()
        logs = {"R": 0.0, "S": 5.0, "T": 5.0}
        value, _ = LatticeLinearProgram(lat, inputs, logs).solve_primal()
        # h(R) = 0 pins h(xy) = 0, and monotone structure caps the top.
        assert value <= 10.0 + 1e-9


class TestWeightedChains:
    def test_best_chain_adapts_to_sizes(self):
        lat, inputs = fig1_lattice()
        symmetric = {"R": 6.0, "S": 6.0, "T": 6.0}
        v_sym, _, w_sym = best_chain_bound(lat, inputs, symmetric)
        skewed = {"R": 6.0, "S": 0.5, "T": 6.0}
        v_skew, _, w_skew = best_chain_bound(lat, inputs, skewed)
        assert v_skew < v_sym
        # With S nearly free the cover should lean on S.
        assert w_skew.get("S", 0) >= w_sym.get("S", 0) - 1e-9

    def test_chain_bound_at_least_glvv(self):
        lat, inputs = fig1_lattice()
        for logs in (
            {"R": 3.0, "S": 7.0, "T": 5.0},
            {"R": 1.0, "S": 1.0, "T": 20.0},
        ):
            chain_v, _, _ = best_chain_bound(lat, inputs, logs)
            glvv, _ = LatticeLinearProgram(lat, inputs, logs).solve_primal()
            assert chain_v >= glvv - 1e-6


class TestWeightedProofs:
    def test_sm_proof_with_asymmetric_weights(self):
        """Dual weights like (1, 1, 0) or (1/2, ...) from skewed sizes
        still admit good proofs on fig1."""
        lat, inputs = fig1_lattice()
        logs = {"R": 10.0, "S": 1.0, "T": 10.0}
        solution = LatticeLinearProgram(lat, inputs, logs).solve()
        proof = find_good_sm_proof(
            lat, solution.inequality.weights, inputs, max_steps=14
        )
        assert proof is not None
        assert proof.is_good()


class TestWeightedAlgorithms:
    @pytest.mark.parametrize(
        "sizes", [(200, 20, 200), (50, 300, 50), (30, 30, 300)]
    )
    def test_chain_algorithm_asymmetric(self, sizes):
        query = paper_example_query()
        db = asymmetric_fig1_db(*sizes)
        lattice, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        _, chain, _ = best_chain_bound(lattice, inputs, logs)
        out, _ = chain_algorithm(query, db, lattice, inputs, chain)
        ref, _ = binary_join_plan(query, db)
        assert set(out.tuples) == set(ref.project(out.schema).tuples)

    @pytest.mark.parametrize("sizes", [(200, 20, 200), (30, 30, 300)])
    def test_csma_asymmetric(self, sizes):
        query = paper_example_query()
        db = asymmetric_fig1_db(*sizes)
        lattice, inputs = lattice_from_query(query)
        result = csma(query, db, lattice, inputs)
        ref, _ = binary_join_plan(query, db)
        assert set(result.relation.tuples) == set(
            ref.project(result.relation.schema).tuples
        )
        assert result.stats.fallbacks == 0

    def test_sma_asymmetric_triangle(self):
        query = triangle_query()
        rng = random.Random(3)
        db = Database(
            [
                Relation("R", ("x", "y"),
                         {(rng.randrange(12), rng.randrange(12))
                          for _ in range(150)}),
                Relation("S", ("y", "z"),
                         {(rng.randrange(12), rng.randrange(12))
                          for _ in range(20)}),
                Relation("T", ("z", "x"),
                         {(rng.randrange(12), rng.randrange(12))
                          for _ in range(150)}),
            ]
        )
        lattice, inputs = lattice_from_query(query)
        out, _ = submodularity_algorithm(query, db, lattice, inputs)
        ref, _ = binary_join_plan(query, db)
        assert set(out.tuples) == set(ref.project(out.schema).tuples)
