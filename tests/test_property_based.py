"""Hypothesis property tests on the core structures and invariants."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.ops import natural_join, semijoin
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import lattice_from_fds
from repro.lattice.mobius import mobius_expand_upper, mobius_inverse_upper
from repro.lattice.polymatroid import LatticeFunction, step_function
from repro.query.query import triangle_query


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

VARIABLES = "wxyz"


@st.composite
def fd_sets(draw):
    """Random small FD sets over up to 4 variables."""
    n_fds = draw(st.integers(0, 4))
    fds = []
    for _ in range(n_fds):
        lhs = draw(
            st.sets(st.sampled_from(VARIABLES), min_size=1, max_size=3)
        )
        rhs = draw(
            st.sets(st.sampled_from(VARIABLES), min_size=1, max_size=2)
        )
        fds.append(FD(frozenset(lhs), frozenset(rhs)))
    return FDSet(fds, VARIABLES)


@st.composite
def small_relations(draw, schema=("x", "y")):
    tuples = draw(
        st.lists(
            st.tuples(*[st.integers(0, 5) for _ in schema]), max_size=25
        )
    )
    return Relation("R", schema, tuples)


@st.composite
def triangle_databases(draw):
    edges = st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30
    )
    return Database(
        [
            Relation("R", ("x", "y"), draw(edges)),
            Relation("S", ("y", "z"), draw(edges)),
            Relation("T", ("z", "x"), draw(edges)),
        ]
    )


# ----------------------------------------------------------------------
# FD closure is a closure operator
# ----------------------------------------------------------------------

@given(fd_sets(), st.sets(st.sampled_from(VARIABLES)))
def test_closure_extensive(fds, attrs):
    assert frozenset(attrs) <= fds.closure(attrs)


@given(fd_sets(), st.sets(st.sampled_from(VARIABLES)))
def test_closure_idempotent(fds, attrs):
    once = fds.closure(attrs)
    assert fds.closure(once) == once


@given(
    fd_sets(),
    st.sets(st.sampled_from(VARIABLES)),
    st.sets(st.sampled_from(VARIABLES)),
)
def test_closure_monotone(fds, a, b):
    if frozenset(a) <= frozenset(b):
        assert fds.closure(a) <= fds.closure(b)


@given(fd_sets())
def test_minimal_cover_equivalent(fds):
    assert fds.minimal_cover().equivalent(fds)


# ----------------------------------------------------------------------
# FD lattices are lattices; meets are intersections
# ----------------------------------------------------------------------

@given(fd_sets())
@settings(max_examples=40, deadline=None)
def test_fd_lattice_meet_is_intersection(fds):
    lattice = lattice_from_fds(fds)
    for i in range(lattice.n):
        for j in range(lattice.n):
            meet = lattice.label(lattice.meet(i, j))
            assert meet == lattice.label(i) & lattice.label(j)


@given(fd_sets())
@settings(max_examples=40, deadline=None)
def test_fd_lattice_join_is_closure_of_union(fds):
    lattice = lattice_from_fds(fds)
    for i in range(lattice.n):
        for j in range(lattice.n):
            join = lattice.label(lattice.join(i, j))
            assert join == fds.closure(lattice.label(i) | lattice.label(j))


# ----------------------------------------------------------------------
# Möbius inversion and step functions
# ----------------------------------------------------------------------

@given(fd_sets(), st.lists(st.integers(-5, 5), min_size=16, max_size=16))
@settings(max_examples=40, deadline=None)
def test_mobius_roundtrip(fds, raw_values):
    lattice = lattice_from_fds(fds)
    values = [Fraction(raw_values[i % len(raw_values)]) for i in range(lattice.n)]
    g = mobius_inverse_upper(lattice, values)
    assert mobius_expand_upper(lattice, g) == values


@given(fd_sets())
@settings(max_examples=30, deadline=None)
def test_step_functions_are_normal_polymatroids(fds):
    lattice = lattice_from_fds(fds)
    for z in range(lattice.n):
        if z == lattice.top:
            continue
        h = step_function(lattice, z)
        assert h.is_polymatroid()
        assert h.is_normal()


@given(
    fd_sets(),
    st.lists(st.integers(0, 3), min_size=4, max_size=4),
)
@settings(max_examples=30, deadline=None)
def test_nonneg_combos_of_steps_are_normal(fds, coefficients):
    # Sec. 4: normal polymatroids = cone of step functions.
    lattice = lattice_from_fds(fds)
    h = LatticeFunction.zero(lattice)
    candidates = [z for z in range(lattice.n) if z != lattice.top]
    for k, c in enumerate(coefficients):
        z = candidates[k % len(candidates)]
        h = h + step_function(lattice, z).scale(c)
    assert h.is_normal()
    assert h.is_polymatroid()


@given(fd_sets())
@settings(max_examples=30, deadline=None)
def test_lovasz_monotonization(fds):
    # Lovász of any nonneg submodular keeps top value and is a polymatroid.
    lattice = lattice_from_fds(fds)
    h = LatticeFunction(
        lattice, [Fraction(2) for _ in range(lattice.n)]
    )
    values = list(h.values)
    values[lattice.bottom] = Fraction(0)
    h = LatticeFunction(lattice, values)
    if h.is_submodular():
        hbar = h.lovasz_monotonization()
        assert hbar.is_polymatroid()
        assert hbar.values[lattice.top] == h.values[lattice.top]


# ----------------------------------------------------------------------
# Relational operators
# ----------------------------------------------------------------------

@given(small_relations(), small_relations(schema=("y", "z")))
def test_join_is_subset_of_cross_product_semantics(r, s):
    out = natural_join(r, s)
    for t in out.tuples:
        row = dict(zip(out.schema, t))
        assert (row["x"], row["y"]) in set(r.tuples)
        assert (row["y"], row["z"]) in set(s.tuples)


@given(small_relations(), small_relations(schema=("y", "z")))
def test_join_complete(r, s):
    out = set(natural_join(r, s).tuples)
    s_index = s.index_on(("y",))
    for (x, y) in r.tuples:
        for (_, z) in s_index.get((y,), ()):
            assert (x, y, z) in out


@given(small_relations(), small_relations(schema=("y", "z")))
def test_semijoin_idempotent(r, s):
    once = semijoin(r, s)
    twice = semijoin(once, s)
    assert set(once.tuples) == set(twice.tuples)


@given(small_relations())
def test_project_degree_consistency(r):
    # Σ over x-groups of degree = |R|.
    total = sum(r.degree({"x": v}) for v in r.distinct_values("x"))
    assert total == len(r)


# ----------------------------------------------------------------------
# Engine equivalence on random triangle instances
# ----------------------------------------------------------------------

@given(triangle_databases())
@settings(max_examples=25, deadline=None)
def test_generic_join_matches_binary_plan(db):
    query = triangle_query()
    a, _ = generic_join(query, db)
    b, _ = binary_join_plan(query, db)
    assert set(a.tuples) == set(b.project(a.schema).tuples)


@given(triangle_databases())
@settings(max_examples=15, deadline=None)
def test_csma_matches_binary_plan(db):
    from repro.core.csma import csma
    from repro.lattice.builders import lattice_from_query

    query = triangle_query()
    lattice, inputs = lattice_from_query(query)
    result = csma(query, db, lattice, inputs)
    b, _ = binary_join_plan(query, db)
    assert set(result.relation.tuples) == set(
        b.project(result.relation.schema).tuples
    )
