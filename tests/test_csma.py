"""CSMA — conditional submodularity algorithm (repro.core.csma)."""

import math

import pytest

from repro.core.csma import CSMAError, build_csm_proof, csma
from repro.datagen.from_lattice import worst_case_database
from repro.datagen.product import random_database
from repro.datagen.worstcase import (
    grid_instance_example_5_5,
    skew_instance_example_5_8,
)
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.lattice.builders import fig9_lattice, lattice_from_query
from repro.lp.cllp import ConditionalLLP, DegreeConstraint
from repro.query.query import triangle_query


def reference(query, db):
    out, _ = binary_join_plan(query, db)
    return set(out.project(tuple(sorted(query.variables))).tuples)


def fig9_setup(scale=2):
    lat0, inp0 = fig9_lattice()
    query, db, h = worst_case_database(lat0, inp0, scale=scale)
    lattice, inputs = lattice_from_query(query)
    return query, db, lattice, inputs


class TestProofConstruction:
    def test_fig9_proof_reaches_top(self):
        query, db, lattice, inputs = fig9_setup()
        logs = {name: 1.0 for name in inputs}
        program = ConditionalLLP.from_cardinalities(lattice, inputs, logs)
        solution = program.solve()
        rules = build_csm_proof(
            lattice, solution.dual,
            [(lattice.bottom, r) for r in inputs.values()],
        )
        assert rules  # non-empty
        kinds = {r.kind for r in rules}
        assert "SM" in kinds  # Fig. 9 needs SM-rules
        assert "CD" in kinds  # ... preceded by decompositions

    def test_triangle_proof(self):
        query = triangle_query()
        lattice, inputs = lattice_from_query(query)
        logs = {name: 1.0 for name in inputs}
        solution = ConditionalLLP.from_cardinalities(
            lattice, inputs, logs
        ).solve()
        rules = build_csm_proof(
            lattice, solution.dual,
            [(lattice.bottom, r) for r in inputs.values()],
        )
        assert rules


class TestCorrectness:
    def test_triangle(self):
        query = triangle_query()
        db = random_database(query, 150, seed=2)
        lattice, inputs = lattice_from_query(query)
        result = csma(query, db, lattice, inputs)
        assert set(result.relation.tuples) == reference(query, db)
        assert result.stats.fallbacks == 0

    def test_fig9_worst_case(self):
        query, db, lattice, inputs = fig9_setup(scale=3)
        result = csma(query, db, lattice, inputs)
        assert set(result.relation.tuples) == reference(query, db)
        assert len(result.relation) == 27  # scale^{h(1̂)} = 3³
        assert result.stats.fallbacks == 0

    def test_grid_instance(self):
        query, db = grid_instance_example_5_5(49)
        lattice, inputs = lattice_from_query(query)
        result = csma(query, db, lattice, inputs)
        assert set(result.relation.tuples) == reference(query, db)

    def test_skew_instance(self):
        query, db = skew_instance_example_5_8(60)
        lattice, inputs = lattice_from_query(query)
        result = csma(query, db, lattice, inputs)
        assert set(result.relation.tuples) == reference(query, db)

    def test_empty_db(self):
        query = triangle_query()
        db = random_database(query, 0, seed=0)
        lattice, inputs = lattice_from_query(query)
        result = csma(query, db, lattice, inputs)
        assert len(result.relation) == 0


class TestDegreeBounds:
    """Sec. 1.2 / Prop. 5.32: known max degrees tighten the bound and the
    algorithm exploits them."""

    def _bounded_triangle(self, n, d):
        query = triangle_query()
        nodes = max(2, n // d)
        r = {(x, (x * 7 + k) % nodes) for x in range(nodes) for k in range(d)}
        import random

        rng = random.Random(0)
        s = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
        t = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
        db = Database(
            [
                Relation("R", ("x", "y"), r),
                Relation("S", ("y", "z"), s),
                Relation("T", ("z", "x"), t),
            ]
        )
        return query, db, d

    def test_cllp_bound_drops(self):
        query, db, d = self._bounded_triangle(300, 3)
        lattice, inputs = lattice_from_query(query)
        logs = db.log_sizes()
        base = ConditionalLLP.from_cardinalities(lattice, inputs, logs)
        plain, _ = base.solve_primal()
        x = lattice.index(frozenset("x"))
        xy = lattice.index(frozenset("xy"))
        bounded = base.with_constraint(DegreeConstraint(x, xy, math.log2(d)))
        tightened, _ = bounded.solve_primal()
        assert tightened < plain - 0.5

    def test_csma_with_degree_constraint(self):
        query, db, d = self._bounded_triangle(300, 3)
        lattice, inputs = lattice_from_query(query)
        x = lattice.index(frozenset("x"))
        xy = lattice.index(frozenset("xy"))
        dc = DegreeConstraint(x, xy, math.log2(d), guard="R")
        result = csma(query, db, lattice, inputs, extra_degree_constraints=[dc])
        assert set(result.relation.tuples) == reference(query, db)
        assert result.stats.fallbacks == 0

    def test_constraint_without_guard_rejected(self):
        query, db, d = self._bounded_triangle(50, 2)
        lattice, inputs = lattice_from_query(query)
        x = lattice.index(frozenset("x"))
        xy = lattice.index(frozenset("xy"))
        dc = DegreeConstraint(x, xy, 1.0, guard=None)
        with pytest.raises(CSMAError):
            csma(query, db, lattice, inputs, extra_degree_constraints=[dc])


class TestComplexityShape:
    def test_fig9_work_shape(self):
        """Thm. 5.37 shape: CSMA's work on Fig. 9 scales near N^{3/2},
        clearly below the chain bound N²."""
        works = []
        sizes = []
        for scale in (3, 6):
            query, db, lattice, inputs = fig9_setup(scale=scale)
            result = csma(query, db, lattice, inputs)
            works.append(max(1, result.stats.tuples_touched))
            sizes.append(len(db["M"]))
        exponent = math.log(works[1] / works[0]) / math.log(sizes[1] / sizes[0])
        assert exponent < 1.85  # comfortably below quadratic
