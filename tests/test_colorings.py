"""GLVV colorings ↔ normal polymatroids (repro.core.colorings, Sec. 4.3)."""

from fractions import Fraction

import pytest

from repro.core.bounds import coatomic_bound_log2
from repro.core.colorings import (
    Coloring,
    color_number_bound_log2,
    coloring_from_polymatroid,
)
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import boolean_algebra, fig1_lattice, m3_query_lattice
from repro.lattice.polymatroid import LatticeFunction, step_function


def triangle_coloring():
    """Each variable gets its own color: the classic AGM coloring."""
    return Coloring(
        {
            "x": frozenset({"cx"}),
            "y": frozenset({"cy"}),
            "z": frozenset({"cz"}),
        }
    )


class TestColoring:
    def test_color_set_union(self):
        c = triangle_coloring()
        assert c.color_set("xy") == frozenset({"cx", "cy"})

    def test_respects_trivial_fds(self):
        c = triangle_coloring()
        assert c.respects_fds(FDSet((), "xyz"))

    def test_fd_violation(self):
        # x -> y requires L(y) ⊆ L(x): distinct colors violate it.
        c = triangle_coloring()
        assert not c.respects_fds(FDSet([FD("x", "y")]))

    def test_fd_satisfied_by_shared_colors(self):
        c = Coloring(
            {"x": frozenset({"c1", "c2"}), "y": frozenset({"c2"})}
        )
        assert c.respects_fds(FDSet([FD("x", "y")]))

    def test_color_number_triangle(self):
        c = triangle_coloring()
        atom_vars = {
            "R": frozenset("xy"), "S": frozenset("yz"), "T": frozenset("xz")
        }
        assert c.color_number(atom_vars) == Fraction(3, 2)

    def test_to_polymatroid_is_normal(self):
        c = triangle_coloring()
        lat = boolean_algebra("xyz")
        h = c.to_polymatroid(lat)
        assert h.is_polymatroid()
        assert h.is_normal()
        assert h.values[lat.top] == 3


class TestRoundTrip:
    def test_polymatroid_to_coloring_and_back(self):
        # h = h_∅ + h_x + h_y (all variables positive).
        lat = boolean_algebra("xyz")
        h = (
            step_function(lat, lat.bottom)
            + step_function(lat, lat.index(frozenset("x")))
            + step_function(lat, lat.index(frozenset("y")))
        )
        coloring = coloring_from_polymatroid(h, "xyz")
        assert coloring.is_valid()
        h_back = coloring.to_polymatroid(lat)
        assert h_back.values == h.values

    def test_fig1_optimum(self):
        lat, inputs = fig1_lattice()
        values = {
            frozenset(): 0,
            frozenset("x"): 1, frozenset("y"): 1, frozenset("z"): 1,
            frozenset("u"): 1,
            frozenset("xy"): 2, frozenset("xu"): 1, frozenset("zu"): 2,
            frozenset("yz"): 2,
            frozenset("xyu"): 2, frozenset("xzu"): 2,
            frozenset("xyzu"): 3,
        }
        h = LatticeFunction.from_mapping(lat, values)
        coloring = coloring_from_polymatroid(h, "xyzu")
        # The renaming of Ex. 3.8: x and u share their colors.
        assert coloring.assignment["x"] == coloring.assignment["u"]
        assert coloring.to_polymatroid(lat).values == h.values

    def test_zero_variable_rejected(self):
        lat = boolean_algebra("xy")
        h = step_function(lat, lat.index(frozenset("y")))  # h(y) = 0
        with pytest.raises(ValueError):
            coloring_from_polymatroid(h, "xy")

    def test_non_normal_rejected(self):
        lat, _ = m3_query_lattice()
        h = LatticeFunction.from_mapping(
            lat, {"x": 1, "y": 1, "z": 1, "1": 2}
        )
        with pytest.raises(ValueError):
            coloring_from_polymatroid(h, "xyz")


class TestColorNumberBound:
    def test_equals_coatomic(self):
        for lat, inputs in [fig1_lattice(), m3_query_lattice()]:
            logs = {name: 1.0 for name in inputs}
            assert color_number_bound_log2(
                lat, inputs, logs
            ) == pytest.approx(coatomic_bound_log2(lat, inputs, logs))

    def test_m3_gap_reproduced(self):
        """GLVV's coloring bound gives 3/2 on M3 while the true worst case
        is 2 — the Sec. 4.3 limitation of colorings."""
        lat, inputs = m3_query_lattice()
        logs = {name: 1.0 for name in inputs}
        assert color_number_bound_log2(lat, inputs, logs) == pytest.approx(1.5)
