"""LeapFrog TrieJoin (repro.engine.leapfrog)."""

import itertools

import pytest

from repro.datagen.product import product_database, random_database
from repro.datagen.worstcase import (
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import (
    TrieIndex,
    TrieIterator,
    leapfrog_intersection,
    leapfrog_triejoin,
)
from repro.engine.relation import Relation
from repro.query.query import triangle_query


class TestTrieIndex:
    def test_build_and_walk(self):
        rel = Relation("R", ("x", "y"), [(1, 10), (1, 20), (2, 30)])
        trie = TrieIndex(rel, ("x", "y"))
        it = TrieIterator(trie)
        it.open()
        assert it.key() == 1
        it.open()
        assert it.key() == 10
        it.next()
        assert it.key() == 20
        it.next()
        assert it.at_end()
        it.up()
        it.next()
        assert it.key() == 2

    def test_seek(self):
        rel = Relation("R", ("x",), [(i,) for i in (1, 3, 5, 9)])
        trie = TrieIndex(rel, ("x",))
        it = TrieIterator(trie)
        it.open()
        it.seek(4)
        assert it.key() == 5
        it.seek(9)
        assert it.key() == 9
        it.seek(10)
        assert it.at_end()

    def test_order_must_cover_schema(self):
        rel = Relation("R", ("x", "y"), [(1, 2)])
        with pytest.raises(ValueError):
            TrieIndex(rel, ("x",))

    def test_reorders_attributes(self):
        rel = Relation("R", ("x", "y"), [(1, 10), (2, 10)])
        trie = TrieIndex(rel, ("y", "x"))
        it = TrieIterator(trie)
        it.open()
        assert it.key() == 10  # first level is y now


class TestLeapfrogIntersection:
    def _iter(self, values):
        rel = Relation("R", ("x",), [(v,) for v in values])
        it = TrieIterator(TrieIndex(rel, ("x",)))
        it.open()
        return it

    def test_basic(self):
        out = []
        leapfrog_intersection(
            [self._iter([1, 3, 5, 7]), self._iter([2, 3, 5, 8]),
             self._iter([0, 3, 5, 9])],
            out.append,
        )
        assert out == [3, 5]

    def test_disjoint(self):
        out = []
        leapfrog_intersection(
            [self._iter([1, 2]), self._iter([3, 4])], out.append
        )
        assert out == []

    def test_identical(self):
        out = []
        leapfrog_intersection(
            [self._iter([1, 2, 3]), self._iter([1, 2, 3])], out.append
        )
        assert out == [1, 2, 3]


class TestLeapfrogTriejoin:
    def test_triangle_matches_generic(self):
        query = triangle_query()
        db = random_database(query, 120, seed=3)
        a, _ = leapfrog_triejoin(query, db)
        b, _ = generic_join(query, db)
        assert set(a.tuples) == set(b.project(a.schema).tuples)

    def test_all_orders_agree(self):
        query = triangle_query()
        db = random_database(query, 60, seed=8)
        outs = set()
        for order in itertools.permutations("xyz"):
            out, _ = leapfrog_triejoin(query, db, order=order)
            outs.add(frozenset(out.project(("x", "y", "z")).tuples))
        assert len(outs) == 1

    def test_product_instance(self):
        query = triangle_query()
        db = product_database(query, {"x": 3, "y": 3, "z": 3})
        out, _ = leapfrog_triejoin(query, db)
        assert len(out) == 27

    def test_fd_aware_on_udf_query(self):
        query, db = grid_instance_example_5_5(36)
        a, _ = leapfrog_triejoin(query, db, order=("y", "z", "x", "u"))
        b, _ = generic_join(
            query, db, order=("y", "z", "x", "u"), fd_aware=True
        )
        assert set(a.tuples) == set(b.project(a.schema).tuples)

    def test_m3_query(self):
        query, db = m3_modular_instance(7)
        out, _ = leapfrog_triejoin(query, db, order=("x", "y", "z"))
        assert len(out) == 49

    def test_skew_quadratic_footnote1(self):
        """Footnote 1's FD binding does not rescue LFTJ from Ω(N²) on the
        skew instance — the paper's point in Ex. 5.8."""
        query, db = skew_instance_example_5_8(64)
        _, stats = leapfrog_triejoin(query, db, order=("y", "z", "x", "u"))
        assert stats.tuples_touched > (64 // 2) ** 2 / 2

    def test_empty_relation(self):
        query = triangle_query()
        db = random_database(query, 0, seed=0)
        out, _ = leapfrog_triejoin(query, db)
        assert len(out) == 0

    def test_invalid_order(self):
        query = triangle_query()
        db = random_database(query, 5, seed=0)
        with pytest.raises(ValueError):
            leapfrog_triejoin(query, db, order=("x", "y"))

    def test_mixed_value_types(self):
        # Strings and ints in the same column sort via the type-aware key.
        query = triangle_query()
        from repro.engine.database import Database

        edges = [("a", 1), (2, "b"), ("a", "b")]
        db = Database(
            [
                Relation("R", ("x", "y"), edges),
                Relation("S", ("y", "z"), edges),
                Relation("T", ("z", "x"), edges),
            ]
        )
        a, _ = leapfrog_triejoin(query, db)
        b, _ = generic_join(query, db)
        assert set(a.tuples) == set(b.project(a.schema).tuples)
