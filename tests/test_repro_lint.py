"""The analyzer's own suite: every rule fires on its fixture, stays
silent on the conforming twin, pragmas suppress, the baseline and CLI
behave, and — the acceptance gate — the real tree is clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import config
from repro.analysis import Analysis, ModuleInfo
from repro.analysis.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def run_rule(rule: str, path: Path, *, is_engine: bool = True):
    """Run one rule over one fixture file, scanned as engine code (the
    strictest scope — conforming fixtures must pass even there)."""
    module = ModuleInfo(
        str(path), path.read_text(encoding="utf-8"), is_engine=is_engine
    )
    return Analysis([rule]).run_modules([module])


CASES = [
    ("knob-discipline", "knob_discipline"),
    ("context-propagation", "context_propagation"),
    ("optional-dep-guard", "optional_dep"),
    ("codegen-hygiene", "codegen_hygiene"),
    ("error-taxonomy", "error_taxonomy"),
    ("lock-discipline", "lock_discipline"),
]


@pytest.mark.parametrize("rule,stem", CASES)
def test_rule_fires_on_bad_fixture(rule, stem):
    findings = run_rule(rule, FIXTURES / f"{stem}_bad.py")
    assert findings, f"{rule} should fire on {stem}_bad.py"
    assert all(f.rule == rule for f in findings)


@pytest.mark.parametrize("rule,stem", CASES)
def test_rule_silent_on_ok_fixture(rule, stem):
    assert run_rule(rule, FIXTURES / f"{stem}_ok.py") == []


def test_knob_discipline_message_kinds():
    findings = run_rule("knob-discipline", FIXTURES / "knob_discipline_bad.py")
    messages = "\n".join(f.message for f in findings)
    assert "raw environment read of REPRO_SHARD" in messages
    assert "raw environment read of REPRO_FUSE" in messages
    assert "raw environment read of REPRO_ENCODE" in messages
    assert "undeclared knob REPRO_NO_SUCH_KNOB" in messages
    assert "retired knob REPRO_ADMIT_EXACT_MAX" in messages


def test_error_taxonomy_covers_all_four_shapes():
    findings = run_rule("error-taxonomy", FIXTURES / "error_taxonomy_bad.py")
    messages = "\n".join(f.message for f in findings)
    assert "bare except" in messages
    assert "broad except" in messages
    assert "string-matching" in messages
    assert "raise of LocalError" in messages


def test_lock_discipline_exempts_init():
    findings = run_rule("lock-discipline", FIXTURES / "lock_discipline_bad.py")
    # Exactly the two writes in bump(); the __init__ writes are exempt.
    assert len(findings) == 2
    assert {f.message for f in findings} == {
        "write to locked field 'total' outside a with-lock block",
        "write to locked field 'by_key' outside a with-lock block",
    }


def test_codegen_whitelist_is_path_scoped():
    source = "def gen(src, ns):\n    exec(src, ns)\n"
    inside = ModuleInfo("src/repro/engine/fused.py", source)
    outside = ModuleInfo("src/repro/engine/frontier.py", source)
    analysis = Analysis(["codegen-hygiene"])
    assert analysis.run_modules([inside]) == []
    [finding] = analysis.run_modules([outside])
    assert "outside the codegen whitelist" in finding.message

    bare = ModuleInfo("src/repro/engine/fused.py", "exec('x = 1')\n")
    [finding] = analysis.run_modules([bare])
    assert "explicit namespace" in finding.message


def test_line_pragma_suppresses_only_its_line():
    source = (
        "import os\n"
        "a = os.environ.get('REPRO_SHARD')  # repro-lint: disable=knob-discipline\n"
        "b = os.environ.get('REPRO_FUSE')\n"
    )
    findings = Analysis(["knob-discipline"]).run_modules(
        [ModuleInfo("x.py", source)]
    )
    assert [f.line for f in findings] == [3]


def test_file_pragma_suppresses_everywhere():
    source = (
        "# repro-lint: disable-file=knob-discipline\n"
        "import os\n"
        "a = os.environ.get('REPRO_SHARD')\n"
        "b = os.environ.get('REPRO_FUSE')\n"
    )
    findings = Analysis(["knob-discipline"]).run_modules(
        [ModuleInfo("x.py", source)]
    )
    assert findings == []


def test_unknown_rule_is_an_error():
    with pytest.raises(ValueError, match="unknown rules"):
        Analysis(["no-such-rule"])


def test_registry_has_exactly_the_documented_rules():
    from repro.analysis import all_rules

    assert sorted(all_rules()) == [
        "codegen-hygiene",
        "context-propagation",
        "error-taxonomy",
        "knob-discipline",
        "lock-discipline",
        "optional-dep-guard",
    ]


# ---------------------------------------------------------------------------
# CLI, baseline, docs drift
# ---------------------------------------------------------------------------


def test_cli_json_output_and_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    bad = FIXTURES / "codegen_hygiene_bad.py"
    rc = lint_main(["--json", "--strict", str(bad)])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["docs_drift"] == []
    assert {f["rule"] for f in payload["findings"]} == {"codegen-hygiene"}
    assert {"rule", "path", "line", "col", "message", "severity"} <= set(
        payload["findings"][0]
    )

    ok = FIXTURES / "codegen_hygiene_ok.py"
    assert lint_main(["--strict", str(ok)]) == 0
    assert "clean" in capsys.readouterr().out


def test_baseline_accepts_and_strict_ignores(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    bad = FIXTURES / "codegen_hygiene_bad.py"
    baseline = tmp_path / "baseline.json"
    assert (
        lint_main(["--write-baseline", "--baseline", str(baseline), str(bad)])
        == 0
    )
    capsys.readouterr()
    # Baselined findings stop failing the default run …
    assert lint_main(["--baseline", str(baseline), str(bad)]) == 0
    capsys.readouterr()
    # … but --strict ignores the baseline entirely.
    assert lint_main(["--strict", "--baseline", str(baseline), str(bad)]) == 1
    capsys.readouterr()


def test_committed_baseline_is_empty():
    committed = json.loads(
        (REPO_ROOT / "src/repro/analysis/baseline.json").read_text()
    )
    assert committed == {"version": 1, "findings": []}


def test_docs_matrix_in_sync_and_drift_detected():
    markdown = (REPO_ROOT / "PERFORMANCE.md").read_text(encoding="utf-8")
    assert config.check_docs(markdown) == []
    drifted = markdown.replace("`REPRO_SHARD_MIN` | int | `65536`", "`REPRO_SHARD_MIN` | int | `1`")
    assert config.check_docs(drifted)
    assert config.check_docs("no markers at all")


# ---------------------------------------------------------------------------
# The acceptance gate: the real tree is clean under --strict
# ---------------------------------------------------------------------------


def test_real_tree_is_clean(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    rc = lint_main(["--strict", "--check-docs", "src", "tests", "benchmarks"])
    out = capsys.readouterr().out
    assert rc == 0, f"repro-lint found violations:\n{out}"
