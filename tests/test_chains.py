"""Chains, goodness, chain bounds (repro.lattice.chains)."""

import math

import pytest

from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig9_lattice,
    m3_query_lattice,
)
from repro.lattice.chains import (
    Chain,
    all_chains,
    all_maximal_chains,
    best_chain_bound,
    chain_bound,
    chain_hypergraph,
    chain_tight_polymatroid,
    condition_15_holds,
    dual_shearer_chain,
    is_good_chain,
    is_good_for_all,
    shearer_chain,
)
from repro.lattice.polymatroid import LatticeFunction


def chain_by_labels(lattice, labels):
    return Chain(lattice, tuple(lattice.index(l) for l in labels))


class TestChainBasics:
    def test_must_start_bottom(self):
        lat = boolean_algebra("xy")
        with pytest.raises(ValueError):
            Chain(lat, (lat.index(frozenset("x")), lat.top))

    def test_must_increase(self):
        lat = boolean_algebra("xy")
        with pytest.raises(ValueError):
            Chain(lat, (lat.bottom, lat.top, lat.top))

    def test_length(self):
        lat = boolean_algebra("xy")
        c = chain_by_labels(
            lat, [frozenset(), frozenset("x"), frozenset("xy")]
        )
        assert len(c) == 2

    def test_covers(self):
        lat, _ = fig1_lattice()
        c = chain_by_labels(
            lat,
            [frozenset(), frozenset("y"), frozenset("yz"), frozenset("xyzu")],
        )
        r = lat.index(frozenset("xy"))
        # R=xy covers steps 1 (gains y) and 3 (gains x).
        assert c.covered_steps(r) == [1, 3]

    def test_ex55_chain_hypergraph(self):
        """Ex. 5.5: chain 0̂ ≺ y ≺ yz ≺ 1̂ has e_R={1,3}, e_S={1,2},
        e_T={2,3} — isomorphic to the co-atomic hypergraph."""
        lat, inputs = fig1_lattice()
        c = chain_by_labels(
            lat,
            [frozenset(), frozenset("y"), frozenset("yz"), frozenset("xyzu")],
        )
        graph = chain_hypergraph(c, inputs)
        assert set(graph.edges["R"]) == {1, 3}
        assert set(graph.edges["S"]) == {1, 2}
        assert set(graph.edges["T"]) == {2, 3}


class TestGoodness:
    def test_maximal_chains_always_good(self):
        # Prop. 5.2.
        lat, inputs = fig1_lattice()
        for chain in all_maximal_chains(lat):
            assert is_good_chain(chain, inputs.values())

    def test_ex55_chain_good(self):
        lat, inputs = fig1_lattice()
        c = chain_by_labels(
            lat,
            [frozenset(), frozenset("y"), frozenset("yz"), frozenset("xyzu")],
        )
        assert is_good_chain(c, inputs.values())

    def test_non_maximal_can_be_bad(self):
        # In 2^{xyz} the chain 0̂ ≺ xyz skips everything: for R=xy,
        # C_0 ∨ (R ∧ C_1) = xy != xyz, so it is not good for R.
        lat = boolean_algebra("xyz")
        c = Chain(lat, (lat.bottom, lat.top))
        r = lat.index(frozenset("xy"))
        assert not is_good_chain(c, [r])


class TestChainBound:
    def test_ex55_bound_three_halves(self):
        lat, inputs = fig1_lattice()
        c = chain_by_labels(
            lat,
            [frozenset(), frozenset("y"), frozenset("yz"), frozenset("xyzu")],
        )
        logs = {name: 1.0 for name in inputs}
        value, weights = chain_bound(c, inputs, logs)
        assert value == pytest.approx(1.5)

    def test_ex58_atomic_chain_suboptimal(self):
        """Ex. 5.8: the chain 0̂ ≺ x ≺ xu ≺ xyu ≺ 1̂ gives ρ* = 2."""
        lat, inputs = fig1_lattice()
        c = chain_by_labels(
            lat,
            [
                frozenset(), frozenset("x"), frozenset("xu"),
                frozenset("xyu"), frozenset("xyzu"),
            ],
        )
        logs = {name: 1.0 for name in inputs}
        value, _ = chain_bound(c, inputs, logs)
        assert value == pytest.approx(2.0)

    def test_isolated_vertex_infinite(self):
        # Fig. 5 / Ex. 5.10: maximal chain through z isolates a vertex.
        lat, inputs = fig5_lattice()
        c = chain_by_labels(
            lat,
            [frozenset(), frozenset("z"), frozenset("xz"), frozenset("xyz")],
        )
        logs = {name: 1.0 for name in inputs}
        value, _ = chain_bound(c, inputs, logs)
        assert math.isinf(value)

    def test_fig4_all_chains_suboptimal(self):
        # Ex. 5.18: every chain gives >= 3/2 while GLVV = 4/3.
        lat, inputs = fig4_lattice()
        logs = {name: 1.0 for name in inputs}
        value, chain, _ = best_chain_bound(lat, inputs, logs)
        assert value == pytest.approx(1.5)

    def test_m3_chain_bound_two(self):
        # Ex. 5.12.
        lat, inputs = m3_query_lattice()
        logs = {name: 1.0 for name in inputs}
        value, chain, weights = best_chain_bound(lat, inputs, logs)
        assert value == pytest.approx(2.0)

    def test_fig1_best_chain_is_three_halves(self):
        lat, inputs = fig1_lattice()
        logs = {name: 1.0 for name in inputs}
        value, chain, _ = best_chain_bound(lat, inputs, logs)
        assert value == pytest.approx(1.5)

    def test_weighted_bound(self):
        # Unequal cardinalities change the optimal cover.
        lat, inputs = fig1_lattice()
        logs = {"R": 10.0, "S": 1.0, "T": 1.0}
        value, chain, _ = best_chain_bound(lat, inputs, logs)
        # Cover avoiding R where possible: bound <= S + T + ... at most 11,
        # and must be strictly below the symmetric 0.5*(10+1+1)=6.
        assert value < 6.0


class TestChainSelection:
    def test_shearer_chain_good_no_isolated(self):
        # Corollary 5.9 on all the figure lattices.
        for lat, inputs in [fig1_lattice(), fig4_lattice(), fig5_lattice(),
                            fig9_lattice(), m3_query_lattice()]:
            chain = shearer_chain(lat, list(inputs.values()))
            assert is_good_chain(chain, inputs.values())
            graph = chain_hypergraph(chain, inputs)
            assert not graph.isolated_vertices()

    def test_dual_shearer_chain_good_no_isolated(self):
        # Corollary 5.11.
        for lat, inputs in [fig1_lattice(), fig5_lattice(), m3_query_lattice()]:
            chain = dual_shearer_chain(lat, list(inputs.values()))
            assert is_good_chain(chain, inputs.values())
            graph = chain_hypergraph(chain, inputs)
            assert not graph.isolated_vertices()

    def test_fig5_shearer_avoids_isolation(self):
        # Ex. 5.10: the constructed chain must be the non-maximal
        # 0̂ ≺ x ≺ 1̂ (or symmetric), bound N².
        lat, inputs = fig5_lattice()
        chain = shearer_chain(lat, list(inputs.values()))
        logs = {name: 1.0 for name in inputs}
        value, _ = chain_bound(chain, inputs, logs)
        assert value == pytest.approx(2.0)
        assert len(chain) == 2  # non-maximal


class TestCondition15:
    def test_fig1_chain_satisfies(self):
        # Ex. 5.16 / Fig. 6: tight beyond distributive lattices.
        lat, inputs = fig1_lattice()
        c = chain_by_labels(
            lat,
            [frozenset(), frozenset("y"), frozenset("yz"), frozenset("xyzu")],
        )
        assert condition_15_holds(c)

    def test_boolean_maximal_chains_satisfy(self):
        # Cor. 5.15: distributive lattices.
        lat = boolean_algebra("xyz")
        for chain in all_maximal_chains(lat):
            assert condition_15_holds(chain)

    def test_tight_polymatroid_properties(self):
        """Theorem 5.14's u: an optimal, feasible polymatroid below h*.

        (The paper's proof also asserts modularity, which additionally
        needs e(X∧Y) = e(X)∩e(Y); we test the properties the tightness
        argument actually uses: polymatroid, u <= h*, u(1̂) = h*(1̂).)"""
        lat, inputs = fig1_lattice()
        c = chain_by_labels(
            lat,
            [frozenset(), frozenset("y"), frozenset("yz"), frozenset("xyzu")],
        )
        from repro.lp.llp import LatticeLinearProgram

        program = LatticeLinearProgram(lat, inputs, {n: 1.0 for n in inputs})
        _, h_raw = program.solve_primal()
        h_star = h_raw.lovasz_monotonization()
        u = chain_tight_polymatroid(c, h_star.values)
        hu = LatticeFunction(lat, u)
        assert hu.is_polymatroid()
        assert hu.restrict_leq(h_star)
        assert hu.values[lat.top] == h_star.values[lat.top]


class TestAllChains:
    def test_counts_boolean2(self):
        # Chains from 0̂ to 1̂ in 2^{xy}: 0-1 direct, via x, via y = 3.
        lat = boolean_algebra("xy")
        assert sum(1 for _ in all_chains(lat)) == 3

    def test_limit(self):
        lat = boolean_algebra("xyz")
        assert sum(1 for _ in all_chains(lat, limit=5)) == 5
