"""Exact rational linear algebra (repro.util.rational)."""

from fractions import Fraction

import pytest

from repro.util.rational import (
    as_fraction,
    enumerate_polytope_vertices,
    is_feasible_point,
    rank_exact,
    rationalize,
    solve_exact,
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(2, 7)
        assert as_fraction(f) is f

    def test_float_exact(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_string(self):
        assert as_fraction("3/4") == Fraction(3, 4)


class TestRationalize:
    def test_snaps_third(self):
        assert rationalize(0.3333333333333333) == Fraction(1, 3)

    def test_snaps_half(self):
        assert rationalize(0.5000000001) == Fraction(1, 2)

    def test_integer(self):
        assert rationalize(2.0) == Fraction(2)


class TestSolveExact:
    def test_identity(self):
        assert solve_exact([[1, 0], [0, 1]], [3, 4]) == [Fraction(3), Fraction(4)]

    def test_2x2(self):
        # x + y = 3, x - y = 1  ->  x = 2, y = 1
        assert solve_exact([[1, 1], [1, -1]], [3, 1]) == [Fraction(2), Fraction(1)]

    def test_fractional_solution(self):
        # 2x = 1
        assert solve_exact([[2]], [1]) == [Fraction(1, 2)]

    def test_singular_returns_none(self):
        assert solve_exact([[1, 1], [2, 2]], [1, 2]) is None

    def test_inconsistent_returns_none(self):
        assert solve_exact([[1, 1], [1, 1]], [1, 2]) is None

    def test_overdetermined_consistent(self):
        out = solve_exact([[1, 0], [0, 1], [1, 1]], [1, 2, 3])
        assert out == [Fraction(1), Fraction(2)]

    def test_empty(self):
        assert solve_exact([], []) is None


class TestRankExact:
    def test_full_rank(self):
        assert rank_exact([[1, 0], [0, 1]]) == 2

    def test_deficient(self):
        assert rank_exact([[1, 2], [2, 4]]) == 1

    def test_zero_matrix(self):
        assert rank_exact([[0, 0], [0, 0]]) == 0

    def test_rectangular(self):
        assert rank_exact([[1, 0, 1], [0, 1, 1]]) == 2


class TestFeasibility:
    def test_feasible(self):
        assert is_feasible_point([1, 1], [[1, 1]], [3])

    def test_violates_row(self):
        assert not is_feasible_point([2, 2], [[1, 1]], [3])

    def test_negative_rejected(self):
        assert not is_feasible_point([-1, 0], [], [])

    def test_negative_allowed_when_free(self):
        assert is_feasible_point([-1, 0], [], [], nonnegative=False)


class TestVertexEnumeration:
    def test_unit_square(self):
        # x <= 1, y <= 1, x,y >= 0: four vertices.
        vertices = enumerate_polytope_vertices(
            [[1, 0], [0, 1]], [1, 1]
        )
        assert sorted(map(tuple, vertices)) == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]

    def test_triangle_cover_polytope(self):
        # Edge cover polytope of the triangle query truncated at 1:
        # -w_R - w_T <= -1 (vertex x), etc.  Classic vertices include
        # (1/2, 1/2, 1/2).
        a = [[-1, -1, 0], [0, -1, -1], [-1, 0, -1]]
        b = [-1, -1, -1]
        box_a = a + [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        box_b = b + [1, 1, 1]
        vertices = {tuple(v) for v in enumerate_polytope_vertices(box_a, box_b)}
        half = Fraction(1, 2)
        assert (half, half, half) in vertices
        assert (1, 1, 0) in vertices or (Fraction(1), Fraction(1), Fraction(0)) in vertices

    def test_dimension_guard(self):
        with pytest.raises(ValueError):
            enumerate_polytope_vertices(
                [[1] * 13], [1], max_dimension=12
            )

    def test_empty_constraints(self):
        assert enumerate_polytope_vertices([], []) == []
