"""Shared fixtures: the paper's lattices, queries and canonical instances."""

from __future__ import annotations

import os

# Must be set before repro.engine.relation is imported: re-validates every
# distinct=True fast-path construction throughout the suite (an inherited
# empty value counts as unset, hence `or "1"` rather than setdefault).
# Raw read by design — this bootstrap runs before repro.config can load.
os.environ["REPRO_CHECK_DISTINCT"] = (
    os.environ.get("REPRO_CHECK_DISTINCT") or "1"  # repro-lint: disable=knob-discipline
)

import pytest

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig7_lattice,
    fig8_lattice,
    fig9_lattice,
    m3,
    n5,
)
from repro.query.query import Atom, Query, paper_example_query, triangle_query


@pytest.fixture
def b3():
    return boolean_algebra("xyz")


@pytest.fixture
def lattice_m3():
    return m3()


@pytest.fixture
def lattice_n5():
    return n5()


@pytest.fixture
def fig1():
    return fig1_lattice()


@pytest.fixture
def fig4():
    return fig4_lattice()


@pytest.fixture
def fig5():
    return fig5_lattice()


@pytest.fixture
def fig7():
    return fig7_lattice()


@pytest.fixture
def fig8():
    return fig8_lattice()


@pytest.fixture
def fig9():
    return fig9_lattice()


@pytest.fixture
def triangle():
    return triangle_query()


@pytest.fixture
def paper_query():
    return paper_example_query()


@pytest.fixture
def triangle_db():
    """Complete digraph on 6 nodes: 6*5*4 = 120 directed triangles."""
    edges = [(i, j) for i in range(6) for j in range(6) if i != j]
    return Database(
        [
            Relation("R", ("x", "y"), edges),
            Relation("S", ("y", "z"), edges),
            Relation("T", ("z", "x"), edges),
        ]
    )


@pytest.fixture
def simple_key_query():
    """R(x,y), S(y,z), T(z,u), K(u,x) with y a key of S (Sec. 2 closure)."""
    atoms = [
        Atom("R", ("x", "y")),
        Atom("S", ("y", "z")),
        Atom("T", ("z", "u")),
        Atom("K", ("u", "x")),
    ]
    return Query(atoms, FDSet([FD("y", "z")], "xyzu"))
