"""Polymatroids, Möbius inversion, normality (repro.lattice.polymatroid/mobius)."""

from fractions import Fraction

import pytest

from repro.lattice.builders import boolean_algebra, fig1_lattice, m3
from repro.lattice.mobius import (
    mobius_expand_upper,
    mobius_function,
    mobius_inverse_upper,
)
from repro.lattice.polymatroid import (
    LatticeFunction,
    counting_function,
    entropy_of_instance,
    modular_from_vertex_weights,
    step_function,
)


class TestMobiusFunction:
    def test_boolean_mobius_alternates(self):
        # μ(X, Y) = (-1)^{|Y - X|} in a Boolean algebra.
        lat = boolean_algebra("xyz")
        mu = mobius_function(lat)
        bot = lat.bottom
        for y in range(lat.n):
            size = len(lat.label(y))
            assert mu[(bot, y)] == (-1) ** size

    def test_mobius_diagonal(self):
        lat = m3()
        mu = mobius_function(lat)
        for i in range(lat.n):
            assert mu[(i, i)] == 1

    def test_m3_bottom_to_top(self):
        # μ(0̂, 1̂) in M3: 1 - ... = 2 (three atoms each -1, diag 1 → 2).
        lat = m3()
        mu = mobius_function(lat)
        assert mu[(lat.bottom, lat.top)] == 2


class TestMobiusInversion:
    def test_roundtrip_boolean(self):
        lat = boolean_algebra("xy")
        values = [Fraction(0), Fraction(1), Fraction(1), Fraction(3, 2)]
        g = mobius_inverse_upper(lat, values)
        assert mobius_expand_upper(lat, g) == values

    def test_roundtrip_fig1(self):
        lat = fig1_lattice()[0]
        values = [Fraction(i, 3) for i in range(lat.n)]
        g = mobius_inverse_upper(lat, values)
        assert mobius_expand_upper(lat, g) == values

    def test_top_g_equals_h(self):
        lat = boolean_algebra("xy")
        h = LatticeFunction.from_mapping(
            lat, {frozenset("xy"): 2, frozenset("x"): 1, frozenset("y"): 1}
        )
        g = h.cmi()
        assert g[lat.top] == 2


class TestStepFunctions:
    def test_step_is_polymatroid(self, b3):
        for z in range(b3.n):
            assert step_function(b3, z).is_polymatroid()

    def test_step_is_normal(self, b3):
        for z in range(b3.n):
            if z != b3.top:
                assert step_function(b3, z).is_normal()

    def test_step_values(self, b3):
        x = b3.index(frozenset("x"))
        h = step_function(b3, x)
        assert h.values[b3.top] == 1
        assert h.values[x] == 0
        assert h.at(frozenset("y")) == 1

    def test_step_cmi(self, b3):
        x = b3.index(frozenset("x"))
        g = step_function(b3, x).cmi()
        assert g[b3.top] == 1
        assert g[x] == -1
        assert sum(abs(v) for v in g) == 2

    def test_normal_decomposition_roundtrip(self, b3):
        # h = 2·h_x + h_xy decomposes back to its coefficients.
        x = b3.index(frozenset("x"))
        xy = b3.index(frozenset("xy"))
        h = step_function(b3, x).scale(2) + step_function(b3, xy)
        decomposition = h.normal_decomposition()
        assert decomposition == {x: Fraction(2), xy: Fraction(1)}


class TestShannonChecks:
    def test_entropy_like_function_is_polymatroid(self, b3):
        h = LatticeFunction.from_mapping(
            b3,
            {
                frozenset("x"): 1, frozenset("y"): 1, frozenset("z"): 1,
                frozenset("xy"): 2, frozenset("xz"): 2, frozenset("yz"): 2,
                frozenset("xyz"): 2,
            },
        )
        assert h.is_polymatroid()

    def test_xor_function_is_polymatroid_but_not_normal(self, b3):
        # Fig. 3 left: XOR on three bits — submodular, monotone, but its
        # CMI has g(0̂) = +1 > 0.
        h = LatticeFunction.from_mapping(
            b3,
            {
                frozenset("x"): 1, frozenset("y"): 1, frozenset("z"): 1,
                frozenset("xy"): 2, frozenset("xz"): 2, frozenset("yz"): 2,
                frozenset("xyz"): 2,
            },
        )
        assert h.is_polymatroid()
        assert not h.is_normal()
        g = h.cmi()
        assert g[b3.bottom] == 1  # the positive mutual information

    def test_submodularity_violation_detected(self, b3):
        h = LatticeFunction.from_mapping(
            b3, {frozenset("xy"): 0, frozenset("x"): 1, frozenset("y"): 1,
                 frozenset("xyz"): 3}
        )
        assert not h.is_monotone()

    def test_violations_listed(self, b3):
        h = LatticeFunction.from_mapping(
            b3,
            {
                frozenset("x"): 0, frozenset("y"): 0,
                frozenset("xy"): 2, frozenset("xyz"): 2,
            },
        )
        assert h.submodularity_violations()

    def test_m3_nonnormal_polymatroid(self):
        # Fig. 3 right: h(atom) = 1, h(1̂) = 2 is a polymatroid on M3.
        lat = m3()
        h = LatticeFunction.from_mapping(
            lat, {"x": 1, "y": 1, "z": 1, "1": 2}
        )
        assert h.is_polymatroid()
        assert not h.is_normal()


class TestLovasz:
    def test_monotonization_preserves_top(self, b3):
        h = LatticeFunction.from_mapping(
            b3,
            {
                frozenset("x"): 5, frozenset("y"): 1, frozenset("z"): 1,
                frozenset("xy"): 2, frozenset("xz"): 2, frozenset("yz"): 2,
                frozenset("xyz"): 2,
            },
        )
        hbar = h.lovasz_monotonization()
        assert hbar.values[b3.top] == h.values[b3.top]
        assert hbar.is_monotone()
        assert hbar.restrict_leq(h)

    def test_monotonization_is_polymatroid_from_submodular(self, b3):
        # Prop. B.1 on a non-monotone submodular function: pairs above top.
        h = LatticeFunction.from_mapping(
            b3,
            {
                frozenset("x"): 2, frozenset("y"): 2, frozenset("z"): 2,
                frozenset("xy"): 2, frozenset("xz"): 2, frozenset("yz"): 2,
                frozenset("xyz"): 1,
            },
        )
        assert h.is_submodular()
        assert not h.is_monotone()
        hbar = h.lovasz_monotonization()
        assert hbar.is_polymatroid()
        assert hbar.values[b3.top] == h.values[b3.top]


class TestModularFromWeights:
    def test_eq6_lift(self, b3):
        # Eq. (6): vertex packing (1/2,1/2,1/2) lifts to the triangle's
        # optimal polymatroid.
        weights = {
            b3.index(frozenset(c)): Fraction(1, 2) for c in "xyz"
        }
        h = modular_from_vertex_weights(b3, weights)
        assert h.values[b3.top] == Fraction(3, 2)
        assert h.is_polymatroid()
        assert h.is_modular()


class TestInstanceEntropy:
    def test_counting_function(self, b3):
        tuples = [(0, 0, 0), (0, 1, 1), (1, 0, 1)]
        counts = counting_function(b3, tuples, ("x", "y", "z"))
        assert counts[b3.top] == 3
        assert counts[b3.bottom] == 1
        assert counts[b3.index(frozenset("x"))] == 2

    def test_xor_instance_entropy(self, b3):
        # The 4-tuple XOR instance has the Fig. 3 entropy profile (scaled).
        tuples = [
            (a, b, a ^ b) for a in (0, 1) for b in (0, 1)
        ]
        h = entropy_of_instance(b3, tuples, ("x", "y", "z"))
        assert float(h.values[b3.top]) == pytest.approx(2.0)
        assert float(h.at(frozenset("x"))) == pytest.approx(1.0)
        assert float(h.at(frozenset("yz"))) == pytest.approx(2.0)


class TestArithmetic:
    def test_add_scale(self, b3):
        a = step_function(b3, b3.bottom)
        combo = a + a.scale(2)
        assert combo.values[b3.top] == 3

    def test_different_lattice_rejected(self):
        l1 = boolean_algebra("xy")
        l2 = boolean_algebra("ab")
        with pytest.raises(ValueError):
            step_function(l1, 0) + step_function(l2, 0)

    def test_from_mapping_defaults_zero(self, b3):
        h = LatticeFunction.from_mapping(b3, {})
        assert all(v == 0 for v in h.values)
