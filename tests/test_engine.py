"""Relations, operators, databases, the expansion procedure (repro.engine)."""

import pytest

from repro.engine.database import Database, ExpansionError
from repro.engine.ops import (
    WorkCounter,
    cross_product,
    intersect,
    natural_join,
    semijoin,
    union_all,
)
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF


@pytest.fixture
def r():
    return Relation("R", ("x", "y"), [(1, 10), (1, 20), (2, 10)])


@pytest.fixture
def s():
    return Relation("S", ("y", "z"), [(10, 100), (20, 200), (30, 300)])


class TestRelation:
    def test_dedup(self):
        rel = Relation("R", ("x",), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_schema_mismatch(self):
        with pytest.raises(ValueError):
            Relation("R", ("x", "y"), [(1,)])

    def test_duplicate_attrs(self):
        with pytest.raises(ValueError):
            Relation("R", ("x", "x"), [])

    def test_contains(self, r):
        assert (1, 10) in r
        assert (9, 9) not in r

    def test_project(self, r):
        assert set(r.project(("x",)).tuples) == {(1,), (2,)}

    def test_project_reorders(self, r):
        assert set(r.project(("y", "x")).tuples) == {(10, 1), (20, 1), (10, 2)}

    def test_rename(self, r):
        renamed = r.rename({"x": "a"})
        assert renamed.schema == ("a", "y")
        assert renamed.tuples == r.tuples

    def test_select(self, r):
        assert set(r.select({"x": 1}).tuples) == {(1, 10), (1, 20)}

    def test_restrict(self, r):
        out = r.restrict(lambda row: row["y"] > 10)
        assert set(out.tuples) == {(1, 20)}

    def test_matching(self, r):
        assert set(r.matching({"x": 1})) == {(1, 10), (1, 20)}
        assert r.matching({"x": 3}) == []

    def test_degree(self, r):
        assert r.degree({"x": 1}) == 2
        assert r.degree({"x": 2}) == 1
        assert r.degree({}) == 3

    def test_max_degree(self, r):
        assert r.max_degree(("x",)) == 2
        assert r.max_degree(("y",)) == 2
        assert r.max_degree(()) == 3

    def test_distinct_values(self, r):
        assert set(r.distinct_values("y")) == {10, 20}

    def test_empty_schema_unit(self):
        unit = Relation("U", (), [()])
        assert len(unit) == 1
        assert unit.degree({}) == 1


class TestOperators:
    def test_natural_join(self, r, s):
        out = natural_join(r, s)
        assert set(out.tuples) == {
            (1, 10, 100), (1, 20, 200), (2, 10, 100)
        }
        assert out.schema == ("x", "y", "z")

    def test_join_counter(self, r, s):
        counter = WorkCounter()
        natural_join(r, s, counter=counter)
        assert counter.tuples_touched == 3

    def test_semijoin(self, r):
        filt = Relation("F", ("y",), [(10,)])
        assert set(semijoin(r, filt).tuples) == {(1, 10), (2, 10)}

    def test_semijoin_disjoint_nonempty(self, r):
        other = Relation("O", ("w",), [(5,)])
        assert len(semijoin(r, other)) == len(r)

    def test_semijoin_disjoint_empty(self, r):
        other = Relation("O", ("w",), [])
        assert len(semijoin(r, other)) == 0

    def test_intersect(self):
        a = Relation("A", ("x", "y"), [(1, 2), (3, 4)])
        b = Relation("B", ("y", "x"), [(2, 1), (9, 9)])
        assert set(intersect(a, b).tuples) == {(1, 2)}

    def test_intersect_schema_mismatch(self, r, s):
        with pytest.raises(ValueError):
            intersect(r, s)

    def test_union_all(self):
        a = Relation("A", ("x",), [(1,)])
        b = Relation("B", ("x",), [(2,), (1,)])
        assert set(union_all([a, b]).tuples) == {(1,), (2,)}

    def test_cross_product(self):
        a = Relation("A", ("x",), [(1,), (2,)])
        b = Relation("B", ("y",), [(9,)])
        assert set(cross_product(a, b).tuples) == {(1, 9), (2, 9)}

    def test_cross_product_shared_rejected(self, r):
        with pytest.raises(ValueError):
            cross_product(r, r)


class TestDatabase:
    def test_sizes(self, r, s):
        db = Database([r, s])
        assert db.sizes() == {"R": 3, "S": 3}
        assert db.total_size == 6

    def test_duplicate_name_rejected(self, r):
        db = Database([r])
        with pytest.raises(ValueError):
            db.add(Relation("R", ("a",), []))

    def test_guard_relation(self, r, s):
        db = Database([r, s], fds=FDSet([FD("y", "z")]))
        guard = db.guard_relation(FD("y", "z"))
        assert guard is not None and guard.name == "S"

    def test_no_guard(self, r):
        db = Database([r], fds=FDSet([FD("x", "w")]))
        assert db.guard_relation(FD("x", "w")) is None

    def test_observed_degree_bound(self, r):
        db = Database([r])
        assert db.observed_degree_bound("R", ("x",), ("y",)) == 2


class TestExpansion:
    def test_guarded_expansion(self, r, s):
        # y -> z guarded by S: R(x, y) expands to R(x, y, z).
        db = Database([r, s], fds=FDSet([FD("y", "z")]))
        expanded = db.expand_relation(r)
        assert set(expanded.schema) == {"x", "y", "z"}
        assert set(expanded.tuples) == {
            (1, 10, 100), (1, 20, 200), (2, 10, 100)
        }

    def test_guarded_expansion_drops_dangling(self):
        r = Relation("R", ("x", "y"), [(1, 10), (2, 99)])  # 99 not in S
        s = Relation("S", ("y", "z"), [(10, 100)])
        db = Database([r, s], fds=FDSet([FD("y", "z")]))
        expanded = db.expand_relation(r)
        assert set(expanded.tuples) == {(1, 10, 100)}

    def test_udf_expansion(self, r):
        db = Database([r], udfs=[UDF("f", ("x", "y"), "s", lambda x, y: x + y)])
        expanded = db.expand_relation(r)
        assert set(expanded.schema) == {"x", "y", "s"}
        assert (1, 10, 11) in set(expanded.tuples)

    def test_missing_guard_raises(self, r):
        db = Database([r], fds=FDSet([FD("x", "w")]))
        with pytest.raises(ExpansionError):
            db.expand_relation(r)

    def test_expand_tuple_guarded(self, r, s):
        db = Database([r, s], fds=FDSet([FD("y", "z")]))
        out = db.expand_tuple({"x": 1, "y": 10})
        assert out == {"x": 1, "y": 10, "z": 100}

    def test_expand_tuple_dangling_returns_none(self, r, s):
        db = Database([r, s], fds=FDSet([FD("y", "z")]))
        assert db.expand_tuple({"x": 1, "y": 999}) is None

    def test_expand_tuple_udf_chain(self):
        db = Database(
            [Relation("R", ("x",), [(1,)])],
            udfs=[
                UDF("f", ("x",), "y", lambda x: x + 1),
                UDF("g", ("y",), "z", lambda y: y * 10),
            ],
        )
        assert db.expand_tuple({"x": 1}) == {"x": 1, "y": 2, "z": 20}

    def test_expand_tuple_with_target(self, r, s):
        db = Database(
            [r, s],
            fds=FDSet([FD("y", "z")]),
            udfs=[UDF("f", ("z",), "w", lambda z: -z)],
        )
        partial = db.expand_tuple({"x": 1, "y": 10}, target=frozenset("xyz"))
        assert partial == {"x": 1, "y": 10, "z": 100}

    def test_udf_consistent(self):
        db = Database([], udfs=[UDF("f", ("x",), "y", lambda x: x + 1)])
        assert db.udf_consistent({"x": 1, "y": 2})
        assert not db.udf_consistent({"x": 1, "y": 3})
        assert db.udf_consistent({"x": 1})  # udf not fully covered
