"""The sharded frontier backend: partition/merge laws and the
shard-count-invisibility contract.

Three layers of evidence that parallel execution cannot perturb results:

* **Partition/merge properties** (hypothesis): hash-partition emits a
  permutation of the input rows, co-keyed rows stay on one shard, and
  the merge is associative, commutative and independent of shard
  completion order (a shuffled-completion fake executor drives the real
  dispatch seam out of submission order).
* **Kernel equivalence**: ``execute_batch_ndarray`` sharded ≡ local for
  empty shards, all-dangling shards, mid-run-interned dangling codes,
  and the process backend (guard-only plans over shared memory).
* **The differential sweep**: every generated instance
  (:func:`tests.differential.all_instances`, including the
  mixed-type/mid-run-interning corpus) runs the full engine work profile
  at 1, 2 and 7 workers — ``tuples_touched`` and result digests must be
  bit-identical to the shard-off baseline and the decoded reference.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import frontier, shard
from repro.engine.expansion_plan import (
    GUARD,
    GUARD_DENSE,
    INCONSISTENT,
    UDF,
    ExpansionPlan,
)
from repro.engine.ops import WorkCounter

from differential import (
    all_instances,
    assert_shard_sweep_equivalence,
    mixed_type_midrun_instance,
    shard_forced,
)


# ----------------------------------------------------------------------
# Partition properties
# ----------------------------------------------------------------------

blocks = st.integers(1, 4).flatmap(
    lambda w: st.tuples(
        st.just(w),
        st.lists(
            st.lists(st.integers(0, 50), min_size=w, max_size=w),
            min_size=0,
            max_size=400,
        ),
    )
)


@settings(max_examples=60, deadline=None)
@given(wrows=blocks, n_shards=st.integers(1, 9), data=st.data())
def test_hash_partition_is_permutation(wrows, n_shards, data):
    width, rows = wrows
    block = np.array(rows, dtype=np.int64).reshape(len(rows), width)
    positions = tuple(
        data.draw(
            st.lists(
                st.integers(0, width - 1), unique=True, min_size=0, max_size=width
            )
        )
    )
    parts = frontier.hash_partition(block, positions, n_shards)
    assert len(parts) == max(1, n_shards)
    gathered = np.sort(np.concatenate(parts)) if parts else np.empty(0)
    assert np.array_equal(gathered, np.arange(block.shape[0]))


@settings(max_examples=30, deadline=None)
@given(wrows=blocks, n_shards=st.integers(2, 9))
def test_hash_partition_keeps_cokeyed_rows_together(wrows, n_shards):
    width, rows = wrows
    block = np.array(rows, dtype=np.int64).reshape(len(rows), width)
    if block.shape[0] == 0:
        return
    positions = (0,)
    parts = frontier.hash_partition(block, positions, n_shards)
    owner: dict[int, int] = {}
    for s, idx in enumerate(parts):
        for key in block[idx, 0].tolist():
            assert owner.setdefault(key, s) == s, (
                f"key {key} split across shards {owner[key]} and {s}"
            )


def test_hash_partition_is_deterministic():
    rng = np.random.default_rng(3)
    block = rng.integers(0, 100, size=(500, 3)).astype(np.int64)
    a = frontier.hash_partition(block, (0, 2), 5)
    b = frontier.hash_partition(block, (0, 2), 5)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_range_partition_covers_in_order():
    for n in (0, 1, 7, 100):
        for k in (1, 2, 7, 150):
            ranges = frontier.range_partition(n, k)
            flat = [i for lo, hi in ranges for i in range(lo, hi)]
            assert flat == list(range(n))


# ----------------------------------------------------------------------
# Merge laws: associative, commutative, completion-order independent
# ----------------------------------------------------------------------

def _random_parts(rng: random.Random, n: int, width: int):
    """A random disjoint partition of ``n`` rows into parts with random
    outputs, masks (some ``None``) and touched counts."""
    indices = list(range(n))
    rng.shuffle(indices)
    k = rng.randint(1, max(1, min(6, n))) if n else 1
    bounds = sorted(rng.sample(range(n + 1), k - 1)) if n and k > 1 else []
    pieces = np.split(np.array(indices, dtype=np.int64), bounds)
    nprng = np.random.default_rng(rng.randrange(2 ** 31))
    parts = []
    for piece in pieces:
        m = len(piece)
        out = nprng.integers(0, 1000, size=(m, width)).astype(np.int64)
        mask = (
            None
            if rng.random() < 0.3
            else nprng.random(m) < 0.7
        )
        parts.append((piece, out, mask, rng.randrange(10 ** 6)))
    return parts


def _finalized(n, width, parts):
    out, mask, touched = frontier.scatter_part(
        n, width, frontier.combine_shard_parts(parts)
    )
    mask_key = None if mask is None else mask.tobytes()
    return out.tobytes(), mask_key, touched


@pytest.mark.parametrize("seed", range(8))
def test_merge_is_associative_and_commutative(seed):
    rng = random.Random(seed)
    n, width = rng.randint(1, 200), rng.randint(1, 4)
    parts = _random_parts(rng, n, width)
    reference = _finalized(n, width, parts)
    for _ in range(5):
        shuffled = parts[:]
        rng.shuffle(shuffled)
        # Any permutation (commutativity).
        assert _finalized(n, width, shuffled) == reference
        # Any grouping (associativity): fold a random prefix into a
        # single combined part, then merge it with the rest.
        if len(shuffled) > 1:
            cut = rng.randint(1, len(shuffled) - 1)
            grouped = [frontier.combine_shard_parts(shuffled[:cut])]
            grouped.extend(shuffled[cut:])
            assert _finalized(n, width, grouped) == reference


def test_mask_merge_mixes_none_and_explicit():
    idx_a = np.array([0, 2], dtype=np.int64)
    idx_b = np.array([1, 3], dtype=np.int64)
    out = np.zeros((2, 1), dtype=np.int64)
    parts = [
        (idx_a, out, None, 1),                                # all alive
        (idx_b, out, np.array([True, False]), 2),             # one dangles
    ]
    _, mask, touched = frontier.scatter_part(
        4, 1, frontier.combine_shard_parts(parts)
    )
    assert mask.tolist() == [True, True, True, False]
    assert touched == 3
    # All-None parts merge to a None mask (no row dangled anywhere).
    _, mask_none, _ = frontier.scatter_part(
        4, 1, frontier.combine_shard_parts(
            [(idx_a, out, None, 0), (idx_b, out, None, 0)]
        )
    )
    assert mask_none is None


def test_scatter_rejects_non_partitions():
    part = (np.array([0, 1], dtype=np.int64), np.zeros((2, 1), np.int64), None, 0)
    with pytest.raises(ValueError):
        frontier.scatter_part(3, 1, part)


# ----------------------------------------------------------------------
# The dispatch seam: sharded ≡ local on real plans
# ----------------------------------------------------------------------

def _guard_plan(*, dense=False, udf=False, inconsistent=False):
    lookup = {(i,): (i % 7, i % 3) for i in range(0, 64, 2)}
    if inconsistent:
        lookup[(8,)] = INCONSISTENT
    steps = []
    if dense:
        table = [None] * 64
        for (k,), image in lookup.items():
            table[k] = image if image is not INCONSISTENT else image
        steps.append((GUARD_DENSE, (0,), table))
    else:
        steps.append((GUARD, (0,), lookup))
    out_schema = ["a", "b", "x", "y"]
    if udf:
        steps.append((UDF, (1,), lambda b: b * 2))
        out_schema.append("u")
    return ExpansionPlan(
        ("a", "b"), tuple(out_schema), tuple(steps), encoded=True
    )


def _compare_sharded(plan, block, workers=4):
    local_counter = WorkCounter()
    with shard_forced("off"):
        local_out, local_mask = plan.execute_batch_ndarray(block, local_counter)
    sharded_counter = WorkCounter()
    with shard_forced("on", workers=workers):
        out, mask = plan.execute_batch_ndarray(block, sharded_counter)
    assert np.array_equal(local_out, out)
    assert (local_mask is None) == (mask is None)
    if mask is not None:
        assert np.array_equal(local_mask, mask)
    assert local_counter.tuples_touched == sharded_counter.tuples_touched
    assert shard.active_tasks() == 0
    return out, mask


@pytest.mark.parametrize("dense", [False, True])
@pytest.mark.parametrize("udf", [False, True])
def test_plan_sharded_equals_local(dense, udf):
    plan = _guard_plan(dense=dense, udf=udf, inconsistent=not dense)
    rng = np.random.default_rng(11)
    block = rng.integers(0, 80, size=(999, 2)).astype(np.int64)
    _compare_sharded(plan, block)


def test_empty_and_all_dangling_shards_roundtrip():
    plan = _guard_plan()
    # More workers than rows: most shards are empty.
    tiny = np.array([[2, 5], [4, 1], [3, 9]], dtype=np.int64)
    _compare_sharded(plan, tiny, workers=8)
    # Every key odd (all lookups miss): every shard is all-dangling.
    dangling = np.stack(
        [np.arange(1, 400, 2), np.arange(200, 0, -1)], axis=1
    ).astype(np.int64)
    out, mask = _compare_sharded(plan, dangling)
    assert mask is not None and not mask.any()
    # Mid-run-interned dangling codes: probes far past every table the
    # plan compiled against must miss on every shard.
    fresh = np.array([[10 ** 6, 0], [2 ** 40, 1], [64, 2]], dtype=np.int64)
    out, mask = _compare_sharded(plan, fresh, workers=3)
    assert mask is not None and not mask.any()


def test_shuffled_completion_order_is_invisible(monkeypatch):
    """Drive the real dispatch through a fake executor that *runs* the
    shard tasks in shuffled order: the merged result must still be
    bit-identical to local (the merge keys on row indices, never on
    completion order)."""
    plan = _guard_plan(inconsistent=True)
    rng = np.random.default_rng(23)
    block = rng.integers(0, 80, size=(1234, 2)).astype(np.int64)
    with shard_forced("off"):
        ref_counter = WorkCounter()
        ref_out, ref_mask = plan.execute_batch_ndarray(block, ref_counter)

    shuffler = random.Random(5)

    def shuffled_map(fn, arg_lists):
        order = list(range(len(arg_lists)))
        shuffler.shuffle(order)
        results = [None] * len(arg_lists)
        for i in order:  # completion order != submission order
            results[i] = fn(*arg_lists[i])
        return results

    monkeypatch.setattr(shard, "_map_shards", shuffled_map)
    for workers in (2, 3, 7):
        counter = WorkCounter()
        with shard_forced("on", workers=workers):
            out, mask = plan.execute_batch_ndarray(block, counter)
        assert np.array_equal(out, ref_out)
        assert np.array_equal(mask, ref_mask)
        assert counter.tuples_touched == ref_counter.tuples_touched


def test_process_backend_equivalence(monkeypatch):
    plan = _guard_plan(inconsistent=True)
    assert shard.process_plan_safe(plan)
    assert not shard.process_plan_safe(_guard_plan(udf=True))
    rng = np.random.default_rng(31)
    block = rng.integers(0, 80, size=(2048, 2)).astype(np.int64)
    monkeypatch.setattr(shard, "SHARD_BACKEND", "process")
    _compare_sharded(plan, block, workers=2)


def test_nested_sharding_is_suppressed():
    # A kernel re-entered from inside a shard task must not re-shard
    # (a saturated pool would deadlock on itself).
    with shard_forced("on", workers=4):
        token = shard._IN_SHARD.set(True)
        try:
            assert not shard.shard_engaged(10 ** 9)
        finally:
            shard._IN_SHARD.reset(token)


# ----------------------------------------------------------------------
# The differential sweep (1, 2, 7 workers × every generated instance)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(3))
def test_shard_sweep_differential(seed):
    for query, db in all_instances(seed):
        assert_shard_sweep_equivalence(query, db)


def test_shard_sweep_mixed_type_midrun():
    # The nastiest corpus gets extra seeds: mid-run interning while
    # shards run in parallel must not perturb digests.
    for seed in (7, 11):
        query, db = mixed_type_midrun_instance(seed)
        assert_shard_sweep_equivalence(query, db)
