"""Fused plan pipelines: composition, codegen, and the knob couplings.

Satellite coverage for the plan-fusion PR:

* **Gather-table composition** — runs of consecutive composable
  ``GUARD_DENSE`` steps collapse into one ``("fused", ...)`` spec whose
  ``surv`` table reproduces the per-step charges exactly; codes interned
  after the tables compiled (and rows keyed through fd-INCONSISTENT
  entries) dangle through the fused chain just as they do through the
  step loop.
* **Pipeline bit-identity** — the generated pipeline's output block
  (dead cells included), mask, counter total and per-step alive counts
  are ``np.array_equal`` to the per-step spec loop on the same input.
* **Engine-level equivalence** —
  :func:`differential.assert_fusion_equivalence` over the whole fuzz
  corpus including the mixed-type mid-run interning instances, plus the
  generic join's fused determined-segment path on the fd-chain shape.
* **The native seam** — ``REPRO_FUSE_NATIVE=on`` without numba degrades
  to the numpy expressions (no error, same bits).
* **Profiling** — ``REPRO_PROFILE_STEPS`` accumulates per-spec-kind
  calls/rows/wall and resets on snapshot.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from differential import (
    all_instances,
    assert_fusion_equivalence,
    fused_forced,
    mixed_type_midrun_instance,
    ndarray_forced,
)
from repro.datagen.large import fdchain_order, large_fdchain_workload
from repro.engine import fused
from repro.engine.database import Database
from repro.engine.expansion_plan import GUARD_DENSE
from repro.engine.generic_join import generic_join
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet


def _chain_db(k: int = 3, size: int = 8) -> Database:
    """``x → a → b → …``: ``k`` dense guard steps in a row."""
    attrs = list("abcdefghij"[:k])
    fds = [FD("x", attrs[0])]
    fds += [FD(a, b) for a, b in zip(attrs, attrs[1:])]
    prev = "x"
    relations = []
    for j, attr in enumerate(attrs):
        relations.append(
            Relation(
                f"G{j}",
                (prev, attr),
                [(i, (i * 3 + j) % size) for i in range(size)],
            )
        )
        prev = attr
    return Database(relations, fds=FDSet(fds, ["x", *attrs]))


def _run_both(plan, block):
    """(out, mask, counter, step_alive) under fused off then on."""
    results = []
    for mode in ("off", "on"):
        counter = WorkCounter()
        step_alive: list[int] = []
        with fused_forced(mode):
            plan._fused_pipelines.clear()
            out, mask = plan.execute_batch_ndarray_local(
                block.copy(), counter, step_alive
            )
        results.append((out, mask, counter.tuples_touched, step_alive))
    return results


# ----------------------------------------------------------------------
# Gather-table composition
# ----------------------------------------------------------------------

def test_dense_chain_composes_to_one_fused_spec():
    db = _chain_db(k=4)
    plan = db.expansion_plan(("x",), encoded=True)
    assert [s[0] for s in plan.steps] == [GUARD_DENSE] * 4
    specs = plan._ndarray_specs()
    fused_specs = fused.compose_fused_specs(specs, len(plan.source_schema))
    assert len(fused_specs) == 1
    kind, pos, size, surv, images, width, k = fused_specs[0]
    assert (kind, pos, width, k) == ("fused", 0, 4, 4)
    # Every stored x code survives the whole chain (the tables are total
    # permutations of the same domain).
    assert int(surv.min()) == 4 and surv.shape == (size,)
    assert images.shape == (size, 4)


def test_single_dense_steps_stay_plain():
    db = _chain_db(k=1)
    plan = db.expansion_plan(("x",), encoded=True)
    specs = plan._ndarray_specs()
    fused_specs = fused.compose_fused_specs(specs, 1)
    assert fused_specs == tuple(specs)


def test_midrun_interned_codes_dangle_through_fused_chain():
    """A code interned after the chain's tables compiled is out of range
    for the composed table too: ``surv`` reads 0 via the in-range guard,
    the row dangles, and the charge is exactly one touch (step 0 saw it
    alive, step 1 never ran it) — bit-identical to the step loop."""
    db = _chain_db(k=3)
    plan = db.expansion_plan(("x",), encoded=True)
    x_dict = db.codec.dictionary("x")
    fresh = x_dict.encode("fresh-value")
    stored = x_dict.encode(3)
    block = np.array([[fresh], [stored]], dtype=np.int64)
    (out_off, mask_off, touched_off, alive_off), (
        out_on, mask_on, touched_on, alive_on,
    ) = _run_both(plan, block)
    assert np.array_equal(out_off, out_on)
    assert np.array_equal(mask_off, mask_on)
    assert list(mask_on) == [False, True]
    assert touched_off == touched_on
    assert alive_off == alive_on == [2, 1, 1]


def test_inconsistent_entries_dangle_and_stop_the_survival_chain():
    """An fd-violating guard key compiles to an *invalid* dense entry:
    rows keyed through it dangle in the fused run exactly where the step
    loop would drop them, and never contribute later-step charges."""
    fds = FDSet([FD("x", "y"), FD("y", "z")], ["x", "y", "z"])
    relations = [
        # x=0 violates x→y (two images): INCONSISTENT, must dangle.
        Relation("G0", ("x", "y"), [(0, 0), (0, 1), (1, 2), (2, 0)]),
        Relation("G1", ("y", "z"), [(0, 5), (1, 6), (2, 7)]),
    ]
    db = Database(relations, fds=fds)
    plan = db.expansion_plan(("x",), encoded=True)
    assert [s[0] for s in plan.steps] == [GUARD_DENSE] * 2
    specs = plan._ndarray_specs()
    fused_specs = fused.compose_fused_specs(specs, 1)
    assert len(fused_specs) == 1 and fused_specs[0][0] == "fused"
    surv = fused_specs[0][3]
    code0 = db.codec.dictionary("x").encode(0)
    assert int(surv[code0]) == 0  # the INCONSISTENT entry never fuses on
    block = np.array(
        [[db.codec.dictionary("x").encode(v)] for v in (0, 1, 2)],
        dtype=np.int64,
    )
    (out_off, mask_off, touched_off, alive_off), (
        out_on, mask_on, touched_on, alive_on,
    ) = _run_both(plan, block)
    assert np.array_equal(out_off, out_on)
    assert np.array_equal(mask_off, mask_on)
    assert list(mask_on) == [False, True, True]
    assert touched_off == touched_on
    assert alive_off == alive_on


# ----------------------------------------------------------------------
# Pipeline bit-identity (dead cells, masks, counts, step_alive)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_pipeline_block_bit_identity(seed):
    db = _chain_db(k=5, size=16)
    plan = db.expansion_plan(("x",), encoded=True)
    rng = np.random.default_rng(seed)
    # Mix in out-of-range codes: dead rows must keep the same garbage
    # cells as the step loop (the shard scatter-merge contract).
    block = rng.integers(0, 24, size=(64, 1), dtype=np.int64)
    (out_off, mask_off, touched_off, alive_off), (
        out_on, mask_on, touched_on, alive_on,
    ) = _run_both(plan, block)
    assert np.array_equal(out_off, out_on)
    assert (mask_off is None) == (mask_on is None)
    if mask_off is not None:
        assert np.array_equal(mask_off, mask_on)
    assert touched_off == touched_on
    assert alive_off == alive_on


def test_fuse_off_mode_bypasses_pipelines():
    db = _chain_db(k=2)
    plan = db.expansion_plan(("x",), encoded=True)
    with fused_forced("off"):
        plan._fused_pipelines.clear()
        plan.execute_batch_ndarray_local(
            np.zeros((4, 1), dtype=np.int64), WorkCounter()
        )
        assert not plan._fused_pipelines
    with fused_forced("on"):
        plan.execute_batch_ndarray_local(
            np.zeros((4, 1), dtype=np.int64), WorkCounter()
        )
        assert plan._fused_pipelines


# ----------------------------------------------------------------------
# Engine-level differential equivalence
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(3))
def test_fusion_differential(seed):
    for query, db in all_instances(seed):
        assert_fusion_equivalence(query, db)


def test_fusion_mixed_type_midrun():
    # The nastiest corpus: mid-run interning must not perturb fused
    # digests (the off leg runs first and pins the codec).
    for seed in (7, 11):
        query, db = mixed_type_midrun_instance(seed)
        assert_fusion_equivalence(query, db)


def test_generic_join_fused_segment_matches_per_depth():
    """The determined-run segment plan (one pipeline across all fd
    depths) must be invisible: same rows, same per-depth stats, same
    counter total as the per-depth execution."""
    query, db = large_fdchain_workload(4000, encode=True)
    order = fdchain_order()

    def run(mode):
        counter = WorkCounter()
        with fused_forced(mode), ndarray_forced("on"):
            rel, stats = generic_join(
                query, db, order=order, fd_aware=True, counter=counter
            )
        return rel, stats, counter

    rel_off, stats_off, counter_off = run("off")
    rel_on, stats_on, counter_on = run("on")
    assert sorted(rel_off.tuples) == sorted(rel_on.tuples)
    assert stats_off.tuples_touched == stats_on.tuples_touched
    assert stats_off.per_depth == stats_on.per_depth
    assert counter_off.tuples_touched == counter_on.tuples_touched


# ----------------------------------------------------------------------
# The native seam degrades gracefully
# ----------------------------------------------------------------------

def test_native_seam_degrades_to_numpy_without_numba():
    saved = (
        fused.FUSE_NATIVE_MODE,
        fused._NATIVE_KERNELS,
        fused._NUMBA_CHECKED,
        fused._NUMBA,
    )
    try:
        fused.FUSE_NATIVE_MODE = "on"
        fused._NATIVE_KERNELS = None
        fused._NUMBA_CHECKED = False
        fused._NUMBA = None
        have_numba = fused._numba() is not None
        # With numba absent the primitives must fall back silently.
        codes = np.array([0, 2, 9], dtype=np.int64)
        valid = np.array([True, False, True], dtype=bool)
        hit, slot = fused.dense_probe(codes, 3, valid)
        assert list(hit) == [True, True, False]
        assert list(slot) == [0, 2, 0]
        keys = np.array([1, 3, 5], dtype=np.int64)
        hit, slot = fused.sorted_lookup(keys, np.array([3, 6], dtype=np.int64))
        assert list(hit) == [True, False]
        assert list(fused.compact(np.array([True, False, True]))) == [0, 2]
        if not have_numba:
            assert not fused.native_active()
    finally:
        (
            fused.FUSE_NATIVE_MODE,
            fused._NATIVE_KERNELS,
            fused._NUMBA_CHECKED,
            fused._NUMBA,
        ) = saved


def test_native_off_never_builds_kernels():
    saved = fused.FUSE_NATIVE_MODE
    try:
        fused.FUSE_NATIVE_MODE = "off"
        assert not fused.native_active()
    finally:
        fused.FUSE_NATIVE_MODE = saved


# ----------------------------------------------------------------------
# Per-step profiling
# ----------------------------------------------------------------------

def test_profile_snapshot_accumulates_and_resets():
    db = _chain_db(k=3)
    plan = db.expansion_plan(("x",), encoded=True)
    saved = fused.PROFILE_STEPS
    try:
        fused.PROFILE_STEPS = True
        fused.profile_snapshot()  # clear anything previous tests left
        block = np.arange(8, dtype=np.int64).reshape(8, 1)
        with fused_forced("on"):
            plan._fused_pipelines.clear()
            plan.execute_batch_ndarray_local(block, WorkCounter())
        snap = fused.profile_snapshot()
        assert "fused" in snap
        assert snap["fused"]["calls"] == 1
        assert snap["fused"]["rows"] == 8
        assert snap["fused"]["wall_s"] >= 0
        assert fused.profile_snapshot() == {}  # reset happened
        # The unfused loop profiles per original spec kind.
        with fused_forced("off"):
            plan._fused_pipelines.clear()
            plan.execute_batch_ndarray_local(block.copy(), WorkCounter())
        snap = fused.profile_snapshot()
        assert snap["dense"]["calls"] == 3
    finally:
        fused.PROFILE_STEPS = saved
        fused.profile_snapshot()
