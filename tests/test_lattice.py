"""Lattice data structure (repro.lattice.lattice) and builders."""

import numpy as np
import pytest

from repro.fds.fd import FD, FDSet
from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig7_lattice,
    fig8_lattice,
    fig9_lattice,
    lattice_from_fds,
    lattice_from_query,
    m3,
    n5,
)
from repro.lattice.lattice import Lattice, NotALatticeError
from repro.query.query import paper_example_query


class TestConstruction:
    def test_from_closed_sets_chain(self):
        lat = Lattice.from_closed_sets(
            [frozenset(), frozenset("a"), frozenset("ab")]
        )
        assert lat.n == 3
        assert lat.bottom == lat.index(frozenset())
        assert lat.top == lat.index(frozenset("ab"))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            Lattice(["a", "a"], np.eye(2, dtype=bool))

    def test_not_transitive_rejected(self):
        leq = np.eye(3, dtype=bool)
        leq[0, 1] = leq[1, 2] = True  # missing 0 <= 2
        with pytest.raises(NotALatticeError):
            Lattice(["a", "b", "c"], leq)

    def test_no_meet_rejected(self):
        # Two maximal elements: no join of the two middles, no top.
        with pytest.raises(NotALatticeError):
            Lattice.from_covers({"0": ["a", "b"]})

    def test_from_covers_diamond(self):
        lat = m3()
        assert lat.n == 5
        assert len(lat.atoms) == 3


class TestMeetJoin:
    def test_boolean_meet_is_intersection(self):
        lat = boolean_algebra("xyz")
        xy = lat.index(frozenset("xy"))
        yz = lat.index(frozenset("yz"))
        assert lat.label(lat.meet(xy, yz)) == frozenset("y")
        assert lat.label(lat.join(xy, yz)) == frozenset("xyz")

    def test_m3_pairwise(self):
        lat = m3()
        x, y, z = lat.index("x"), lat.index("y"), lat.index("z")
        assert lat.meet(x, y) == lat.bottom
        assert lat.join(x, y) == lat.top
        assert lat.meet(x, z) == lat.bottom

    def test_meet_all_join_all(self):
        lat = boolean_algebra("xyz")
        singles = [lat.index(frozenset(c)) for c in "xyz"]
        assert lat.join_all(singles) == lat.top
        assert lat.meet_all(singles) == lat.bottom

    def test_join_idempotent(self):
        lat = fig1_lattice()[0]
        for i in range(lat.n):
            assert lat.join(i, i) == i
            assert lat.meet(i, i) == i

    def test_absorption(self):
        lat = fig4_lattice()[0]
        for i in range(lat.n):
            for j in range(lat.n):
                assert lat.meet(i, lat.join(i, j)) == i
                assert lat.join(i, lat.meet(i, j)) == i


class TestDerivedStructure:
    def test_boolean_atoms_coatoms(self):
        lat = boolean_algebra("xyz")
        assert len(lat.atoms) == 3
        assert len(lat.coatoms) == 3

    def test_boolean_join_irreducibles_are_atoms(self):
        lat = boolean_algebra("xyzw")
        assert set(lat.join_irreducibles) == set(lat.atoms)

    def test_fig1_coatoms(self):
        lat = fig1_lattice()[0]
        labels = {lat.label(c) for c in lat.coatoms}
        assert labels == {
            frozenset("xyu"),
            frozenset("yz"),
            frozenset("xzu"),
        }

    def test_fig1_join_irreducibles(self):
        # One per variable (Sec. 3.1): x+, y+, z+, u+.
        lat = fig1_lattice()[0]
        labels = {lat.label(j) for j in lat.join_irreducibles}
        assert labels == {
            frozenset("x"),
            frozenset("y"),
            frozenset("z"),
            frozenset("u"),
        }

    def test_n5_structure(self):
        lat = n5()
        assert len(lat.atoms) == 2
        assert len(lat.coatoms) == 2
        assert len(lat.join_irreducibles) == 3

    def test_upper_lower_covers_inverse(self):
        lat = fig9_lattice()[0]
        for i in range(lat.n):
            for j in lat.upper_covers[i]:
                assert i in lat.lower_covers[j]

    def test_incomparable_pairs_symmetric_free(self):
        lat = fig1_lattice()[0]
        for i, j in lat.incomparable_pairs:
            assert i < j
            assert lat.incomparable(i, j)

    def test_downset_upset(self):
        lat = boolean_algebra("xy")
        x = lat.index(frozenset("x"))
        assert set(lat.downset(x)) == {lat.bottom, x}
        assert set(lat.upset(x)) == {x, lat.top}


class TestChainsAndSublattices:
    def test_maximal_chain_count_boolean(self):
        # Maximal chains in 2^[3] correspond to permutations: 3! = 6.
        lat = boolean_algebra("xyz")
        assert sum(1 for _ in lat.maximal_chains()) == 6

    def test_maximal_chain_limit(self):
        lat = boolean_algebra("xyz")
        assert sum(1 for _ in lat.maximal_chains(limit=2)) == 2

    def test_m3_has_m3_sublattice(self):
        lat = m3()
        subs = list(lat.sublattices_isomorphic_to_m3())
        assert len(subs) == 1
        assert subs[0][4] == lat.top

    def test_boolean_has_no_m3(self):
        lat = boolean_algebra("xyz")
        assert list(lat.sublattices_isomorphic_to_m3()) == []

    def test_interval(self):
        lat = boolean_algebra("xyz")
        x = lat.index(frozenset("x"))
        names = {lat.label(i) for i in lat.interval(x, lat.top)}
        assert names == {
            frozenset("x"),
            frozenset("xy"),
            frozenset("xz"),
            frozenset("xyz"),
        }


class TestBuilders:
    def test_lattice_from_fds_boolean(self):
        lat = lattice_from_fds(FDSet((), "ab"))
        assert lat.n == 4

    def test_fig1_size(self):
        lat, inputs = fig1_lattice()
        assert lat.n == 12
        assert set(inputs) == {"R", "S", "T"}

    def test_fig4_size(self):
        lat, inputs = fig4_lattice()
        assert lat.n == 12
        assert len(inputs) == 4

    def test_fig5_size(self):
        lat, _ = fig5_lattice()
        assert lat.n == 7

    def test_fig7_semantics(self):
        """The Ex. 5.29 proof steps determine the structure."""
        lat, _ = fig7_lattice()
        idx = lat.index
        assert lat.meet(idx("X"), idx("Y")) == idx("B")
        assert lat.join(idx("X"), idx("Y")) == idx("A")
        assert lat.meet(idx("A"), idx("Z")) == idx("C")
        assert lat.join(idx("A"), idx("Z")) == lat.top
        assert lat.meet(idx("B"), idx("U")) == lat.bottom
        assert lat.join(idx("B"), idx("U")) == idx("D")
        assert lat.meet(idx("C"), idx("D")) == lat.bottom
        assert lat.join(idx("C"), idx("D")) == lat.top

    def test_fig8_semantics(self):
        """The Ex. 5.30 proof steps determine the structure."""
        lat, _ = fig8_lattice()
        idx = lat.index
        assert lat.meet(idx("X"), idx("Y")) == idx("A")
        assert lat.join(idx("X"), idx("Y")) == idx("C")
        assert lat.meet(idx("Z"), idx("W")) == idx("B")
        assert lat.join(idx("Z"), idx("W")) == idx("D")
        assert lat.join(idx("A"), idx("D")) == lat.top
        assert lat.meet(idx("A"), idx("D")) == lat.bottom
        assert lat.join(idx("B"), idx("C")) == lat.top

    def test_fig9_semantics(self):
        """Inequalities (19)-(25) determine the meets/joins used there."""
        lat, _ = fig9_lattice()
        idx = lat.index
        assert lat.join(idx("M"), idx("Z")) == idx("U")   # (19)
        assert lat.meet(idx("M"), idx("Z")) == idx("G")
        assert lat.join(idx("N"), idx("Z")) == idx("V")   # (20)
        assert lat.meet(idx("N"), idx("Z")) == idx("I")
        assert lat.join(idx("O"), idx("Z")) == idx("W")   # (21)
        assert lat.meet(idx("O"), idx("Z")) == idx("J")
        assert lat.join(idx("U"), idx("V")) == lat.top    # (22)
        assert lat.meet(idx("U"), idx("V")) == idx("P")
        assert lat.join(idx("W"), idx("P")) == lat.top    # (23)
        assert lat.meet(idx("W"), idx("P")) == idx("Z")
        assert lat.join(idx("G"), idx("I")) == idx("Z")   # (24)
        assert lat.meet(idx("G"), idx("I")) == idx("D")
        assert lat.join(idx("J"), idx("D")) == idx("Z")   # (25)
        assert lat.meet(idx("J"), idx("D")) == lat.bottom

    def test_lattice_from_query(self):
        query = paper_example_query()
        lat, inputs = lattice_from_query(query)
        assert lat.n == 12
        assert lat.label(inputs["R"]) == frozenset("xy")
        assert lat.label(inputs["T"]) == frozenset("zu")

    def test_simple_key_closure_input(self):
        # y -> z: S(y,z) is already closed, R(x,y) closes to itself.
        query_fds = FDSet([FD("y", "z")], "xyz")
        lat = lattice_from_fds(query_fds)
        assert frozenset("y") not in set(lat.elements)  # y+ = yz
        assert frozenset("yz") in set(lat.elements)
