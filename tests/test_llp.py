"""The LLP and its dual certificates (repro.lp.llp)."""

from fractions import Fraction

import pytest

from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig9_lattice,
    lattice_from_query,
    m3_query_lattice,
)
from repro.lp.llp import LatticeLinearProgram, OutputInequality, glvv_bound_log2
from repro.query.query import triangle_query


def triangle_setup(n: float = 1.0):
    lat = boolean_algebra("xyz")
    inputs = {
        "R": lat.index(frozenset("xy")),
        "S": lat.index(frozenset("yz")),
        "T": lat.index(frozenset("xz")),
    }
    return lat, inputs, {name: n for name in inputs}


class TestPrimal:
    def test_triangle_three_halves(self):
        lat, inputs, logs = triangle_setup()
        program = LatticeLinearProgram(lat, inputs, logs)
        objective, h = program.solve_primal()
        assert objective == pytest.approx(1.5)

    def test_triangle_weighted(self):
        # AGM = min(sqrt(N_R N_S N_T), N_R N_S, ...): with N_T huge the
        # bound is N_R * N_S.
        lat, inputs, _ = triangle_setup()
        logs = {"R": 1.0, "S": 1.0, "T": 100.0}
        program = LatticeLinearProgram(lat, inputs, logs)
        objective, _ = program.solve_primal()
        assert objective == pytest.approx(2.0)

    def test_fig1_three_halves(self):
        lat, inputs = fig1_lattice()
        assert glvv_bound_log2(lat, inputs, {n: 1.0 for n in inputs}) == pytest.approx(1.5)

    def test_fig4_four_thirds(self):
        lat, inputs = fig4_lattice()
        assert glvv_bound_log2(lat, inputs, {n: 1.0 for n in inputs}) == pytest.approx(4 / 3)

    def test_fig9_three_halves(self):
        lat, inputs = fig9_lattice()
        assert glvv_bound_log2(lat, inputs, {n: 1.0 for n in inputs}) == pytest.approx(1.5)

    def test_m3_two(self):
        # The M3 polymatroid h(atom)=1, h(1̂)=2 is feasible, so GLVV = 2
        # (and it is achieved by the mod-N instance).
        lat, inputs = m3_query_lattice()
        assert glvv_bound_log2(lat, inputs, {n: 1.0 for n in inputs}) == pytest.approx(2.0)

    def test_optimal_h_is_polymatroid_after_lovasz(self):
        lat, inputs, logs = triangle_setup()
        solution = LatticeLinearProgram(lat, inputs, logs).solve()
        assert solution.h.is_polymatroid()

    def test_closure_example_n_squared(self):
        """Sec. 2: R(x), S(y), T(x,y,z) with xy→z and |T| = M >> N²:
        GLVV = N² not M."""
        from repro.fds.fd import FD, FDSet
        from repro.query.query import Atom, Query

        query = Query(
            [Atom("R", ("x",)), Atom("S", ("y",)), Atom("T", ("x", "y", "z"))],
            FDSet([FD("xy", "z")], "xyz"),
        )
        lat, inputs = lattice_from_query(query)
        logs = {"R": 1.0, "S": 1.0, "T": 50.0}
        assert glvv_bound_log2(lat, inputs, logs) == pytest.approx(2.0)

    def test_inputs_must_join_to_top(self):
        lat = boolean_algebra("xyz")
        inputs = {"R": lat.index(frozenset("xy"))}
        with pytest.raises(ValueError):
            LatticeLinearProgram(lat, inputs, {"R": 1.0})


class TestDual:
    def test_triangle_weights(self):
        lat, inputs, logs = triangle_setup()
        ineq = LatticeLinearProgram(lat, inputs, logs).solve_dual()
        assert ineq.weights == {
            "R": Fraction(1, 2), "S": Fraction(1, 2), "T": Fraction(1, 2)
        }

    def test_certificate_verifies(self):
        for lat, inputs in [fig1_lattice(), fig4_lattice(), fig9_lattice()]:
            logs = {n: 1.0 for n in inputs}
            ineq = LatticeLinearProgram(lat, inputs, logs).solve_dual()
            assert ineq.verify_certificate()

    def test_strong_duality(self):
        for lat, inputs in [fig1_lattice(), fig4_lattice(), fig9_lattice()]:
            logs = {n: 1.0 for n in inputs}
            program = LatticeLinearProgram(lat, inputs, logs)
            primal, _ = program.solve_primal()
            dual = program.solve_dual()
            assert dual.bound(logs) == pytest.approx(primal)

    def test_inequality_holds_on_optimal_h(self):
        lat, inputs, logs = triangle_setup()
        solution = LatticeLinearProgram(lat, inputs, logs).solve()
        assert solution.inequality.verify_on(solution.h)


class TestOutputInequality:
    def test_example_3_10(self):
        """hxy + hyz >= h1 + hy and hy + hzx >= h1 adds up to Shearer."""
        lat, inputs, _ = triangle_setup()
        xy = inputs["R"]
        yz = inputs["S"]
        zx = inputs["T"]
        y = lat.index(frozenset("y"))
        ineq = OutputInequality(
            lat,
            inputs,
            {name: Fraction(1, 2) for name in inputs},
            {(xy, yz): Fraction(1, 2), (y, zx): Fraction(1, 2)},
        )
        assert ineq.verify_certificate()

    def test_bad_certificate_rejected(self):
        lat, inputs, _ = triangle_setup()
        ineq = OutputInequality(
            lat, inputs, {name: Fraction(1, 3) for name in inputs}, {}
        )
        assert not ineq.verify_certificate()

    def test_negative_weight_rejected(self):
        lat, inputs, _ = triangle_setup()
        ineq = OutputInequality(
            lat, inputs,
            {"R": Fraction(-1), "S": Fraction(1), "T": Fraction(1)}, {}
        )
        assert not ineq.verify_certificate()

    def test_bound_value(self):
        lat, inputs, _ = triangle_setup()
        ineq = OutputInequality(
            lat, inputs, {name: Fraction(1, 2) for name in inputs}, {}
        )
        assert ineq.bound({"R": 10, "S": 10, "T": 10}) == pytest.approx(15.0)


class TestAgmEqualsLLP:
    def test_triangle_matches_hypergraph_lp(self):
        """Sec. 3.3: on a Boolean algebra AGM = 2^{h*(1̂)} (Eq. (6))."""
        query = triangle_query()
        sizes = {"R": 16, "S": 64, "T": 32}
        logs = query.cardinalities_log(sizes)
        cover, _ = query.hypergraph().fractional_edge_cover_number(logs)
        lat, inputs = lattice_from_query(query)
        llp = glvv_bound_log2(lat, inputs, logs)
        assert float(cover) == pytest.approx(llp)
