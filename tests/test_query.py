"""Query model, parser, hypergraph (repro.query)."""

from fractions import Fraction

import pytest

from repro.fds.fd import FD, FDSet
from repro.query.hypergraph import Hypergraph
from repro.query.parse import parse_query
from repro.query.query import Atom, Query, paper_example_query, triangle_query


class TestAtomQuery:
    def test_variables_in_order(self):
        q = triangle_query()
        assert q.variables == ("x", "y", "z")

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            Query([Atom("R", ("x",)), Atom("R", ("y",))])

    def test_atom_lookup(self):
        q = triangle_query()
        assert q.atom("S").attrs == ("y", "z")
        with pytest.raises(KeyError):
            q.atom("Z")

    def test_fd_only_variable_included(self):
        # Fig. 5: z appears only through the fd.
        q = Query(
            [Atom("R", ("x",)), Atom("S", ("y",))],
            FDSet([FD("xy", "z")], "xyz"),
        )
        assert "z" in q.variables

    def test_guard_detection(self):
        q = Query(
            [Atom("R", ("x", "y", "z"))], FDSet([FD("xy", "z")], "xyz")
        )
        assert q.guard(FD("xy", "z")).name == "R"
        assert q.unguarded_fds() == []

    def test_unguarded(self):
        q = paper_example_query()
        assert len(q.unguarded_fds()) == 2

    def test_closure_query(self):
        # All of Fig. 1's input attribute sets are already closed.
        q = paper_example_query()
        qc = q.closure_query()
        assert set(qc.atom("T").attrs) == {"z", "u"}
        assert not qc.fds

    def test_closure_query_simple_key(self, simple_key_query):
        qc = simple_key_query.closure_query()
        assert set(qc.atom("R").attrs) == {"x", "y", "z"}

    def test_cardinalities_log(self):
        q = triangle_query()
        logs = q.cardinalities_log({"R": 8, "S": 1, "T": 0})
        assert logs["R"] == pytest.approx(3.0)
        assert logs["S"] == 0.0
        assert logs["T"] == 0.0

    def test_hypergraph(self):
        hg = triangle_query().hypergraph()
        assert set(hg.vertices) == {"x", "y", "z"}
        assert hg.edges["R"] == frozenset("xy")


class TestParser:
    def test_basic(self):
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)")
        assert [a.name for a in q.atoms] == ["R", "S", "T"]
        assert q.atoms[0].attrs == ("x", "y")

    def test_headless(self):
        q = parse_query("R(x,y), S(y,z)")
        assert len(q.atoms) == 2

    def test_with_fds(self):
        q = parse_query("R(x,y), S(y,z), T(z,u); xz -> u, yu -> x")
        assert len(q.fds) == 2
        fds = list(q.fds)
        assert fds[0] == FD("xz", "u")

    def test_compact_fd_varlist(self):
        q = parse_query("R(x,y), S(y,z); xy -> z")
        assert list(q.fds)[0].lhs == frozenset("xy")

    def test_no_atoms_raises(self):
        with pytest.raises(ValueError):
            parse_query("nothing here")

    def test_multichar_variables(self):
        q = parse_query("Edge(src, dst), Node(src)")
        assert q.atoms[0].attrs == ("src", "dst")


class TestHypergraph:
    def test_isolated_vertices(self):
        hg = Hypergraph(["a", "b"], {"e": ["a"]})
        assert hg.isolated_vertices() == {"b"}

    def test_edge_outside_vertices_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(["a"], {"e": ["a", "b"]})

    def test_is_cover(self):
        hg = Hypergraph("xyz", {"R": "xy", "S": "yz", "T": "xz"})
        assert hg.is_fractional_edge_cover(
            {"R": Fraction(1, 2), "S": Fraction(1, 2), "T": Fraction(1, 2)}
        )
        assert not hg.is_fractional_edge_cover(
            {"R": Fraction(1, 3), "S": Fraction(1, 3), "T": Fraction(1, 3)}
        )

    def test_cover_number_triangle(self):
        hg = Hypergraph("xyz", {"R": "xy", "S": "yz", "T": "xz"})
        value, weights = hg.fractional_edge_cover_number()
        assert float(value) == pytest.approx(1.5)
        assert hg.is_fractional_edge_cover(weights)

    def test_weighted_cover_prefers_small(self):
        hg = Hypergraph("xyz", {"R": "xy", "S": "yz", "T": "xz"})
        value, weights = hg.fractional_edge_cover_number(
            {"R": 1.0, "S": 1.0, "T": 100.0}
        )
        assert float(value) == pytest.approx(2.0)
        assert weights["T"] == 0

    def test_vertex_packing_duality(self):
        hg = Hypergraph("xyz", {"R": "xy", "S": "yz", "T": "xz"})
        cover, _ = hg.fractional_edge_cover_number()
        packing, _ = hg.fractional_vertex_packing()
        assert float(cover) == pytest.approx(float(packing))

    def test_cover_vertices_contains_half(self):
        hg = Hypergraph("xyz", {"R": "xy", "S": "yz", "T": "xz"})
        points = hg.edge_cover_vertices()
        half = Fraction(1, 2)
        assert any(
            p == {"R": half, "S": half, "T": half} for p in points
        )

    def test_incident_edges(self):
        hg = Hypergraph("xyz", {"R": "xy", "S": "yz"})
        assert set(hg.incident_edges("y")) == {"R", "S"}
