"""Embeddings and quasi-product instances (repro.lattice.embedding)."""

from fractions import Fraction

import pytest

from repro.lattice.builders import boolean_algebra, fig1_lattice, m3
from repro.lattice.embedding import (
    Embedding,
    canonical_embedding,
    entropy_matches,
    is_embedding,
    quasi_product_instance,
    variable_join_irreducible,
)
from repro.lattice.polymatroid import LatticeFunction, step_function


def fig1_renaming_embedding():
    """Example 3.8: L(x)=L(u)=a, L(y)=b, L(z)=c embeds Fig. 1 into 2^{abc}."""
    source, _ = fig1_lattice()
    target = boolean_algebra("abc")
    renaming = {"x": "a", "u": "a", "y": "b", "z": "c"}
    mapping = []
    for element in source.elements:
        image = frozenset(renaming[v] for v in element)
        mapping.append(target.index(image))
    return source, target, tuple(mapping)


class TestIsEmbedding:
    def test_fig1_renaming_is_embedding(self):
        source, target, mapping = fig1_renaming_embedding()
        assert is_embedding(source, target, mapping)

    def test_identity_is_embedding(self):
        lat = boolean_algebra("xy")
        assert is_embedding(lat, lat, tuple(range(lat.n)))

    def test_wrong_top_rejected(self):
        lat = boolean_algebra("xy")
        mapping = [lat.bottom] * lat.n
        assert not is_embedding(lat, lat, mapping)

    def test_join_violation_rejected(self):
        lat = boolean_algebra("xy")
        # Swap x and top: join(x, y) = top must map to join of images.
        mapping = list(range(lat.n))
        x = lat.index(frozenset("x"))
        mapping[x] = lat.top
        mapping[lat.top] = lat.top
        # f(x ∨ y) = top -> ok, but f(x) ∨ f(y) = top ∨ y = top: fine;
        # break instead f(bottom):
        mapping[lat.bottom] = x
        assert not is_embedding(lat, lat, mapping)


class TestPullback:
    def test_pullback_preserves_submodularity(self):
        source, target, mapping = fig1_renaming_embedding()
        h_target = LatticeFunction.from_mapping(
            target,
            {
                frozenset("a"): Fraction(1, 2),
                frozenset("b"): Fraction(1, 2),
                frozenset("c"): Fraction(1, 2),
                frozenset("ab"): 1, frozenset("ac"): 1, frozenset("bc"): 1,
                frozenset("abc"): Fraction(3, 2),
            },
        )
        emb = Embedding(source, target, mapping)
        h = emb.pull_back(h_target)
        assert h.is_polymatroid()
        assert h.values[source.top] == Fraction(3, 2)
        # Example 4.6: this is exactly the Fig. 1 optimal polymatroid.
        assert h.at(frozenset("xy")) == 1
        assert h.at(frozenset("x")) == Fraction(1, 2)

    def test_pullback_of_normal_is_normal(self):
        # Lemma 4.3.
        source, target, mapping = fig1_renaming_embedding()
        h_target = step_function(target, target.index(frozenset("ab"))).scale(2)
        emb = Embedding(source, target, mapping)
        assert emb.pull_back(h_target).is_normal()


class TestVariableJoinIrreducible:
    def test_fig1_x_plus(self):
        lat, _ = fig1_lattice()
        assert lat.label(variable_join_irreducible(lat, "x")) == frozenset("x")

    def test_missing_variable(self):
        lat, _ = fig1_lattice()
        with pytest.raises(KeyError):
            variable_join_irreducible(lat, "w")


class TestCanonicalEmbedding:
    def test_color_counts_match_h(self):
        lat, _ = fig1_lattice()
        # The doubled Fig. 1 optimum is integral: h(1̂) = 3.
        h = _fig1_doubled_optimum(lat)
        coloring = canonical_embedding(h)
        for x in range(lat.n):
            assert coloring.color_count(x) == h.values[x]

    def test_non_integral_rejected(self):
        lat = boolean_algebra("xy")
        h = step_function(lat, lat.bottom).scale(Fraction(1, 2))
        with pytest.raises(ValueError):
            canonical_embedding(h)

    def test_non_normal_rejected(self):
        lat = m3()
        h = LatticeFunction.from_mapping(
            lat, {"x": 1, "y": 1, "z": 1, "1": 2}
        )
        with pytest.raises(ValueError):
            canonical_embedding(h)


def _fig1_doubled_optimum(lat) -> LatticeFunction:
    """2 × the Fig. 1 optimal polymatroid (integral, normal)."""
    values = {
        frozenset(): 0,
        frozenset("x"): 1, frozenset("y"): 1, frozenset("z"): 1,
        frozenset("u"): 1,
        frozenset("xy"): 2, frozenset("xu"): 1, frozenset("zu"): 2,
        frozenset("yz"): 2,
        frozenset("xyu"): 2, frozenset("xzu"): 2,
        frozenset("xyzu"): 3,
    }
    return LatticeFunction.from_mapping(lat, values)


class TestQuasiProduct:
    def test_fig1_materialization(self):
        """Example 3.8/4.6: the quasi-product instance for the doubled
        optimum has side^3 tuples and matches the entropy profile."""
        lat, _ = fig1_lattice()
        h = _fig1_doubled_optimum(lat)
        variables, tuples = quasi_product_instance(h, base=2)
        assert len(tuples) == 2 ** 3
        assert entropy_matches(h, variables, tuples, base=2)

    def test_fd_holds_in_instance(self):
        # xz -> u must hold in the materialized instance.
        lat, _ = fig1_lattice()
        h = _fig1_doubled_optimum(lat)
        variables, tuples = quasi_product_instance(h, base=2)
        pos = {v: i for i, v in enumerate(variables)}
        seen = {}
        for t in tuples:
            key = (t[pos["x"]], t[pos["z"]])
            assert seen.setdefault(key, t[pos["u"]]) == t[pos["u"]]

    def test_product_instance_boolean(self):
        # On a Boolean algebra with a modular h, the construction gives a
        # plain product instance.
        lat = boolean_algebra("xy")
        h = LatticeFunction.from_mapping(
            lat,
            {frozenset("x"): 1, frozenset("y"): 2, frozenset("xy"): 3},
        )
        variables, tuples = quasi_product_instance(h, base=2)
        assert len(tuples) == 8
        assert entropy_matches(h, variables, tuples, base=2)

    def test_bigger_base(self):
        lat = boolean_algebra("xy")
        h = LatticeFunction.from_mapping(
            lat, {frozenset("x"): 1, frozenset("y"): 1, frozenset("xy"): 2}
        )
        variables, tuples = quasi_product_instance(h, base=5)
        assert len(tuples) == 25
