"""Functional dependency machinery (repro.fds)."""

from repro.fds.fd import FD, FDSet, varset


class TestVarset:
    def test_compact_string(self):
        assert varset("xyz") == frozenset({"x", "y", "z"})

    def test_iterable(self):
        assert varset(["alpha", "beta"]) == frozenset({"alpha", "beta"})

    def test_empty(self):
        assert varset("") == frozenset()


class TestFD:
    def test_simple(self):
        assert FD("x", "y").is_simple

    def test_not_simple_lhs(self):
        assert not FD("xy", "z").is_simple

    def test_trivial(self):
        assert FD("xy", "x").is_trivial

    def test_not_trivial(self):
        assert not FD("xy", "z").is_trivial

    def test_equality_and_hash(self):
        assert FD("xy", "z") == FD(["y", "x"], ["z"])
        assert hash(FD("xy", "z")) == hash(FD("yx", "z"))


class TestClosure:
    def test_no_fds(self):
        fds = FDSet((), "xyz")
        assert fds.closure("x") == frozenset("x")

    def test_single_step(self):
        fds = FDSet([FD("x", "y")])
        assert fds.closure("x") == frozenset("xy")

    def test_chained(self):
        fds = FDSet([FD("x", "y"), FD("y", "z")])
        assert fds.closure("x") == frozenset("xyz")

    def test_requires_full_lhs(self):
        fds = FDSet([FD("xy", "z")], "xyz")
        assert fds.closure("x") == frozenset("x")
        assert fds.closure("xy") == frozenset("xyz")

    def test_paper_example_fig1(self):
        fds = FDSet([FD("xz", "u"), FD("yu", "x")], "xyzu")
        assert fds.closure("xz") == frozenset("xzu")
        assert fds.closure("yu") == frozenset("xyu")
        assert fds.closure("xy") == frozenset("xy")
        assert fds.closure("xyz") == frozenset("xyzu")

    def test_is_closed(self):
        fds = FDSet([FD("x", "y")], "xyz")
        assert fds.is_closed("xy")
        assert not fds.is_closed("x")


class TestImplication:
    def test_implied_transitive(self):
        fds = FDSet([FD("x", "y"), FD("y", "z")])
        assert fds.implies(FD("x", "z"))

    def test_not_implied(self):
        fds = FDSet([FD("x", "y")], "xyz")
        assert not fds.implies(FD("y", "x"))

    def test_trivial_always_implied(self):
        fds = FDSet((), "xy")
        assert fds.implies(FD("xy", "x"))

    def test_equivalence(self):
        a = FDSet([FD("x", "y"), FD("y", "z")])
        b = FDSet([FD("x", "y"), FD("y", "z"), FD("x", "z")])
        assert a.equivalent(b)

    def test_non_equivalence(self):
        a = FDSet([FD("x", "y")], "xyz")
        b = FDSet([FD("x", "z")], "xyz")
        assert not a.equivalent(b)


class TestClosedSets:
    def test_boolean(self):
        fds = FDSet((), "xy")
        assert fds.closed_sets() == {
            frozenset(),
            frozenset("x"),
            frozenset("y"),
            frozenset("xy"),
        }

    def test_fig5(self):
        # xy -> z kills the set {x, y}.
        fds = FDSet([FD("xy", "z")], "xyz")
        closed = fds.closed_sets()
        assert frozenset("xy") not in closed
        assert frozenset("xyz") in closed
        assert len(closed) == 7

    def test_fig1_count(self):
        fds = FDSet([FD("xz", "u"), FD("yu", "x")], "xyzu")
        assert len(fds.closed_sets()) == 12

    def test_closed_under_intersection(self):
        fds = FDSet([FD("xz", "u"), FD("yu", "x")], "xyzu")
        closed = fds.closed_sets()
        for a in closed:
            for b in closed:
                assert a & b in closed

    def test_simple_fds(self):
        fds = FDSet([FD("a", "b")], "ab")
        assert fds.closed_sets() == {
            frozenset(),
            frozenset("b"),
            frozenset("ab"),
        }


class TestAllSimple:
    def test_simple(self):
        assert FDSet([FD("a", "b"), FD("b", "c")]).all_simple

    def test_not_simple(self):
        assert not FDSet([FD("ab", "c")]).all_simple

    def test_empty_is_simple(self):
        assert FDSet((), "ab").all_simple


class TestRedundantVariables:
    def test_no_redundancy(self):
        fds = FDSet([FD("x", "y")], "xy")
        assert fds.redundant_variables() == frozenset()

    def test_mutual_determination(self):
        # x <-> y: each is redundant given the other.
        fds = FDSet([FD("x", "y"), FD("y", "x")])
        assert fds.redundant_variables() == frozenset("xy")

    def test_set_determination(self):
        # ab -> c and c -> ab: c redundant.
        fds = FDSet([FD("ab", "c"), FD("c", "ab")])
        assert "c" in fds.redundant_variables()


class TestMinimalCover:
    def test_removes_implied(self):
        fds = FDSet([FD("x", "y"), FD("y", "z"), FD("x", "z")])
        cover = fds.minimal_cover()
        assert cover.equivalent(fds)
        assert len(cover) == 2

    def test_splits_rhs(self):
        fds = FDSet([FD("x", "yz")])
        cover = fds.minimal_cover()
        assert all(len(fd.rhs) == 1 for fd in cover)
        assert cover.equivalent(fds)

    def test_trims_lhs(self):
        fds = FDSet([FD("x", "y"), FD("xz", "y")], "xyz")
        cover = fds.minimal_cover()
        assert cover.equivalent(fds)
        assert all(fd.lhs == frozenset("x") for fd in cover)
