"""LRU caps on the kernel's memo caches (ROADMAP "heavy traffic" item).

Every capped cache memoizes a *pure* function, so eviction may cost a
recomputation but must never change observable behavior.  These property
tests force heavy eviction (caps shrunk to a handful of entries) and
assert the answers stay identical to fresh computation.
"""

import random

import pytest

import repro.engine.relation as relation_mod
import repro.lp.solver as solver_mod
from repro.engine.relation import Relation
from repro.lp.solver import solve_lp


# ----------------------------------------------------------------------
# Relation projection cache
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_projection_cache_eviction_preserves_semantics(seed, monkeypatch):
    monkeypatch.setattr(relation_mod, "PROJECTION_CACHE_MAX", 3)
    rng = random.Random(seed)
    schema = tuple("abcdef")
    rel = Relation(
        "R",
        schema,
        {tuple(rng.randrange(4) for _ in schema) for _ in range(50)},
    )
    # Far more distinct projections than the cap; revisit each twice in a
    # shuffled order so hits, misses and evictions interleave.
    requests = []
    for width in (1, 2, 3, 4):
        for start in range(len(schema) - width + 1):
            requests.append(schema[start:start + width])
    requests = requests * 2
    rng.shuffle(requests)
    for attrs in requests:
        cached = rel.project(attrs)
        fresh = Relation("F", schema, rel.tuples).project(attrs)
        assert cached.schema == fresh.schema == attrs
        assert set(cached.tuples) == set(fresh.tuples)
    assert len(rel._projections) <= 3


def test_projection_cache_lru_recency():
    """Re-projecting refreshes recency: the most recently used entry
    survives an eviction burst."""
    import repro.engine.relation as rm

    old = rm.PROJECTION_CACHE_MAX
    rm.PROJECTION_CACHE_MAX = 2
    try:
        rel = Relation("R", ("a", "b", "c"), [(1, 2, 3), (4, 5, 6)])
        first = rel.project(("a",))
        rel.project(("b",))
        assert rel.project(("a",)) is first  # hit refreshes recency
        rel.project(("c",))                  # evicts ("b",), not ("a",)
        assert rel.project(("a",)) is first
    finally:
        rm.PROJECTION_CACHE_MAX = old


# ----------------------------------------------------------------------
# Schema interning registry
# ----------------------------------------------------------------------
def test_schema_registry_eviction_preserves_semantics(monkeypatch):
    monkeypatch.setattr(relation_mod, "SCHEMA_REGISTRY_MAX", 4)
    # Dropping the whole registry is safe by construction (interning is a
    # sharing optimization); start empty so eviction pressure is real.
    relation_mod._SCHEMA_REGISTRY.clear()
    relations = []
    # Construct far more distinct schemas than the cap.
    for i in range(20):
        schema = (f"x{i}", f"y{i}")
        relations.append(Relation(f"R{i}", schema, [(1, 2), (3, 4)]))
    assert len(relation_mod._SCHEMA_REGISTRY) <= 4
    # Relations built before their schema was evicted keep working, and
    # rebuilding an evicted schema yields an equivalent relation.
    for i, rel in enumerate(relations):
        assert rel.positions((f"y{i}", f"x{i}")) == (1, 0)
        assert rel.varset == frozenset((f"x{i}", f"y{i}"))
        rebuilt = Relation(f"S{i}", rel.schema, rel.tuples)
        assert rebuilt.schema == rel.schema
        assert set(rebuilt.tuples) == set(rel.tuples)
        assert rebuilt.degree({f"x{i}": 1}) == rel.degree({f"x{i}": 1})


# ----------------------------------------------------------------------
# solve_lp byte-memo
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_solve_lp_eviction_preserves_solutions(seed, monkeypatch):
    """Under a tiny cap, re-solving an evicted program must reproduce the
    exact solution it produced the first time (LP solving is pure and the
    HiGHS pipeline is deterministic)."""
    monkeypatch.setattr(solver_mod, "_SOLVE_CACHE_MAX", 2)
    # Dropping the memo is safe by construction (it caches a pure
    # function); start empty so eviction pressure is real.
    solver_mod._SOLVE_CACHE.clear()
    rng = random.Random(seed)
    programs = []
    for _ in range(8):
        n = rng.randint(2, 4)
        costs = [rng.randint(1, 5) for _ in range(n)]
        a_ub = [[-1.0 if j == i else 0.0 for j in range(n)] for i in range(n)]
        b_ub = [-float(rng.randint(1, 4)) for _ in range(n)]
        programs.append((costs, a_ub, b_ub))
    first_pass = [
        solve_lp(costs, a_ub=a, b_ub=b) for costs, a, b in programs
    ]
    assert len(solver_mod._SOLVE_CACHE) <= 2
    # Everything early has been evicted; re-solving must agree bit-for-bit.
    for (costs, a, b), before in zip(programs, first_pass):
        again = solve_lp(costs, a_ub=a, b_ub=b)
        assert again.objective == before.objective
        assert list(again.x) == list(before.x)
        assert again.x_rational == before.x_rational
        assert list(again.duals_ub) == list(before.duals_ub)


def test_solve_lp_cache_hit_returns_same_object(monkeypatch):
    monkeypatch.setattr(solver_mod, "_SOLVE_CACHE_MAX", 8)
    solver_mod._SOLVE_CACHE.clear()
    a = solve_lp([1.0, 2.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0])
    b = solve_lp([1.0, 2.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0])
    assert a is b
