"""LRU caps on the kernel's memo caches (ROADMAP "heavy traffic" item).

Every capped cache memoizes a *pure* function, so eviction may cost a
recomputation but must never change observable behavior.  These property
tests force heavy eviction (caps shrunk to a handful of entries) and
assert the answers stay identical to fresh computation.
"""

import random

import pytest

import repro.engine.database as database_mod
import repro.engine.relation as relation_mod
import repro.lp.solver as solver_mod
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.lp.solver import solve_lp


# ----------------------------------------------------------------------
# Relation projection cache
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_projection_cache_eviction_preserves_semantics(seed, monkeypatch):
    monkeypatch.setattr(relation_mod, "PROJECTION_CACHE_MAX", 3)
    rng = random.Random(seed)
    schema = tuple("abcdef")
    rel = Relation(
        "R",
        schema,
        {tuple(rng.randrange(4) for _ in schema) for _ in range(50)},
    )
    # Far more distinct projections than the cap; revisit each twice in a
    # shuffled order so hits, misses and evictions interleave.
    requests = []
    for width in (1, 2, 3, 4):
        for start in range(len(schema) - width + 1):
            requests.append(schema[start:start + width])
    requests = requests * 2
    rng.shuffle(requests)
    for attrs in requests:
        cached = rel.project(attrs)
        fresh = Relation("F", schema, rel.tuples).project(attrs)
        assert cached.schema == fresh.schema == attrs
        assert set(cached.tuples) == set(fresh.tuples)
    assert len(rel._projections) <= 3


def test_projection_cache_lru_recency():
    """Re-projecting refreshes recency: the most recently used entry
    survives an eviction burst."""
    import repro.engine.relation as rm

    old = rm.PROJECTION_CACHE_MAX
    rm.PROJECTION_CACHE_MAX = 2
    try:
        rel = Relation("R", ("a", "b", "c"), [(1, 2, 3), (4, 5, 6)])
        first = rel.project(("a",))
        rel.project(("b",))
        assert rel.project(("a",)) is first  # hit refreshes recency
        rel.project(("c",))                  # evicts ("b",), not ("a",)
        assert rel.project(("a",)) is first
    finally:
        rm.PROJECTION_CACHE_MAX = old


# ----------------------------------------------------------------------
# Schema interning registry
# ----------------------------------------------------------------------
def test_schema_registry_eviction_preserves_semantics(monkeypatch):
    monkeypatch.setattr(relation_mod, "SCHEMA_REGISTRY_MAX", 4)
    # Dropping the whole registry is safe by construction (interning is a
    # sharing optimization); start empty so eviction pressure is real.
    relation_mod._SCHEMA_REGISTRY.clear()
    relations = []
    # Construct far more distinct schemas than the cap.
    for i in range(20):
        schema = (f"x{i}", f"y{i}")
        relations.append(Relation(f"R{i}", schema, [(1, 2), (3, 4)]))
    assert len(relation_mod._SCHEMA_REGISTRY) <= 4
    # Relations built before their schema was evicted keep working, and
    # rebuilding an evicted schema yields an equivalent relation.
    for i, rel in enumerate(relations):
        assert rel.positions((f"y{i}", f"x{i}")) == (1, 0)
        assert rel.varset == frozenset((f"x{i}", f"y{i}"))
        rebuilt = Relation(f"S{i}", rel.schema, rel.tuples)
        assert rebuilt.schema == rel.schema
        assert set(rebuilt.tuples) == set(rel.tuples)
        assert rebuilt.degree({f"x{i}": 1}) == rel.degree({f"x{i}": 1})


# ----------------------------------------------------------------------
# solve_lp byte-memo
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_solve_lp_eviction_preserves_solutions(seed, monkeypatch):
    """Under a tiny cap, re-solving an evicted program must reproduce the
    exact solution it produced the first time (LP solving is pure and the
    HiGHS pipeline is deterministic)."""
    monkeypatch.setattr(solver_mod, "_SOLVE_CACHE_MAX", 2)
    # Dropping the memo is safe by construction (it caches a pure
    # function); start empty so eviction pressure is real.
    solver_mod._SOLVE_CACHE.clear()
    rng = random.Random(seed)
    programs = []
    for _ in range(8):
        n = rng.randint(2, 4)
        costs = [rng.randint(1, 5) for _ in range(n)]
        a_ub = [[-1.0 if j == i else 0.0 for j in range(n)] for i in range(n)]
        b_ub = [-float(rng.randint(1, 4)) for _ in range(n)]
        programs.append((costs, a_ub, b_ub))
    first_pass = [
        solve_lp(costs, a_ub=a, b_ub=b) for costs, a, b in programs
    ]
    assert len(solver_mod._SOLVE_CACHE) <= 2
    # Everything early has been evicted; re-solving must agree bit-for-bit.
    for (costs, a, b), before in zip(programs, first_pass):
        again = solve_lp(costs, a_ub=a, b_ub=b)
        assert again.objective == before.objective
        assert list(again.x) == list(before.x)
        assert again.x_rational == before.x_rational
        assert list(again.duals_ub) == list(before.duals_ub)


def test_solve_lp_cache_hit_returns_same_object(monkeypatch):
    monkeypatch.setattr(solver_mod, "_SOLVE_CACHE_MAX", 8)
    solver_mod._SOLVE_CACHE.clear()
    a = solve_lp([1.0, 2.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0])
    b = solve_lp([1.0, 2.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0])
    assert a is b


# ----------------------------------------------------------------------
# Database plan caches (expansion/guard/udf kernels)
# ----------------------------------------------------------------------
def _chain_database() -> "database_mod.Database":
    """Six-attribute fd chain a→b→…→f, each fd guarded by a functional
    binary relation mapping v ↦ (3v + i) mod 8."""
    attrs = "abcdef"
    relations = []
    for i in range(len(attrs) - 1):
        pairs = [(v, (3 * v + i) % 8) for v in range(8)]
        relations.append(
            Relation(f"G{i}", (attrs[i], attrs[i + 1]), pairs)
        )
    fds = FDSet(
        [FD(attrs[i], attrs[i + 1]) for i in range(len(attrs) - 1)], attrs
    )
    return database_mod.Database(relations, fds=fds)


@pytest.mark.parametrize("seed", range(3))
def test_plan_cache_eviction_preserves_expansions(seed, monkeypatch):
    """Expansion plans are pure compilations: with the plan caches capped
    to 2 entries, revisiting evicted source schemas recompiles but every
    expansion stays identical to a fresh database's."""
    monkeypatch.setattr(database_mod, "PLAN_CACHE_MAX", 2)
    db = _chain_database()
    rng = random.Random(seed)
    # Far more distinct (source_schema, target) plan keys than the cap,
    # visited twice in shuffled order so evicted plans get recompiled.
    schemas = [("a",), ("b",), ("c",), ("d",), ("a", "c"), ("b", "d"),
               ("c", "e"), ("a", "d")]
    requests = schemas * 2
    rng.shuffle(requests)
    for schema in requests:
        target = db.fds.closure(frozenset(schema))
        out_schema = tuple(sorted(target))
        rows = [tuple(rng.randrange(8) for _ in schema) for _ in range(6)]
        got = db.expand_rows(rows, schema, target, out_schema)
        fresh = _chain_database().expand_rows(rows, schema, target, out_schema)
        assert sorted(got) == sorted(fresh)
        assert len(db._tuple_plans) <= 2
        assert len(db._guard_lookups) <= 2


def test_relation_plan_cache_is_capped(monkeypatch):
    monkeypatch.setattr(database_mod, "PLAN_CACHE_MAX", 2)
    db = _chain_database()
    for schema in [("a",), ("b",), ("c",), ("d",), ("e",)]:
        plan = db.relation_plan(schema)
        # The compiled layout reaches the schema's fd-closure.
        assert set(plan.out_schema) == db.fds.closure(frozenset(schema))
        assert len(db._relation_plans) <= 2
    # A capacity hit returns the cached object (LRU refresh, no recompile).
    first = db.relation_plan(("d",))
    assert db.relation_plan(("d",)) is first


# ----------------------------------------------------------------------
# Long-uptime property: serving under plan caps + codec compaction
# ----------------------------------------------------------------------
def test_uptime_simulation_bounds_caches_and_preserves_answers(monkeypatch):
    """Simulated weeks of serving: every 'day' a tenant attaches a fresh
    database over new values, queries it, and detaches yesterday's.  With
    tiny plan caps and a tight dictionary cap, per-day answers must match
    a fresh single-use database bit-for-bit while the shared codec and
    plan caches stay bounded instead of growing with uptime."""
    monkeypatch.setattr(database_mod, "PLAN_CACHE_MAX", 4)
    from repro.engine.generic_join import generic_join
    from repro.serve.faults import FaultInjector
    from repro.serve.service import QueryService, canonical_rows
    from repro.serve.workloads import demo_queries, demo_relations

    triangle = demo_queries()["triangle"]
    days = 12
    with QueryService(max_workers=2, faults=FaultInjector(seed=0)) as service:
        service.create_tenant("t", dictionary_cap=60)
        tenant = service.tenant("t")
        for day in range(days):
            relations = demo_relations(
                seed=day, n_edges=32, value_base=day * 1000, value_range=16
            )
            service.attach_database("t", f"day{day}", relations)
            result = service.execute("t", f"day{day}", triangle)
            fresh_rel, _ = generic_join(
                triangle,
                database_mod.Database(relations, encode=False),
                fd_aware=True,
            )
            schema, rows = canonical_rows(fresh_rel, triangle)
            assert result.schema == schema
            assert result.rows == rows
            if day:
                service.detach_database("t", f"day{day - 1}")
            # Attached databases' plan caches respect the cap all along.
            for db in tenant.databases.values():
                assert len(db._tuple_plans) <= 4
                assert len(db._relation_plans) <= 4
        # Compaction ran and kept the shared codec near the live domain
        # (one day's values), not the union of all 12 days' values.
        assert tenant.compactions >= 1
        assert tenant.codec.total_values() <= 60 + 3 * 16
        assert service.metrics()["completed"] == days
