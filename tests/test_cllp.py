"""The Conditional LLP (repro.lp.cllp)."""

import math

import pytest

from repro.lattice.builders import (
    boolean_algebra,
    fig9_lattice,
    lattice_from_query,
)
from repro.lp.cllp import ConditionalLLP, DegreeConstraint
from repro.lp.llp import glvv_bound_log2
from repro.query.query import triangle_query


def triangle_setup():
    query = triangle_query()
    lat, inputs = lattice_from_query(query)
    return lat, inputs


class TestPrimal:
    def test_reduces_to_llp(self):
        # Prop. 5.32: P = {(0̂, R_j)} gives exactly the LLP.
        lat, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        program = ConditionalLLP.from_cardinalities(lat, inputs, logs)
        objective, h = program.solve_primal()
        assert objective == pytest.approx(glvv_bound_log2(lat, inputs, logs))

    def test_degree_bound_tightens(self):
        """Sec. 1.2: out-degree d on R drops the triangle bound from
        N^{3/2} to N·d (when d < sqrt N)."""
        lat, inputs = triangle_setup()
        n = 10.0
        log_d = 2.0
        logs = {name: n for name in inputs}
        base = ConditionalLLP.from_cardinalities(lat, inputs, logs)
        x = lat.index(frozenset("x"))
        xy = lat.index(frozenset("xy"))
        with_deg = base.with_constraint(DegreeConstraint(x, xy, log_d))
        plain_obj, _ = base.solve_primal()
        deg_obj, _ = with_deg.solve_primal()
        assert plain_obj == pytest.approx(1.5 * n)
        assert deg_obj == pytest.approx(n + log_d)

    def test_degree_bound_no_effect_when_loose(self):
        lat, inputs = triangle_setup()
        logs = {name: 10.0 for name in inputs}
        x = lat.index(frozenset("x"))
        xy = lat.index(frozenset("xy"))
        program = ConditionalLLP.from_cardinalities(
            lat, inputs, logs
        ).with_constraint(DegreeConstraint(x, xy, 9.0))
        objective, _ = program.solve_primal()
        assert objective == pytest.approx(15.0)

    def test_fd_as_zero_degree(self):
        # An fd X→Y is the degree bound 0 (Sec. 5.3.1): forcing
        # h(xy) = h(x) caps the triangle at N (via h(1̂) <= h(x)+h(yz)...).
        lat, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        x = lat.index(frozenset("x"))
        xy = lat.index(frozenset("xy"))
        program = ConditionalLLP.from_cardinalities(
            lat, inputs, logs
        ).with_constraint(DegreeConstraint(x, xy, 0.0))
        objective, _ = program.solve_primal()
        assert objective <= 1.0 + 1e-6

    def test_invalid_pair_rejected(self):
        lat, inputs = triangle_setup()
        xy = lat.index(frozenset("xy"))
        x = lat.index(frozenset("x"))
        with pytest.raises(ValueError):
            ConditionalLLP(lat, [DegreeConstraint(xy, x, 1.0)])

    def test_primal_h_is_polymatroid(self):
        # CLLP includes monotonicity, so the raw optimum is a polymatroid.
        lat, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        program = ConditionalLLP.from_cardinalities(lat, inputs, logs)
        _, h = program.solve_primal()
        assert h.is_polymatroid()


class TestDual:
    def test_dual_feasible_exact(self):
        lat, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        dual = ConditionalLLP.from_cardinalities(lat, inputs, logs).solve_dual()
        assert dual.is_feasible()

    def test_strong_duality(self):
        lat, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        program = ConditionalLLP.from_cardinalities(lat, inputs, logs)
        primal, _ = program.solve_primal()
        dual = program.solve_dual()
        objective = dual.objective(program.bounds_by_pair())
        assert float(objective) == pytest.approx(primal, abs=1e-6)

    def test_netflow_at_top(self):
        lat, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        dual = ConditionalLLP.from_cardinalities(lat, inputs, logs).solve_dual()
        assert dual.netflow(lat.top) >= 1

    def test_fig9_dual(self):
        lat, inputs = fig9_lattice()
        logs = {name: 1.0 for name in inputs}
        program = ConditionalLLP.from_cardinalities(lat, inputs, logs)
        primal, _ = program.solve_primal()
        assert primal == pytest.approx(1.5)
        dual = program.solve_dual()
        assert dual.is_feasible()
        # Lemma 5.33 machinery requires some SM mass:
        assert any(v > 0 for v in dual.s.values())


class TestLemma536:
    def test_adding_tight_constraint_reduces_opt(self):
        """Lemma 5.36's spirit: a discovered degree constraint strictly
        below the current optimum's slack reduces the CLLP optimum."""
        lat, inputs = triangle_setup()
        logs = {name: 10.0 for name in inputs}
        base = ConditionalLLP.from_cardinalities(lat, inputs, logs)
        before, _ = base.solve_primal()
        x = lat.index(frozenset("x"))
        xy = lat.index(frozenset("xy"))
        tightened = base.with_constraint(DegreeConstraint(x, xy, 1.0))
        after, _ = tightened.solve_primal()
        assert after < before
