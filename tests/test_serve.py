"""The serving layer: admission, deadlines, degradation, taxonomy, codec
sharing.

Deterministic counterparts of the chaos soak (``test_serve_chaos.py``):
every fault here is armed with an exact firing budget (``times=``) or a
pre-expired deadline, so each test pins one transition of the service's
state machine — *which* stage answers, *which* typed error escapes,
*that* the worker is released.
"""

import threading
from contextlib import contextmanager
from contextvars import copy_context

import pytest

from repro.engine.cancellation import Deadline, checkpoint_scope
from repro.engine.database import Database
from repro.engine.dictionary import Codec
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import leapfrog_triejoin
from repro.engine.relation import Relation
from repro.errors import (
    AdmissionRejected,
    EngineFault,
    QueryTimeout,
    ReproError,
    ServiceOverloaded,
    classify,
)
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF
from repro.query.query import Atom, Query
from repro.serve.admission import admit, certified_bound
from repro.serve.faults import FaultInjector, poison_codec
from repro.engine import shard as frontier_shard
from repro.serve.service import QueryService, canonical_rows, degradation_stages
from repro.serve.workloads import (
    build_demo_service,
    demo_queries,
    demo_relations,
)


def quiet() -> FaultInjector:
    """An injector with nothing armed — pins tests to fault-free behavior
    even when CI exports ``REPRO_FAULTS`` (which arms services by default)."""
    return FaultInjector(seed=0)


def triangle_db(encode=True, n=16):
    return Database(demo_relations(seed=7, n_edges=n), encode=encode)


TRIANGLE = demo_queries()["triangle"]


# ----------------------------------------------------------------------
# Certified admission
# ----------------------------------------------------------------------
def test_admission_bound_is_certified_and_admits():
    db = triangle_db()
    decision = admit(TRIANGLE, db, budget_log2=None)
    assert decision.admitted
    assert decision.certified
    assert decision.solution.certificate is not None
    # AGM for the triangle: 0.5 * (log|R| + log|S| + log|T|).
    logs = db.log_sizes()
    assert decision.bound_log2 == pytest.approx(
        0.5 * (logs["R"] + logs["S"] + logs["T"])
    )
    # The dual witness covers every atom with weight 1/2.
    assert decision.weights == {"R": 0.5, "S": 0.5, "T": 0.5}


def test_admission_rejection_carries_certificate_and_context():
    db = triangle_db()
    bound, solution, certified = certified_bound(TRIANGLE, db)
    assert certified
    with pytest.raises(AdmissionRejected) as excinfo:
        admit(TRIANGLE, db, budget_log2=bound - 1.0, tenant="acme")
    err = excinfo.value
    assert err.bound_log2 == pytest.approx(bound)
    assert err.budget_log2 == pytest.approx(bound - 1.0)
    assert err.certificate is not None
    assert not err.retryable
    ctx = err.context()
    assert ctx["type"] == "AdmissionRejected"
    assert ctx["tenant"] == "acme"
    assert ctx["certified"] is True
    assert ctx["weights"]["R"] == pytest.approx(0.5)
    # The certificate is the exact optimality proof of the primal solve
    # (a minimization of -h(1̂)): its objective reproduces the bound.
    assert float(err.certificate.objective) == pytest.approx(-bound)


def test_admission_budget_exactly_at_bound_admits():
    db = triangle_db()
    bound, _, _ = certified_bound(TRIANGLE, db)
    assert admit(TRIANGLE, db, budget_log2=bound).admitted


def test_service_rejects_and_then_serves_within_budget():
    # log2|R| <= log2(48) < 6 admits the single-atom scan; the triangle's
    # AGM bound (~1.5 * log N) is well past 6.
    service = build_demo_service(tenants=1, budget_log2=6.0, faults=quiet())
    with service:
        with pytest.raises(AdmissionRejected):
            service.execute("tenant0", "main", TRIANGLE)
        small = Query([Atom("R", ("x", "y"))])
        result = service.execute("tenant0", "main", small, engine="generic")
        assert result.bound_log2 <= 6.0
        assert result.rows
        assert service.metrics()["rejected_admission"] == 1


# ----------------------------------------------------------------------
# Deadlines and cancellation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_fn", [
    lambda q, db: generic_join(q, db, fd_aware=True),
    leapfrog_triejoin,
])
def test_expired_deadline_cancels_each_engine(engine_fn):
    db = triangle_db()
    with checkpoint_scope(Deadline(0.0).check):
        with pytest.raises(QueryTimeout):
            engine_fn(TRIANGLE, db)


def test_engines_ignore_deadlines_outside_scope():
    db = triangle_db()
    baseline, _ = generic_join(TRIANGLE, db, fd_aware=True)
    with checkpoint_scope(Deadline(0.0).check):
        with pytest.raises(QueryTimeout):
            generic_join(TRIANGLE, db, fd_aware=True)
    # The scope is gone: the same call succeeds and matches.
    again, _ = generic_join(TRIANGLE, db, fd_aware=True)
    assert set(again.tuples) == set(baseline.tuples)


def test_service_timeout_releases_worker():
    service = build_demo_service(tenants=1, max_workers=1, queue_depth=1, faults=quiet())
    with service:
        with pytest.raises(QueryTimeout) as excinfo:
            service.execute("tenant0", "main", TRIANGLE, deadline_s=0.0)
        assert excinfo.value.tenant == "tenant0"
        assert excinfo.value.extra["deadline_s"] == 0.0
        # The worker slot came back: a clean query on the same (single)
        # worker succeeds.
        result = service.execute("tenant0", "main", TRIANGLE)
        assert result.backend == degradation_stages()[0][0]
        assert not result.degraded
        assert service.metrics()["timeouts"] == 1


# ----------------------------------------------------------------------
# Bounded admission queue
# ----------------------------------------------------------------------
def test_overload_is_typed_and_retryable_after_drain():
    gate = threading.Event()
    udfs = [UDF("gate", ("x",), "y", fn=lambda x: (gate.wait(10), x + 1)[1])]
    rel = Relation("R", ("x",), [(1,), (2,), (3,)])
    blocked = Query([Atom("R", ("x",))], FDSet([FD("x", "y")], "xy"))
    service = QueryService(max_workers=1, queue_depth=1, faults=quiet())
    with service:
        service.create_tenant("t")
        service.attach_database("t", "main", [rel], udfs=udfs)
        first = service.submit("t", "main", blocked, engine="generic")
        second = service.submit("t", "main", blocked, engine="generic")
        # Worker busy + queue slot taken: the third submit fails fast.
        with pytest.raises(ServiceOverloaded) as excinfo:
            service.submit("t", "main", blocked, engine="generic")
        assert excinfo.value.retryable
        assert excinfo.value.tenant == "t"
        gate.set()
        rows = {r.rows and tuple(r.rows) for r in
                (first.result(timeout=10), second.result(timeout=10))}
        assert rows == {((1, 2), (2, 3), (3, 4))}
        # Slots drained: submission works again.
        assert service.execute("t", "main", blocked, engine="generic").rows
        assert service.metrics()["rejected_overload"] == 1


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
def expected_rows(query=TRIANGLE, n=48):
    db = Database(demo_relations(seed=0, n_edges=n), encode=False)
    rel, _ = generic_join(query, db, fd_aware=True)
    return canonical_rows(rel, query)[1]


@pytest.mark.parametrize("times", [1, 2, 3])
def test_degradation_stages_answer_bit_identically(times):
    # Expectations follow the configured chain (an ``encoded-sharded``
    # head appears when REPRO_SHARD engages), not hard-coded labels.
    stages = degradation_stages()
    if times >= len(stages):
        pytest.skip(f"chain has {len(stages)} stages")
    backend = stages[times][0]
    faults = FaultInjector(seed=1).arm("engine", times=times)
    service = build_demo_service(tenants=1, faults=faults)
    with service:
        result = service.execute("tenant0", "main", TRIANGLE, engine="generic")
    assert result.backend == backend
    assert result.degraded
    assert len(result.faults_absorbed) == times
    for ctx in result.faults_absorbed:
        assert ctx["type"] == "EngineFault"
        assert ctx["retryable"] is True
        assert ctx["tenant"] == "tenant0"
    assert result.rows == expected_rows()


def test_degradation_exhaustion_is_a_typed_fault():
    stages = degradation_stages()
    faults = FaultInjector(seed=1).arm("engine", times=len(stages))
    service = build_demo_service(tenants=1, faults=faults)
    with service:
        with pytest.raises(EngineFault) as excinfo:
            service.execute("tenant0", "main", TRIANGLE, engine="generic")
    err = excinfo.value
    assert err.stage == "exhausted"
    assert len(err.extra["absorbed"]) == len(stages)
    assert [c["backend"] for c in err.extra["absorbed"]] == [
        label for label, _, _, _ in stages
    ]


def test_allocation_fault_classified_and_absorbed():
    faults = FaultInjector(seed=1).arm("alloc", times=1)
    service = build_demo_service(tenants=1, faults=faults)
    with service:
        result = service.execute("tenant0", "main", TRIANGLE, engine="generic")
    assert result.backend == degradation_stages()[1][0]
    assert result.faults_absorbed[0]["kind"] == "allocation"
    assert result.rows == expected_rows()


def test_poisoned_codec_entry_degrades_to_decoded_reference():
    service = build_demo_service(tenants=1, faults=quiet())
    with service:
        tenant = service.tenant("tenant0")
        # Poison a value that appears in the result set: the encoded
        # stages die at the decode boundary, the decoded reference stage
        # bypasses the codec and still answers correctly.
        rows = expected_rows()
        assert rows, "demo workload must have results"
        victim = rows[0][0]
        code = tenant.codec.dictionaries["x"].values.index(victim)
        poison_codec(tenant.codec, "x", code)
        result = service.execute("tenant0", "main", TRIANGLE, engine="generic")
        assert result.backend == "decoded-reference"
        assert result.degraded
        assert result.rows == rows
        assert all(
            ctx["type"] == "EngineFault" for ctx in result.faults_absorbed
        )


def test_worker_site_fault_degrades_nothing_but_is_typed():
    # The worker site fires *before* admission/engines: no degradation
    # chain to absorb it, the classified fault escapes to the client.
    faults = FaultInjector(seed=1).arm("worker", times=1)
    service = build_demo_service(tenants=1, faults=faults)
    with service:
        with pytest.raises(EngineFault) as excinfo:
            service.execute("tenant0", "main", TRIANGLE)
        assert excinfo.value.retryable
        assert excinfo.value.tenant == "tenant0"
        # The budget is consumed: the next query is clean.
        assert not service.execute("tenant0", "main", TRIANGLE).degraded


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
def test_classify_wraps_foreign_exceptions():
    err = classify(ValueError("boom"), tenant="t", engine="generic")
    assert isinstance(err, EngineFault)
    assert err.retryable
    assert err.extra["kind"] == "exception"
    assert isinstance(err.__cause__, ValueError)
    assert err.context()["tenant"] == "t"


def test_classify_tags_allocation_failures():
    err = classify(MemoryError(), backend="encoded-ndarray")
    assert err.extra["kind"] == "allocation"
    assert err.backend == "encoded-ndarray"


def test_classify_passes_taxonomy_members_through_annotated():
    original = QueryTimeout("slow", deadline_s=1.5)
    err = classify(original, tenant="t", engine="lftj")
    assert err is original
    assert err.tenant == "t" and err.engine == "lftj"
    # annotate never overwrites already-set fields.
    assert classify(err, tenant="other").tenant == "t"


def test_context_is_machine_readable_no_string_matching():
    try:
        raise AdmissionRejected(
            "over budget", bound_log2=9.0, budget_log2=5.0, tenant="t"
        )
    except ReproError as err:
        ctx = err.context()
    assert (ctx["type"], ctx["retryable"]) == ("AdmissionRejected", False)
    assert ctx["bound_log2"] == 9.0 and ctx["budget_log2"] == 5.0
    assert ctx["certified"] is False


# ----------------------------------------------------------------------
# Shared-codec concurrency (two tenants' databases, one codec)
# ----------------------------------------------------------------------
def test_dictionary_interning_is_thread_safe():
    codec = Codec()
    d = codec.dictionary("x")
    results: list[dict] = []

    def intern(offset):
        local = {}
        for i in range(500):
            value = (i * 13 + offset * 7) % 250
            local[value] = d.encode(value)
        results.append(local)

    threads = [
        threading.Thread(target=copy_context().run, args=(intern, k))
        for k in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Codes are dense, stable and injective across all racing threads.
    assert len(d.values) == len(d._codes) == 250
    assert sorted(d._codes.values()) == list(range(250))
    for local in results:
        for value, code in local.items():
            assert d.encode(value) == code
            assert d.values[code] == value


def test_shared_codec_concurrent_queries_match_serial_work():
    # Two databases interning through one codec, queried from threads:
    # stable codes, and tuples_touched bit-identical to a serial run on
    # fresh per-database codecs.
    rels_a = demo_relations(seed=3, n_edges=40, value_base=0)
    rels_b = demo_relations(seed=4, n_edges=40, value_base=50)  # overlap
    serial = []
    for rels in (rels_a, rels_b):
        out, stats = generic_join(
            TRIANGLE, Database(rels, encode=True), fd_aware=True
        )
        serial.append((set(out.tuples), stats.tuples_touched))

    shared = Codec()
    dbs = [
        Database(rels_a, codec=shared),
        Database(rels_b, codec=shared),
    ]
    outcomes: dict[int, tuple] = {}

    def run(i):
        out, stats = generic_join(TRIANGLE, dbs[i], fd_aware=True)
        outcomes[i] = (set(out.tuples), stats.tuples_touched)

    threads = [
        threading.Thread(target=copy_context().run, args=(run, i))
        for i in (0, 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for i in (0, 1):
        assert outcomes[i] == serial[i]


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def test_compaction_drops_cold_entries_and_preserves_results():
    from collections import defaultdict

    service = build_demo_service(tenants=1, dictionary_cap=1, faults=quiet())
    with service:
        tenant = service.tenant("tenant0")
        udf_q = demo_queries()["udf_expand"]
        before = service.execute("tenant0", "expand", udf_q, engine="generic")
        # What a codec holding only the *stored* relations should intern.
        domains = defaultdict(set)
        for db in tenant.databases.values():
            for rel in db.relations.values():
                for attr, col in zip(rel.schema, rel.columns()):
                    domains[attr].update(col)
        live = sum(len(values) for values in domains.values())
        # The UDF interned mid-run values past the stored domain; the
        # post-query compaction (cap=1 forces one after every query)
        # rebuilt from stored relations only.
        assert tenant.compactions >= 1
        assert tenant.codec.total_values() == live
        after = service.execute("tenant0", "expand", udf_q, engine="generic")
        assert after.rows == before.rows
        tri = service.execute("tenant0", "main", TRIANGLE, engine="generic")
        assert tri.rows == expected_rows()
        assert service.metrics()["tenants"]["tenant0"]["compactions"] >= 2


# ----------------------------------------------------------------------
# Sharded execution stage
# ----------------------------------------------------------------------
@contextmanager
def sharding_forced(workers=2):
    """Force the shard backend via the module-global knobs (service
    worker threads don't inherit the test thread's context, so the
    ContextVar override cannot reach them)."""
    saved = (frontier_shard.SHARD_MODE, frontier_shard.SHARD_WORKERS)
    frontier_shard.SHARD_MODE, frontier_shard.SHARD_WORKERS = "on", workers
    try:
        yield
    finally:
        frontier_shard.SHARD_MODE, frontier_shard.SHARD_WORKERS = saved


def test_sharded_stage_heads_the_chain_and_answers_bit_identically():
    with sharding_forced(workers=2):
        stages = degradation_stages()
        assert [label for label, _, _, _ in stages] == [
            "encoded-sharded", "encoded-ndarray", "encoded-nofuse",
            "encoded-rows", "decoded-reference",
        ]
        service = build_demo_service(tenants=1, faults=quiet())
        with service:
            result = service.execute(
                "tenant0", "main", TRIANGLE, engine="generic"
            )
        assert result.backend == "encoded-sharded"
        assert not result.degraded
        assert result.rows == expected_rows()
    # Without shards the chain head is the single-worker block backend.
    assert degradation_stages()[0][0] != "encoded-sharded" or (
        frontier_shard.shard_available()
    )


def test_shard_worker_fault_degrades_to_single_worker_stage():
    with sharding_forced(workers=2):
        faults = FaultInjector(seed=1).arm("shard", times=1)
        service = build_demo_service(tenants=1, faults=faults)
        with service:
            result = service.execute(
                "tenant0", "main", TRIANGLE, engine="generic"
            )
        assert result.backend == "encoded-ndarray"
        assert result.degraded
        assert result.rows == expected_rows()
        assert faults.fired["shard"] == 1
        assert frontier_shard.active_tasks() == 0
