"""The Chain Algorithm — Algorithm 1 (repro.core.chain_algorithm)."""

import pytest

from repro.core.chain_algorithm import chain_algorithm
from repro.datagen.product import random_database
from repro.datagen.worstcase import (
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)
from repro.engine.binary_join import binary_join_plan
from repro.engine.generic_join import generic_join
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import Chain, best_chain_bound, shearer_chain
from repro.query.query import triangle_query


def reference(query, db):
    out, _ = binary_join_plan(query, db)
    return set(out.project(tuple(sorted(query.variables))).tuples)


def run_chain(query, db, chain=None):
    lattice, inputs = lattice_from_query(query)
    out, stats = chain_algorithm(query, db, lattice, inputs, chain)
    return set(out.project(tuple(sorted(query.variables))).tuples), stats


class TestCorrectness:
    def test_triangle_no_fds(self):
        query = triangle_query()
        db = random_database(query, 100, seed=1)
        assert run_chain(query, db)[0] == reference(query, db)

    def test_grid_instance(self):
        query, db = grid_instance_example_5_5(49)
        assert run_chain(query, db)[0] == reference(query, db)

    def test_skew_instance(self):
        query, db = skew_instance_example_5_8(60)
        assert run_chain(query, db)[0] == reference(query, db)

    def test_m3_instance(self):
        query, db = m3_modular_instance(12)
        got, _ = run_chain(query, db)
        assert len(got) == 12 * 12  # N² output (Ex. 5.12)
        assert got == reference(query, db)

    def test_empty_input(self):
        query = triangle_query()
        db = random_database(query, 0, seed=0)
        assert run_chain(query, db)[0] == set()

    def test_explicit_chain(self):
        query, db = grid_instance_example_5_5(25)
        lattice, inputs = lattice_from_query(query)
        chain = Chain(
            lattice,
            (
                lattice.bottom,
                lattice.index(frozenset("y")),
                lattice.index(frozenset("yz")),
                lattice.top,
            ),
        )
        out, _ = chain_algorithm(query, db, lattice, inputs, chain)
        assert set(out.tuples) == reference(query, db)

    def test_bad_chain_rejected(self):
        query = triangle_query()
        db = random_database(query, 10, seed=0)
        lattice, inputs = lattice_from_query(query)
        bad = Chain(lattice, (lattice.bottom, lattice.top))
        with pytest.raises(ValueError):
            chain_algorithm(query, db, lattice, inputs, bad)


class TestComplexityShape:
    def test_skew_beats_generic_join(self):
        """Ex. 5.8: CA's work is near-linear on the skew instance while
        any oblivious WCOJ does Θ(N²)."""
        n = 128
        query, db = skew_instance_example_5_8(n)
        lattice, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        _, chain, _ = best_chain_bound(lattice, inputs, logs)
        _, stats = chain_algorithm(query, db, lattice, inputs, chain)
        _, gj_stats = generic_join(
            query, db, order=("y", "z", "x", "u"), fd_aware=True
        )
        assert stats.tuples_touched < gj_stats.tuples_touched / 3

    def test_work_scales_subquadratically(self):
        works = []
        for n in (64, 256):
            query, db = skew_instance_example_5_8(n)
            lattice, inputs = lattice_from_query(query)
            logs = {k: db.log_sizes()[k] for k in inputs}
            _, chain, _ = best_chain_bound(lattice, inputs, logs)
            _, stats = chain_algorithm(query, db, lattice, inputs, chain)
            works.append(stats.tuples_touched)
        # Quadrupling N must grow work far less than 16x (quadratic).
        assert works[1] < 8 * works[0]

    def test_default_chain_is_shearer(self):
        query, db = grid_instance_example_5_5(16)
        lattice, inputs = lattice_from_query(query)
        out_default, _ = chain_algorithm(query, db, lattice, inputs)
        chain = shearer_chain(lattice, list(inputs.values()))
        out_explicit, _ = chain_algorithm(query, db, lattice, inputs, chain)
        assert set(out_default.tuples) == set(out_explicit.tuples)
