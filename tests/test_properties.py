"""Lattice properties: distributivity, normality (repro.lattice.properties)."""

from fractions import Fraction

from repro.fds.fd import FD, FDSet
from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig9_lattice,
    lattice_from_fds,
    m3,
    m3_query_lattice,
    n5,
)
from repro.lattice.properties import (
    atomic_hypergraph,
    coatomic_hypergraph,
    has_m3_with_top,
    is_distributive,
    is_modular,
    is_normal_lattice,
    output_inequality_holds,
)


class TestDistributivity:
    def test_boolean_distributive(self):
        assert is_distributive(boolean_algebra("xyz"))

    def test_m3_not_distributive(self):
        assert not is_distributive(m3())

    def test_n5_not_distributive(self):
        assert not is_distributive(n5())

    def test_simple_fds_distributive(self):
        # Prop. 3.2: simple fds give distributive lattices.
        fds = FDSet([FD("a", "b"), FD("b", "c"), FD("d", "c")], "abcd")
        assert is_distributive(lattice_from_fds(fds))

    def test_fig1_not_distributive(self):
        assert not is_distributive(fig1_lattice()[0])

    def test_xy_to_z_distributive(self):
        # Sec. 3.1's example of a non-simple fd giving... this 7-element
        # lattice is NOT distributive (z ∧ (x∨y) = z ≠ 0 = (z∧x)∨(z∧y)).
        fds = FDSet([FD("xy", "z")], "xyz")
        assert not is_distributive(lattice_from_fds(fds))


class TestModularity:
    def test_m3_modular(self):
        assert is_modular(m3())

    def test_n5_not_modular(self):
        assert not is_modular(n5())

    def test_boolean_modular(self):
        assert is_modular(boolean_algebra("xy"))


class TestM3Detection:
    def test_m3_detected(self):
        assert has_m3_with_top(m3())

    def test_boolean_clean(self):
        assert not has_m3_with_top(boolean_algebra("xyz"))

    def test_n5_clean(self):
        assert not has_m3_with_top(n5())

    def test_fig9_no_m3_at_top(self):
        # Fig. 9's lattice is normal (Ex. 5.31) — consistent with the
        # conjecture it has no M3 with the same top.
        assert not has_m3_with_top(fig9_lattice()[0])


class TestCoatomicHypergraph:
    def test_fig1_matches_fig2(self):
        """Fig. 2: H_co has nodes {xyu, yz, xzu}, e_R = {yz, xzu}, etc."""
        lat, inputs = fig1_lattice()
        graph = coatomic_hypergraph(lat, inputs)
        label = {v: lat.label(v) for v in graph.vertices}
        # R = xy is below co-atom xyu only, so e_R omits xyu.
        e_r = {label[v] for v in graph.edges["R"]}
        assert e_r == {frozenset("yz"), frozenset("xzu")}
        e_s = {label[v] for v in graph.edges["S"]}
        assert e_s == {frozenset("xyu"), frozenset("xzu")}
        e_t = {label[v] for v in graph.edges["T"]}
        assert e_t == {frozenset("xyu"), frozenset("yz")}

    def test_boolean_coatomic_isomorphic_to_query_hypergraph(self):
        # In 2^X, x <-> X - {x} (Sec. 4.2).
        lat = boolean_algebra("xyz")
        inputs = {
            "R": lat.index(frozenset("xy")),
            "S": lat.index(frozenset("yz")),
        }
        graph = coatomic_hypergraph(lat, inputs)
        # e_R = co-atoms not containing R = {xz, yz} complement-wise...
        # R=xy is below co-atom xy... no co-atom xy in 2^{xyz}: co-atoms are
        # xy, xz, yz; R=xy is below xy only, so e_R = {xz, yz}.
        e_r = {lat.label(v) for v in graph.edges["R"]}
        assert e_r == {frozenset("xz"), frozenset("yz")}

    def test_atomic_hypergraph_fig1(self):
        """Fig. 2 left: atoms y,x,u,z; e_R = {x,y}, e_S = {y,z}? — e_S is
        the atoms below S=yz: y and z."""
        lat, inputs = fig1_lattice()
        graph = atomic_hypergraph(lat, inputs)
        e_s = {lat.label(v) for v in graph.edges["S"]}
        assert e_s == {frozenset("y"), frozenset("z")}


class TestOutputInequality:
    def test_triangle_shearer(self):
        # h(xy)+h(yz)+h(zx) >= 2h(1̂): weights 1/2 each.
        lat = boolean_algebra("xyz")
        inputs = {
            "R": lat.index(frozenset("xy")),
            "S": lat.index(frozenset("yz")),
            "T": lat.index(frozenset("xz")),
        }
        weights = {name: Fraction(1, 2) for name in inputs}
        assert output_inequality_holds(lat, weights, inputs)

    def test_triangle_insufficient_weights(self):
        lat = boolean_algebra("xyz")
        inputs = {
            "R": lat.index(frozenset("xy")),
            "S": lat.index(frozenset("yz")),
            "T": lat.index(frozenset("xz")),
        }
        weights = {name: Fraction(1, 3) for name in inputs}
        assert not output_inequality_holds(lat, weights, inputs)

    def test_m3_half_cover_fails(self):
        # Prop. 4.10's witness: h(x)+h(y)+h(z) >= 2h(1̂) FAILS on M3.
        lat, inputs = m3_query_lattice()
        weights = {name: Fraction(1, 2) for name in inputs}
        assert not output_inequality_holds(lat, weights, inputs)

    def test_m3_integral_cover_holds(self):
        lat, inputs = m3_query_lattice()
        weights = {"R": Fraction(1), "S": Fraction(1), "T": Fraction(0)}
        assert output_inequality_holds(lat, weights, inputs)

    def test_fig9_inequality_holds(self):
        # h(M)+h(N)+h(O) >= 2h(1̂) holds (Ex. 5.31) even with no SM-proof.
        lat, inputs = fig9_lattice()
        weights = {name: Fraction(1, 2) for name in inputs}
        assert output_inequality_holds(lat, weights, inputs)

    def test_fig4_sm_bound_inequality(self):
        # Ex. 5.20: weights 1/3 each.
        lat, inputs = fig4_lattice()
        weights = {name: Fraction(1, 3) for name in inputs}
        assert output_inequality_holds(lat, weights, inputs)


class TestNormality:
    def test_boolean_normal(self):
        lat = boolean_algebra("xyz")
        inputs = {
            "R": lat.index(frozenset("xy")),
            "S": lat.index(frozenset("yz")),
            "T": lat.index(frozenset("xz")),
        }
        assert is_normal_lattice(lat, inputs)

    def test_m3_not_normal(self):
        lat, inputs = m3_query_lattice()
        assert not is_normal_lattice(lat, inputs)

    def test_fig1_normal(self):
        lat, inputs = fig1_lattice()
        assert is_normal_lattice(lat, inputs)

    def test_fig4_normal(self):
        lat, inputs = fig4_lattice()
        assert is_normal_lattice(lat, inputs)

    def test_fig9_normal(self):
        # "More surprisingly, the lattice is normal" (Ex. 5.31).
        lat, inputs = fig9_lattice()
        assert is_normal_lattice(lat, inputs)

    def test_n5_normal_small(self):
        # N5 is normal (Sec. 1.2).
        lat = n5()
        inputs = {"A": lat.index("b"), "B": lat.index("c")}
        assert is_normal_lattice(lat, inputs)
