"""The dictionary-encoded data plane: round trips, sharing, stability.

Satellite coverage for the columnar encoding PR:

* **Round trips** — ``decode(encode(v)) == v`` for heterogeneous value
  populations (hypothesis property), column-wise relation encoding
  included.
* **Sharing** — relations sharing an attribute name share its dictionary
  (codes compare equal iff values do — the join contract), via the
  per-database :class:`~repro.engine.dictionary.Codec`.
* **Stability** — ``Database.add`` appends codes, never renumbers:
  existing twins, plans and dense guard tables stay valid.
* **The dense-domain fast path** — single-attribute guard steps flatten
  to ``GUARD_DENSE`` tables exactly when the code domain is dense, with
  out-of-range codes (values interned after compilation) behaving as
  misses, like any unseen key.
* **Plane equivalence** — every engine produces identical results and
  bit-identical ``tuples_touched`` with the codec on and off
  (:func:`differential.assert_plane_equivalence`); the encoded batch
  backend is pinned against per-row ``reference_expand_tuple`` through
  ``assert_batch_backend_equivalence`` (driven from
  ``test_kernel_equivalence.py`` over the shared corpus).
"""

import pytest
from hypothesis import given, settings, strategies as st

from differential import (
    MANDATORY_ENGINES,
    all_instances,
    assert_plane_equivalence,
    random_simple_key_workload,
)
from repro.engine.database import Database
from repro.engine.dictionary import Codec, Dictionary
from repro.engine.expansion_plan import GUARD, GUARD_DENSE, densify_lookup
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet

values_strategy = st.one_of(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.text(max_size=6),
    st.tuples(st.integers(0, 99), st.integers(0, 99)),
    st.booleans(),
    st.none(),
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(values_strategy, max_size=40))
def test_dictionary_round_trip(values):
    d = Dictionary()
    codes = [d.encode(v) for v in values]
    assert all(isinstance(c, int) and c >= 0 for c in codes)
    for v, c in zip(values, codes):
        assert d.decode(c) == v
        # Interning is idempotent and stable.
        assert d.encode(v) == c
        assert d.code_of(v) == c
    assert len(d) == len({id_key(v) for v in values})


def id_key(value):
    """Python dict-key identity: ``1``/``1.0``/``True`` share a slot."""
    return (value, )  # tuples hash/eq like their contents


def test_equal_values_share_a_code():
    d = Dictionary()
    assert d.encode(1) == d.encode(1.0) == d.encode(True)
    assert d.decode(d.encode(1.0)) == 1


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(values_strategy, values_strategy), min_size=1, max_size=30
    )
)
def test_relation_encode_decode_round_trip(rows):
    codec = Codec()
    rel = Relation("R", ("x", "y"), rows)
    twin = codec.encode_relation(rel)
    assert twin.schema == rel.schema
    assert len(twin) == len(rel)
    assert twin.columns_all_int() == (True, True)
    decoded = codec.decode_tuples(rel.schema, twin.tuples)
    assert set(decoded) == set(rel.tuples)
    # The twin caches on the relation: same codec → same object.
    assert codec.encode_relation(rel) is twin


# ----------------------------------------------------------------------
# Sharing and stability
# ----------------------------------------------------------------------

def test_dictionaries_shared_across_relations():
    """Same attribute name → same dictionary → join-compatible codes."""
    db = Database(
        [
            Relation("R", ("x", "y"), [(1, "a"), (2, "b")]),
            Relation("S", ("y", "z"), [("a", 7), ("c", 8)]),
        ],
        encode=True,
    )
    d_y = db.codec.dictionary("y")
    r_twin, s_twin = db.runtime("R"), db.runtime("S")
    r_y = {t[1] for t in r_twin.tuples}
    s_y = {t[0] for t in s_twin.tuples}
    # "a" got one code, visible from both relations.
    assert d_y.code_of("a") in r_y
    assert d_y.code_of("a") in s_y
    assert d_y.code_of("c") not in r_y


def test_codes_stable_under_database_add():
    db = Database(
        [Relation("R", ("x", "y"), [(10, 20), (11, 21)])], encode=True
    )
    twin_before = db.runtime("R")
    snapshot = {
        attr: list(d.values) for attr, d in db.codec.dictionaries.items()
    }
    db.add(Relation("S", ("y", "z"), [(20, 99), (77, 100)]))
    # Existing codes are untouched (appended only) and the twin object is
    # exactly the one encoded at construction time.
    assert db.runtime("R") is twin_before
    for attr, values in snapshot.items():
        assert db.codec.dictionary(attr).values[: len(values)] == values
    # The shared attribute reuses R's code for 20 and appends for 77.
    d_y = db.codec.dictionary("y")
    assert db.runtime("S").tuples[0][0] == d_y.code_of(20)
    assert d_y.code_of(77) >= len(snapshot["y"])


def test_encoding_defaults_on_and_knob_disables():
    assert Database([]).encoded  # REPRO_ENCODE default
    assert not Database([], encode=False).encoded
    with pytest.raises(ValueError):
        Database([], encode=False).expansion_plan(("x",), encoded=True)


# ----------------------------------------------------------------------
# The dense-domain fast path
# ----------------------------------------------------------------------

def _guarded_db(**kwargs):
    guard = Relation("G", ("x", "y"), [(i, i * 10) for i in range(50)])
    return Database(
        [guard, Relation("R", ("x",), [(i,) for i in range(50)])],
        fds=FDSet([FD("x", "y")]),
        **kwargs,
    )


def test_single_attr_dense_domain_uses_flat_table():
    db = _guarded_db(encode=True)
    plan = db.expansion_plan(("x",), encoded=True)
    (step,) = plan.steps
    assert step[0] == GUARD_DENSE
    assert isinstance(step[2], list)
    # The raw plan keeps the hash lookup.
    raw_step = db.expansion_plan(("x",)).steps[0]
    assert raw_step[0] == GUARD


def test_sparse_domain_keeps_hash_lookup():
    lookup = {(i * 10_000,): ("img",) for i in range(10)}
    assert densify_lookup(lookup, domain_size=100_000) is None
    dense = densify_lookup({(3,): ("img",)}, domain_size=10)
    assert dense[3] == ("img",)
    assert dense[4] is None


def test_out_of_range_code_is_a_miss():
    """A value interned *after* the dense table compiled (e.g. by
    ``expand_tuple`` on unseen input) must dangle, exactly like the raw
    plane's unseen-key miss."""
    db = _guarded_db(encode=True)
    raw = _guarded_db(encode=False)
    counter_enc, counter_raw = WorkCounter(), WorkCounter()
    assert db.expand_tuple({"x": 3}, counter=counter_enc) == {"x": 3, "y": 30}
    assert raw.expand_tuple({"x": 3}, counter=counter_raw) == {"x": 3, "y": 30}
    # 999 was never interned: its fresh code exceeds the dense table.
    assert db.expand_tuple({"x": 999}, counter=counter_enc) is None
    assert raw.expand_tuple({"x": 999}, counter=counter_raw) is None
    assert counter_enc.tuples_touched == counter_raw.tuples_touched


def test_expand_relation_public_api_stays_decoded():
    db = _guarded_db(encode=True)
    out = db.expand_relation(db["R"])
    assert out.schema == ("x", "y")
    assert (3, 30) in set(out.tuples)


# ----------------------------------------------------------------------
# Plane equivalence (the encoded backend as a mandatory engine variant)
# ----------------------------------------------------------------------

def test_decoded_plane_variants_are_mandatory():
    assert {"generic-decoded-plane", "csma-decoded-plane",
            "lftj-decoded-plane"} <= set(MANDATORY_ENGINES)


@pytest.mark.parametrize("seed", range(6))
def test_plane_equivalence_on_corpus(seed):
    for query, db in all_instances(seed):
        assert_plane_equivalence(query, db)


@pytest.mark.parametrize("seed", range(4))
def test_plane_equivalence_on_simple_key_workloads(seed):
    query, db = random_simple_key_workload(seed)
    assert_plane_equivalence(query, db)
