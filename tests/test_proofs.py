"""SM-proof sequences and goodness (repro.core.proofs)."""

from fractions import Fraction

from repro.core.proofs import (
    SMProof,
    SMStep,
    find_good_sm_proof,
    initial_multiset,
    sm_proof_exists,
)
from repro.lattice.builders import (
    boolean_algebra,
    fig4_lattice,
    fig7_lattice,
    fig8_lattice,
    fig9_lattice,
)


class TestInitialMultiset:
    def test_thirds(self):
        lat, inputs = fig4_lattice()
        weights = {name: Fraction(1, 3) for name in inputs}
        elements, origin, d = initial_multiset(weights, inputs)
        assert d == 3
        assert len(elements) == 4  # one copy each

    def test_mixed_denominators(self):
        lat, inputs = fig4_lattice()
        weights = {
            "R": Fraction(1, 2), "S": Fraction(1, 3),
            "T": Fraction(0), "U": Fraction(1),
        }
        elements, origin, d = initial_multiset(weights, inputs)
        assert d == 6
        assert len(elements) == 3 + 2 + 6  # 1/2->3, 1/3->2, 1->6 copies

    def test_zero_weights_skipped(self):
        lat, inputs = fig4_lattice()
        weights = {"R": Fraction(1), "S": 0, "T": 0, "U": 0}
        elements, origin, d = initial_multiset(weights, inputs)
        assert len(elements) == 1


class TestProofSearch:
    def test_fig4_good_proof(self):
        """Ex. 5.20's proof is found and verified good."""
        lat, inputs = fig4_lattice()
        weights = {name: Fraction(1, 3) for name in inputs}
        proof = find_good_sm_proof(lat, weights, inputs)
        assert proof is not None
        assert proof.verify()
        assert proof.is_good()
        assert proof.reaches_top() >= 3

    def test_fig7_good_proof_exists(self):
        """Ex. 5.29: one sequence is bad but another is good — the search
        must find the good one (X,Z) → (C,1̂), (Y,U) → (0̂,D), (C,D) → (0̂,1̂)."""
        lat, inputs = fig7_lattice()
        weights = {name: Fraction(1, 2) for name in inputs}
        proof = find_good_sm_proof(lat, weights, inputs)
        assert proof is not None and proof.is_good()

    def test_fig9_no_sm_proof(self):
        """Ex. 5.31: h(M)+h(N)+h(O) >= 2h(1̂) admits NO SM-proof at all."""
        lat, inputs = fig9_lattice()
        weights = {name: Fraction(1, 2) for name in inputs}
        assert not sm_proof_exists(lat, weights, inputs)

    def test_fig9_no_good_proof_either(self):
        lat, inputs = fig9_lattice()
        weights = {name: Fraction(1, 2) for name in inputs}
        assert find_good_sm_proof(lat, weights, inputs) is None

    def test_triangle_proof(self):
        lat = boolean_algebra("xyz")
        inputs = {
            "R": lat.index(frozenset("xy")),
            "S": lat.index(frozenset("yz")),
            "T": lat.index(frozenset("xz")),
        }
        weights = {name: Fraction(1, 2) for name in inputs}
        proof = find_good_sm_proof(lat, weights, inputs)
        assert proof is not None and proof.is_good()
        assert proof.reaches_top() >= 2


class TestLabelSemantics:
    def test_ex_5_29_bad_sequence_detected(self):
        """Replay the paper's bad Fig. 7 sequence; the last step must have
        an empty label intersection."""
        lat, inputs = fig7_lattice()
        idx = lat.index
        elements = [idx("X"), idx("Y"), idx("Z"), idx("U")]
        origin = {i: name for i, name in enumerate(["X", "Y", "Z", "U"])}
        proof = SMProof(lat, list(elements), origin)

        def apply(a, b):
            x, y = proof.elements[a], proof.elements[b]
            meet_item = len(proof.elements)
            proof.elements.extend([lat.meet(x, y), lat.join(x, y)])
            proof.steps.append(SMStep(a, b))
            proof.produced.append((meet_item, meet_item + 1))
            return meet_item, meet_item + 1

        # (X,Y) -> meet B, join A
        b_item, a_item = apply(0, 1)
        # (A,Z) -> meet C, join 1̂
        c_item, top1 = apply(a_item, 2)
        # (B,U) -> meet 0̂, join D
        bot, d_item = apply(b_item, 3)
        # (C,D) -> meet 0̂, join 1̂  — this step's labels must not intersect
        apply(c_item, d_item)
        good, labels = proof.label_trace()
        assert not good
        # Check the intermediate labels the paper states: Labels(C)={3},
        # Labels(D)={2}.
        assert labels[c_item] == frozenset({3})
        assert labels[d_item] == frozenset({2})

    def test_ex_5_30_bad_for_missing_label(self):
        """Fig. 8: every step has common labels, but label 1 never reaches
        a copy of 1̂."""
        lat, inputs = fig8_lattice()
        idx = lat.index
        elements = [idx("X"), idx("Y"), idx("Z"), idx("W")]
        origin = {i: n for i, n in enumerate(["X", "Y", "Z", "W"])}
        proof = SMProof(lat, list(elements), origin)

        def apply(a, b):
            x, y = proof.elements[a], proof.elements[b]
            meet_item = len(proof.elements)
            proof.elements.extend([lat.meet(x, y), lat.join(x, y)])
            proof.steps.append(SMStep(a, b))
            proof.produced.append((meet_item, meet_item + 1))
            return meet_item, meet_item + 1

        a_item, c_item = apply(0, 1)   # (X,Y) -> (A, C)
        b_item, d_item = apply(2, 3)   # (Z,W) -> (B, D)
        apply(a_item, d_item)          # (A,D) -> (0̂, 1̂)
        apply(b_item, c_item)          # (B,C) -> (0̂, 1̂)
        good, labels = proof.label_trace()
        assert not good
        # Labels after step 2 match Ex. 5.30: C={1,3}, D={1,2}, A={2,3}...
        # (A got fresh label 2 at step 1; D is the join of step 2 with
        # common labels {1,2}.)
        assert labels[d_item] >= frozenset({1, 2})

    def test_verify_rejects_reuse(self):
        lat, inputs = fig4_lattice()
        idx_r = inputs["R"]
        idx_s = inputs["S"]
        proof = SMProof(lat, [idx_r, idx_s], {0: "R", 1: "S"})
        x, y = proof.elements[0], proof.elements[1]
        proof.elements.extend([lat.meet(x, y), lat.join(x, y)])
        proof.steps.append(SMStep(0, 1))
        proof.produced.append((2, 3))
        # Reusing a consumed item is invalid.
        proof.elements.extend([lat.meet(x, y), lat.join(x, y)])
        proof.steps.append(SMStep(0, 1))
        proof.produced.append((4, 5))
        assert not proof.verify()
