"""The knob registry's contract: env-string parsing round-trips for
every declared knob, bad values raise the typed :class:`ConfigError`,
and — the bit-identity half — every default matches what the old
scattered ``os.environ`` readers computed before PR 10 centralized
them."""

from __future__ import annotations

import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import config
from repro.config import KNOBS, RETIRED, ConfigError
from repro.errors import ReproError

KNOB_NAMES = sorted(KNOBS)
INT_KNOBS = [n for n in KNOB_NAMES if KNOBS[n].kind == "int"]
MODE_KNOBS = [n for n in KNOB_NAMES if KNOBS[n].kind == "mode"]
FLAG_KNOBS = [n for n in KNOB_NAMES if KNOBS[n].kind == "flag"]
CHOICE_KNOBS = [n for n in KNOB_NAMES if KNOBS[n].kind == "choice"]
STR_KNOBS = [n for n in KNOB_NAMES if KNOBS[n].kind == "str"]


def test_every_knob_is_one_of_the_five_kinds():
    assert set(INT_KNOBS) | set(MODE_KNOBS) | set(FLAG_KNOBS) | set(
        CHOICE_KNOBS
    ) | set(STR_KNOBS) == set(KNOB_NAMES)


# ---------------------------------------------------------------------------
# Round-trips: a value drawn from the knob's domain survives env encoding
# ---------------------------------------------------------------------------


#: Whitespace the old readers stripped; parsing must keep stripping it.
pad = st.text(alphabet=" \t", max_size=2)


@given(value=st.integers(-(10**9), 10**9), left=pad, right=pad)
@pytest.mark.parametrize("name", INT_KNOBS)
def test_int_knobs_round_trip(name, value, left, right):
    assert config.get(name, {name: f"{left}{value}{right}"}) == value


@given(
    token=st.sampled_from(
        sorted({"auto"} | config.ON_VALUES | config.OFF_VALUES)
    ),
    casing=st.sampled_from([str.lower, str.upper, str.title]),
    left=pad,
    right=pad,
)
@pytest.mark.parametrize("name", MODE_KNOBS)
def test_mode_knobs_normalize_to_the_lowered_token(
    name, token, casing, left, right
):
    raw = f"{left}{casing(token)}{right}"
    assert config.get(name, {name: raw}) == token


@given(
    token=st.sampled_from(sorted(config.ON_VALUES | config.OFF_VALUES)),
    casing=st.sampled_from([str.lower, str.upper, str.title]),
)
@pytest.mark.parametrize("name", FLAG_KNOBS)
def test_flag_knobs_round_trip_the_synonym_sets(name, token, casing):
    expected = token in config.ON_VALUES
    assert config.get(name, {name: casing(token)}) is expected


@pytest.mark.parametrize("name", CHOICE_KNOBS)
def test_choice_knobs_accept_exactly_their_choices(name):
    for choice in KNOBS[name].choices:
        assert config.get(name, {name: choice}) == choice
        assert config.get(name, {name: choice.upper()}) == choice


@given(value=st.text(min_size=1, max_size=30).filter(lambda s: s.strip()))
@pytest.mark.parametrize("name", STR_KNOBS)
def test_str_knobs_return_the_stripped_raw_string(name, value):
    assert config.get(name, {name: value}) == value.strip()


@pytest.mark.parametrize("name", KNOB_NAMES)
def test_empty_and_whitespace_mean_unset(name):
    default = KNOBS[name].default_value()
    assert config.get(name, {}) == default
    assert config.get(name, {name: ""}) == default
    assert config.get(name, {name: "   "}) == default
    assert not config.is_set(name, {})
    assert not config.is_set(name, {name: "  "})
    assert config.is_set(name, {name: "x"})


# ---------------------------------------------------------------------------
# Bad values raise the typed error (which is also a ValueError, so the
# pre-registry except clauses keep working)
# ---------------------------------------------------------------------------


@given(garbage=st.text(min_size=1, max_size=20))
@pytest.mark.parametrize(
    "name", INT_KNOBS + MODE_KNOBS + FLAG_KNOBS + CHOICE_KNOBS
)
def test_out_of_domain_values_raise_config_error(name, garbage):
    knob = KNOBS[name]
    token = garbage.strip().lower()
    if not token:
        return  # whitespace means unset, covered above
    if knob.kind == "int":
        try:
            int(token)
        except ValueError:
            pass
        else:
            return  # in-domain draw; nothing to reject
    elif knob.kind == "mode":
        if token in {"auto"} | config.ON_VALUES | config.OFF_VALUES:
            return
    elif knob.kind == "flag":
        if token in config.ON_VALUES | config.OFF_VALUES:
            return
    elif token in knob.choices:
        return
    with pytest.raises(ConfigError) as err:
        config.get(name, {name: garbage})
    assert name in str(err.value)


def test_config_error_is_both_repro_error_and_value_error():
    assert issubclass(ConfigError, ReproError)
    assert issubclass(ConfigError, ValueError)


def test_unknown_and_retired_knobs_raise():
    # The undeclared name is the point of the test, hence the pragma.
    with pytest.raises(ConfigError, match="REPRO_NOT_A_KNOB"):  # repro-lint: disable=knob-discipline
        config.get("REPRO_NOT_A_KNOB", {})  # repro-lint: disable=knob-discipline
    for name in RETIRED:
        with pytest.raises(ConfigError, match="retired"):
            config.knob(name)


# ---------------------------------------------------------------------------
# Defaults are bit-identical to the pre-registry scattered readers
# ---------------------------------------------------------------------------

#: What each module computed before PR 10, copied from the old readers.
EXPECTED_DEFAULTS = {
    "REPRO_ENCODE": True,
    "REPRO_PLAN_CACHE_MAX": 512,
    "REPRO_CHECK_DISTINCT": False,
    "REPRO_BATCH_COLUMN_MIN": 32768,
    "REPRO_BATCH_NUMPY_MIN": 1 << 20,
    "REPRO_BATCH_NUMPY_MIN_ENCODED": 1 << 16,
    "REPRO_BATCH_NDARRAY": "auto",
    "REPRO_BATCH_NDARRAY_MIN": 4096,
    "REPRO_SHARD": "auto",
    "REPRO_SHARD_MIN": 65536,
    "REPRO_SHARD_BACKEND": "thread",
    "REPRO_FUSE": "auto",
    "REPRO_FUSE_NATIVE": "auto",
    "REPRO_PROFILE_STEPS": False,
    "REPRO_LP_BACKEND": "auto",
    "REPRO_FAULTS": "",
    "REPRO_FAULTS_SEED": 0,
}


def test_defaults_match_the_old_scattered_readers():
    for name, expected in EXPECTED_DEFAULTS.items():
        assert config.get(name, {}) == expected, name
    # The one computed default: the old shard.py read cpu_count() or 1.
    assert config.get("REPRO_SHARD_WORKERS", {}) == (os.cpu_count() or 1)
    # And the registry declares nothing beyond these.
    assert set(EXPECTED_DEFAULTS) | {"REPRO_SHARD_WORKERS"} == set(KNOB_NAMES)


def test_get_default_override_distinguishes_set_from_unset():
    assert config.get("REPRO_SHARD_WORKERS", {}, default=0) == 0
    assert config.get("REPRO_SHARD_WORKERS", {"REPRO_SHARD_WORKERS": "3"}, default=0) == 3
