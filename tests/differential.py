"""Reusable differential-testing machinery for every engine.

This module is the *contract* a new execution backend must satisfy before
it ships (see PERFORMANCE.md, "The differential testing contract"):

1. **Result agreement** — on every randomized instance, the engine's
   output relation must equal every other engine's output
   (:func:`run_all_engines` / :func:`assert_engines_agree`).
2. **Work transparency** — any path that executes expansion work must
   charge ``tuples_touched`` bit-identically to the naive reference
   formulation in :mod:`repro.engine.reference`
   (:func:`assert_batch_backend_equivalence`,
   :func:`assert_leapfrog_substrate_equivalence`).

The registry below names every current engine; ``MANDATORY_ENGINES`` are
the ones that must run on every instance the generators produce.  The
batched plan backend (``ExpansionPlan.execute_batch`` row-loop, columnwise
and numpy paths) and the positional-kernel leapfrog port are registered as
mandatory — a regression in either fails this harness, not just a
downstream benchmark.

Since the dictionary-encoded data plane became the default, the plain
registry entries all exercise the *encoded* kernel.  The
``*-decoded-plane`` variants re-run the key engines on a codec-less
rebuild of the instance (the PR3 kernel) and are mandatory too:
encoded-vs-decoded agreement — results *and* bit-identical
``tuples_touched``, asserted by :func:`assert_plane_equivalence` — is the
differential test of the encoding itself, with
:func:`assert_batch_backend_equivalence` pinning both planes' batch
backends against per-row ``reference_expand_tuple`` (the decoded-value
specification).  The ``*-ndarray-frontier`` variants (one per algorithm
family) force the array-of-int64 block backend onto every encoded batch;
:func:`assert_ndarray_backend_equivalence` pins whole-engine work
profiles bit-identical with the backend forced on vs off, and
:func:`mixed_type_midrun_instance` generates the cross-type /
mid-run-interning corpus both sharp-edge fixes are pinned on.

Test files import from here; this module itself is not collected (no
``test_`` prefix).
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Callable

from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.simple_keys import all_guarded_simple_keys, closure_trick_join
from repro.core.sma import SMAError, submodularity_algorithm
from repro.datagen.from_lattice import database_from_world, query_from_lattice
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import leapfrog_triejoin
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.engine.reference import reference_expand_tuple
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF
from repro.lattice.builders import fig4_lattice, fig9_lattice, lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.lp.cllp import ConditionalLLP
from repro.query.query import Atom, Query


@contextmanager
def lp_backend_forced(backend: str):
    """Temporarily force ``REPRO_LP_BACKEND`` for a differential run."""
    # Save/restore of the raw variable, not a knob read.
    saved = os.environ.get("REPRO_LP_BACKEND")  # repro-lint: disable=knob-discipline
    os.environ["REPRO_LP_BACKEND"] = backend
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_LP_BACKEND", None)
        else:
            os.environ["REPRO_LP_BACKEND"] = saved


@contextmanager
def ndarray_forced(mode: str):
    """Temporarily force the ndarray frontier backend ``on``/``off``/``auto``."""
    from repro.engine import frontier

    saved = frontier.NDARRAY_MODE
    frontier.NDARRAY_MODE = mode
    try:
        yield
    finally:
        frontier.NDARRAY_MODE = saved


@contextmanager
def shard_forced(mode: str, workers: int | None = None):
    """Temporarily force the sharded frontier backend ``on``/``off``/
    ``auto`` (and optionally the worker count).  Forcing ``on`` also
    forces the block backend: shards only exist on blocks."""
    from repro.engine import shard

    saved = (shard.SHARD_MODE, shard.SHARD_WORKERS)
    shard.SHARD_MODE = mode
    if workers is not None:
        shard.SHARD_WORKERS = workers
    try:
        yield
    finally:
        shard.SHARD_MODE, shard.SHARD_WORKERS = saved


@contextmanager
def fused_forced(mode: str):
    """Temporarily force plan fusion ``on``/``off``/``auto``.  Forcing
    ``on`` also forces the block backend: pipelines only exist on
    blocks."""
    from repro.engine import fused

    saved = fused.FUSE_MODE
    fused.FUSE_MODE = mode
    try:
        yield
    finally:
        fused.FUSE_MODE = saved

# ----------------------------------------------------------------------
# Randomized instance generators
# ----------------------------------------------------------------------

def random_world_instance(seed: int) -> tuple[Query, Database]:
    """A random world over a paper lattice → query + runnable database.

    The world is sampled uniformly, so input projections may or may not
    satisfy the declared fds — exercising both the functional and the
    multi-image guard paths.
    """
    rng = random.Random(seed)
    lattice_maker = [fig4_lattice, fig9_lattice][seed % 2]
    lat, inputs = lattice_maker()
    query, var_to_ji = query_from_lattice(lat, inputs)
    variables = sorted(var_to_ji)
    domain = rng.randint(2, 4)
    n_tuples = rng.randint(5, 40)
    world = {
        tuple(rng.randrange(domain) for _ in variables)
        for _ in range(n_tuples)
    }
    return query, database_from_world(query, variables, sorted(world))


def _random_cyclic_key_instance(
    rng: random.Random,
    domain_range: tuple[int, int],
    size_range: tuple[int, int],
    fixed_size: bool,
) -> tuple[Query, Database]:
    """A random 3-4 atom cyclic query where one relation guards a random
    simple key, realized as a functional instance.

    ``fixed_size`` draws one relation size for the whole instance (the
    historical fuzz-workload shape) instead of one per atom.
    """
    n_atoms = rng.choice([3, 4])
    variables = list("wxyz")[:n_atoms]
    atoms = [
        Atom(f"R{k}", (variables[k], variables[(k + 1) % n_atoms]))
        for k in range(n_atoms)
    ]
    key_atom = rng.randrange(n_atoms)
    key_var, dep_var = atoms[key_atom].attrs
    fds = FDSet([FD(key_var, dep_var)], variables)
    query = Query(atoms, fds)
    domain = rng.randint(*domain_range)
    size = rng.randint(*size_range) if fixed_size else None
    relations = []
    for k, atom in enumerate(atoms):
        if k == key_atom:
            shift = rng.randrange(domain)
            tuples = {(v, (v * 3 + shift) % domain) for v in range(domain)}
        else:
            tuples = {
                (rng.randrange(domain), rng.randrange(domain))
                for _ in range(size if fixed_size else rng.randint(*size_range))
            }
        relations.append(Relation(atom.name, atom.attrs, tuples))
    return query, Database(relations, fds=fds)


def random_guarded_instance(seed: int) -> tuple[Query, Database]:
    """A small random cyclic simple-key instance (expansion-level corpus)."""
    return _random_cyclic_key_instance(
        random.Random(seed + 1000),
        domain_range=(3, 8),
        size_range=(5, 30),
        fixed_size=False,
    )


def random_simple_key_workload(seed: int) -> tuple[Query, Database]:
    """A larger random cyclic simple-key workload (cross-engine corpus;
    every engine applies)."""
    return _random_cyclic_key_instance(
        random.Random(seed),
        domain_range=(4, 10),
        size_range=(10, 60),
        fixed_size=True,
    )


#: ``==``-equal cross-type representatives per small integer: ``1`` may
#: surface as ``1``, ``1.0`` or ``True`` — all three hash equal, share a
#: dictionary code, and decode to the first-seen representative (the
#: pinned semantics of ``repro.engine.dictionary``).
_MIXED_REPS = {
    i: [i, float(i)] + ([bool(i)] if i < 2 else []) for i in range(8)
}


def mixed_type_midrun_instance(seed: int) -> tuple[Query, Database]:
    """A 4-cycle instance exercising the encoded plane's two sharp edges.

    * **Cross-type values** — every cell is a random ``==``-equal
      representative (``1`` vs ``1.0`` vs ``True``), so terminal outputs
      may flip representatives across planes while staying ``==``-equal.
    * **Mid-run interning** — the unguarded fd ``(w, x) → y`` evaluates a
      UDF whose sums exceed the stored ``y`` domain: fresh codes intern
      *after* the guarded ``y → z`` step's dense table compiled, and every
      backend must treat them as dangling (the value is in no guard).

    The UDF is well-defined on ``==``-classes (``w + x``), as the pinned
    semantics require of opaque predicates.
    """
    rng = random.Random(seed + 5000)

    def rep(i: int):
        return rng.choice(_MIXED_REPS[i])

    atoms = [
        Atom("R", ("w", "x")),
        Atom("S", ("x", "y")),
        Atom("T", ("y", "z")),
        Atom("U", ("z", "w")),
    ]
    variables = ["w", "x", "y", "z"]
    fds = FDSet([FD(frozenset({"w", "x"}), "y"), FD("y", "z")], variables)
    query = Query(atoms, fds)
    h = UDF("h", ("w", "x"), "y", lambda w, x: w + x)
    # The y → z guard: functional modulo == (one row per y-class).
    zmap = {y: (y * 5 + 1) % 7 for y in range(4)}
    r, s, t, u = set(), set(), set(), set()
    for y, zv in zmap.items():
        t.add((rep(y), rep(zv)))
    for _ in range(rng.randint(6, 16)):
        w, x = rng.randrange(4), rng.randrange(4)
        r.add((rep(w), rep(x)))
        s.add((rep(x), rep(rng.randrange(5))))
        u.add((rep(rng.randrange(7)), rep(w)))
    # A few guaranteed answers so the instance is not vacuously empty.
    for _ in range(3):
        w, x = rng.randrange(2), rng.randrange(2)
        y = w + x
        if y in zmap:
            r.add((rep(w), rep(x)))
            s.add((rep(x), rep(y)))
            u.add((rep(zmap[y]), rep(w)))
    db = Database(
        [
            Relation("R", ("w", "x"), r),
            Relation("S", ("x", "y"), s),
            Relation("T", ("y", "z"), t),
            Relation("U", ("z", "w"), u),
        ],
        fds=fds,
        udfs=[h],
    )
    return query, db


def all_instances(seed: int):
    """The expansion-level differential corpus: one world instance, one
    guarded instance and one mixed-type/mid-run-interning instance per
    seed."""
    yield random_world_instance(seed)
    yield random_guarded_instance(seed)
    yield mixed_type_midrun_instance(seed)


# ----------------------------------------------------------------------
# The engine registry
# ----------------------------------------------------------------------

def _run_binary(query, db, schema):
    out, _ = binary_join_plan(query, db)
    return set(out.project(schema).tuples)


def _run_chain(query, db, schema):
    lattice, inputs = lattice_from_query(query)
    logs = {k: db.log_sizes()[k] for k in inputs}
    value, chain, _ = best_chain_bound(lattice, inputs, logs)
    if chain is None or value == float("inf"):
        return None
    out, _ = chain_algorithm(query, db, lattice, inputs, chain)
    return set(out.project(schema).tuples)


def _run_sma(query, db, schema):
    lattice, inputs = lattice_from_query(query)
    try:
        out, _ = submodularity_algorithm(query, db, lattice, inputs)
    except SMAError:
        return None
    return set(out.project(schema).tuples)


def _run_csma(query, db, schema):
    lattice, inputs = lattice_from_query(query)
    result = csma(query, db, lattice, inputs)
    return set(result.relation.project(schema).tuples)


def _run_closure_trick(query, db, schema):
    if not all_guarded_simple_keys(query):
        return None
    out, _ = closure_trick_join(query, db)
    return set(out.project(schema).tuples)


def _vars_all_in_atoms(query) -> bool:
    in_atoms = set().union(*(a.varset for a in query.atoms))
    return in_atoms >= set(query.variables)


def _run_generic(query, db, schema):
    if not _vars_all_in_atoms(query):
        return None
    out, _ = generic_join(query, db, fd_aware=True)
    return set(out.project(schema).tuples)


def _run_lftj(query, db, schema):
    if not _vars_all_in_atoms(query):
        return None
    out, _ = leapfrog_triejoin(query, db)
    return set(out.project(schema).tuples)


def _run_lftj_reference(query, db, schema):
    if not _vars_all_in_atoms(query):
        return None
    out, _ = leapfrog_triejoin(query, db, expansion="reference")
    return set(out.project(schema).tuples)


def _run_chain_exact_lp(query, db, schema):
    """The chain engine with every LP solved on the exact rational backend."""
    with lp_backend_forced("exact"):
        return _run_chain(query, db, schema)


def _run_csma_exact_lp(query, db, schema):
    """CSMA with CLLP primal/dual solved on the exact rational backend."""
    with lp_backend_forced("exact"):
        return _run_csma(query, db, schema)


#: Memo for decoded-plane rebuilds, keyed by source-db identity (the
#: source is retained so the id cannot be recycled).  Several mandatory
#: engines re-run each fuzz instance decoded; sharing one rebuild shares
#: its plan/guard/index caches across them.
_DECODED_TWINS: dict[int, tuple[Database, Database]] = {}
_DECODED_TWINS_MAX = 16


def decoded_plane_db(db: Database) -> Database:
    """The same instance on the decoded (codec-less, PR3) kernel.

    Shares the relation objects, fds, udfs and declared bounds; only the
    execution plane differs.  Returns ``db`` itself when it already runs
    decoded; memoized per source database.
    """
    if not db.encoded:
        return db
    cached = _DECODED_TWINS.get(id(db))
    if cached is not None:
        return cached[1]
    twin = Database(
        list(db.relations.values()),
        fds=db.fds,
        udfs=list(db.udfs),
        degree_bounds=db.degree_bounds,
        encode=False,
    )
    _DECODED_TWINS[id(db)] = (db, twin)
    if len(_DECODED_TWINS) > _DECODED_TWINS_MAX:
        _DECODED_TWINS.pop(next(iter(_DECODED_TWINS)))
    return twin


def _run_generic_decoded(query, db, schema):
    if not _vars_all_in_atoms(query):
        return None
    out, _ = generic_join(query, decoded_plane_db(db), fd_aware=True)
    return set(out.project(schema).tuples)


def _run_csma_decoded(query, db, schema):
    return _run_csma(query, decoded_plane_db(db), schema)


def _run_lftj_decoded(query, db, schema):
    return _run_lftj(query, decoded_plane_db(db), schema)


def _ndarray_variant(runner: Callable) -> Callable:
    """The same engine with the ndarray frontier backend forced on for
    every encoded batch (no row threshold)."""

    def run(query, db, schema):
        with ndarray_forced("on"):
            return runner(query, db, schema)

    return run


_run_chain_ndarray = _ndarray_variant(_run_chain)
_run_sma_ndarray = _ndarray_variant(_run_sma)
_run_csma_ndarray = _ndarray_variant(_run_csma)
_run_generic_ndarray = _ndarray_variant(_run_generic)
_run_lftj_ndarray = _ndarray_variant(_run_lftj)


def _sharded_variant(runner: Callable) -> Callable:
    """The same engine with the sharded frontier backend forced on for
    every block (which transitively forces the block backend), two
    workers — every block an engine executes is hash-partitioned, run on
    the pool, and deterministically merged."""

    def run(query, db, schema):
        with shard_forced("on", workers=2):
            return runner(query, db, schema)

    return run


_run_chain_sharded = _sharded_variant(_run_chain)
_run_sma_sharded = _sharded_variant(_run_sma)
_run_csma_sharded = _sharded_variant(_run_csma)
_run_generic_sharded = _sharded_variant(_run_generic)
_run_lftj_sharded = _sharded_variant(_run_lftj)


def _fused_variant(runner: Callable) -> Callable:
    """The same engine with plan fusion forced on (which transitively
    forces the block backend) — every encoded batch runs through the
    generated per-plan pipeline with composed gather tables."""

    def run(query, db, schema):
        with fused_forced("on"):
            return runner(query, db, schema)

    return run


_run_chain_fused = _fused_variant(_run_chain)
_run_sma_fused = _fused_variant(_run_sma)
_run_csma_fused = _fused_variant(_run_csma)
_run_generic_fused = _fused_variant(_run_generic)
_run_lftj_fused = _fused_variant(_run_lftj)


#: name → runner(query, db, schema) -> set | None (None = not applicable).
ENGINES: dict[str, Callable] = {
    "binary": _run_binary,
    "chain": _run_chain,
    "sma": _run_sma,
    "csma": _run_csma,
    "closure-trick": _run_closure_trick,
    "generic": _run_generic,
    "lftj": _run_lftj,
    "lftj-reference-expansion": _run_lftj_reference,
    "chain-exact-lp": _run_chain_exact_lp,
    "csma-exact-lp": _run_csma_exact_lp,
    "generic-decoded-plane": _run_generic_decoded,
    "csma-decoded-plane": _run_csma_decoded,
    "lftj-decoded-plane": _run_lftj_decoded,
    "chain-ndarray-frontier": _run_chain_ndarray,
    "sma-ndarray-frontier": _run_sma_ndarray,
    "csma-ndarray-frontier": _run_csma_ndarray,
    "generic-ndarray-frontier": _run_generic_ndarray,
    "lftj-ndarray-frontier": _run_lftj_ndarray,
    "chain-sharded-frontier": _run_chain_sharded,
    "sma-sharded-frontier": _run_sma_sharded,
    "csma-sharded-frontier": _run_csma_sharded,
    "generic-sharded-frontier": _run_generic_sharded,
    "lftj-sharded-frontier": _run_lftj_sharded,
    "chain-fused": _run_chain_fused,
    "sma-fused": _run_sma_fused,
    "csma-fused": _run_csma_fused,
    "generic-fused": _run_generic_fused,
    "lftj-fused": _run_lftj_fused,
}

#: Engines that must be applicable (and agree) on every instance the
#: generators in this module produce.  The kernel-ported leapfrog and its
#: reference-substrate twin are mandatory: their agreement *is* the
#: differential test of the port.  ``csma-exact-lp`` is mandatory too:
#: every fuzz instance must evaluate correctly with *no* floating-point
#: LP in the loop (scipy demoted to an optional cross-check).  The
#: ``*-decoded-plane`` twins are mandatory for the same reason the LFTJ
#: reference substrate is: every instance must evaluate identically with
#: the dictionary encoding switched off.  The ``*-ndarray-frontier``
#: variants force the array-of-int64 backend onto every encoded batch
#: regardless of size — one per algorithm family; the three whose base
#: engines apply to every generated instance are mandatory (``chain``/
#: ``sma`` variants run whenever their base engines do), and
#: :func:`assert_ndarray_backend_equivalence` additionally pins their
#: ``tuples_touched`` bit-identical to the row-loop backend.
#: The ``*-sharded-frontier`` variants force the sharded backend onto
#: every block (two workers): parallel execution with the deterministic
#: merge must be invisible — same mandatory-coverage rule as the ndarray
#: variants, and :func:`assert_shard_sweep_equivalence` additionally
#: sweeps worker counts pinning ``tuples_touched``/digests bit-identical.
#: The ``*-fused`` variants force the generated per-plan pipelines onto
#: every encoded batch: composition and codegen must be invisible —
#: same mandatory-coverage rule again, with
#: :func:`assert_fusion_equivalence` pinning fused-on vs fused-off work
#: profiles and digests bit-identical.
MANDATORY_ENGINES = ("binary", "csma", "generic", "lftj",
                     "lftj-reference-expansion", "csma-exact-lp",
                     "generic-decoded-plane", "csma-decoded-plane",
                     "lftj-decoded-plane", "csma-ndarray-frontier",
                     "generic-ndarray-frontier", "lftj-ndarray-frontier",
                     "csma-sharded-frontier", "generic-sharded-frontier",
                     "lftj-sharded-frontier", "csma-fused",
                     "generic-fused", "lftj-fused")


def run_all_engines(query, db) -> dict[str, set]:
    """Run every applicable engine; return {name: tuple-set} aligned to the
    canonical (sorted-variable) schema."""
    schema = tuple(sorted(query.variables))
    outputs = {}
    for name, runner in ENGINES.items():
        result = runner(query, db, schema)
        if result is not None:
            outputs[name] = result
    return outputs


def assert_engines_agree(query, db, context: str = "") -> dict[str, set]:
    """Every applicable engine must produce the same result set; every
    mandatory engine must be applicable."""
    outputs = run_all_engines(query, db)
    for name in MANDATORY_ENGINES:
        assert name in outputs, f"mandatory engine {name} did not run {context}"
    reference = outputs["binary"]
    for name, result in outputs.items():
        assert result == reference, f"{name} disagrees {context}"
    return outputs


# ----------------------------------------------------------------------
# Work-transparency assertions (bit-identical tuples_touched)
# ----------------------------------------------------------------------

def _reference_tuple_rows(db, schema, out_schema, rows, counter):
    """Per-row naive expansion, aligned like ``execute_batch`` output."""
    out = []
    for row in rows:
        expanded = reference_expand_tuple(
            db, dict(zip(schema, row)), counter=counter
        )
        out.append(
            None if expanded is None
            else tuple(expanded[a] for a in out_schema)
        )
    return out


def assert_batch_backend_equivalence(db, rng: random.Random) -> None:
    """The batched plan backend ≡ the naive per-tuple reference, on both
    data planes.

    For every stored relation: build a frontier of stored + garbage rows,
    run it through (a) per-row ``reference_expand_tuple``, (b) the
    generated row-loop, (c) the columnwise backend, (d) the columnwise
    backend with the numpy unique-key path forced on — all four must
    produce identical aligned outputs and identical work counts.  When the
    database carries a codec, the same three batch variants run again on
    the *encoded* plan (rows encoded on entry, outputs decoded for the
    comparison): the encoded kernel must match ``reference_expand_tuple``
    — the decoded-value specification — bit-identically on results and
    ``tuples_touched``.
    """
    import repro.engine.expansion_plan as ep

    for name, rel in db.relations.items():
        plan = db.expansion_plan(rel.schema)
        rows = list(rel.tuples)[:12]
        rows += [
            tuple(rng.randrange(12) for _ in rel.schema) for _ in range(8)
        ]
        # Duplicate rows so the unique-key dedup path has repetition.
        rows = rows * 2

        ref_counter = WorkCounter()
        ref = _reference_tuple_rows(
            db, rel.schema, plan.out_schema, rows, ref_counter
        )

        variants = {}
        saved = (
            ep.COLUMN_MIN_ROWS, ep.NUMPY_MIN_ROWS, ep.NUMPY_MIN_ROWS_ENCODED
        )
        try:
            with ndarray_forced("off"):
                ep.COLUMN_MIN_ROWS, ep.NUMPY_MIN_ROWS = 10 ** 9, 10 ** 9
                variants["rows"] = _run_variant(plan, rows)
                ep.COLUMN_MIN_ROWS = 1
                variants["columns"] = _run_variant(plan, rows)
                ep.NUMPY_MIN_ROWS = 1
                variants["numpy"] = _run_variant(plan, rows)
            if db.encoded:
                codec = db.codec
                enc_plan = db.expansion_plan(rel.schema, encoded=True)
                assert enc_plan.out_schema == plan.out_schema
                enc_rows = [codec.encode_row(rel.schema, r) for r in rows]
                enc_variants = {}
                with ndarray_forced("off"):
                    ep.COLUMN_MIN_ROWS = 10 ** 9
                    ep.NUMPY_MIN_ROWS_ENCODED = 10 ** 9
                    enc_variants["encoded-rows"] = _run_variant(enc_plan, enc_rows)
                    ep.COLUMN_MIN_ROWS = 1
                    enc_variants["encoded-columns"] = _run_variant(enc_plan, enc_rows)
                    ep.NUMPY_MIN_ROWS_ENCODED = 1
                    enc_variants["encoded-numpy"] = _run_variant(enc_plan, enc_rows)
                # The ndarray frontier backend, forced onto every batch
                # size — the same rows (including the garbage/duplicate
                # ones and any codes interned mid-loop) must produce the
                # identical aligned output and identical counts.
                with ndarray_forced("on"):
                    enc_variants["encoded-ndarray"] = _run_variant(
                        enc_plan, enc_rows
                    )
                for variant, (counter, out) in enc_variants.items():
                    decoded = [
                        None if r is None
                        else codec.decode_row(enc_plan.out_schema, r)
                        for r in out
                    ]
                    variants[variant] = (counter, decoded)
        finally:
            (
                ep.COLUMN_MIN_ROWS, ep.NUMPY_MIN_ROWS,
                ep.NUMPY_MIN_ROWS_ENCODED,
            ) = saved

        for variant, (counter, out) in variants.items():
            assert out == ref, f"{name}: batch[{variant}] output diverges"
            assert counter.tuples_touched == ref_counter.tuples_touched, (
                f"{name}: batch[{variant}] counts "
                f"{counter.tuples_touched} != {ref_counter.tuples_touched}"
            )


def _run_variant(plan, rows):
    counter = WorkCounter()
    return counter, plan.execute_batch(rows, counter)


def lp_engine_work_profile(query, db) -> dict[str, int | None]:
    """``tuples_touched`` of the LP-driven engines (chain, SMA, CSMA) under
    the *currently configured* LP backend; ``None`` marks inapplicability."""
    lattice, inputs = lattice_from_query(query)
    logs = {k: db.log_sizes()[k] for k in inputs}
    profile: dict[str, int | None] = {}
    value, chain, _ = best_chain_bound(lattice, inputs, logs)
    if chain is None or value == float("inf"):
        profile["chain"] = None
    else:
        _, stats = chain_algorithm(query, db, lattice, inputs, chain)
        profile["chain"] = stats.tuples_touched
    try:
        _, stats = submodularity_algorithm(query, db, lattice, inputs)
        profile["sma"] = stats.tuples_touched
    except SMAError:
        profile["sma"] = None
    result = csma(query, db, lattice, inputs)
    profile["csma"] = result.stats.tuples_touched
    return profile


def engine_work_profile(query, db) -> dict[str, object]:
    """``tuples_touched`` (and LFTJ seeks) of every applicable engine on
    ``db``'s active plane."""
    profile: dict[str, object] = dict(lp_engine_work_profile(query, db))
    _, bj = binary_join_plan(query, db)
    profile["binary"] = bj.tuples_touched
    if _vars_all_in_atoms(query):
        _, gj = generic_join(query, db, fd_aware=True)
        profile["generic"] = gj.tuples_touched
        counter = WorkCounter()
        _, lf = leapfrog_triejoin(query, db, counter=counter)
        profile["lftj"] = (lf.tuples_touched, lf.seeks, counter.tuples_touched)
    return profile


def assert_plane_equivalence(query, db) -> None:
    """The dictionary-encoded plane ≡ the decoded plane, bit-identically.

    Encoding is a per-attribute bijection, so *every* count the engines
    report — expansion touches, join emissions, LFTJ seeks — must be
    identical between a codec-backed database and its codec-less rebuild,
    and the (decoded) results must agree.  Any drift means the encoded
    kernel changed semantics, not just speed.
    """
    encoded_db = db if db.encoded else Database(
        list(db.relations.values()),
        fds=db.fds,
        udfs=list(db.udfs),
        degree_bounds=db.degree_bounds,
        encode=True,
    )
    decoded_db = decoded_plane_db(db)
    schema = tuple(sorted(query.variables))
    enc_profile = engine_work_profile(query, encoded_db)
    dec_profile = engine_work_profile(query, decoded_db)
    assert enc_profile == dec_profile, (
        f"encoded-vs-decoded work drift: {enc_profile} != {dec_profile}"
    )
    assert _run_csma(query, encoded_db, schema) == _run_csma(
        query, decoded_db, schema
    )


def assert_ndarray_backend_equivalence(query, db) -> None:
    """The ndarray frontier backend ≡ the row-loop backend, bit-identically.

    Runs every engine's work profile twice on the encoded plane — once
    with the array-of-int64 backend forced onto every batch, once with it
    forced off (the generated row-loop / columnwise backends) — and
    asserts identical ``tuples_touched`` everywhere plus identical CSMA
    results.  Any drift means the block backend changed the measured work
    shape, not just the constant factor.
    """
    encoded_db = db if db.encoded else Database(
        list(db.relations.values()),
        fds=db.fds,
        udfs=list(db.udfs),
        degree_bounds=db.degree_bounds,
        encode=True,
    )
    schema = tuple(sorted(query.variables))
    with ndarray_forced("on"):
        on_profile = engine_work_profile(query, encoded_db)
        on_result = _run_csma(query, encoded_db, schema)
    with ndarray_forced("off"):
        off_profile = engine_work_profile(query, encoded_db)
        off_result = _run_csma(query, encoded_db, schema)
    assert on_profile == off_profile, (
        f"ndarray-vs-row-loop work drift: {on_profile} != {off_profile}"
    )
    assert on_result == off_result


def result_digest(rows) -> str:
    """An order-independent digest of a result set: sha256 over the
    sorted row reprs.  Stable across runs on the *same* codec state;
    encoded-vs-decoded planes compare by set equality instead (a
    ``==``-ambiguous representative like ``1`` vs ``1.0`` reprs
    differently while comparing equal)."""
    import hashlib

    payload = "\n".join(sorted(repr(row) for row in rows))
    return hashlib.sha256(payload.encode()).hexdigest()


def assert_shard_sweep_equivalence(query, db, workers=(1, 2, 7)) -> None:
    """The sharded backend ≡ the single-worker backend, bit-identically,
    for every worker count.

    Runs every engine's work profile with sharding forced off (blocks
    on) as the baseline, then sweeps ``workers`` with sharding forced on
    every block, asserting identical ``tuples_touched`` everywhere and
    identical result digests — the deterministic-merge contract: shard
    count must be *invisible* in both the counted work and the bytes of
    the answer.  The decoded reference plane is pinned too (bit-identical
    work, set-equal results; digests are compared within the encoded
    plane only, since a ``==``-ambiguous representative reprs differently
    across planes).

    The shard-off baseline runs first on purpose: it interns any mid-run
    UDF values, so the sweep's parallel runs probe a stable codec and the
    repr digests are well-defined.
    """
    encoded_db = db if db.encoded else Database(
        list(db.relations.values()),
        fds=db.fds,
        udfs=list(db.udfs),
        degree_bounds=db.degree_bounds,
        encode=True,
    )
    schema = tuple(sorted(query.variables))
    with shard_forced("off"), ndarray_forced("on"):
        off_profile = engine_work_profile(query, encoded_db)
        off_rows = _run_csma(query, encoded_db, schema)
    off_digest = result_digest(off_rows)
    for count in workers:
        with shard_forced("on", workers=count):
            profile = engine_work_profile(query, encoded_db)
            rows = _run_csma(query, encoded_db, schema)
        assert profile == off_profile, (
            f"shard(workers={count}) work drift: {profile} != {off_profile}"
        )
        assert result_digest(rows) == off_digest, (
            f"shard(workers={count}) result digest drift"
        )
    decoded_db = decoded_plane_db(db)
    with shard_forced("off"), ndarray_forced("off"):
        dec_profile = engine_work_profile(query, decoded_db)
        dec_rows = _run_csma(query, decoded_db, schema)
    assert dec_profile == off_profile, (
        f"sharded-vs-decoded work drift: {off_profile} != {dec_profile}"
    )
    assert dec_rows == off_rows


def assert_fusion_equivalence(query, db) -> None:
    """Fused pipelines ≡ the per-step spec loop, bit-identically.

    Runs every engine's work profile on the encoded plane with fusion
    forced off first (blocks on — the per-step loop of PR 5; running it
    first interns any mid-run UDF values so the fused runs probe a
    stable codec and the repr digests are well-defined), then with
    fusion forced on, asserting identical ``tuples_touched`` everywhere
    plus identical CSMA result digests.  Any drift means gather-table
    composition or pipeline codegen changed the measured work shape or
    the answer bytes, not just the constant factor.
    """
    encoded_db = db if db.encoded else Database(
        list(db.relations.values()),
        fds=db.fds,
        udfs=list(db.udfs),
        degree_bounds=db.degree_bounds,
        encode=True,
    )
    schema = tuple(sorted(query.variables))
    with fused_forced("off"), ndarray_forced("on"):
        off_profile = engine_work_profile(query, encoded_db)
        off_rows = _run_csma(query, encoded_db, schema)
    with fused_forced("on"):
        on_profile = engine_work_profile(query, encoded_db)
        on_rows = _run_csma(query, encoded_db, schema)
    assert on_profile == off_profile, (
        f"fused-vs-unfused work drift: {on_profile} != {off_profile}"
    )
    assert result_digest(on_rows) == result_digest(off_rows), (
        "fused-vs-unfused result digest drift"
    )


def assert_lp_backend_equivalence(query, db) -> None:
    """The LP backend policy is invisible: canonical exact vertices drive
    every engine under every policy.

    Canonical-vertex selection (lex-min over the optimal face, primal
    *and* dual) makes each LP solution a function of the program alone,
    so all three LP-driven engines — chain, SMA, **and CSMA** — must
    produce **bit-identical work profiles** under the shipped ``auto``
    policy, forced ``exact``, and forced ``scipy`` (now cross-check
    mode: the same canonical solve, plus a per-solve scipy agreement
    assertion).  The historical CSMA dual-face-degeneracy carve-out is
    retired: CSMA's branch trajectory follows the canonical CLLP dual
    certificate, not whichever vertex a solver happened to pick.

    The CLLP optimum (the Lemma 5.36 restart budget) is compared as
    certified exact ``Fraction`` objectives for *equality* — no float
    tolerance, which could mask a genuinely sub-optimal vertex.

    The ``scipy`` leg runs first so unmemoized programs actually
    exercise the scipy cross-check (the solution memos are now
    policy-free, so later legs may legitimately hit the cache).

    Requires scipy (skipped by callers on exact-only interpreters).
    """
    with lp_backend_forced("scipy"):
        scipy_profile = lp_engine_work_profile(query, db)
    with lp_backend_forced("auto"):
        auto_profile = lp_engine_work_profile(query, db)
    with lp_backend_forced("exact"):
        exact_profile = lp_engine_work_profile(query, db)
    assert auto_profile == scipy_profile, (
        f"auto-vs-scipy LP policy changed engine work: "
        f"{auto_profile} != {scipy_profile}"
    )
    assert exact_profile == scipy_profile, (
        f"exact-vs-scipy LP policy changed engine work: "
        f"{exact_profile} != {scipy_profile}"
    )
    # The CLLP optimum — the restart budget — is certified and identical
    # (as exact Fractions) across policies.
    lattice, inputs = lattice_from_query(query)
    logs = {k: db.log_sizes()[k] for k in inputs}
    program = ConditionalLLP.from_cardinalities(lattice, inputs, logs)
    with lp_backend_forced("scipy"):
        scipy_solution = program.solve()
    with lp_backend_forced("exact"):
        exact_solution = program.solve()
    assert exact_solution.certificate is not None
    assert exact_solution.certificate.verify()
    assert scipy_solution.certificate is not None
    assert (
        exact_solution.certificate.objective
        == scipy_solution.certificate.objective
    ), "CLLP optimum differs across LP backend policies"
    schema = tuple(sorted(query.variables))
    with lp_backend_forced("scipy"):
        scipy_csma = _run_csma(query, db, schema)
    assert _run_csma_exact_lp(query, db, schema) == scipy_csma


def assert_leapfrog_substrate_equivalence(query, db) -> None:
    """The kernel-ported LFTJ ≡ LFTJ on the naive reference substrate:
    identical results, identical engine stats, and bit-identical expansion
    work counts through the threaded counter."""
    if not _vars_all_in_atoms(query):
        return
    plan_counter = WorkCounter()
    ref_counter = WorkCounter()
    out_plan, stats_plan = leapfrog_triejoin(query, db, counter=plan_counter)
    out_ref, stats_ref = leapfrog_triejoin(
        query, db, counter=ref_counter, expansion="reference"
    )
    assert set(out_plan.tuples) == set(out_ref.tuples)
    assert stats_plan.tuples_touched == stats_ref.tuples_touched
    assert stats_plan.seeks == stats_ref.seeks
    assert plan_counter.tuples_touched == ref_counter.tuples_touched, (
        f"leapfrog expansion counts diverge: kernel "
        f"{plan_counter.tuples_touched} != reference "
        f"{ref_counter.tuples_touched}"
    )
