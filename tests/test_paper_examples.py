"""Integration tests: every numbered claim of the paper, end to end.

Each test names the paper artifact it reproduces; together these are the
executable record behind EXPERIMENTS.md.
"""

import math
from fractions import Fraction

import pytest

from repro.core.bounds import compute_bounds
from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.proofs import find_good_sm_proof, sm_proof_exists
from repro.core.sma import submodularity_algorithm
from repro.datagen.from_lattice import worst_case_database
from repro.datagen.worstcase import (
    fig4_instance,
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)
from repro.engine.binary_join import binary_join_plan
from repro.engine.generic_join import generic_join
from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig9_lattice,
    lattice_from_query,
    m3_query_lattice,
)
from repro.lattice.chains import best_chain_bound, chain_bound, shearer_chain
from repro.lattice.properties import is_distributive, is_normal_lattice
from repro.lp.llp import LatticeLinearProgram, glvv_bound_log2
from repro.query.query import paper_example_query


class TestSection1Motivation:
    def test_eq1_udf_query_glvv_is_n_three_halves(self):
        """Sec. 1.1: the GLVV bound of query (1) is N^{3/2}."""
        query = paper_example_query()
        sizes = {"R": 1024, "S": 1024, "T": 1024}
        report = compute_bounds(query, sizes)
        assert report.glvv == pytest.approx(15.0)  # 1.5 * 10 bits

    def test_eq1_intermediate_blowup(self):
        """Sec. 1.1: first joining R,S,T then filtering costs Θ(N²)."""
        query, db = skew_instance_example_5_8(80)
        _, stats = binary_join_plan(query, db, order=["R", "S", "T"])
        assert stats.intermediate_peak >= (80 // 2) ** 2


class TestSection2:
    def test_agm_triangle_eq4(self):
        """Eq. (4) on several cardinality profiles."""
        from repro.core.bounds import agm_bound_log2
        from repro.query.query import triangle_query

        query = triangle_query()
        for r, s, t in [(16, 16, 16), (4, 16, 64), (2, 2, 1024)]:
            expected = min(
                0.5 * (math.log2(r) + math.log2(s) + math.log2(t)),
                math.log2(r) + math.log2(s),
                math.log2(r) + math.log2(t),
                math.log2(s) + math.log2(t),
            )
            assert agm_bound_log2(
                query, {"R": r, "S": s, "T": t}
            ) == pytest.approx(expected)

    def test_expansion_procedure(self):
        """Sec. 2: expansion fills closure attributes in O~(N)."""
        query, db = grid_instance_example_5_5(16)
        expanded = db.expand_relation(db["R"])  # xy+ = xy: unchanged
        assert set(expanded.schema) == {"x", "y"}
        # S = yz: closure yz (no fd applies); T = zu: closure zu.
        assert set(db.expand_relation(db["T"]).schema) == {"z", "u"}


class TestSection3:
    def test_prop_3_2_simple_fds_distributive(self):
        from repro.fds.fd import FD, FDSet
        from repro.lattice.builders import lattice_from_fds

        fds = FDSet([FD("a", "b"), FD("c", "b"), FD("b", "d")], "abcd")
        assert is_distributive(lattice_from_fds(fds))

    def test_prop_3_4_llp_equals_glvv(self):
        """LLP optimum == max over feasible polymatroids (spot-check via
        the known optimal values)."""
        lat, inputs = fig1_lattice()
        logs = {name: 1.0 for name in inputs}
        program = LatticeLinearProgram(lat, inputs, logs)
        solution = program.solve()
        assert solution.objective == pytest.approx(1.5)
        # Sanity: the optimal polymatroid attains the cardinalities.
        for name, r in inputs.items():
            assert float(solution.h.values[r]) <= 1.0 + 1e-9

    def test_m3_instance_materializes_nonnormal_h(self):
        """Sec. 3.2: the mod-N instance gives the M3 entropy profile
        h(x)=h(y)=h(z)=log N, h(1̂)=2 log N."""
        from repro.lattice.polymatroid import counting_function
        from repro.lattice.builders import m3

        n = 8
        query, db = m3_modular_instance(n)
        world = [
            (x, y, (-x - y) % n) for x in range(n) for y in range(n)
        ]
        lat, inputs = lattice_from_query(query)
        counts = counting_function(lat, world, ("x", "y", "z"))
        assert counts[lat.top] == n * n
        for name, r in inputs.items():
            assert counts[r] == n


class TestSection4Normality:
    def test_thm_4_9_fig1_normal(self):
        lat, inputs = fig1_lattice()
        assert is_normal_lattice(lat, inputs)

    def test_prop_4_10_m3_not_normal(self):
        lat, inputs = m3_query_lattice()
        assert not is_normal_lattice(lat, inputs)

    def test_cor_5_23_distributive_normal(self):
        lat = boolean_algebra("xyz")
        inputs = {
            "R": lat.index(frozenset("xy")),
            "S": lat.index(frozenset("yz")),
            "T": lat.index(frozenset("xz")),
        }
        assert is_normal_lattice(lat, inputs)


class TestSection51Chain:
    def test_ex_5_5_chain_bound_tight(self):
        """Ex. 5.5: the y-chain gives N^{3/2}, attained by the grid."""
        query, db = grid_instance_example_5_5(64)
        lat, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        value, chain, _ = best_chain_bound(lat, inputs, logs)
        out, _ = binary_join_plan(query, db)
        assert len(out) == 2 ** round(value)

    def test_ex_5_8_separation(self):
        """Ex. 5.8: CA beats every FD-oblivious WCOJ on the skew instance."""
        n = 128
        query, db = skew_instance_example_5_8(n)
        lat, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        _, chain, _ = best_chain_bound(lat, inputs, logs)
        out_ca, ca_stats = chain_algorithm(query, db, lat, inputs, chain)
        out_gj, gj_stats = generic_join(
            query, db, order=("y", "z", "x", "u"), fd_aware=True
        )
        assert set(out_ca.tuples) == set(out_gj.project(out_ca.schema).tuples)
        assert ca_stats.tuples_touched * 3 < gj_stats.tuples_touched

    def test_cor_5_9_and_5_11_chains(self):
        lat, inputs = fig5_lattice()
        chain = shearer_chain(lat, list(inputs.values()))
        logs = {name: 1.0 for name in inputs}
        value, _ = chain_bound(chain, inputs, logs)
        assert value == pytest.approx(2.0)  # Ex. 5.10

    def test_ex_5_12_m3_chain_tight(self):
        query, db = m3_modular_instance(9)
        lat, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        value, chain, _ = best_chain_bound(lat, inputs, logs)
        out, _ = binary_join_plan(query, db)
        assert len(out) == pytest.approx(2 ** value, rel=0.01)

    def test_ex_5_18_chain_gap(self):
        lat, inputs = fig4_lattice()
        logs = {name: 1.0 for name in inputs}
        chain_value, _, _ = best_chain_bound(lat, inputs, logs)
        glvv = glvv_bound_log2(lat, inputs, logs)
        assert chain_value == pytest.approx(1.5)
        assert glvv == pytest.approx(4 / 3)


class TestSection52SMA:
    def test_ex_5_20_sm_proof(self):
        lat, inputs = fig4_lattice()
        weights = {name: Fraction(1, 3) for name in inputs}
        proof = find_good_sm_proof(lat, weights, inputs)
        assert proof is not None and proof.is_good()

    def test_thm_5_28_sma_on_fig4(self):
        query, db = fig4_instance(64)
        lat, inputs = lattice_from_query(query)
        out, _ = submodularity_algorithm(query, db, lat, inputs)
        ref, _ = binary_join_plan(query, db)
        assert set(out.tuples) == set(ref.project(out.schema).tuples)
        assert len(out) == 256  # N^{4/3}


class TestSection53CSMA:
    def test_ex_5_31_no_sm_proof(self):
        lat, inputs = fig9_lattice()
        weights = {name: Fraction(1, 2) for name in inputs}
        assert not sm_proof_exists(lat, weights, inputs)

    def test_csma_fig9_end_to_end(self):
        lat0, inp0 = fig9_lattice()
        query, db, h = worst_case_database(lat0, inp0, scale=3)
        lat, inputs = lattice_from_query(query)
        result = csma(query, db, lat, inputs)
        ref, _ = binary_join_plan(query, db)
        assert set(result.relation.tuples) == set(
            ref.project(result.relation.schema).tuples
        )
        assert result.stats.fallbacks == 0
        # The worst case attains GLVV: |Q| = scale^{h(1̂)} = 27 = N^{3/2}.
        assert len(result.relation) == 27


class TestAppendixA:
    def test_degree_bounded_triangle_bound(self):
        """Appendix A / Sec. 1.2: output <= min(N^{3/2}, N·d1, N·d2)."""
        from repro.lp.cllp import ConditionalLLP, DegreeConstraint
        from repro.query.query import triangle_query

        query = triangle_query()
        lat, inputs = lattice_from_query(query)
        n, d1 = 12.0, 2.0
        logs = {name: n for name in inputs}
        x = lat.index(frozenset("x"))
        xy = lat.index(frozenset("xy"))
        program = ConditionalLLP.from_cardinalities(
            lat, inputs, logs
        ).with_constraint(DegreeConstraint(x, xy, d1))
        objective, _ = program.solve_primal()
        assert objective == pytest.approx(min(1.5 * n, n + d1))
