"""More hypothesis property tests: entropy, LFTJ, chains, inequalities."""

import math
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import leapfrog_triejoin
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import lattice_from_fds
from repro.lattice.chains import Chain, all_maximal_chains, is_good_chain
from repro.lattice.entropy import Distribution
from repro.lattice.polymatroid import step_function
from repro.lp.llp import LatticeLinearProgram
from repro.query.query import triangle_query


@st.composite
def small_distributions(draw):
    n_vars = draw(st.integers(2, 3))
    variables = tuple("xyz"[:n_vars])
    tuples = draw(
        st.lists(
            st.tuples(*[st.integers(0, 3) for _ in variables]),
            min_size=1,
            max_size=20,
        )
    )
    return Distribution.uniform(variables, tuples)


@st.composite
def fd_sets(draw):
    n_fds = draw(st.integers(0, 3))
    fds = []
    for _ in range(n_fds):
        lhs = draw(st.sets(st.sampled_from("wxyz"), min_size=1, max_size=2))
        rhs = draw(st.sets(st.sampled_from("wxyz"), min_size=1, max_size=2))
        fds.append(FD(frozenset(lhs), frozenset(rhs)))
    return FDSet(fds, "wxyz")


# ----------------------------------------------------------------------
# Entropy
# ----------------------------------------------------------------------

@given(small_distributions())
@settings(max_examples=50, deadline=None)
def test_entropy_profile_always_polymatroid(dist):
    """Every entropic vector is a polymatroid (Sec. 2)."""
    assert dist.is_polymatroid_profile(tolerance=1e-7)


@given(small_distributions())
@settings(max_examples=50, deadline=None)
def test_entropy_bounded_by_log_support(dist):
    assert dist.entropy() <= math.log2(len(dist.weights)) + 1e-9


@given(small_distributions())
@settings(max_examples=50, deadline=None)
def test_conditional_entropy_nonnegative(dist):
    vars_ = dist.variables
    assert dist.conditional_entropy(vars_[:1], vars_[1:]) >= -1e-9


@given(small_distributions())
@settings(max_examples=50, deadline=None)
def test_mutual_information_nonnegative(dist):
    vars_ = dist.variables
    assert dist.mutual_information(vars_[:1], vars_[1:]) >= -1e-9


# ----------------------------------------------------------------------
# LFTJ vs generic join on random triangles
# ----------------------------------------------------------------------

@st.composite
def triangle_dbs(draw):
    edges = st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=25
    )
    return Database(
        [
            Relation("R", ("x", "y"), draw(edges)),
            Relation("S", ("y", "z"), draw(edges)),
            Relation("T", ("z", "x"), draw(edges)),
        ]
    )


@given(triangle_dbs())
@settings(max_examples=25, deadline=None)
def test_lftj_matches_generic(db):
    query = triangle_query()
    a, _ = leapfrog_triejoin(query, db)
    b, _ = generic_join(query, db)
    assert set(a.tuples) == set(b.project(a.schema).tuples)


# ----------------------------------------------------------------------
# Chains and LLP on random FD lattices
# ----------------------------------------------------------------------

@given(fd_sets())
@settings(max_examples=25, deadline=None)
def test_maximal_chains_good_for_everything(fds):
    """Prop. 5.2 on random FD lattices."""
    lattice = lattice_from_fds(fds)
    for chain in all_maximal_chains(lattice, limit=10):
        assert is_good_chain(chain, range(lattice.n))


@given(fd_sets())
@settings(max_examples=20, deadline=None)
def test_llp_bounded_by_sum_and_max(fds):
    """GLVV is between the largest single input and the sum of inputs."""
    lattice = lattice_from_fds(fds)
    coatoms = lattice.coatoms
    if not coatoms:
        return
    inputs = {f"R{k}": c for k, c in enumerate(coatoms)}
    if lattice.join_all(inputs.values()) != lattice.top:
        inputs["Rtop"] = lattice.top
    logs = {name: 1.0 for name in inputs}
    program = LatticeLinearProgram(lattice, inputs, logs)
    value, _ = program.solve_primal()
    assert -1e-6 <= value <= len(inputs) + 1e-6


@given(fd_sets())
@settings(max_examples=20, deadline=None)
def test_dual_certificate_verifies_on_random_lattices(fds):
    lattice = lattice_from_fds(fds)
    coatoms = lattice.coatoms
    if not coatoms:
        return
    inputs = {f"R{k}": c for k, c in enumerate(coatoms)}
    if lattice.join_all(inputs.values()) != lattice.top:
        inputs["Rtop"] = lattice.top
    logs = {name: 1.0 for name in inputs}
    inequality = LatticeLinearProgram(lattice, inputs, logs).solve_dual()
    assert inequality.verify_certificate()


@given(fd_sets(), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_step_functions_satisfy_dual_inequalities(fds, z_offset):
    """Any dual-certified inequality holds on every step function."""
    lattice = lattice_from_fds(fds)
    coatoms = lattice.coatoms
    if not coatoms:
        return
    inputs = {f"R{k}": c for k, c in enumerate(coatoms)}
    if lattice.join_all(inputs.values()) != lattice.top:
        inputs["Rtop"] = lattice.top
    logs = {name: 1.0 for name in inputs}
    inequality = LatticeLinearProgram(lattice, inputs, logs).solve_dual()
    z = (lattice.bottom + z_offset) % lattice.n
    if z == lattice.top:
        return
    assert inequality.verify_on(step_function(lattice, z))
